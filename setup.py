"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in editable mode in fully offline environments whose
setuptools predates native PEP 660 support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
