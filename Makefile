# Development entry points for the PrefillOnly reproduction.
#
#   make test        - tier-1 test suite (unit + property tests + benchmarks, small scale)
#   make bench       - only the benchmark harness (regenerates tables/figures)
#   make bench-paper - benchmark harness at the paper's full workload scale
#   make bench-tiers - only the KV-tiering benchmark (tiered vs suffix discard)
#   make docs-check  - fail if README / docs reference nonexistent modules or CLI flags
#   make examples    - run every example script end to end
#   make scenarios   - smoke-run every CLI example in docs/SCENARIOS.md

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-paper bench-tiers docs-check examples scenarios

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q -s

bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks -q -s

bench-tiers:
	$(PYTHON) -m pytest benchmarks/test_kv_tiers.py -q -s

docs-check:
	$(PYTHON) scripts/docs_check.py

scenarios:
	$(PYTHON) scripts/run_cookbook.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"
