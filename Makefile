# Development entry points for the PrefillOnly reproduction.
#
#   make test        - tier-1 test suite (unit + property tests + benchmarks, small scale)
#   make bench       - only the benchmark harness (regenerates tables/figures)
#   make bench-paper - benchmark harness at the paper's full workload scale
#   make bench-tiers - only the KV-tiering benchmark (tiered vs suffix discard)
#   make bench-sweep - serial vs parallel engine sweep (byte-identical results)
#   make perf        - perf-regression harness vs the committed BENCH baseline
#   make fuzz        - scenario + metamorphic fuzzers, full 200-example derandomized profile
#   make test-shard-identity - sharded-engine differential suite (byte-identity at shards=4)
#   make obs-check   - validate observability exports + disabled-path seed fingerprints
#   make test-resilience - resilience unit + identity suite (policies-off byte-identical)
#   make scenarios-resilience - run the chaos+policy scenarios at shards 1 and 4
#   make docs-check  - fail if README / docs reference nonexistent modules or CLI flags
#   make examples    - run every example script end to end
#   make scenarios   - smoke-run every CLI example in docs/SCENARIOS.md

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

#: Worker processes for the parallel experiment runner targets.
PERF_WORKERS ?= 4
#: Committed baseline the perf target compares against (see docs/PERFORMANCE.md).
PERF_BASELINE ?= BENCH_pr10.json

.PHONY: test test-shard-identity test-resilience bench bench-paper bench-tiers bench-sweep perf fuzz obs-check docs-check examples scenarios scenarios-resilience

test:
	$(PYTHON) -m pytest -x -q

test-shard-identity:
	$(PYTHON) -m pytest tests/test_sharded_identity.py tests/test_sharded_merge.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q -s

bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks -q -s

bench-tiers:
	$(PYTHON) -m pytest benchmarks/test_kv_tiers.py -q -s

bench-sweep:
	$(PYTHON) scripts/perf_report.py sweep --workers $(PERF_WORKERS) --min-speedup 2.0

perf:
	$(PYTHON) scripts/perf_report.py run --label pr --scale small --workers $(PERF_WORKERS) \
		--baseline $(PERF_BASELINE)
	$(PYTHON) scripts/perf_report.py compare $(PERF_BASELINE) BENCH_pr.json \
		--max-regression 0.20 --normalize

fuzz:
	HYPOTHESIS_PROFILE=fuzz $(PYTHON) -m pytest tests/test_scenario_fuzz.py tests/test_metamorphic.py -q

obs-check:
	$(PYTHON) scripts/obs_check.py

test-resilience:
	$(PYTHON) -m pytest tests/test_resilience.py tests/test_resilience_identity.py -q

scenarios-resilience:
	$(PYTHON) -m repro.cli scenario run --config examples/scenarios/chaos_resilience_policies.json
	$(PYTHON) -m repro.cli scenario run --config examples/scenarios/chaos_resilience_policies_sharded.json

docs-check:
	$(PYTHON) scripts/docs_check.py

scenarios:
	$(PYTHON) scripts/run_cookbook.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"
