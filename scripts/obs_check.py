#!/usr/bin/env python
"""Observability export check (``make obs-check``, the CI ``obs`` job).

Three assertions, any failure exits non-zero:

1. **Exports validate** — runs one cookbook scenario with recording
   force-enabled (``chaos_tiered_recovery`` by default, so fault, retry,
   warm-restore, and tier events are all present), writes the Chrome trace
   and the Prometheus snapshot to ``--out``, and validates the trace against
   the checked-in ``schemas/chrome-trace.schema.json``.
2. **Spans round-trip** — the ``repro-spans/v1`` export parses back and
   re-exports byte-identically.
3. **Analysis layer** — a same-seed re-run diffs to zero
   (:func:`repro.obs.analysis.diff_runs`), every request's phase
   decomposition sums to its end-to-end latency, and the burn-rate alert
   evaluation of the resilience cookbook scenario exports a
   ``repro-alerts/v1`` document that validates line by line against the
   checked-in ``schemas/repro-alerts.schema.json``; the critical-path,
   diff, and alerts reports land in ``--out`` as CI artifacts.
4. **Disabled path is the seed** — every cookbook scenario, run *without*
   observability at shards 1 and 4, reproduces the golden fingerprints in
   ``tests/golden/cookbook_fingerprints.json`` bit for bit (recording is
   opt-in; a build that never enables it must be indistinguishable from one
   without the subsystem).

Run with::

    PYTHONPATH=src python scripts/obs_check.py            # full check
    PYTHONPATH=src python scripts/obs_check.py --skip-fingerprints
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
from math import fsum  # noqa: E402

from repro.obs.analysis import (  # noqa: E402
    DEFAULT_ALERT_RULES,
    decompose_requests,
    diff_runs,
    evaluate_alerts,
)
from repro.obs.exporters import (  # noqa: E402
    export_alerts,
    export_chrome_trace,
    export_prometheus,
    export_spans,
    parse_spans,
)
from repro.obs.logging import LOG_LEVELS, configure, get_logger  # noqa: E402
from repro.obs.recorder import ObsConfig  # noqa: E402
from repro.obs.schema import validate_json  # noqa: E402
from repro.analysis.reporting import (  # noqa: E402
    format_alerts_report,
    format_critical_path_report,
    format_run_diff_report,
)
from repro.simulation.invariants import scenario_fingerprint  # noqa: E402
from repro.simulation.scenario import load_scenario, run_scenario  # noqa: E402

logger = get_logger("scripts.obs_check")

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIOS = REPO_ROOT / "examples" / "scenarios"
SCHEMA = REPO_ROOT / "schemas" / "chrome-trace.schema.json"
ALERTS_SCHEMA = REPO_ROOT / "schemas" / "repro-alerts.schema.json"
GOLDEN = REPO_ROOT / "tests" / "golden" / "cookbook_fingerprints.json"


def check_exports(scenario: str, out_dir: Path) -> None:
    """Export + validate the Chrome trace and Prometheus snapshot."""
    spec = load_scenario(SCENARIOS / f"{scenario}.json")
    spec = dataclasses.replace(spec, observability=ObsConfig(enabled=True))
    data = run_scenario(spec).result.obs

    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / f"{scenario}.trace.json"
    trace_text = export_chrome_trace(data)
    trace_path.write_text(trace_text, encoding="utf-8")
    validate_json(json.loads(trace_text), json.loads(SCHEMA.read_text(encoding="utf-8")))
    logger.info("chrome trace validates against %s: %s",
                SCHEMA.relative_to(REPO_ROOT), trace_path)

    prom_path = out_dir / f"{scenario}.prom.txt"
    prom_path.write_text(export_prometheus(data), encoding="utf-8")
    logger.info("prometheus snapshot written: %s", prom_path)

    spans = export_spans(data)
    if export_spans(parse_spans(spans)) != spans:
        raise AssertionError("repro-spans/v1 export does not round-trip")
    (out_dir / f"{scenario}.spans.jsonl").write_text(spans, encoding="utf-8")
    logger.info("spans round-trip byte-identical (%d events)", len(data.events))


def check_analysis(scenario: str, alerts_scenario: str, out_dir: Path) -> None:
    """Same-seed zero diff, phase-sum invariant, and alert schema validation."""
    out_dir.mkdir(parents=True, exist_ok=True)

    spec = load_scenario(SCENARIOS / f"{scenario}.json")
    spec = dataclasses.replace(spec, observability=ObsConfig(enabled=True))
    first = run_scenario(spec).result.obs
    second = run_scenario(spec).result.obs

    diff = diff_runs(first, second)
    (out_dir / f"{scenario}.diff.txt").write_text(
        format_run_diff_report(diff) + "\n", encoding="utf-8"
    )
    if not diff.is_zero:
        raise AssertionError(
            f"same-seed recordings of {scenario!r} do not diff to zero"
        )
    logger.info("same-seed diff is zero: %s", scenario)

    report = decompose_requests(first)
    for request in report.requests:
        total = fsum(request.phases.values())
        if abs(total - request.e2e_s) > 1e-9:
            raise AssertionError(
                f"phase decomposition of request {request.request_id!r} sums "
                f"to {total!r}, not its end-to-end latency {request.e2e_s!r}"
            )
    (out_dir / f"{scenario}.critical-path.txt").write_text(
        format_critical_path_report(report) + "\n", encoding="utf-8"
    )
    logger.info("phase decomposition sums to end-to-end latency "
                "(%d finished requests)", len(report.requests))

    alerts_spec = load_scenario(SCENARIOS / f"{alerts_scenario}.json")
    alerts_spec = dataclasses.replace(
        alerts_spec, observability=ObsConfig(enabled=True)
    )
    alerts_data = run_scenario(alerts_spec).result.obs
    slos = {
        tenant.name: tenant.slo_latency_s for tenant in alerts_spec.tenants
        if tenant.slo_latency_s is not None
    }
    alert_report = evaluate_alerts(alerts_data, DEFAULT_ALERT_RULES, slos=slos)
    (out_dir / f"{alerts_scenario}.alerts.txt").write_text(
        format_alerts_report(alert_report) + "\n", encoding="utf-8"
    )
    export = export_alerts(alert_report)
    alerts_path = out_dir / f"{alerts_scenario}.alerts.jsonl"
    alerts_path.write_text(export, encoding="utf-8")
    schema = json.loads(ALERTS_SCHEMA.read_text(encoding="utf-8"))
    for number, line in enumerate(export.splitlines(), start=1):
        validate_json(json.loads(line), schema, path=f"line {number}")
    logger.info("repro-alerts/v1 validates against %s: %s (%d transitions)",
                ALERTS_SCHEMA.relative_to(REPO_ROOT), alerts_path,
                len(alert_report.events))


def check_fingerprints() -> list[str]:
    """Disabled-path fingerprints vs the golden seed file; returns mismatches."""
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    mismatches = []
    for path in sorted(SCENARIOS.glob("*.json")):
        for shards in (1, 4):
            key = f"{path.stem}@shards={shards}"
            spec = dataclasses.replace(load_scenario(path), shards=shards)
            fingerprint = json.loads(json.dumps(scenario_fingerprint(run_scenario(spec))))
            if golden.get(key) != fingerprint:
                mismatches.append(key)
                logger.error("fingerprint drifted from the seed: %s", key)
            else:
                logger.debug("fingerprint matches the seed: %s", key)
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="chaos_tiered_recovery",
                        help="cookbook scenario stem to export (default: the "
                             "chaos one, so fault events are exercised)")
    parser.add_argument("--out", default="build/obs-exports",
                        help="directory the exports are written to (under the "
                             "gitignored build/ tree by default)")
    parser.add_argument("--alerts-scenario", default="chaos_resilience_policies",
                        help="cookbook scenario stem the burn-rate alert "
                             "evaluation runs on (default: the resilience "
                             "one, so SLO misses actually occur)")
    parser.add_argument("--skip-fingerprints", action="store_true",
                        help="skip the (slower) disabled-path fingerprint sweep")
    parser.add_argument("--log-level", default="info", choices=LOG_LEVELS)
    args = parser.parse_args(argv)
    configure(args.log_level)

    check_exports(args.scenario, Path(args.out))
    check_analysis(args.scenario, args.alerts_scenario, Path(args.out))
    if not args.skip_fingerprints:
        mismatches = check_fingerprints()
        if mismatches:
            logger.error("obs-check: %d fingerprint(s) drifted: %s",
                         len(mismatches), ", ".join(mismatches))
            return 1
    print("obs-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
