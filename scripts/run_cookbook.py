#!/usr/bin/env python
"""Smoke-run every CLI example in the scenario cookbook (``make scenarios``).

Extracts each ``python -m repro.cli ...`` line from the fenced code blocks of
``docs/SCENARIOS.md`` and executes it from the repository root with
``PYTHONPATH=src``, in file order (so a ``scenario run --record`` precedes the
``scenario replay`` that consumes its trace).  Any non-zero exit fails the
whole run — a cookbook example that stops working fails CI, not a reader.

Run with::

    python scripts/run_cookbook.py            # quiet, prints one line per command
    python scripts/run_cookbook.py --verbose  # stream each command's output
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
from docs_check import CLI_LINE, FENCED_BLOCK  # noqa: E402  (shared extraction rules)
from repro.obs.logging import LOG_LEVELS, configure, get_logger  # noqa: E402

logger = get_logger("scripts.run_cookbook")

REPO_ROOT = Path(__file__).resolve().parent.parent
COOKBOOK = REPO_ROOT / "docs" / "SCENARIOS.md"


def cookbook_commands() -> list[str]:
    """The cookbook's CLI lines, in document order.

    Uses the same fenced-block and CLI-line patterns as ``docs_check.py``, so
    every command this script runs is exactly the set that check validates.
    """
    text = COOKBOOK.read_text(encoding="utf-8")
    commands = []
    for block in FENCED_BLOCK.findall(text):
        for match in CLI_LINE.finditer(block):
            commands.append(f"python -m repro.cli {match.group(1)}")
    return commands


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true",
                        help="stream each command's output instead of capturing it")
    parser.add_argument("--log-level", default="info", choices=LOG_LEVELS,
                        help="structured logging level for progress lines")
    args = parser.parse_args()
    configure(args.log_level)

    commands = cookbook_commands()
    if not commands:
        logger.error("no CLI lines found in %s", COOKBOOK)
        return 1

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for index, command in enumerate(commands, start=1):
        logger.info("[%d/%d] %s", index, len(commands), command)
        completed = subprocess.run(
            command, shell=True, cwd=REPO_ROOT, env=env,
            capture_output=not args.verbose, text=True,
        )
        if completed.returncode != 0:
            logger.error("FAILED (exit %d): %s", completed.returncode, command)
            if not args.verbose and completed.stderr:
                print(completed.stderr, file=sys.stderr)
            return 1
    print(f"run-cookbook: OK ({len(commands)} command(s) ran)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
