#!/usr/bin/env python
"""Perf-harness driver: run, compare, and bench-sweep entry points.

Three subcommands (see ``docs/PERFORMANCE.md`` for the workflow):

* ``run``     — run the pinned suite and write ``BENCH_<label>.json``
  (wraps :func:`repro.perf.harness.run_harness`);
* ``compare`` — compare a new bench file against a committed baseline and
  exit non-zero on an events-per-second regression beyond the tolerance.
  ``--normalize`` divides each case's events/s by the geometric mean of the
  file's cases first, comparing the *shape* of the profile rather than raw
  machine speed — the right mode on CI, where runner hardware varies;
* ``sweep``   — the ``make bench-sweep`` entry: time the engine-comparison
  fan-out serially and with N workers, assert the results are byte-identical,
  and (optionally) enforce a minimum speedup when the machine actually has
  the cores for it.

Run with::

    PYTHONPATH=src python scripts/perf_report.py run --label pr4
    PYTHONPATH=src python scripts/perf_report.py compare BENCH_pr4.json BENCH_pr.json
    PYTHONPATH=src python scripts/perf_report.py sweep --workers 4
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
from repro.obs.logging import LOG_LEVELS, configure, get_logger  # noqa: E402

logger = get_logger("scripts.perf_report")


def _load_bench(path: str) -> dict:
    file = Path(path)
    if not file.exists():
        raise SystemExit(f"perf_report: bench file not found: {path}")
    return json.loads(file.read_text(encoding="utf-8"))


def _events_per_s(report: dict) -> dict[str, float]:
    return {case["name"]: case["events_per_s"] for case in report.get("cases", [])}


def _normalized(rates: dict[str, float], shared: list[str]) -> dict[str, float]:
    """Each case's events/s divided by the geometric mean over ``shared``."""
    log_sum = sum(math.log(rates[name]) for name in shared if rates[name] > 0)
    mean = math.exp(log_sum / len(shared)) if shared else 1.0
    return {name: rates[name] / mean for name in shared}


def cmd_run(args: argparse.Namespace) -> int:
    from repro.perf.harness import format_harness_report, run_harness

    report = run_harness(
        args.label,
        scale=args.scale,
        workers=args.workers,
        out_dir=args.out,
        memo_comparison=not args.no_memo_comparison,
        parallel_check=not args.no_parallel_check,
        baseline=args.baseline,
    )
    print(format_harness_report(report))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = _load_bench(args.baseline)
    new = _load_bench(args.new)
    base_rates = _events_per_s(baseline)
    new_rates = _events_per_s(new)
    shared = [name for name in base_rates if name in new_rates]
    if not shared:
        logger.error("no shared cases between the two bench files")
        return 1
    if args.normalize:
        base_rates = _normalized(base_rates, shared)
        new_rates = _normalized(new_rates, shared)

    failures = []
    print(f"comparing {args.new} against baseline {args.baseline} "
          f"(max regression {args.max_regression:.0%}"
          f"{', normalized' if args.normalize else ''}):")
    for name in shared:
        old_rate, new_rate = base_rates[name], new_rates[name]
        change = new_rate / old_rate - 1.0 if old_rate > 0 else 0.0
        marker = "ok"
        if change < -args.max_regression:
            marker = "REGRESSION"
            failures.append(name)
        print(f"  {name:<16} {old_rate:>12.1f} -> {new_rate:>12.1f} events/s "
              f"({change:+.1%}) {marker}")
    if failures:
        _print_phase_attribution(failures, new, baseline)
        logger.error("events/s regression in: %s", ", ".join(failures))
        return 1
    print("perf_report: no regression")
    return 0


def _print_phase_attribution(failures: list, new: dict, baseline: dict) -> None:
    """Name the hot-loop phase that grew in each regressed case.

    Prefers the new file's recorded ``phase_deltas`` section (written by
    ``run --baseline``); recomputes from the two files' per-case profiler
    phases when absent.
    """
    from repro.obs.analysis import diff_bench_phases

    deltas = (new.get("phase_deltas") or {}).get("cases")
    if deltas is None:
        deltas = diff_bench_phases(new, baseline)
    for name in failures:
        entry = deltas.get(name)
        if entry is None or entry.get("top_regressed") is None:
            print(f"  {name}: no profiled phase data to attribute")
            continue
        phase = entry["top_regressed"]
        stats = entry["phases"][phase]
        print(f"  {name}: phase {phase!r} grew from "
              f"{stats['baseline_share']:.1%} to {stats['share']:.1%} of the "
              f"hot loop")


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.perf.harness import measure_parallel

    result = measure_parallel(args.scale, workers=args.workers)
    print(f"bench-sweep ({result['tasks']} engine x rate simulations, "
          f"scale={args.scale}):")
    print(f"  serial   : {result['serial_wall_s']:.2f}s")
    print(f"  {result['workers']} worker(s): {result['parallel_wall_s']:.2f}s "
          f"({result['speedup']:.2f}x, mode={result['mode']})")
    print("  parallel results byte-identical to serial: "
          f"{result['identical']}")
    cores = os.cpu_count() or 1
    if args.min_speedup is not None:
        if cores < args.workers:
            print(f"  (machine has {cores} core(s) < {args.workers} workers; "
                  "speedup floor not enforced)")
        elif result["speedup"] < args.min_speedup:
            logger.error("sweep speedup %.2fx is below the %.2fx floor",
                         result["speedup"], args.min_speedup)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="perf_report",
        description="Run / compare the perf-regression harness",
    )
    parser.add_argument("--log-level", default="warning", choices=LOG_LEVELS,
                        help="structured logging level for diagnostics")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run the pinned suite, write BENCH_<label>.json")
    run_parser.add_argument("--label", default="local")
    run_parser.add_argument("--scale", default="small", choices=["tiny", "small", "paper"])
    run_parser.add_argument("--workers", type=int, default=4)
    run_parser.add_argument("--out", default=".")
    run_parser.add_argument("--no-memo-comparison", action="store_true")
    run_parser.add_argument("--no-parallel-check", action="store_true")
    run_parser.add_argument("--baseline", default=None, metavar="BENCH_JSON",
                            help="earlier BENCH file to compute the "
                                 "phase_deltas section against")
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare", help="fail on events/s regression")
    compare_parser.add_argument("baseline", help="committed baseline BENCH file")
    compare_parser.add_argument("new", help="freshly produced BENCH file")
    compare_parser.add_argument("--max-regression", type=float, default=0.20,
                                help="tolerated fractional events/s drop per case")
    compare_parser.add_argument("--normalize", action="store_true",
                                help="compare machine-speed-normalized profiles "
                                     "(recommended across different hardware)")
    compare_parser.set_defaults(func=cmd_compare)

    sweep_parser = sub.add_parser("sweep", help="serial vs parallel engine sweep")
    sweep_parser.add_argument("--scale", default="small", choices=["tiny", "small", "paper"])
    sweep_parser.add_argument("--workers", type=int, default=4)
    sweep_parser.add_argument("--min-speedup", type=float, default=None,
                              help="fail below this speedup (only enforced when "
                                   "the machine has at least --workers cores)")
    sweep_parser.set_defaults(func=cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
