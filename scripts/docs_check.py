#!/usr/bin/env python
"""Documentation consistency check (the Makefile's ``docs-check`` target).

Fails (exit code 1) when the documentation drifts from the code:

* every ``repro.*`` dotted name mentioned in README.md or docs/*.md must
  resolve to an importable module, or to an attribute of one;
* every ``python -m repro.cli <subcommand> --flag ...`` line inside a fenced
  code block must name a real subcommand and real flags — walking *nested*
  subcommand trees (``scenario run``) to the deepest parser, so each flag is
  checked against the parser that actually owns it;
* every repo-relative file path a CLI line references (config files, traces)
  must exist, so cookbook commands keep working as files move;
* every relative file link / path reference checked must exist;
* no generated artefact (compiled bytecode, the ``build/`` output tree,
  obs export files) may be tracked by git — the guard that keeps the PR-0
  cleanup permanent;
* the generated field tables in docs/SPEC.md must match what
  :mod:`repro.spec.docgen` renders from the model declarations — regenerate
  with ``--update-spec`` after changing a spec model.

Run with::

    PYTHONPATH=src python scripts/docs_check.py
"""

from __future__ import annotations

import argparse
import importlib
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

DOTTED_NAME = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
FENCED_BLOCK = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)
CLI_LINE = re.compile(r"python -m repro\.cli\s+(.*)")
MD_LINK = re.compile(r"\]\(([^)#][^)]*)\)")


def check_dotted_names(text: str, errors: list[str], *, source: str) -> None:
    """Verify every ``repro.*`` dotted name is a module or module attribute."""
    for name in sorted(set(DOTTED_NAME.findall(text))):
        stripped = name.rstrip(".")
        try:
            importlib.import_module(stripped)
            continue
        except ImportError:
            pass
        module_name, _, attribute = stripped.rpartition(".")
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            errors.append(f"{source}: {stripped!r} is not an importable module")
            continue
        if not hasattr(module, attribute):
            errors.append(
                f"{source}: {module_name!r} has no attribute {attribute!r} "
                f"(referenced as {stripped!r})"
            )


def _subparsers_action(parser: argparse.ArgumentParser) -> argparse._SubParsersAction | None:
    """The parser's subcommand action, or None for a leaf parser."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    return None


def _check_cli_tokens(tokens: list[str], parser: argparse.ArgumentParser,
                      errors: list[str], *, source: str, path: str) -> None:
    """Walk one CLI line down the (possibly nested) subcommand tree."""
    subparsers = _subparsers_action(parser)
    if subparsers is not None:
        if not tokens:
            errors.append(f"{source}: CLI line {path!r} is missing a subcommand")
            return
        subcommand = tokens[0]
        subparser = subparsers.choices.get(subcommand)
        if subparser is None:
            errors.append(
                f"{source}: unknown CLI subcommand {(path + ' ' + subcommand).strip()!r}"
            )
            return
        _check_cli_tokens(tokens[1:], subparser, errors, source=source,
                          path=(path + " " + subcommand).strip())
        return
    known_flags = {
        option for action in parser._actions for option in action.option_strings
    }
    for token in tokens:
        if token.startswith("--"):
            flag = token.split("=", 1)[0]
            if flag not in known_flags:
                errors.append(f"{source}: subcommand {path!r} has no flag {flag!r}")
        elif "/" in token and not token.startswith(("/", "-")):
            # A repo-relative file argument (e.g. a scenario config) must exist;
            # absolute paths (/tmp output files) are runtime artefacts, skipped.
            if not (REPO_ROOT / token).exists():
                errors.append(
                    f"{source}: CLI line {path!r} references missing file {token!r}"
                )


def check_cli_lines(text: str, errors: list[str], *, source: str) -> None:
    """Verify CLI invocations in fenced code blocks against the real parser."""
    from repro.cli import build_parser

    parser = build_parser()
    for block in FENCED_BLOCK.findall(text):
        for match in CLI_LINE.finditer(block):
            tokens = match.group(1).split()
            _check_cli_tokens(tokens, parser, errors, source=source, path="")


def check_links(text: str, errors: list[str], *, source: str, base: Path) -> None:
    """Verify relative markdown links point at files that exist."""
    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (base / target).exists():
            errors.append(f"{source}: broken relative link {target!r}")


#: Git pathspecs of machine-generated artefacts that must never be tracked:
#: compiled bytecode, the ``build/`` output tree (obs exports, perf reports),
#: and the export files the obs tooling writes wherever ``--out`` points.
GENERATED_PATHSPECS = [
    "*.pyc", "*.pyo", "*__pycache__*",
    "build/*", "obs-exports/*",
    "*.trace.json", "*.prom.txt", "*.spans.jsonl",
]


def check_no_tracked_artifacts(errors: list[str]) -> None:
    """Fail when git tracks generated artefacts (bytecode, exports, build/).

    These are machine-local run outputs; a tracked one means a commit slipped
    past ``.gitignore`` (as happened before the PR-0 cleanup).  Skipped
    silently when git is unavailable (e.g. a source tarball).
    """
    try:
        listing = subprocess.run(
            ["git", "ls-files", "--", *GENERATED_PATHSPECS],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return
    if listing.returncode != 0:
        return
    for path in listing.stdout.splitlines():
        if path:
            errors.append(f"generated artefact is tracked by git: {path!r}")


def check_spec_tables(errors: list[str]) -> None:
    """Fail when docs/SPEC.md's generated tables drift from the spec models."""
    from repro.spec.docgen import render_spec_doc

    spec_doc = REPO_ROOT / "docs" / "SPEC.md"
    if not spec_doc.exists():
        return  # reported as a missing DOC_FILES entry already
    current = spec_doc.read_text(encoding="utf-8")
    try:
        expected = render_spec_doc(current)
    except ValueError as exc:
        errors.append(f"docs/SPEC.md: {exc}")
        return
    if current != expected:
        errors.append(
            "docs/SPEC.md: generated spec tables are out of date — run "
            "`PYTHONPATH=src python scripts/docs_check.py --update-spec`"
        )


def update_spec_tables() -> int:
    """Regenerate docs/SPEC.md's tables in place (the ``--update-spec`` mode)."""
    from repro.spec.docgen import render_spec_doc

    spec_doc = REPO_ROOT / "docs" / "SPEC.md"
    current = spec_doc.read_text(encoding="utf-8")
    updated = render_spec_doc(current)
    if updated == current:
        print("docs-check: docs/SPEC.md already up to date")
        return 0
    spec_doc.write_text(updated, encoding="utf-8")
    print("docs-check: regenerated spec tables in docs/SPEC.md")
    return 0


def main(argv: list[str] | None = None) -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--update-spec", action="store_true",
                     help="regenerate docs/SPEC.md's field tables and exit")
    args = cli.parse_args(argv)
    if args.update_spec:
        return update_spec_tables()

    errors: list[str] = []
    checked = 0
    check_no_tracked_artifacts(errors)
    check_spec_tables(errors)
    for path in DOC_FILES:
        if not path.exists():
            errors.append(f"missing documentation file: {path.relative_to(REPO_ROOT)}")
            continue
        text = path.read_text(encoding="utf-8")
        source = str(path.relative_to(REPO_ROOT))
        check_dotted_names(text, errors, source=source)
        check_cli_lines(text, errors, source=source)
        check_links(text, errors, source=source, base=path.parent)
        checked += 1
    if errors:
        print(f"docs-check: {len(errors)} problem(s) found:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print(f"docs-check: OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
