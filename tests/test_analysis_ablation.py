"""Tests for the Figure 10 MIL ablation."""

import pytest

from repro.analysis.ablation import mil_ablation
from repro.baselines import chunked_prefill_spec, paged_attention_spec


@pytest.fixture(scope="module")
def ablation(qwen_32b, a100_gpu):
    return mil_ablation(
        qwen_32b, a100_gpu,
        vanilla_spec=paged_attention_spec(),
        chunked_spec=chunked_prefill_spec(),
    )


def test_ablation_has_five_stages(ablation):
    names = [step.name for step in ablation]
    assert names == [
        "vanilla-vllm",
        "chunked-prefill",
        "hybrid-chunking",
        "hybrid+preallocation",
        "hybrid+in-place",
    ]


def test_each_optimisation_improves_or_maintains_mil(ablation):
    hybrid_steps = ablation[2:]
    values = [step.max_input_length for step in hybrid_steps]
    assert values == sorted(values)
    assert values[0] > ablation[0].max_input_length  # chunking alone beats vanilla


def test_final_stage_improvement_is_large(ablation):
    """Figure 10: the full hybrid pipeline is ~8x the vanilla MIL on A100/Qwen-32B."""
    final = ablation[-1]
    assert final.improvement_over_vanilla > 4.0


def test_only_chunked_prefill_hurts_throughput(ablation):
    flags = {step.name: step.hurts_throughput for step in ablation}
    assert flags["chunked-prefill"] is True
    assert sum(flags.values()) == 1


def test_improvement_is_relative_to_vanilla(ablation):
    vanilla = ablation[0]
    assert vanilla.improvement_over_vanilla == 1.0
    for step in ablation[1:]:
        assert step.improvement_over_vanilla == pytest.approx(
            step.max_input_length / vanilla.max_input_length
        )
