"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "llama-3.1-8b" in output
    assert "NVIDIA H100" in output
    assert "prefillonly" in output


def test_workload_command(capsys):
    assert main(["workload", "credit-verification"]) == 0
    output = capsys.readouterr().out
    assert "credit-verification" in output
    assert "total_tokens" in output


def test_mil_command_subset(capsys):
    code = main(["mil", "--engines", "prefillonly", "paged-attention", "--setups", "a100"])
    assert code == 0
    output = capsys.readouterr().out
    assert "prefillonly" in output
    assert "a100" in output
    assert "max_input_length" in output


def test_sweep_command_small(capsys):
    code = main([
        "sweep", "--engine", "prefillonly", "--setup", "h100",
        "--workload", "post-recommendation", "--num-users", "2", "--qps", "2.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "mean_latency_s" in output


def test_compare_command_small(capsys):
    code = main([
        "compare", "--setup", "l4", "--workload", "post-recommendation",
        "--num-users", "2", "--qps", "3.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "prefillonly" in output
    assert "tensor-parallel" in output


def test_unknown_engine_rejected():
    with pytest.raises(SystemExit):
        main(["sweep", "--engine", "sglang"])


def test_fleet_command_small(capsys):
    code = main([
        "fleet", "--setup", "h100", "--workload", "post-recommendation",
        "--num-users", "4", "--replicas", "2", "--qps", "3.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fleet summary" in output
    assert "prefillonly-0" in output


def test_fleet_command_with_admission_and_autoscaling(capsys):
    code = main([
        "fleet", "--setup", "h100", "--workload", "post-recommendation",
        "--num-users", "4", "--replicas", "1", "--router", "prefix-affinity",
        "--qps", "8.0", "--max-queue-depth", "4",
        "--autoscale-max", "3", "--scale-up-rps", "1.0",
        "--autoscale-window", "2.0", "--autoscale-cooldown", "2.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fleet summary" in output


def test_fleet_malformed_faults_file_exits_2_with_json_path(tmp_path, capsys):
    schedule = tmp_path / "faults.json"
    schedule.write_text(json.dumps(
        {"events": [{"kind": "crash", "replica": 0}]}
    ))
    code = main([
        "fleet", "--setup", "h100", "--workload", "post-recommendation",
        "--num-users", "2", "--replicas", "2", "--qps", "3.0",
        "--faults", str(schedule),
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "prefillonly: error:" in err
    assert "faults.events[0]" in err
    assert "missing required key 'at'" in err


def test_scenario_run_malformed_config_exits_2_with_json_path(tmp_path, capsys):
    config = tmp_path / "scenario.json"
    config.write_text(json.dumps({
        "name": "bad",
        "tenants": [{
            "name": "t", "workload": "post-recommendation",
            "arrival": "poisson", "arrival_params": {"rate": 2.0},
        }],
        "kv_tiers": {"enabled": True, "promotion_threshold": 0},
    }))
    code = main(["scenario", "run", "--config", str(config)])
    err = capsys.readouterr().err
    assert code == 2
    assert "prefillonly: error:" in err
    assert "kv_tiers.promotion_threshold" in err


def test_scenario_run_unknown_key_exits_2_naming_the_key(tmp_path, capsys):
    config = tmp_path / "scenario.json"
    config.write_text(json.dumps({"name": "bad", "tenants": [], "repliacs": 2}))
    code = main(["scenario", "run", "--config", str(config)])
    err = capsys.readouterr().err
    assert code == 2
    assert "prefillonly: error:" in err
    assert "repliacs" in err


def test_spec_overview_lists_every_model(capsys):
    from repro.spec.models import DOCUMENTED_MODELS

    assert main(["spec"]) == 0
    output = capsys.readouterr().out
    for cls in DOCUMENTED_MODELS:
        assert cls.__name__ in output


def test_spec_single_model_prints_field_table(capsys):
    assert main(["spec", "--model", "KVTiersSpec"]) == 0
    output = capsys.readouterr().out
    assert "promotion_threshold" in output
    assert "demote_on_evict" in output
