"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "llama-3.1-8b" in output
    assert "NVIDIA H100" in output
    assert "prefillonly" in output


def test_workload_command(capsys):
    assert main(["workload", "credit-verification"]) == 0
    output = capsys.readouterr().out
    assert "credit-verification" in output
    assert "total_tokens" in output


def test_mil_command_subset(capsys):
    code = main(["mil", "--engines", "prefillonly", "paged-attention", "--setups", "a100"])
    assert code == 0
    output = capsys.readouterr().out
    assert "prefillonly" in output
    assert "a100" in output
    assert "max_input_length" in output


def test_sweep_command_small(capsys):
    code = main([
        "sweep", "--engine", "prefillonly", "--setup", "h100",
        "--workload", "post-recommendation", "--num-users", "2", "--qps", "2.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "mean_latency_s" in output


def test_compare_command_small(capsys):
    code = main([
        "compare", "--setup", "l4", "--workload", "post-recommendation",
        "--num-users", "2", "--qps", "3.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "prefillonly" in output
    assert "tensor-parallel" in output


def test_unknown_engine_rejected():
    with pytest.raises(SystemExit):
        main(["sweep", "--engine", "sglang"])


def test_fleet_command_small(capsys):
    code = main([
        "fleet", "--setup", "h100", "--workload", "post-recommendation",
        "--num-users", "4", "--replicas", "2", "--qps", "3.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fleet summary" in output
    assert "prefillonly-0" in output


def test_fleet_command_with_admission_and_autoscaling(capsys):
    code = main([
        "fleet", "--setup", "h100", "--workload", "post-recommendation",
        "--num-users", "4", "--replicas", "1", "--router", "prefix-affinity",
        "--qps", "8.0", "--max-queue-depth", "4",
        "--autoscale-max", "3", "--scale-up-rps", "1.0",
        "--autoscale-window", "2.0", "--autoscale-cooldown", "2.0",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fleet summary" in output
