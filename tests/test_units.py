"""Unit-helper tests."""

from repro import units


def test_gib_round_trip():
    assert units.gib(1) == 1 << 30
    assert units.to_gib(units.gib(24)) == 24


def test_prefixed_byte_constants_are_consistent():
    assert units.GIB == 1024 * units.MIB == 1024 * 1024 * units.KIB
    assert units.GB == 1000 * units.MB == 1000 * 1000 * units.KB


def test_rate_helpers():
    assert units.tflops(1) == 1e12
    assert units.gbps(2) == 2e9


def test_time_helpers():
    assert units.ms(250) == 0.25
    assert units.to_ms(0.5) == 500
