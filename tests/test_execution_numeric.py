"""Numerical validation of hybrid prefilling on the micro-transformer.

These tests are the executable version of the paper's §4.2 correctness claim:
evaluating position-wise layers chunk-by-chunk cannot change the result, while
it does change (reduce) the peak memory footprint.
"""

import numpy as np
import pytest

from repro.execution.chunked_linear import ChunkedExecutionOptions
from repro.execution.numeric import MicroTransformer, MicroTransformerConfig
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def model():
    return MicroTransformer(MicroTransformerConfig(), seed=42)


@pytest.fixture(scope="module")
def tokens():
    rng = np.random.default_rng(7)
    return rng.integers(0, MicroTransformerConfig().vocab_size, size=200).tolist()


def test_hybrid_prefill_matches_full_prefill(model, tokens):
    full = model.prefill_full(tokens)
    hybrid = model.prefill_hybrid(tokens, options=ChunkedExecutionOptions(chunk_tokens=33))
    np.testing.assert_allclose(hybrid.logits, full.logits, rtol=1e-9, atol=1e-9)


def test_chunked_prefill_matches_full_prefill(model, tokens):
    full = model.prefill_full(tokens)
    chunked = model.prefill_chunked(tokens, chunk_tokens=48)
    np.testing.assert_allclose(chunked.logits, full.logits, rtol=1e-9, atol=1e-9)


def test_hybrid_result_independent_of_chunk_size(model, tokens):
    a = model.prefill_hybrid(tokens, options=ChunkedExecutionOptions(chunk_tokens=17))
    b = model.prefill_hybrid(tokens, options=ChunkedExecutionOptions(chunk_tokens=128))
    np.testing.assert_allclose(a.logits, b.logits, rtol=1e-9, atol=1e-9)


def test_hybrid_without_preallocation_still_correct(model, tokens):
    full = model.prefill_full(tokens)
    naive = model.prefill_hybrid(
        tokens, options=ChunkedExecutionOptions(chunk_tokens=33, preallocate_output=False)
    )
    np.testing.assert_allclose(naive.logits, full.logits, rtol=1e-9, atol=1e-9)


def test_hybrid_peak_memory_below_full(model):
    rng = np.random.default_rng(1)
    long_tokens = rng.integers(0, 512, size=1024).tolist()
    full = model.prefill_full(long_tokens)
    hybrid = model.prefill_hybrid(long_tokens, options=ChunkedExecutionOptions(chunk_tokens=64))
    assert hybrid.peak_bytes < full.peak_bytes


def test_hybrid_discards_kv_while_chunked_retains_it(model):
    rng = np.random.default_rng(2)
    long_tokens = rng.integers(0, 512, size=1024).tolist()
    chunked = model.prefill_chunked(long_tokens, chunk_tokens=64)
    hybrid = model.prefill_hybrid(long_tokens, options=ChunkedExecutionOptions(chunk_tokens=64))
    # Chunked prefilling keeps the KV cache of every layer for the whole pass.
    chunked_kv_tags = [t for t in chunked.tracker.live_tags() if t.startswith("kv.layer")]
    hybrid_kv_tags = [t for t in hybrid.tracker.live_tags() if t.startswith("kv.layer")]
    assert len(chunked_kv_tags) == model.config.num_layers
    assert hybrid_kv_tags == []


def test_hybrid_retain_kv_option_keeps_all_layers(model, tokens):
    result = model.prefill_hybrid(tokens, retain_kv=True)
    kv_tags = [t for t in result.tracker.live_tags() if t.startswith("kv.layer")]
    assert len(kv_tags) == model.config.num_layers


def test_constrained_probabilities_sum_to_one(model, tokens):
    result = model.prefill_full(tokens)
    probabilities = result.constrained_probabilities([3, 17])
    assert sum(probabilities.values()) == pytest.approx(1.0)
    assert set(probabilities) == {3, 17}
    assert all(0.0 <= p <= 1.0 for p in probabilities.values())


def test_constrained_probabilities_identical_across_paths(model, tokens):
    """The prefill-only application contract: the Yes/No score is path-independent."""
    full = model.prefill_full(tokens).constrained_probabilities([1, 2])
    hybrid = model.prefill_hybrid(tokens).constrained_probabilities([1, 2])
    assert full[1] == pytest.approx(hybrid[1], rel=1e-9)


def test_constrained_probabilities_empty_list_rejected(model, tokens):
    result = model.prefill_full(tokens)
    with pytest.raises(ValueError):
        result.constrained_probabilities([])


def test_different_seeds_produce_different_models(tokens):
    a = MicroTransformer(seed=1).prefill_full(tokens)
    b = MicroTransformer(seed=2).prefill_full(tokens)
    assert not np.allclose(a.logits, b.logits)


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        MicroTransformerConfig(num_heads=6, num_kv_heads=4)
    with pytest.raises(ConfigurationError):
        MicroTransformerConfig(hidden_size=100, num_heads=8, head_dim=8)


def test_invalid_chunk_size_rejected(model, tokens):
    with pytest.raises(ValueError):
        model.prefill_chunked(tokens, chunk_tokens=0)
