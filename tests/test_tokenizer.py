"""Tests for the synthetic tokenizer used by the examples."""

from repro.workloads.tokenizer import SyntheticTokenizer


def test_encode_is_deterministic():
    tokenizer = SyntheticTokenizer()
    text = "The quick brown fox jumps over the lazy dog."
    assert tokenizer.encode(text) == tokenizer.encode(text)


def test_count_matches_encode_length():
    tokenizer = SyntheticTokenizer()
    text = "User clicked on twelve articles about distributed systems last week!"
    assert tokenizer.count_tokens(text) == len(tokenizer.encode(text))


def test_token_ids_within_vocab():
    tokenizer = SyntheticTokenizer(vocab_size=1000)
    tokens = tokenizer.encode("hello world, this is a tokenizer test")
    assert all(0 <= token < 1000 for token in tokens)


def test_longer_text_produces_more_tokens():
    tokenizer = SyntheticTokenizer()
    short = tokenizer.count_tokens("one sentence.")
    long = tokenizer.count_tokens("one sentence. " * 50)
    assert long > 20 * short


def test_subword_expansion_roughly_matches_factor():
    tokenizer = SyntheticTokenizer(subwords_per_word=1.3)
    words = ["engineering"] * 300
    text = " ".join(words)
    tokens = tokenizer.count_tokens(text)
    assert 300 < tokens < 300 * 1.6


def test_different_texts_differ():
    tokenizer = SyntheticTokenizer()
    assert tokenizer.encode("alpha beta gamma") != tokenizer.encode("alpha beta delta")


def test_empty_text():
    tokenizer = SyntheticTokenizer()
    assert tokenizer.encode("") == []
    assert tokenizer.count_tokens("") == 0
