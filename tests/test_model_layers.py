"""Tests for the layer stack and the Figure-4 MLP tensor report."""

import pytest

from repro.model.config import LLAMA_3_1_8B
from repro.model.layers import LayerKind, build_layer_stack, mlp_tensor_report


def test_layer_stack_has_expected_length():
    stack = build_layer_stack(LLAMA_3_1_8B)
    # embedding + 4 entries per block + final norm + lm head
    assert len(stack) == 1 + 4 * LLAMA_3_1_8B.num_layers + 2


def test_layer_stack_without_lm_head():
    stack = build_layer_stack(LLAMA_3_1_8B, include_lm_head=False)
    assert stack[-1].kind is LayerKind.NORM
    assert all(spec.kind is not LayerKind.LM_HEAD for spec in stack)


def test_attention_layers_are_not_chunkable():
    stack = build_layer_stack(LLAMA_3_1_8B)
    attention = [spec for spec in stack if spec.kind is LayerKind.ATTENTION]
    assert len(attention) == LLAMA_3_1_8B.num_layers
    assert all(not spec.is_chunkable for spec in attention)


def test_all_non_attention_layers_are_chunkable():
    stack = build_layer_stack(LLAMA_3_1_8B)
    for spec in stack:
        if spec.kind is not LayerKind.ATTENTION:
            assert spec.is_chunkable


def test_layer_indices_are_consecutive():
    stack = build_layer_stack(LLAMA_3_1_8B)
    assert [spec.index for spec in stack] == list(range(len(stack)))


def test_mlp_peak_intermediate_width():
    stack = build_layer_stack(LLAMA_3_1_8B)
    mlp = next(spec for spec in stack if spec.kind is LayerKind.MLP)
    assert mlp.peak_intermediate_width == 2 * LLAMA_3_1_8B.intermediate_size


def test_figure4_ratios():
    """Figure 4: intermediate_1 is 14x one-layer KV, intermediate_2 is 7x."""
    report = mlp_tensor_report(LLAMA_3_1_8B)
    assert report.gate_up_vs_one_layer_kv == pytest.approx(14.0)
    assert report.down_input_vs_one_layer_kv == pytest.approx(7.0)
    assert report.input_elements == 4096
    assert report.gate_up_elements == 28_672
    assert report.down_input_elements == 14_336


def test_figure4_rows_scale_with_tokens():
    report = mlp_tensor_report(LLAMA_3_1_8B)
    rows = report.rows(num_tokens=32_768, bytes_per_element=2)
    by_name = {row["tensor"]: row for row in rows}
    gate_up = by_name["intermediate_1 (gate+up)"]
    assert gate_up["total_elements"] == 28_672 * 32_768
    # ~1.75 GiB for the gate+up tensor of a 32k-token prefill in bf16.
    assert 1.5 < gate_up["total_gib"] < 2.0
