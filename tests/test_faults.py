"""Fault injection & resilience: schedules, fleet failure lifecycle, metrics.

Covers the subsystem's contract end to end: typed config errors, schedule
compilation and seeded generation, crash/recover/slow/brownout/outage
semantics on a live fleet, request conservation under re-routing, warm
restore from the cluster store, and clean zeroed summaries for runs that
finish nothing (the all-crashed case).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_fleet_report, format_resilience_report
from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.errors import FaultError, FaultScheduleError, UnknownFaultError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    fault_schedule_from_dict,
    generate_crash_schedule,
)
from repro.kvcache.offload import CPUOffloadStore
from repro.kvcache.tiers import ClusterPrefixStore, TierConfig
from repro.simulation.arrival import PoissonArrivalProcess
from repro.simulation.simulator import simulate_fleet


def build_fleet(setup, trace, *, num_replicas=2, tiers=False, **kwargs):
    tier_config = None
    if tiers:
        tier_config = TierConfig(enabled=True, host_gib=1.0, cluster_gib=4.0)
    return Fleet.for_setup(
        prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=num_replicas, tier_config=tier_config, **kwargs,
    )


def arrivals(trace, *, rate=4.0, seed=0):
    return PoissonArrivalProcess(rate=rate, seed=seed).assign(list(trace.requests))


# ------------------------------------------------------------ configuration


def test_unknown_fault_kind_lists_available_names():
    with pytest.raises(UnknownFaultError) as excinfo:
        fault_schedule_from_dict({"events": [{"kind": "crsh", "replica": 0, "at": 1.0}]})
    error = excinfo.value
    assert error.available == sorted(FAULT_KINDS)
    assert "faults.events[0].kind" in str(error)
    assert "crash" in str(error)
    assert isinstance(error, FaultError)


@pytest.mark.parametrize("config, fragment", [
    ({"events": [{"kind": "crash", "replica": 0}]}, "missing required key 'at'"),
    ({"events": [{"kind": "crash", "at": 1.0}]}, "missing required key 'replica'"),
    ({"events": [{"kind": "crash", "replica": -1, "at": 1.0}]}, "non-negative"),
    ({"events": [{"kind": "crash", "replica": 0, "at": 5.0, "recover_at": 5.0}]},
     "must be after"),
    ({"events": [{"kind": "slow", "replica": 0, "at": 1.0}]}, "duration"),
    ({"events": [{"kind": "outage", "at": 1.0, "duration": 0.0}]}, "duration"),
    ({"events": [{"kind": "crash", "replica": 0, "at": 1.0, "nope": 2}]},
     "unknown keys"),
    ({"bogus": True}, "unknown keys"),
    ({"warm_restore_blocks": "many"}, "warm_restore_blocks"),
    ({"generate": {"mtbf_s": 1.0, "mttr_s": 1.0, "horizon_s": 10.0}},
     "replicas"),
    ({"generate": {"mtbf_s": -1.0, "mttr_s": 1.0, "horizon_s": 10.0,
                   "replicas": 2}}, "mtbf_s"),
], ids=[
    "missing-at", "missing-replica", "negative-replica", "recover-before-crash",
    "slow-missing-duration", "zero-duration", "unknown-event-key",
    "unknown-top-key", "bad-warm-restore", "generate-needs-replicas",
    "generate-bad-mtbf",
])
def test_malformed_schedules_raise_typed_errors(config, fragment):
    with pytest.raises(FaultScheduleError) as excinfo:
        fault_schedule_from_dict(config)
    assert fragment in str(excinfo.value)
    assert excinfo.value.path.startswith("faults")


def test_schedule_compiles_windows_and_orders_events():
    schedule = fault_schedule_from_dict({
        "events": [
            {"kind": "outage", "at": 4.0, "duration": 2.0},
            {"kind": "slow", "replica": 1, "at": 1.0, "duration": 10.0,
             "multiplier": 3.0},
            {"kind": "crash", "replica": 0, "at": 1.0, "recover_at": 2.0},
        ],
    })
    assert [(event.time, event.kind) for event in schedule] == [
        (1.0, "slow"),
        (1.0, "crash"),
        (2.0, "recover"),
        (4.0, "outage"),
        (6.0, "outage-end"),
        (11.0, "slow-end"),
    ]
    assert [event.seq for event in schedule] == list(range(len(schedule)))
    # Equal-time events keep compile order: slow (entry 1) before crash (entry 2).
    at_one = [event.kind for event in schedule if event.time == 1.0]
    assert at_one == ["slow", "crash"]


def test_overlapping_same_kind_windows_are_rejected():
    """An inner window's end would silently cancel the outer one — refuse."""
    with pytest.raises(FaultScheduleError, match="overlapping 'brownout'"):
        fault_schedule_from_dict({"events": [
            {"kind": "brownout", "at": 1.0, "duration": 10.0, "multiplier": 4.0},
            {"kind": "brownout", "at": 3.0, "duration": 10.0, "multiplier": 2.0},
        ]})
    with pytest.raises(FaultScheduleError, match="on replica 0"):
        fault_schedule_from_dict({"events": [
            {"kind": "slow", "replica": 0, "at": 1.0, "duration": 5.0},
            {"kind": "slow", "replica": 0, "at": 2.0, "duration": 5.0},
        ]})
    # Same window on *different* replicas is not an overlap.
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "slow", "replica": 0, "at": 1.0, "duration": 5.0},
        {"kind": "slow", "replica": 1, "at": 2.0, "duration": 5.0},
    ]})
    assert len(schedule) == 4


def test_abutting_windows_close_before_opening():
    """Back-to-back windows work in either config order: at the shared
    boundary the first window's end fires before the second's start."""
    for entries in ([
        {"kind": "outage", "at": 1.0, "duration": 2.0},
        {"kind": "outage", "at": 3.0, "duration": 2.0},
    ], [
        {"kind": "outage", "at": 3.0, "duration": 2.0},
        {"kind": "outage", "at": 1.0, "duration": 2.0},
    ]):
        schedule = fault_schedule_from_dict({"events": entries})
        at_boundary = [event.kind for event in schedule if event.time == 3.0]
        assert at_boundary == ["outage-end", "outage"]


def test_slow_window_ends_on_a_draining_replica(h100_setup, small_post_trace):
    """A replica that starts draining mid-window must still get the reset."""
    fleet = build_fleet(h100_setup, small_post_trace)
    assert fleet.apply_fault(
        FaultEvent(time=1.0, kind="slow", replica=1, multiplier=3.0), 1.0
    )
    draining = fleet._active[1]
    # Keep the replica busy so the drain does not retire it instantly: the
    # user-id router round-robins new users, so the second user lands on
    # replica 1.
    requests = arrivals(small_post_trace)
    by_user = {request.user_id: request for request in requests}
    for request in list(by_user.values())[:2]:
        fleet.submit(request, 1.0)
    fleet.scale_down(2.0)
    assert draining.draining and draining.instance.slowdown == 3.0
    assert fleet.apply_fault(FaultEvent(time=3.0, kind="slow-end", replica=1), 3.0)
    assert draining.instance.slowdown == 1.0


def test_disabled_and_empty_schedules_are_inactive():
    assert not FaultSchedule([], enabled=True).active
    assert not FaultSchedule([FaultEvent(1.0, "crash", 0)], enabled=False).active
    assert FaultSchedule([FaultEvent(1.0, "crash", 0)]).active
    assert not fault_schedule_from_dict({"enabled": False, "events": [
        {"kind": "crash", "replica": 0, "at": 1.0},
    ]}).active


def test_generated_schedule_is_deterministic_and_alternates():
    kwargs = dict(num_replicas=3, mtbf_s=5.0, mttr_s=2.0, horizon_s=50.0, seed=9)
    first = generate_crash_schedule(**kwargs)
    second = generate_crash_schedule(**kwargs)
    assert first.events == second.events
    assert len(first) > 0
    different = generate_crash_schedule(**{**kwargs, "seed": 10})
    assert different.events != first.events
    # Per replica the stream must strictly alternate crash / recover.
    for replica in range(3):
        kinds = [event.kind for event in first if event.replica == replica]
        assert all(kind == ("crash" if i % 2 == 0 else "recover")
                   for i, kind in enumerate(kinds))


def test_generate_merges_with_explicit_events():
    schedule = fault_schedule_from_dict({
        "events": [{"kind": "brownout", "at": 1.0, "duration": 2.0}],
        "generate": {"mtbf_s": 5.0, "mttr_s": 2.0, "horizon_s": 30.0,
                     "seed": 3, "replicas": 2},
    })
    kinds = {event.kind for event in schedule}
    assert "brownout" in kinds and "crash" in kinds


# ------------------------------------------------------- crash / recover


def test_crash_reroutes_and_conserves_requests(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 2.0},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    requests = arrivals(small_post_trace)
    result = simulate_fleet(fleet, requests, faults=schedule)
    res = result.fleet.resilience
    assert res.num_crashes == 1
    assert res.num_recoveries == 0
    assert res.num_retried > 0
    # Conservation: every offered request finishes or is rejected exactly once.
    finished_ids = [record.request_id for record in result.finished]
    rejected_ids = [record.request_id for record in result.rejected]
    assert len(set(finished_ids)) == len(finished_ids)
    assert sorted(finished_ids + rejected_ids) == sorted(
        request.request_id for request in requests
    )
    # The crashed replica serves nothing after the crash.
    crashed = [row for row in fleet.replica_reports(1e9) if row["retired"]]
    assert len(crashed) == 1


def test_retried_requests_keep_their_original_arrival_time(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 2.0},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    requests = arrivals(small_post_trace)
    result = simulate_fleet(fleet, requests, faults=schedule)
    arrival_of = {request.request_id: request.arrival_time for request in requests}
    retried = set(fleet.retried_request_ids)
    assert retried
    for record in result.finished:
        if record.request_id in retried:
            assert record.arrival_time == pytest.approx(arrival_of[record.request_id])
            # Latency therefore spans the crash the request survived.
            assert record.finish_time > 2.0


def test_recover_rebuilds_and_measures_mttr(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 1, "at": 1.0, "recover_at": 4.5},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    result = simulate_fleet(fleet, arrivals(small_post_trace), faults=schedule)
    res = result.fleet.resilience
    assert res.num_crashes == 1 and res.num_recoveries == 1
    assert res.mean_mttr_s == pytest.approx(3.5)
    assert fleet.num_replicas == 2
    # The rebuild is a fresh instance under a new name.
    names = [row["replica"] for row in fleet.replica_reports(1e9)]
    assert len(names) == len(set(names)) == 3


def test_crash_recover_cycles_track_the_logical_slot(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 1.0, "recover_at": 2.0},
        {"kind": "crash", "replica": 0, "at": 3.0, "recover_at": 4.0},
        {"kind": "crash", "replica": 0, "at": 5.0, "recover_at": 6.0},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    result = simulate_fleet(fleet, arrivals(small_post_trace), faults=schedule)
    res = result.fleet.resilience
    # Every cycle must land: the logical slot follows the rebuilt instance.
    assert res.num_crashes == 3 and res.num_recoveries == 3
    assert res.num_faults_skipped == 0
    assert res.mean_mttr_s == pytest.approx(1.0)
    assert fleet.num_replicas == 2


def test_skipped_faults_are_logged_not_errors(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 7, "at": 1.0},     # no such replica
        {"kind": "recover", "replica": 1, "at": 2.0},   # never crashed
        {"kind": "outage", "at": 3.0, "duration": 1.0}, # no cluster store
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    result = simulate_fleet(fleet, arrivals(small_post_trace), faults=schedule)
    res = result.fleet.resilience
    assert res.num_faults == 0
    assert res.num_faults_skipped == 4  # crash, recover, outage, outage-end
    assert all(not row["applied"] for row in res.fault_log)


def test_all_crashed_run_yields_clean_zeroed_summaries(h100_setup, small_post_trace):
    """The satellite guarantee: zero finished requests must not raise anywhere."""
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 0.0},
        {"kind": "crash", "replica": 1, "at": 0.0},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    requests = arrivals(small_post_trace)
    result = simulate_fleet(fleet, requests, faults=schedule)
    assert result.num_finished == 0
    assert result.summary.num_requests == 0
    assert result.summary.p99_latency == 0.0
    assert result.summary.mean_latency == 0.0
    assert len(result.shed) == len(requests)
    res = result.fleet.resilience
    assert res.num_unserved == len(requests)
    assert res.goodput_ratio == 0.0 and res.goodput_rps == 0.0
    assert result.fleet.mean_utilization == 0.0
    assert result.fleet.cache_hit_variance == 0.0
    # Reports render without raising on the empty run.
    assert "Resilience" in format_fleet_report(result)


# --------------------------------------------- slow / brownout / outage


def test_slow_node_stretches_service_times(h100_setup, small_post_trace):
    # FCFS with caching off pins the service times, so the multiplier is
    # exact (under SRJF the longer queue shifts hit rates and muddies it).
    spec = prefillonly_engine_spec().with_overrides(
        enable_prefix_caching=False, scheduling_policy="fcfs",
    )

    def run(schedule):
        fleet = Fleet.for_setup(
            spec, h100_setup,
            max_input_length=small_post_trace.max_request_tokens, num_replicas=1,
        )
        return simulate_fleet(fleet, arrivals(small_post_trace, rate=1.0),
                              faults=schedule)

    baseline = run(None)
    slowed = run(fault_schedule_from_dict({"events": [
        {"kind": "slow", "replica": 0, "at": 0.0, "duration": 1e6,
         "multiplier": 2.0},
    ]}))
    assert slowed.num_finished == baseline.num_finished
    assert slowed.summary.mean_execution_time == pytest.approx(
        2.0 * baseline.summary.mean_execution_time
    )


def test_slow_end_restores_normal_speed(h100_setup, small_post_trace):
    fleet = build_fleet(h100_setup, small_post_trace, num_replicas=1)
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "slow", "replica": 0, "at": 0.0, "duration": 0.5,
         "multiplier": 10.0},
    ]})
    simulate_fleet(fleet, arrivals(small_post_trace, rate=1.0), faults=schedule)
    assert fleet.replicas[0].slowdown == 1.0


def test_brownout_scales_store_transfer_times():
    store = CPUOffloadStore(capacity_bytes=1 << 20, block_bytes=1 << 10)
    base = store.transfer_time(4)
    store.cost_multiplier = 4.0
    assert store.transfer_time(4) == pytest.approx(4.0 * base)
    cluster = ClusterPrefixStore(capacity_bytes=1 << 20, block_bytes=1 << 10)
    base = cluster.transfer_time(4)
    cluster.cost_multiplier = 2.0
    assert cluster.transfer_time(4) == pytest.approx(2.0 * base)


def test_brownout_applies_fleet_wide_and_to_new_replicas(h100_setup, small_post_trace):
    fleet = build_fleet(h100_setup, small_post_trace, tiers=True)
    fleet.apply_fault(FaultEvent(time=1.0, kind="brownout", multiplier=4.0), 1.0)
    assert fleet.cluster_store.cost_multiplier == 4.0
    for replica in fleet.replicas:
        assert replica.kv.tiers.host.cost_multiplier == 4.0
    fleet.scale_up(2.0)
    assert fleet.replicas[-1].kv.tiers.host.cost_multiplier == 4.0
    fleet.apply_fault(FaultEvent(time=3.0, kind="brownout-end"), 3.0)
    assert fleet.cluster_store.cost_multiplier == 1.0
    assert all(r.kv.tiers.host.cost_multiplier == 1.0 for r in fleet.replicas)


def test_cluster_store_outage_hides_contents_and_refuses_writes():
    store = ClusterPrefixStore(capacity_bytes=1 << 20, block_bytes=1 << 10)
    store.publish("r0", [1, 2, 3])
    version = store.version
    store.set_available(False)
    assert store.version > version
    assert 1 not in store
    assert store.match_length([1, 2, 3]) == 0
    assert store.owner_of(1) is None
    assert store.resident_hashes() == []
    assert not store.fetch_block("r1", 1)
    stored, _ = store.publish("r1", [9])
    assert stored == 0 and 9 not in store._blocks
    store.set_available(True)
    assert 1 in store and store.match_length([1, 2, 3]) == 3
    assert 9 not in store  # the outage-time write was lost, not buffered


# ------------------------------------------------------------ warm restore


def test_warm_restore_stages_cluster_blocks_into_host(h100_setup, small_post_trace):
    fleet = build_fleet(h100_setup, small_post_trace, tiers=True)
    fleet.cluster_store.publish("elsewhere", list(range(100, 140)))
    state = fleet._active[0]
    tiers = state.instance.kv.tiers
    fleet.warm_restore_blocks = 16
    restored = fleet._warm_restore(state)
    assert restored == 16
    # The hottest (MRU) cluster blocks were chosen and now sit in the host tier.
    assert all(h in tiers.host for h in range(124, 140))
    # The cluster copies stay: they belong to their publisher.
    assert all(h in fleet.cluster_store for h in range(124, 140))


def test_recovery_warm_restores_and_serves_warm_hits(h100_setup):
    """Acceptance pin: a recovered replica serves tier hits instead of cold
    recompute — warm-restore hit rate > 0 on a shared-prefix chaos run."""
    from repro.workloads.registry import get_workload

    from repro.simulation.routing import make_router
    from repro.workloads.registry import get_workload

    trace = get_workload("post-recommendation", num_users=4, posts_per_user=16, seed=5)
    # A tight GPU budget and small host tier force demotions all the way into
    # the cluster store, so the crash leaves something to warm-restore from;
    # least-loaded routing makes sure the rebuilt replica receives traffic.
    spec = prefillonly_engine_spec().with_overrides(kv_capacity_tokens=20_000)
    fleet = Fleet.for_setup(
        spec, h100_setup,
        max_input_length=trace.max_request_tokens, num_replicas=2,
        router=make_router("least-loaded", 2),
        tier_config=TierConfig(enabled=True, host_gib=0.5, cluster_gib=16.0,
                               promotion="always"),
    )
    schedule = fault_schedule_from_dict({
        "warm_restore_blocks": 4096,
        "events": [{"kind": "crash", "replica": 0, "at": 6.0, "recover_at": 7.0}],
    })
    result = simulate_fleet(fleet, arrivals(trace, rate=6.0), faults=schedule)
    res = result.fleet.resilience
    assert res.num_recoveries == 1
    assert res.warm_restored_blocks > 0
    assert res.warm_restore_hit_rate > 0.0


# ------------------------------------------------------------- determinism


def test_chaos_runs_are_reproducible(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({
        "events": [
            {"kind": "crash", "replica": 0, "at": 1.0, "recover_at": 4.0},
            {"kind": "slow", "replica": 1, "at": 0.5, "duration": 3.0,
             "multiplier": 3.0},
            {"kind": "brownout", "at": 0.2, "duration": 5.0, "multiplier": 4.0},
            {"kind": "outage", "at": 2.0, "duration": 1.0},
        ],
    })

    def run():
        fleet = build_fleet(h100_setup, small_post_trace, tiers=True)
        return simulate_fleet(fleet, arrivals(small_post_trace), faults=schedule)

    first, second = run(), run()
    assert first.summary == second.summary
    assert first.fleet == second.fleet
    assert first.cache_stats == second.cache_stats
    assert [r.request_id for r in first.finished] == [
        r.request_id for r in second.finished
    ]
    assert first.num_events == second.num_events


def test_fault_events_count_as_processed_events(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "brownout", "at": 0.5, "duration": 1.0},
    ]})
    baseline = simulate_fleet(
        build_fleet(h100_setup, small_post_trace),
        arrivals(small_post_trace),
    )
    chaos = simulate_fleet(
        build_fleet(h100_setup, small_post_trace),
        arrivals(small_post_trace), faults=schedule,
    )
    # A pure brownout changes no scheduling decision on an untired fleet,
    # so the only delta is the two delivered fault events.
    assert chaos.num_events == baseline.num_events + 2


def test_resilience_report_renders(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 1.0, "recover_at": 3.0},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    result = simulate_fleet(fleet, arrivals(small_post_trace), faults=schedule)
    text = format_resilience_report(result.fleet.resilience)
    assert "goodput" in text and "Fault log" in text
    assert "crash" in text and "recover" in text
