"""Tests for the paged block allocator."""

import pytest

from repro.errors import AllocationError
from repro.kvcache.allocator import BlockAllocator


def test_allocate_and_free_round_trip():
    allocator = BlockAllocator(num_blocks=4, block_size=16)
    block = allocator.allocate()
    assert allocator.num_free_blocks == 3
    assert allocator.num_allocated_blocks == 1
    allocator.free(block)
    assert allocator.num_free_blocks == 4


def test_capacity_tokens():
    allocator = BlockAllocator(num_blocks=10, block_size=256)
    assert allocator.capacity_tokens == 2560


def test_exhaustion_raises():
    allocator = BlockAllocator(num_blocks=2, block_size=16)
    allocator.allocate()
    allocator.allocate()
    with pytest.raises(AllocationError):
        allocator.allocate()


def test_allocate_many_is_atomic():
    allocator = BlockAllocator(num_blocks=3, block_size=16)
    with pytest.raises(AllocationError):
        allocator.allocate_many(4)
    assert allocator.num_free_blocks == 3
    blocks = allocator.allocate_many(3)
    assert len(blocks) == 3
    assert allocator.num_free_blocks == 0


def test_double_free_rejected():
    allocator = BlockAllocator(num_blocks=2, block_size=16)
    block = allocator.allocate()
    allocator.free(block)
    with pytest.raises(AllocationError):
        allocator.free(block)


def test_freeing_pinned_block_rejected():
    allocator = BlockAllocator(num_blocks=2, block_size=16)
    block = allocator.allocate()
    block.pin()
    with pytest.raises(AllocationError):
        allocator.free(block)
    block.unpin()
    allocator.free(block)


def test_get_returns_allocated_block():
    allocator = BlockAllocator(num_blocks=2, block_size=16)
    block = allocator.allocate(content_hash=42, num_tokens=16)
    assert allocator.get(block.block_id) is block
    with pytest.raises(AllocationError):
        allocator.get(999)


def test_block_ids_are_unique_while_allocated():
    allocator = BlockAllocator(num_blocks=8, block_size=16)
    blocks = allocator.allocate_many(8)
    assert len({b.block_id for b in blocks}) == 8


def test_reset_returns_everything():
    allocator = BlockAllocator(num_blocks=4, block_size=16)
    allocator.allocate_many(4)
    allocator.reset()
    assert allocator.num_free_blocks == 4
    assert allocator.num_allocated_blocks == 0


def test_invalid_construction():
    with pytest.raises(AllocationError):
        BlockAllocator(num_blocks=-1, block_size=16)
    with pytest.raises(AllocationError):
        BlockAllocator(num_blocks=4, block_size=0)
