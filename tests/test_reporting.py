"""Tests for report formatting."""

from repro.analysis.reporting import format_series, format_table, to_markdown_table


ROWS = [
    {"engine": "prefillonly", "qps": 10.0, "feasible": True, "tokens": 14000},
    {"engine": "paged-attention", "qps": 2.5, "feasible": False, "tokens": 11000},
]


def test_format_table_contains_all_cells():
    text = format_table(ROWS, title="Engines")
    assert "Engines" in text
    assert "prefillonly" in text
    assert "paged-attention" in text
    assert "14,000" in text
    assert "yes" in text and "no" in text


def test_format_table_respects_column_selection():
    text = format_table(ROWS, columns=["engine"])
    assert "qps" not in text
    assert "prefillonly" in text


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="Nothing")


def test_format_table_aligns_columns():
    lines = format_table(ROWS).splitlines()
    header, separator = lines[0], lines[1]
    assert len(header) == len(separator)


def test_markdown_table_structure():
    text = to_markdown_table(ROWS)
    lines = text.splitlines()
    assert lines[0].startswith("| engine")
    assert set(lines[1].replace("|", "").strip().split()) == {"---"}
    assert len(lines) == 2 + len(ROWS)


def test_markdown_table_empty():
    assert to_markdown_table([]) == "(no rows)"


def test_format_series():
    text = format_series([(1.0, 2.0), (3.0, 4.0)], x_label="qps", y_label="latency")
    assert "qps" in text and "latency" in text
    assert "3.000" in text
