"""ReactiveAutoscaler window edge cases and no-flapping under replica churn.

The sliding-window signals must degrade to clean zeros when ``_trim`` empties
the window (long idle gaps — exactly what an all-crashed chaos interval
produces), and the hysteresis/cooldown machinery must keep the fleet from
flapping when queue depths oscillate during replica loss and rejoin.
"""

from __future__ import annotations

import pytest

from repro.cluster import Fleet, ReactiveAutoscaler
from repro.core.engine import FinishedRequest, prefillonly_engine_spec
from repro.faults import fault_schedule_from_dict
from repro.simulation.arrival import PoissonArrivalProcess
from repro.simulation.simulator import simulate_fleet


def make_autoscaler(**kwargs):
    defaults = dict(
        min_replicas=1, max_replicas=4, scale_up_rps_per_replica=2.0,
        window_seconds=10.0, cooldown_seconds=20.0,
    )
    defaults.update(kwargs)
    return ReactiveAutoscaler(**defaults)


def completion(finish_time: float, latency: float) -> FinishedRequest:
    return FinishedRequest(
        request_id=0, user_id="u", num_tokens=100, cached_tokens=0,
        arrival_time=finish_time - latency, start_time=finish_time - latency,
        finish_time=finish_time, instance_name="i", engine_name="e",
    )


# ----------------------------------------------------------- window edges


def test_arrival_rate_is_zero_after_trim_empties_the_window():
    autoscaler = make_autoscaler()
    for t in (0.5, 1.0, 1.5):
        autoscaler.observe_arrival(t)
    assert autoscaler.arrival_rate(2.0) > 0
    # Far past the window: every sample trims away — rate must be 0, not raise.
    assert autoscaler.arrival_rate(1000.0) == 0.0
    assert len(autoscaler._arrivals) == 0


def test_p99_latency_is_zero_after_trim_empties_the_window():
    autoscaler = make_autoscaler()
    autoscaler.observe_completion(completion(1.0, 0.4))
    autoscaler.observe_completion(completion(2.0, 0.6))
    assert autoscaler.p99_latency(3.0) > 0
    assert autoscaler.p99_latency(1000.0) == 0.0
    assert len(autoscaler._completions) == 0


def test_signals_at_time_zero_do_not_divide_by_zero():
    autoscaler = make_autoscaler()
    assert autoscaler.arrival_rate(0.0) == 0.0
    assert autoscaler.p99_latency(0.0) == 0.0


def test_decide_holds_after_idle_gap_rather_than_scaling_down_blind():
    """An emptied window reads as rate 0 — scale-down must still respect the
    queue-depth guard, so a busy-but-quiet fleet is not shrunk mid-burst."""
    autoscaler = make_autoscaler()
    for t in range(40):
        autoscaler.observe_arrival(t)
    # Long gap; the window is empty but queues are deep (a stalled fleet).
    assert autoscaler.decide(500.0, 2, [5, 5]) == 0
    # With empty queues the idle fleet may shrink — exactly one step.
    assert autoscaler.decide(500.0, 2, [0, 0]) == -1


# ------------------------------------------------------------ no flapping


def test_no_flapping_when_queue_depths_oscillate():
    autoscaler = make_autoscaler(cooldown_seconds=30.0)
    votes = []
    for step in range(200):
        now = 15.0 + step * 0.5
        autoscaler.observe_arrival(now)  # ~2 rps offered
        depths = [8, 0] if step % 2 == 0 else [0, 8]  # oscillating imbalance
        votes.append((now, autoscaler.decide(now, 2, depths)))
    scale_times = [now for now, vote in votes if vote != 0]
    # Cooldown bounds the event rate regardless of the oscillation.
    for earlier, later in zip(scale_times, scale_times[1:]):
        assert later - earlier >= autoscaler.cooldown_seconds


def test_no_flapping_during_replica_loss_and_rejoin(h100_setup, small_post_trace):
    """Crash/recover churn must not make the autoscaler thrash: every pair of
    applied scale events stays at least one cooldown apart."""
    autoscaler = make_autoscaler(
        max_replicas=4, scale_up_rps_per_replica=1.0,
        window_seconds=5.0, cooldown_seconds=10.0,
    )
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), h100_setup,
        max_input_length=small_post_trace.max_request_tokens,
        num_replicas=2, autoscaler=autoscaler,
    )
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 5.0, "recover_at": 9.0},
        {"kind": "crash", "replica": 1, "at": 12.0, "recover_at": 15.0},
        {"kind": "crash", "replica": 0, "at": 20.0, "recover_at": 24.0},
    ]})
    requests = PoissonArrivalProcess(rate=5.0, seed=1).assign(
        list(small_post_trace.requests)
    )
    simulate_fleet(fleet, requests, faults=schedule)
    times = [event.time for event in fleet.scale_events]
    for earlier, later in zip(times, times[1:]):
        assert later - earlier >= autoscaler.cooldown_seconds - 1e-9


# ------------------------------------------------ empty-results summaries


def test_empty_summaries_are_clean_zeros():
    """The satellite guard: every summary path handles empty inputs."""
    from repro.faults import ResilienceCounters
    from repro.simulation.metrics import (
        latency_cdf,
        percentile,
        summarize_finished,
        summarize_fleet,
        summarize_resilience,
        summarize_tiers,
    )

    assert percentile([], 99) == 0.0
    summary = summarize_finished([], [])
    assert summary.num_requests == 0 and summary.p99_latency == 0.0
    fleet = summarize_fleet([])
    assert fleet.mean_utilization == 0.0 and fleet.cache_hit_variance == 0.0
    assert fleet.utilization_per_replica == {}
    tiers = summarize_tiers([])
    assert tiers.tokens_total == 0 and tiers.tier_hit_rate == 0.0
    resilience = summarize_resilience(ResilienceCounters())
    assert resilience.mean_mttr_s == 0.0
    assert resilience.goodput_rps == 0.0 and resilience.goodput_ratio == 0.0
    assert latency_cdf([]) == []


def test_replica_reports_zero_request_run(h100_setup, small_post_trace):
    """A fleet that served nothing reports zeroed utilisation rows."""
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), h100_setup,
        max_input_length=small_post_trace.max_request_tokens, num_replicas=2,
    )
    rows = fleet.replica_reports(0.0)
    assert len(rows) == 2
    for row in rows:
        assert row["finished"] == 0
        assert row["utilization"] == 0.0
        assert row["token_hit_rate"] == 0.0
