"""Integration tests for the tiered prefix cache: fleet, scenario, scheduler.

Includes the equivalence pin required by the subsystem's acceptance criteria:
with tiering disabled (a default-off ``kv_tiers`` block), ``simulate_fleet``
and every cookbook scenario produce summaries identical to a configuration
that omits tiering entirely.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.errors import UnknownTierError
from repro.kvcache import CommitPolicy, TierConfig
from repro.simulation.arrival import PoissonArrivalProcess, UniformArrivalProcess
from repro.simulation.scenario import load_scenario, run_scenario, scenario_from_dict
from repro.simulation.simulator import simulate_fleet
from repro.workloads.registry import get_workload

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


@pytest.fixture(scope="module")
def tiny_trace():
    return get_workload("post-recommendation", num_users=4, posts_per_user=6, seed=7)


def tiered_fleet(setup, trace, *, num_replicas=2, spec=None, **tier_kwargs):
    config = TierConfig(enabled=True, host_gib=2.0, cluster_gib=8.0, **tier_kwargs)
    return Fleet.for_setup(
        spec if spec is not None else prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=num_replicas, tier_config=config,
    )


# ------------------------------------------------------------- equivalence


def test_disabled_tiers_fleet_is_byte_identical(h100_setup, tiny_trace):
    """A default-off TierConfig must not change a single fleet metric."""
    def run(tier_config):
        fleet = Fleet.for_setup(
            prefillonly_engine_spec(), h100_setup,
            max_input_length=tiny_trace.max_request_tokens,
            num_replicas=2, tier_config=tier_config,
        )
        requests = UniformArrivalProcess(rate=3.0).assign(list(tiny_trace.requests))
        return simulate_fleet(fleet, requests)

    plain = run(None)
    disabled = run(TierConfig(enabled=False))
    key = lambda record: record.request_id  # noqa: E731
    assert sorted(disabled.finished, key=key) == sorted(plain.finished, key=key)
    assert disabled.summary == plain.summary
    assert disabled.fleet == plain.fleet
    assert disabled.fleet.as_dict() == plain.fleet.as_dict()
    assert disabled.cache_stats == plain.cache_stats


@pytest.mark.parametrize(
    "config_path", sorted(SCENARIO_DIR.glob("*.json")), ids=lambda p: p.stem
)
def test_scenario_summaries_identical_with_default_off_tiers(config_path):
    """Adding ``"kv_tiers": {"enabled": false}`` changes nothing, per config."""
    config = json.loads(config_path.read_text(encoding="utf-8"))
    config.pop("kv_tiers", None)  # the tiered cookbook config: compare both off
    baseline = run_scenario(scenario_from_dict(json.loads(json.dumps(config))))
    config["kv_tiers"] = {"enabled": False}
    disabled = run_scenario(scenario_from_dict(config))
    assert disabled.result.summary == baseline.result.summary
    assert disabled.result.fleet == baseline.result.fleet
    assert [t.as_dict() for t in disabled.tenants] == [
        t.as_dict() for t in baseline.tenants
    ]


def test_tiered_cookbook_scenario_runs_with_tier_accounting():
    spec = load_scenario(SCENARIO_DIR / "tiered_shared_prefix.json")
    assert spec.kv_tiers is not None and spec.kv_tiers.enabled
    result = run_scenario(spec)
    tiers = result.result.fleet.tiers
    assert tiers is not None
    assert tiers.tokens_total > 0
    assert tiers.cluster is not None


# ------------------------------------------------------------ fleet serving


def test_tiered_fleet_completes_and_reports(h100_setup, tiny_trace):
    fleet = tiered_fleet(h100_setup, tiny_trace)
    requests = PoissonArrivalProcess(rate=5.0, seed=1).assign(list(tiny_trace.requests))
    result = simulate_fleet(fleet, requests)
    assert result.num_finished == len(tiny_trace)
    tiers = result.fleet.tiers
    assert tiers is not None
    assert tiers.tokens_total == sum(r.num_tokens for r in tiny_trace.requests)
    assert 0.0 <= tiers.tier_hit_rate <= 1.0
    # The summary's offload view reflects the host tier (satellite: offload
    # activity visible in fleet reports).
    assert result.fleet.offload is not None
    row = result.fleet.as_dict()
    assert "tier_hit_rate" in row and "offload_stored" in row


def test_tiered_fleet_report_has_tier_sections(h100_setup, tiny_trace):
    from repro.analysis.reporting import format_fleet_report

    fleet = tiered_fleet(h100_setup, tiny_trace)
    requests = UniformArrivalProcess(rate=3.0).assign(list(tiny_trace.requests))
    report = format_fleet_report(simulate_fleet(fleet, requests))
    assert "KV tiers: per-tier hits" in report
    assert "cluster (L3)" in report
    assert "CPU offload store" in report


def test_offload_engine_activity_visible_in_fleet_report(h100_setup, tiny_trace):
    """Satellite: the flat offload store's counters reach the fleet summary."""
    from repro.analysis.reporting import format_fleet_report

    spec = prefillonly_engine_spec(
        commit_policy=CommitPolicy.SUFFIX_OFFLOAD, cpu_offload_gib=2.0,
    ).with_overrides(kv_capacity_tokens=2048)
    fleet = Fleet.for_setup(
        spec, h100_setup,
        max_input_length=tiny_trace.max_request_tokens, num_replicas=2,
    )
    requests = UniformArrivalProcess(rate=3.0).assign(list(tiny_trace.requests))
    result = simulate_fleet(fleet, requests)
    assert result.fleet.offload is not None
    assert result.fleet.offload["stored_blocks"] > 0
    assert "offload_stored" in result.fleet.as_dict()
    assert "CPU offload store (fleet aggregate)" in format_fleet_report(result)


def test_scale_down_drains_prefixes_into_cluster_store(h100_setup, tiny_trace):
    """A retiring replica's cached prefixes land in the shared store."""
    fleet = tiered_fleet(h100_setup, tiny_trace, num_replicas=3)
    requests = UniformArrivalProcess(rate=50.0).assign(list(tiny_trace.requests))
    for request in requests:
        fleet.submit(request, request.arrival_time)
    while fleet.next_event_time() is not None:
        fleet.advance_to(fleet.next_event_time())
    # Replica 2 (user-id routing, 4 users over 3 replicas) has served and
    # cached prefixes; scaling down must drain them into the shared store.
    assert fleet.replicas[2].kv.num_cached_tokens > 0
    fleet.scale_down(now=100.0, reason="test")
    while fleet.next_event_time() is not None:
        fleet.advance_to(fleet.next_event_time())
    assert len(fleet.finished_requests()) == len(requests)
    # The drained replica retired with no orphaned lease and published its tree.
    retired = fleet._retired
    assert retired, "expected the drained replica to retire"
    for state in retired:
        assert state.instance.kv.num_active_leases == 0
        assert state.instance.kv.num_cached_tokens >= 0
    assert fleet.cluster_store is not None
    assert fleet.cluster_store.stats.publishes_by_replica.get(
        retired[0].instance.name, 0
    ) > 0


def test_autoscaled_replica_joins_shared_cluster_store(h100_setup, tiny_trace):
    from repro.cluster import ReactiveAutoscaler

    autoscaler = ReactiveAutoscaler(
        min_replicas=1, max_replicas=3,
        scale_up_rps_per_replica=1.5,
        window_seconds=2.0, cooldown_seconds=3.0,
    )
    config = TierConfig(enabled=True, host_gib=2.0, cluster_gib=8.0)
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), h100_setup,
        max_input_length=tiny_trace.max_request_tokens,
        num_replicas=1, autoscaler=autoscaler, tier_config=config,
    )
    requests = UniformArrivalProcess(rate=4.0).assign(list(tiny_trace.requests))
    result = simulate_fleet(fleet, requests)
    assert fleet.stats.num_scale_ups >= 1
    assert result.num_finished == len(tiny_trace)
    # Every replica (including clones) shares the one cluster store.
    for replica in fleet.replicas:
        assert replica.kv.tiers is not None
        assert replica.kv.tiers.cluster is fleet.cluster_store


# -------------------------------------------------------- scheduler / errors


def test_srjf_calibration_credits_tier_resident_prefixes(h100_setup, tiny_trace):
    """A host-resident prefix must rank between a GPU hit and a full miss."""
    from repro.core.engine import EngineInstance
    from repro.core.request_state import EngineRequest

    spec = prefillonly_engine_spec().with_overrides(kv_capacity_tokens=2048)
    config = TierConfig(enabled=True, host_gib=4.0, cluster_gib=0.0,
                        promotion="never", prefetch=False)
    from repro.model.config import get_model
    instance = EngineInstance(
        spec, get_model(h100_setup.model_name), h100_setup.cluster.gpu,
        max_input_length=tiny_trace.max_request_tokens,
        tier_config=config,
    )
    # Serve one request so its suffix demotes into the host tier.
    first = tiny_trace.requests[0]
    instance.submit(first, 0.0)
    instance.advance_to(0.0)
    instance.drain_until()
    kv = instance.kv
    hashes = first.block_hashes(spec.kv_block_size)
    lookup = kv.lookup_with_tiers(hashes)
    assert lookup.host_tokens > 0

    scheduler = instance.scheduler
    seen = EngineRequest(request=first, block_hashes=hashes, enqueue_time=10.0)
    cached, seen_score = scheduler._calibrate(seen, kv)
    assert cached == lookup.total_tokens

    fresh = next(
        r for r in tiny_trace.requests
        if r.user_id != first.user_id and r.num_tokens >= first.num_tokens
    )
    miss = EngineRequest(
        request=fresh, block_hashes=fresh.block_hashes(spec.kv_block_size),
        enqueue_time=10.0,
    )
    _, miss_score = scheduler._calibrate(miss, kv)
    # Tier-resident prefix -> strictly better (lower) score than a full miss,
    # but worse than if the same tokens sat on the GPU (the transfer penalty).
    assert seen_score < miss_score
    pure_gpu_score = scheduler._base_score(first.num_tokens, cached)
    assert seen_score > pure_gpu_score


def test_scenario_config_unknown_tier_name_fails_with_path():
    config = {
        "name": "bad", "seed": 0,
        "kv_tiers": {"enabled": True, "tiers": {"gpu": {"capacity_gib": 1}}},
        "tenants": [{"name": "t", "workload": "post-recommendation",
                     "arrival": "poisson", "arrival_params": {"rate": 1.0}}],
    }
    with pytest.raises(UnknownTierError) as excinfo:
        scenario_from_dict(config)
    assert "kv_tiers.tiers" in str(excinfo.value)
    assert "host" in str(excinfo.value) and "cluster" in str(excinfo.value)
