"""Tests for the workload generators and trace containers."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.credit_verification import CreditVerificationWorkload
from repro.workloads.post_recommendation import PostRecommendationWorkload
from repro.workloads.registry import get_workload, list_workloads
from repro.workloads.trace import TokenSegment, TokenSequence


def test_registry_lists_both_paper_workloads():
    assert list_workloads() == ["credit-verification", "post-recommendation"]
    with pytest.raises(WorkloadError):
        get_workload("chatbot")


# ----------------------------------------------------------- token sequences

def test_token_sequence_length_is_sum_of_segments():
    sequence = TokenSequence([TokenSegment(1, 100), TokenSegment(2, 28)])
    assert len(sequence) == 128


def test_token_sequence_rejects_empty_or_invalid_segments():
    with pytest.raises(WorkloadError):
        TokenSequence([])
    with pytest.raises(WorkloadError):
        TokenSegment(1, 0)


def test_block_hashes_shared_prefix():
    shared = TokenSegment(10, 1000)
    a = TokenSequence([shared, TokenSegment(20, 300)])
    b = TokenSequence([shared, TokenSegment(30, 300)])
    ha = a.block_hashes(256)
    hb = b.block_hashes(256)
    # 1000 shared tokens -> the first 3 blocks (768 tokens) agree, block 4 differs.
    assert ha[:3] == hb[:3]
    assert ha[3] != hb[3]


def test_block_hashes_differ_when_prefix_differs():
    a = TokenSequence([TokenSegment(1, 512)])
    b = TokenSequence([TokenSegment(2, 512)])
    assert a.block_hashes(256)[0] != b.block_hashes(256)[0]


def test_block_hashes_count_only_full_blocks():
    sequence = TokenSequence([TokenSegment(1, 300)])
    assert len(sequence.block_hashes(256)) == 1


def test_block_hashes_cached_per_block_size():
    sequence = TokenSequence([TokenSegment(1, 512)])
    assert sequence.block_hashes(256) is sequence.block_hashes(256)
    assert len(sequence.block_hashes(128)) == 4


def test_shared_prefix_tokens():
    shared = TokenSegment(10, 1000)
    a = TokenSequence([shared, TokenSegment(20, 300)])
    b = TokenSequence([shared, TokenSegment(30, 400)])
    assert a.shared_prefix_tokens(b) == 1000
    c = TokenSequence([TokenSegment(99, 50)])
    assert a.shared_prefix_tokens(c) == 0


# ------------------------------------------------------ post recommendation

def test_post_recommendation_default_matches_table1():
    trace = PostRecommendationWorkload().generate()
    assert trace.num_users == 20
    assert len(trace) == 20 * 50
    # Table 1: total tokens around 14 million.
    assert 13_000_000 < trace.total_tokens < 16_000_000


def test_post_recommendation_profile_lengths_in_paper_range():
    workload = PostRecommendationWorkload(num_users=10, posts_per_user=2, seed=3)
    trace = workload.generate()
    for request in trace:
        profile = request.metadata["profile_tokens"]
        assert 11_000 <= profile <= 17_000


def test_post_recommendation_requests_share_user_prefix():
    trace = get_workload("post-recommendation", num_users=2, posts_per_user=3, seed=1)
    by_user: dict[str, list] = {}
    for request in trace:
        by_user.setdefault(request.user_id, []).append(request)
    for requests in by_user.values():
        first, second = requests[0], requests[1]
        shared = first.sequence.shared_prefix_tokens(second.sequence)
        assert shared == first.metadata["shared_prefix_tokens"]
        assert shared > 10_000


def test_post_recommendation_requests_from_different_users_share_only_system_prompt():
    trace = get_workload("post-recommendation", num_users=2, posts_per_user=1, seed=1)
    a, b = trace.requests
    assert a.user_id != b.user_id
    assert a.sequence.shared_prefix_tokens(b.sequence) == 128  # the system prompt


def test_post_recommendation_scaling_parameters():
    trace = get_workload("post-recommendation", num_users=3, posts_per_user=5)
    assert trace.num_users == 3
    assert len(trace) == 15


def test_post_recommendation_invalid_parameters():
    with pytest.raises(WorkloadError):
        PostRecommendationWorkload(num_users=0)
    with pytest.raises(WorkloadError):
        PostRecommendationWorkload(profile_min_tokens=10_000, profile_max_tokens=5_000)


# ------------------------------------------------------ credit verification

def test_credit_verification_default_matches_table1():
    trace = CreditVerificationWorkload().generate()
    assert trace.num_users == 60
    assert len(trace) == 60
    # Table 1: 40k-60k tokens per request, ~3 million total.
    assert 2_400_000 < trace.total_tokens < 3_800_000
    for request in trace:
        assert 40_000 <= request.metadata["history_tokens"] <= 60_000


def test_credit_verification_no_prefix_reuse_between_users():
    trace = get_workload("credit-verification", num_users=3, seed=2)
    a, b = trace.requests[0], trace.requests[1]
    assert a.sequence.shared_prefix_tokens(b.sequence) == 256  # system prompt only


def test_credit_verification_outputs_are_approve_reject():
    trace = get_workload("credit-verification", num_users=2)
    assert trace.requests[0].allowed_outputs == ("Approve", "Reject")


def test_credit_verification_invalid_parameters():
    with pytest.raises(WorkloadError):
        CreditVerificationWorkload(num_users=0)
    with pytest.raises(WorkloadError):
        CreditVerificationWorkload(month_min_tokens=10, month_max_tokens=5)


# ----------------------------------------------------------------- summary

def test_trace_summary_fields():
    trace = get_workload("post-recommendation", num_users=2, posts_per_user=4, seed=0)
    summary = trace.summary()
    assert summary["dataset"] == "post-recommendation"
    assert summary["num_users"] == 2
    assert summary["num_requests"] == 8
    assert summary["min_request_tokens"] <= summary["max_request_tokens"]
    assert summary["total_tokens"] == trace.total_tokens


def test_workload_generation_is_deterministic_per_seed():
    a = get_workload("post-recommendation", num_users=2, posts_per_user=2, seed=5)
    b = get_workload("post-recommendation", num_users=2, posts_per_user=2, seed=5)
    assert [r.num_tokens for r in a] == [r.num_tokens for r in b]
    c = get_workload("post-recommendation", num_users=2, posts_per_user=2, seed=6)
    assert [r.num_tokens for r in a] != [r.num_tokens for r in c]
