"""Tests for the latency model (prefill, decode, parallelism, chunking)."""

import pytest

from repro.hardware.gpu import H100_80GB, L4
from repro.hardware.interconnect import NVLINK, PCIE_GEN4
from repro.model.config import LLAMA_3_1_8B, LLAMA_3_3_70B_FP8
from repro.model.latency import LatencyModel, chunked_prefill_penalty
from repro.model.memory import PrefillMode


@pytest.fixture(scope="module")
def latency_l4():
    return LatencyModel(LLAMA_3_1_8B, L4)


@pytest.fixture(scope="module")
def latency_h100_pcie():
    return LatencyModel(LLAMA_3_3_70B_FP8, H100_80GB, PCIE_GEN4)


@pytest.fixture(scope="module")
def latency_h100_nvlink():
    return LatencyModel(LLAMA_3_3_70B_FP8, H100_80GB, NVLINK)


def test_prefill_time_increases_with_tokens(latency_l4):
    short = latency_l4.prefill_time(1_000).total
    long = latency_l4.prefill_time(10_000).total
    assert long > short > 0


def test_prefix_cache_hit_reduces_latency(latency_l4):
    cold = latency_l4.prefill_time(14_000).total
    warm = latency_l4.prefill_time(500, num_cached_tokens=13_500).total
    assert warm < cold / 5


def test_chunked_prefill_penalty_reference_point():
    """§2.5: chunking a 20,000-token input at 512 tokens costs about 14%."""
    assert chunked_prefill_penalty(20_000, 512) == pytest.approx(0.14, abs=0.02)


def test_chunked_prefill_penalty_zero_for_short_inputs():
    assert chunked_prefill_penalty(400, 512) == 0.0


def test_chunked_prefill_penalty_is_bounded():
    assert chunked_prefill_penalty(1_000_000, 128) <= 0.6


def test_chunked_mode_slower_than_full(latency_l4):
    full = latency_l4.prefill_time(20_000, mode=PrefillMode.FULL).total
    chunked = latency_l4.prefill_time(20_000, mode=PrefillMode.CHUNKED, chunk_tokens=512).total
    assert chunked > full
    assert chunked / full == pytest.approx(1.14, abs=0.05)


def test_hybrid_mode_adds_only_small_overhead(latency_l4):
    full = latency_l4.prefill_time(20_000, mode=PrefillMode.FULL).total
    hybrid = latency_l4.prefill_time(20_000, mode=PrefillMode.HYBRID, chunk_tokens=2048).total
    assert hybrid / full < 1.02


def test_tensor_parallel_halves_compute_but_adds_communication(latency_h100_pcie):
    single = latency_h100_pcie.prefill_time(10_000)
    parallel = latency_h100_pcie.prefill_time(10_000, tensor_parallel=2)
    assert parallel.compute_time == pytest.approx(single.compute_time / 2)
    assert parallel.communication_time > 0
    assert single.communication_time == 0


def test_nvlink_makes_tensor_parallel_much_cheaper(latency_h100_pcie, latency_h100_nvlink):
    pcie = latency_h100_pcie.prefill_time(10_000, tensor_parallel=2)
    nvlink = latency_h100_nvlink.prefill_time(10_000, tensor_parallel=2)
    assert nvlink.communication_time < pcie.communication_time / 5


def test_tensor_parallel_without_interconnect_rejected(latency_l4):
    with pytest.raises(ValueError):
        latency_l4.prefill_time(1_000, tensor_parallel=2)


def test_pipeline_parallel_latency_close_to_single_gpu(latency_h100_pcie):
    single = latency_h100_pcie.prefill_time(10_000).total
    pipelined = latency_h100_pcie.prefill_time(10_000, pipeline_parallel=2).total
    assert pipelined == pytest.approx(single, rel=0.15)


def test_prefill_only_vs_generative_motivation(latency_l4):
    """§2.3: 2048-in / 256-out is noticeably slower than 2048-in / 1-out."""
    prefill_only = latency_l4.request_time(2048, 1)
    generative = latency_l4.request_time(2048, 256, batch_size=64)
    ratio = generative / prefill_only
    assert ratio > 1.3


def test_zero_token_prefill_costs_only_overhead(latency_l4):
    timing = latency_l4.prefill_time(0)
    assert timing.compute_time == 0.0
    assert timing.total == pytest.approx(L4.kernel_launch_overhead)
