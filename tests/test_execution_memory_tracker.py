"""Tests for the allocation ledger."""

import numpy as np

from repro.execution.memory_tracker import MemoryTracker


def test_allocate_and_free_update_live_bytes():
    tracker = MemoryTracker()
    tracker.allocate("a", 100)
    tracker.allocate("b", 50)
    assert tracker.live_bytes == 150
    tracker.free("a")
    assert tracker.live_bytes == 50


def test_peak_is_monotone():
    tracker = MemoryTracker()
    tracker.allocate("a", 100)
    tracker.free("a")
    tracker.allocate("b", 10)
    assert tracker.peak_bytes == 100


def test_reallocating_same_tag_replaces():
    tracker = MemoryTracker()
    tracker.allocate("buffer", 100)
    tracker.allocate("buffer", 40)
    assert tracker.live_bytes == 40


def test_allocate_array_uses_nbytes():
    tracker = MemoryTracker()
    array = np.zeros((10, 10), dtype=np.float64)
    returned = tracker.allocate_array("array", array)
    assert returned is array
    assert tracker.live_bytes == array.nbytes


def test_free_matching_prefix():
    tracker = MemoryTracker()
    tracker.allocate("kv.layer0", 10)
    tracker.allocate("kv.layer1", 10)
    tracker.allocate("other", 5)
    tracker.free_matching("kv.")
    assert tracker.live_bytes == 5


def test_free_unknown_tag_is_noop():
    tracker = MemoryTracker()
    tracker.free("never-allocated")
    assert tracker.live_bytes == 0


def test_trace_records_every_event():
    tracker = MemoryTracker()
    tracker.allocate("a", 1)
    tracker.free("a")
    trace = tracker.trace
    assert len(trace) == 2
    assert trace[0].label == "alloc:a"
    assert trace[1].label == "free:a"
    assert [sample.step for sample in trace] == [0, 1]


def test_reset_clears_everything():
    tracker = MemoryTracker()
    tracker.allocate("a", 100)
    tracker.reset()
    assert tracker.live_bytes == 0
    assert tracker.peak_bytes == 0
    assert tracker.trace == []
