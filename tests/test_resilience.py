"""Resilience-policy layer: config, state machines, and fleet semantics.

Unit coverage for :mod:`repro.resilience` (typed config errors, circuit
breaker, degrade controller, seeded retry/hedge derivations) plus the fleet
contracts the policies promise: deadline cancellation in queue and in
flight, hedge losers never billed as lost work, retry accounting that stays
conservative under chained crashes, and the fault-schedule edge cases
(overlapping mixed-kind windows, events at t=0 and beyond the horizon,
recover without a prior crash, MTTR with no completed repair).
"""

from __future__ import annotations

import pytest

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.errors import FaultScheduleError, ResilienceSpecError
from repro.faults import FaultEvent, fault_schedule_from_dict
from repro.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    DegradationPolicy,
    DegradeController,
    PolicyRuntime,
    ResilienceConfig,
    resilience_from_dict,
)
from repro.simulation.arrival import PoissonArrivalProcess
from repro.simulation.simulator import simulate_fleet

# A generous hedge/crash window: short enough that a multi-hundred-token
# prefill is still running, long enough to order the events explicitly.
TINY = 1e-3


def build_fleet(setup, trace, *, num_replicas=2, policies=None, **kwargs):
    return Fleet.for_setup(
        prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=num_replicas, policies=policies, **kwargs,
    )


def arrivals(trace, *, rate=4.0, seed=0):
    return PoissonArrivalProcess(rate=rate, seed=seed).assign(list(trace.requests))


# ------------------------------------------------------------ configuration


def test_inert_blocks_compile_inactive():
    assert not resilience_from_dict({}).active
    assert not resilience_from_dict({"enabled": True}).active
    disabled = resilience_from_dict({
        "enabled": False, "deadline": {"timeout_s": 1.0},
    })
    assert not disabled.active
    assert ResilienceConfig().active is False


def test_active_block_compiles_every_policy():
    config = resilience_from_dict({
        "seed": 7,
        "deadline": {"timeout_s": 9.0},
        "retry": {"max_attempts": 2, "budget_per_tenant": 5},
        "hedge": {"delay_s": 0.5},
        "breaker": {"window": 8},
        "degrade": {"depth_per_replica": 4.0, "shed_depth_per_replica": 8.0,
                    "low_priority_tenants": ["batch"]},
    })
    assert config.active
    assert config.seed == 7
    assert config.deadline.timeout_s == 9.0
    assert config.retry.max_attempts == 2
    assert config.hedge.delay_s == 0.5
    assert config.breaker.window == 8
    assert config.degrade.low_priority_tenants == ("batch",)


@pytest.mark.parametrize("config, fragment", [
    ({"bogus": 1}, "unknown keys"),
    ({"deadline": {"timeout_s": 0.0}}, "timeout_s"),
    ({"retry": {"max_attempts": 0}}, "max_attempts"),
    ({"hedge": {"percentile": 120}}, "percentile"),
    ({"breaker": {"failure_ratio": 1.5}}, "failure_ratio"),
    ({"degrade": {"depth_per_replica": 8.0, "shed_depth_per_replica": 4.0}},
     "must be >= depth_per_replica"),
    ({"degrade": {"depth_per_replica": 2.0, "low_priority_tenants": [7]}},
     "non-empty strings"),
], ids=[
    "unknown-top-key", "zero-timeout", "zero-attempts", "bad-percentile",
    "bad-failure-ratio", "shed-below-depth", "bad-tenant-name",
])
def test_malformed_resilience_raises_typed_errors(config, fragment):
    with pytest.raises(ResilienceSpecError) as excinfo:
        resilience_from_dict(config)
    assert fragment in str(excinfo.value)
    assert excinfo.value.path.startswith("resilience")


def test_spot_preempt_schedule_validation():
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "spot_preempt", "replica": 0, "at": 2.0, "warning_s": 1.0,
         "recover_at": 5.0},
    ]})
    assert [(event.time, event.kind) for event in schedule] == [
        (2.0, "spot_preempt"), (3.0, "spot_preempt-kill"), (5.0, "recover"),
    ]
    with pytest.raises(FaultScheduleError) as excinfo:
        fault_schedule_from_dict({"events": [
            {"kind": "spot_preempt", "replica": 0, "at": 2.0, "warning_s": 1.0,
             "recover_at": 3.0},
        ]})
    assert "recover_at" in str(excinfo.value)


# ---------------------------------------------------------- circuit breaker


def _breaker_policy(**overrides):
    params = dict(window=4, failure_ratio=0.5, min_samples=2, cooldown_s=10.0,
                  half_open_probes=2, slow_latency_s=None)
    params.update(overrides)
    return BreakerPolicy(**params)


def test_breaker_trips_on_windowed_failure_ratio():
    transitions = []
    breaker = CircuitBreaker(
        _breaker_policy(),
        on_transition=lambda old, new, now: transitions.append((old, new, now)),
    )
    assert breaker.state == "closed" and breaker.allows(0.0)
    breaker.on_failure(1.0)          # 1 outcome < min_samples: stays closed
    assert breaker.state == "closed"
    breaker.on_success(2.0)          # window [F, T]: ratio 0.5 but no trip yet
    breaker.on_failure(3.0)          # window [F, T, F]: ratio 2/3 >= 0.5
    assert breaker.state == "open"
    assert not breaker.allows(3.0)
    assert transitions == [("closed", "open", 3.0)]


def test_breaker_cooldown_probes_and_close():
    breaker = CircuitBreaker(_breaker_policy())
    breaker.on_failure(0.0)
    breaker.on_failure(0.0)
    assert breaker.state == "open"
    assert not breaker.allows(9.0)            # cooldown not elapsed
    assert breaker.allows(10.0)               # half-open: probes available
    assert breaker.state == "half-open"
    breaker.on_routed(10.0)
    breaker.on_routed(10.5)
    assert not breaker.allows(10.5)           # both probe slots consumed
    breaker.on_success(11.0)
    assert breaker.state == "half-open"       # one success is not enough
    breaker.on_success(11.5)
    assert breaker.state == "closed"
    # The window was cleared: old failures no longer count toward the ratio.
    breaker.on_failure(12.0)
    assert breaker.state == "closed"


def test_breaker_half_open_failure_reopens_and_restarts_cooldown():
    breaker = CircuitBreaker(_breaker_policy())
    breaker.on_failure(0.0)
    breaker.on_failure(0.0)
    assert breaker.allows(10.0)               # half-open
    breaker.on_failure(10.0)
    assert breaker.state == "open"
    assert not breaker.allows(19.9)           # cooldown restarted at t=10
    assert breaker.allows(20.0)


def test_breaker_bank_counts_slow_completions_as_failures():
    from repro.resilience.policy import BreakerBank

    bank = BreakerBank(_breaker_policy(slow_latency_s=1.0))
    bank.clock = 5.0
    bank.on_success(0, 2.0, 5.0)              # slower than 1.0s: a failure
    bank.on_success(0, 3.0, 5.0)
    assert bank.state(0) == "open"
    assert not bank.allows(0)
    bank.discard(0)
    assert bank.state(0) == "closed"          # forgotten replicas start fresh


# -------------------------------------------------------- degrade controller


def test_degrade_hysteresis_and_degraded_seconds():
    policy = DegradationPolicy(
        depth_per_replica=5.0, shed_depth_per_replica=10.0,
        sustain_s=2.0, recover_s=3.0, low_priority_tenants=("batch",),
    )
    transitions = []
    degrade = DegradeController(
        policy, on_transition=lambda old, new, now: transitions.append((old, new, now)),
    )
    degrade.observe(6.0, 0.0)
    assert degrade.tier == 0                  # pressure yes, sustain not met
    degrade.observe(6.0, 1.0)
    assert degrade.tier == 0
    degrade.observe(6.0, 2.0)
    assert degrade.tier == 1                  # 2s sustained above tier-1 depth
    degrade.observe(12.0, 2.0)
    assert degrade.tier == 1                  # tier 2 needs its own sustain
    degrade.observe(12.0, 4.0)
    assert degrade.tier == 2
    degrade.observe(0.0, 5.0)
    assert degrade.tier == 2                  # recover window not elapsed
    degrade.observe(0.0, 8.0)
    assert degrade.tier == 0                  # 3s below both thresholds
    assert transitions == [(0, 1, 2.0), (1, 2, 4.0), (2, 0, 8.0)]
    assert degrade.degraded_seconds == pytest.approx(6.0)  # t=2 .. t=8


def test_degrade_finalize_closes_trailing_interval():
    policy = DegradationPolicy(
        depth_per_replica=1.0, shed_depth_per_replica=None,
        sustain_s=0.0, recover_s=10.0, low_priority_tenants=(),
    )
    degrade = DegradeController(policy)
    degrade.observe(2.0, 1.0)
    assert degrade.tier == 1                  # sustain 0: engages immediately
    degrade.finalize(4.5)
    assert degrade.degraded_seconds == pytest.approx(3.5)
    degrade.finalize(9.0)                     # idempotent: interval closed
    assert degrade.degraded_seconds == pytest.approx(3.5)


# ------------------------------------------------- seeded retry / hedge math


def test_retry_delay_is_a_pure_function_of_seed_request_attempt():
    config = resilience_from_dict({
        "seed": 11,
        "retry": {"backoff_base_s": 0.5, "backoff_multiplier": 2.0,
                  "jitter": 0.5},
    })
    runtime = PolicyRuntime(config)
    again = PolicyRuntime(config)
    assert runtime.retry_delay(5, 1) == again.retry_delay(5, 1)
    assert runtime.retry_delay(5, 1) != runtime.retry_delay(5, 2)
    assert runtime.retry_delay(5, 1) != runtime.retry_delay(6, 1)
    other_seed = PolicyRuntime(resilience_from_dict({
        "seed": 12,
        "retry": {"backoff_base_s": 0.5, "backoff_multiplier": 2.0,
                  "jitter": 0.5},
    }))
    assert runtime.retry_delay(5, 1) != other_seed.retry_delay(5, 1)
    # The jittered delay stays inside the documented envelope.
    for attempt in (1, 2, 3):
        delay = runtime.retry_delay(5, attempt)
        base = 0.5 * 2.0 ** (attempt - 1)
        assert base <= delay <= base * 1.5


def test_retry_delay_without_jitter_is_exact_backoff():
    runtime = PolicyRuntime(resilience_from_dict({
        "retry": {"backoff_base_s": 0.25, "backoff_multiplier": 3.0,
                  "jitter": 0.0},
    }))
    assert runtime.retry_delay(1, 1) == pytest.approx(0.25)
    assert runtime.retry_delay(1, 2) == pytest.approx(0.75)
    assert runtime.retry_delay(1, 3) == pytest.approx(2.25)


def test_retry_budget_is_per_tenant():
    runtime = PolicyRuntime(resilience_from_dict({
        "retry": {"budget_per_tenant": 2},
    }))
    assert runtime.try_consume_retry_budget("a")
    assert runtime.try_consume_retry_budget("a")
    assert not runtime.try_consume_retry_budget("a")
    assert runtime.try_consume_retry_budget("b")  # separate tenant, own budget
    unlimited = PolicyRuntime(resilience_from_dict({"retry": {}}))
    assert all(unlimited.try_consume_retry_budget(None) for _ in range(100))


def test_hedge_delay_needs_samples_and_respects_floor():
    runtime = PolicyRuntime(resilience_from_dict({
        "hedge": {"percentile": 90, "min_samples": 3, "min_delay_s": 0.5},
    }))
    assert runtime.hedge_delay() is None
    runtime.record_latency(0.1)
    runtime.record_latency(0.2)
    assert runtime.hedge_delay() is None      # still below min_samples
    runtime.record_latency(0.3)
    assert runtime.hedge_delay() == pytest.approx(0.5)  # floored at min_delay_s
    for _ in range(10):
        runtime.record_latency(4.0)
    assert runtime.hedge_delay() == pytest.approx(4.0)


def test_fixed_hedge_delay_ignores_samples():
    runtime = PolicyRuntime(resilience_from_dict({"hedge": {"delay_s": 1.25}}))
    assert runtime.hedge_delay() == 1.25
    runtime.record_latency(100.0)
    assert runtime.hedge_delay() == 1.25


# --------------------------------------------------- fleet: deadlines


def test_deadline_cancels_queued_and_running_work(h100_setup, small_post_trace):
    policies = resilience_from_dict({"deadline": {"timeout_s": TINY}})
    fleet = build_fleet(h100_setup, small_post_trace, num_replicas=1,
                        policies=policies)
    first, second = small_post_trace.requests[:2]
    fleet.submit(first, 0.0)                  # starts running immediately
    fleet.submit(second, 0.0)                 # queues behind it
    due = fleet.next_policy_time()
    assert due == pytest.approx(TINY)
    fleet.apply_policy_timers(due)
    assert fleet.resilience.num_deadline_missed == 2
    rejected = fleet.rejected_requests()
    assert sorted(record.request_id for record in rejected) == sorted(
        [first.request_id, second.request_id]
    )
    assert all("deadline missed" in record.rejection_reason
               for record in rejected)
    assert fleet.next_policy_time() is None   # no timers left behind
    # The engine really dropped both: nothing finishes afterwards.
    state = fleet._active[0]
    assert not state.instance.has_request(first.request_id)
    assert not state.instance.has_request(second.request_id)


def test_deadline_misses_count_in_end_to_end_run(h100_setup, small_post_trace):
    policies = resilience_from_dict({"deadline": {"timeout_s": 0.2}})
    fleet = build_fleet(h100_setup, small_post_trace, num_replicas=1,
                        policies=policies)
    requests = arrivals(small_post_trace, rate=20.0)
    result = simulate_fleet(fleet, requests)
    policy = result.fleet.resilience.policy
    assert policy["num_deadline_missed"] > 0
    assert policy["num_deadline_missed"] == len(result.rejected)
    # Conservation: every request terminates exactly once.
    ids = sorted(record.request_id
                 for record in list(result.finished) + list(result.rejected))
    assert ids == sorted(request.request_id for request in requests)
    # Every survivor beat the deadline.
    assert all(record.latency <= 0.2 + 1e-9 for record in result.finished)


# --------------------------------------------------- fleet: hedge rollback


def _hedged_single_request(setup, trace, *, num_replicas=2):
    """A fleet with one tracked request, its hedge copy already launched."""
    policies = resilience_from_dict({"hedge": {"delay_s": TINY}})
    fleet = build_fleet(setup, trace, num_replicas=num_replicas,
                        policies=policies)
    request = max(trace.requests, key=lambda entry: entry.num_tokens)
    fleet.submit(request, 0.0)
    fleet.apply_policy_timers(fleet.next_policy_time())
    assert fleet.resilience.num_hedges == 1
    tracked = fleet._tracked[request.request_id]
    assert tracked.hedge_key is not None and tracked.hedge_key != tracked.primary_key
    return fleet, request, tracked


def test_crashed_hedge_copy_is_not_billed_as_lost_work(h100_setup, small_post_trace):
    fleet, request, tracked = _hedged_single_request(h100_setup, small_post_trace)
    fleet.apply_fault(
        FaultEvent(time=2 * TINY, kind="crash", replica=tracked.hedge_key),
        2 * TINY,
    )
    # The hedge copy died mid-flight but the primary still carries the
    # request, so no work was lost from the caller's point of view.
    assert fleet.resilience.num_crashes == 1
    assert fleet.resilience.lost_work_tokens == 0
    assert fleet.resilience.num_lost_in_flight == 0
    assert tracked.hedge_key is None          # hedge slot cleared
    assert not tracked.done
    primary = next(state for state in fleet._active
                   if state.key == tracked.primary_key)
    assert primary.instance.has_request(request.request_id)


def test_crashed_primary_promotes_hedge_without_lost_work(h100_setup, small_post_trace):
    fleet, request, tracked = _hedged_single_request(h100_setup, small_post_trace)
    old_hedge = tracked.hedge_key
    fleet.apply_fault(
        FaultEvent(time=2 * TINY, kind="crash", replica=tracked.primary_key),
        2 * TINY,
    )
    assert fleet.resilience.num_crashes == 1
    assert fleet.resilience.lost_work_tokens == 0
    assert fleet.resilience.num_lost_in_flight == 0
    assert tracked.primary_key == old_hedge   # the hedge copy took over
    assert tracked.hedge_key is None
    survivor = next(state for state in fleet._active
                    if state.key == tracked.primary_key)
    assert survivor.instance.has_request(request.request_id)


def test_unhedged_crash_still_bills_lost_work(h100_setup, small_post_trace):
    """The rollback is hedge-specific: a plain crash victim stays billed."""
    policies = resilience_from_dict({"hedge": {"delay_s": 1e6}})
    fleet = build_fleet(h100_setup, small_post_trace, policies=policies)
    request = max(small_post_trace.requests, key=lambda entry: entry.num_tokens)
    fleet.submit(request, 0.0)
    primary = fleet._tracked[request.request_id].primary_key
    fleet.apply_fault(FaultEvent(time=TINY, kind="crash", replica=primary), TINY)
    assert fleet.resilience.num_lost_in_flight == 1
    assert fleet.resilience.lost_work_tokens == request.num_tokens


def test_hedged_chaos_run_conserves_requests(h100_setup, small_post_trace):
    policies = resilience_from_dict({"hedge": {"delay_s": 2.0}})
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 1.0, "recover_at": 2.0},
        {"kind": "crash", "replica": 1, "at": 3.0, "recover_at": 4.0},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace, policies=policies)
    requests = arrivals(small_post_trace, rate=8.0)
    result = simulate_fleet(fleet, requests, faults=schedule)
    policy = result.fleet.resilience.policy
    assert policy["num_hedges"] > 0
    assert policy["num_hedge_wins"] <= policy["num_hedges"]
    assert policy["hedge_wasted_tokens"] >= 0
    # First-completion-wins: each request terminates exactly once even though
    # two copies may have been in flight.
    ids = [record.request_id
           for record in list(result.finished) + list(result.rejected)]
    assert sorted(ids) == sorted(request.request_id for request in requests)
    assert len(set(ids)) == len(ids)


# ------------------------------------- fleet: retry under chained faults


def test_retry_accounting_survives_chained_crashes(h100_setup, small_post_trace):
    """A crash that kills a retry re-execution must not double-bill anything."""
    policies = resilience_from_dict({
        "retry": {"max_attempts": 3, "backoff_base_s": 0.3,
                  "backoff_multiplier": 1.0, "jitter": 0.0},
    })
    # Two waves: requests evacuated by the first crash re-execute after a
    # 0.3s backoff, landing inside the second crash's blast radius.
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 1.0, "recover_at": 1.6},
        {"kind": "crash", "replica": 1, "at": 1.5, "recover_at": 2.5},
        {"kind": "crash", "replica": 0, "at": 2.0, "recover_at": 3.0},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace, policies=policies)
    requests = arrivals(small_post_trace, rate=8.0)
    result = simulate_fleet(fleet, requests, faults=schedule)
    res = result.fleet.resilience
    assert res.num_crashes == 3
    assert res.num_retried > 0
    # Conservation: every request terminates exactly once, attempts included.
    ids = [record.request_id
           for record in list(result.finished) + list(result.rejected)]
    assert sorted(ids) == sorted(request.request_id for request in requests)
    assert len(set(ids)) == len(ids)
    # No double-billed losses: each lost in-flight execution is billed once,
    # and never more than the largest request could account for.
    largest = max(request.num_tokens for request in requests)
    assert 0 <= res.lost_work_tokens <= res.num_lost_in_flight * largest
    # Attempts stay bounded by the policy even across chained crashes.
    assert all(tracked.attempts <= 3 for tracked in fleet._tracked.values())
    exhausted = [record for record in result.rejected
                 if "retry" in (record.rejection_reason or "")]
    assert res.policy["num_retry_exhausted"] == len(exhausted)


def test_retry_budget_exhaustion_rejects_with_reason(h100_setup, small_post_trace):
    policies = resilience_from_dict({
        "retry": {"max_attempts": 5, "budget_per_tenant": 0,
                  "backoff_base_s": 0.1, "jitter": 0.0},
    })
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 0.5},
    ]})
    fleet = build_fleet(h100_setup, small_post_trace, policies=policies)
    requests = arrivals(small_post_trace, rate=8.0)
    result = simulate_fleet(fleet, requests, faults=schedule)
    res = result.fleet.resilience
    # Zero budget: every evacuated request is rejected, none re-executes.
    assert res.policy["num_retry_exhausted"] > 0
    assert res.num_retried == 0
    reasons = [record.rejection_reason for record in result.rejected]
    assert all("retry budget exhausted" in reason for reason in reasons)


# ------------------------------------------------ fault-schedule edge cases


def test_overlapping_slow_and_brownout_windows_coexist(h100_setup, small_post_trace):
    """Different-kind windows on one replica overlap freely and unwind
    independently — only same-kind overlaps are rejected at parse time."""
    from repro.kvcache.tiers import TierConfig

    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), h100_setup,
        max_input_length=small_post_trace.max_request_tokens, num_replicas=2,
        tier_config=TierConfig(enabled=True, host_gib=1.0, cluster_gib=4.0),
    )
    assert fleet.apply_fault(
        FaultEvent(time=1.0, kind="slow", replica=0, multiplier=3.0), 1.0)
    assert fleet.apply_fault(
        FaultEvent(time=2.0, kind="brownout", multiplier=4.0), 2.0)
    # Both effects live at once on replica 0.
    assert fleet.replicas[0].slowdown == 3.0
    assert fleet.replicas[0].kv.tiers.host.cost_multiplier == 4.0
    # The windows close in their own order without disturbing each other.
    assert fleet.apply_fault(FaultEvent(time=3.0, kind="brownout-end"), 3.0)
    assert fleet.replicas[0].slowdown == 3.0
    assert fleet.replicas[0].kv.tiers.host.cost_multiplier == 1.0
    assert fleet.apply_fault(FaultEvent(time=4.0, kind="slow-end", replica=0), 4.0)
    assert fleet.replicas[0].slowdown == 1.0


def test_recover_without_prior_crash_is_skipped(h100_setup, small_post_trace):
    fleet = build_fleet(h100_setup, small_post_trace)
    applied = fleet.apply_fault(FaultEvent(time=1.0, kind="recover", replica=1), 1.0)
    assert not applied
    assert fleet.resilience.num_faults_skipped == 1
    assert fleet.resilience.num_recoveries == 0
    assert fleet.num_replicas == 2            # the live replica is untouched


def test_events_at_time_zero_and_beyond_horizon(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "slow", "replica": 1, "at": 0.0, "duration": 0.5,
         "multiplier": 2.0},
        {"kind": "crash", "replica": 0, "at": 0.0},
        {"kind": "crash", "replica": 1, "at": 1e6},   # long after the last finish
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    requests = arrivals(small_post_trace)
    result = simulate_fleet(fleet, requests, faults=schedule)
    res = result.fleet.resilience
    # t=0 events land before the first arrival; the beyond-horizon crash is
    # still delivered (and applied) after the last request completes.
    assert res.num_crashes == 2
    assert res.num_slow_events == 1
    assert result.num_finished == len(requests)  # nothing was in flight at 1e6
    crash_times = [row["time_s"] for row in res.fault_log
                   if row["kind"] == "crash"]
    assert crash_times == [0.0, 1e6]


def test_mttr_is_zero_when_no_repair_completes(h100_setup, small_post_trace):
    schedule = fault_schedule_from_dict({"events": [
        {"kind": "crash", "replica": 0, "at": 1.0},   # never recovers
    ]})
    fleet = build_fleet(h100_setup, small_post_trace)
    result = simulate_fleet(fleet, arrivals(small_post_trace), faults=schedule)
    res = result.fleet.resilience
    assert res.num_crashes == 1 and res.num_recoveries == 0
    assert res.mean_mttr_s == 0.0
    assert fleet.resilience.mttr_samples == []


# --------------------------------------------------------------- degrade


def test_degrade_tier2_sheds_low_priority_tenants_only(h100_setup, small_post_trace):
    policies = resilience_from_dict({"degrade": {
        "depth_per_replica": 0.1, "shed_depth_per_replica": 0.1,
        "sustain_s": 0.0, "recover_s": 1e6,
        "low_priority_tenants": ["batch"],
    }})
    fleet = build_fleet(h100_setup, small_post_trace, num_replicas=1,
                        policies=policies)
    import dataclasses

    requests = arrivals(small_post_trace, rate=50.0)
    for index, request in enumerate(requests):
        tenant = "batch" if index % 2 else "prod"
        fleet.submit(
            dataclasses.replace(request, metadata={**request.metadata,
                                                   "tenant": tenant}),
            request.arrival_time,
        )
    # Pressure builds instantly (sustain 0), so later batch submissions shed.
    assert fleet.resilience.num_degrade_sheds > 0
    shed_reasons = [record.rejection_reason for record in fleet.rejected_requests()]
    assert all("low-priority tenant 'batch'" in reason for reason in shed_reasons)
