"""Tests for request routing."""

import pytest

from repro.simulation.routing import LeastLoadedRouter, UserIdRouter
from repro.workloads.trace import Request, TokenSegment, TokenSequence


def make_request(request_id: int, user: str) -> Request:
    return Request(request_id=request_id, user_id=user,
                   sequence=TokenSequence([TokenSegment(1, 100)]))


def test_user_id_router_is_sticky():
    router = UserIdRouter(num_instances=2)
    first = router.route(make_request(0, "alice"), [0, 0])
    for i in range(5):
        assert router.route(make_request(i + 1, "alice"), [10, 0]) == first


def test_user_id_router_round_robins_users():
    router = UserIdRouter(num_instances=2)
    targets = [router.route(make_request(i, f"user-{i}"), [0, 0]) for i in range(4)]
    assert targets == [0, 1, 0, 1]


def test_user_id_router_assignments_exposed():
    router = UserIdRouter(num_instances=3)
    router.route(make_request(0, "a"), [0, 0, 0])
    router.route(make_request(1, "b"), [0, 0, 0])
    assert router.assignments == {"a": 0, "b": 1}


def test_least_loaded_router_prefers_short_queue():
    router = LeastLoadedRouter(num_instances=3)
    assert router.route(make_request(0, "x"), [4, 1, 7]) == 1


def test_router_requires_positive_instances():
    with pytest.raises(ValueError):
        UserIdRouter(num_instances=0)
