"""Tests for request routing."""

import pytest

from repro.simulation.routing import (
    LeastLoadedRouter,
    PrefixAffinityRouter,
    UserIdRouter,
    make_router,
)
from repro.workloads.trace import Request, TokenSegment, TokenSequence


def make_request(request_id: int, user: str, content_id: int = 1) -> Request:
    return Request(request_id=request_id, user_id=user,
                   sequence=TokenSequence([TokenSegment(content_id, 100)]))


def test_user_id_router_is_sticky():
    router = UserIdRouter(num_instances=2)
    first = router.route(make_request(0, "alice"), [0, 0])
    for i in range(5):
        assert router.route(make_request(i + 1, "alice"), [10, 0]) == first


def test_user_id_router_round_robins_users():
    router = UserIdRouter(num_instances=2)
    targets = [router.route(make_request(i, f"user-{i}"), [0, 0]) for i in range(4)]
    assert targets == [0, 1, 0, 1]


def test_user_id_router_assignments_exposed():
    router = UserIdRouter(num_instances=3)
    router.route(make_request(0, "a"), [0, 0, 0])
    router.route(make_request(1, "b"), [0, 0, 0])
    assert router.assignments == {"a": 0, "b": 1}


def test_least_loaded_router_prefers_short_queue():
    router = LeastLoadedRouter(num_instances=3)
    assert router.route(make_request(0, "x"), [4, 1, 7]) == 1


def test_router_requires_positive_instances():
    with pytest.raises(ValueError):
        UserIdRouter(num_instances=0)


def test_user_id_router_resize_drops_out_of_range_assignments():
    router = UserIdRouter(num_instances=3)
    for index in range(3):
        router.route(make_request(index, f"user-{index}"), [0, 0, 0])
    router.resize(2)
    assert router.assignments == {"user-0": 0, "user-1": 1}
    # The dropped user reassigns round-robin within the new range.
    assert router.route(make_request(9, "user-2"), [0, 0]) < 2


class _FakeKV:
    def __init__(self, hit_tokens):
        self._hit_tokens = hit_tokens

    def lookup(self, block_hashes):
        return self._hit_tokens


class _FakeInstance:
    def __init__(self, hit_tokens, block_size=256):
        from repro.core.engine import prefillonly_engine_spec

        self.spec = prefillonly_engine_spec(kv_block_size=block_size)
        self.kv = _FakeKV(hit_tokens)


def test_prefix_affinity_router_follows_the_hottest_cache():
    router = PrefixAffinityRouter(num_instances=2, queue_penalty_tokens=0.0)
    router.observe_instances([_FakeInstance(0), _FakeInstance(512)])
    assert router.route(make_request(0, "alice"), [0, 0]) == 1


def test_prefix_affinity_router_penalises_deep_queues():
    router = PrefixAffinityRouter(num_instances=2, queue_penalty_tokens=512.0)
    router.observe_instances([_FakeInstance(0), _FakeInstance(512)])
    # Replica 1 has the prefix but its queue penalty cancels the advantage;
    # replica 0 wins on load.
    assert router.route(make_request(0, "alice"), [0, 2]) == 0


def test_prefix_affinity_router_sticky_fallback_on_cold_caches():
    router = PrefixAffinityRouter(num_instances=2)
    router.observe_instances([_FakeInstance(0), _FakeInstance(0)])
    first = router.route(make_request(0, "alice"), [0, 0])
    assert router.route(make_request(1, "alice"), [0, 0]) == first
    assert router.route(make_request(2, "bob"), [0, 0]) != first


def test_prefix_affinity_router_unbound_degrades_to_sticky():
    router = PrefixAffinityRouter(num_instances=3)
    targets = {router.route(make_request(i, f"user-{i}"), [0, 0, 0]) for i in range(3)}
    assert targets == {0, 1, 2}


def test_make_router_registry():
    assert isinstance(make_router("user-id", 2), UserIdRouter)
    assert isinstance(make_router("least-loaded", 2), LeastLoadedRouter)
    assert isinstance(make_router("prefix-affinity", 2), PrefixAffinityRouter)
    with pytest.raises(ValueError):
        make_router("round-trip", 2)
