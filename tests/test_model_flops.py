"""Tests for the FLOP model."""

import pytest

from repro.model.config import LLAMA_3_1_8B
from repro.model.flops import FlopsModel


@pytest.fixture(scope="module")
def flops():
    return FlopsModel(LLAMA_3_1_8B)


def test_dense_flops_scale_linearly_with_tokens(flops):
    one = flops.prefill(1000).dense_flops
    two = flops.prefill(2000).dense_flops
    assert two == pytest.approx(2 * one)


def test_dense_flops_match_2nd_rule(flops):
    breakdown = flops.prefill(1000)
    assert breakdown.dense_flops == pytest.approx(2 * LLAMA_3_1_8B.num_parameters * 1000)


def test_attention_flops_scale_quadratically(flops):
    small = flops.prefill(1000).attention_flops
    large = flops.prefill(4000).attention_flops
    assert large / small == pytest.approx(16.0, rel=0.05)


def test_cached_prefix_reduces_dense_flops(flops):
    cold = flops.prefill(10_000)
    warm = flops.prefill(1_000, num_cached_tokens=9_000)
    assert warm.dense_flops == pytest.approx(cold.dense_flops / 10)
    assert warm.total < cold.total


def test_cached_prefix_attention_still_covers_full_context(flops):
    warm = flops.prefill(1_000, num_cached_tokens=9_000)
    cold_short = flops.prefill(1_000)
    assert warm.attention_flops > cold_short.attention_flops


def test_decode_step_is_tiny_compared_to_prefill(flops):
    prefill = flops.prefill(2048).total
    decode = flops.decode_step(2048).total
    assert decode < prefill / 100


def test_decode_sequence_accumulates(flops):
    total = flops.decode_sequence(1000, 10).total
    single = flops.decode_step(1000).total
    assert total > 10 * single * 0.99


def test_negative_tokens_rejected(flops):
    with pytest.raises(ValueError):
        flops.prefill(-1)
    with pytest.raises(ValueError):
        flops.decode_step(-5)
