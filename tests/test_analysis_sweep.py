"""Tests for the QPS sweep harness (Figures 6/7/8/9 machinery)."""

import pytest

from repro.analysis.sweep import (
    PAPER_QPS_MULTIPLIERS,
    base_throughput,
    compare_engines,
    paper_qps_points,
    qps_sweep,
    run_once,
    throughput_comparison,
)
from repro.baselines import paged_attention_spec, tensor_parallel_spec
from repro.core.engine import prefillonly_engine_spec
from repro.errors import ConfigurationError
from repro.hardware.cluster import get_hardware_setup


def test_run_once_completes_all_requests(h100_setup, small_post_trace):
    result = run_once(prefillonly_engine_spec(), h100_setup, small_post_trace, qps=5.0)
    assert result.num_finished == len(small_post_trace)


def test_base_throughput_positive(h100_setup, small_post_trace):
    assert base_throughput(prefillonly_engine_spec(), h100_setup, small_post_trace) > 0


def test_paper_qps_points_grid():
    points = paper_qps_points(10.0)
    assert points == [2.5, 5.0, 10.0, 20.0, 30.0, 40.0]
    assert len(PAPER_QPS_MULTIPLIERS) == 6
    with pytest.raises(ConfigurationError):
        paper_qps_points(0.0)


def test_qps_sweep_returns_one_point_per_rate(h100_setup, small_post_trace):
    points = qps_sweep(prefillonly_engine_spec(), h100_setup, small_post_trace, [2.0, 20.0])
    assert len(points) == 2
    assert points[0].qps == 2.0
    assert points[1].qps == 20.0
    assert all(point.mean_latency > 0 for point in points)


def test_latency_grows_with_offered_load(h100_setup, small_post_trace):
    points = qps_sweep(prefillonly_engine_spec(), h100_setup, small_post_trace, [1.0, 50.0])
    assert points[-1].mean_latency > points[0].mean_latency
    assert points[-1].p99_latency >= points[-1].mean_latency


def test_infeasible_engine_returns_empty_sweep(small_credit_trace):
    setup = get_hardware_setup("a100")
    points = qps_sweep(paged_attention_spec(), setup, small_credit_trace, [0.1])
    assert points == []


def test_compare_engines_covers_all_specs(l4_setup, small_post_trace):
    specs = [prefillonly_engine_spec(), paged_attention_spec()]
    results = compare_engines(specs, l4_setup, small_post_trace, [5.0])
    assert set(results) == {"prefillonly", "paged-attention"}
    assert all(len(points) == 1 for points in results.values())


def test_throughput_comparison_reports_every_engine(h100_setup, small_post_trace):
    specs = [prefillonly_engine_spec(), tensor_parallel_spec()]
    result = throughput_comparison(specs, h100_setup, small_post_trace)
    assert set(result) == {"prefillonly", "tensor-parallel"}
    assert result["prefillonly"] > 0


def test_throughput_comparison_marks_infeasible_as_zero(small_credit_trace):
    setup = get_hardware_setup("a100")
    result = throughput_comparison([paged_attention_spec()], setup, small_credit_trace)
    assert result["paged-attention"] == 0.0


def test_sweep_point_as_dict(h100_setup, small_post_trace):
    point = qps_sweep(prefillonly_engine_spec(), h100_setup, small_post_trace, [5.0])[0]
    payload = point.as_dict()
    assert payload["engine"] == "prefillonly"
    assert payload["workload"] == "post-recommendation"
    assert payload["qps"] == 5.0
