"""Tests for the maximum-input-length analysis (Table 2)."""

import pytest

from repro.analysis.mil import max_input_length, mil_table, workload_feasibility
from repro.baselines import (
    chunked_prefill_spec,
    paged_attention_spec,
    pipeline_parallel_spec,
    tensor_parallel_spec,
)
from repro.core.engine import prefillonly_engine_spec
from repro.core.profile_run import run_profile
from repro.errors import CapacityError
from repro.hardware.cluster import get_hardware_setup
from repro.model.config import get_model


def test_mil_boundary_is_exact(llama_8b, l4_gpu):
    spec = paged_attention_spec()
    mil = max_input_length(spec, llama_8b, l4_gpu)
    run_profile(llama_8b, l4_gpu, max_input_length=mil, mode=spec.prefill_mode)
    with pytest.raises(CapacityError):
        run_profile(llama_8b, l4_gpu, max_input_length=mil + 1, mode=spec.prefill_mode)


def test_model_too_large_reports_zero(llama_70b, l4_gpu):
    assert max_input_length(paged_attention_spec(), llama_70b, l4_gpu) == 0


def test_table2_ordering_on_l4(llama_8b, l4_gpu):
    """PagedAttention < chunked prefill < PrefillOnly, with parallel engines ahead of paged."""
    paged = max_input_length(paged_attention_spec(), llama_8b, l4_gpu)
    chunked = max_input_length(chunked_prefill_spec(), llama_8b, l4_gpu)
    prefillonly = max_input_length(prefillonly_engine_spec(), llama_8b, l4_gpu)
    pipeline = max_input_length(pipeline_parallel_spec(), llama_8b, l4_gpu)
    tensor = max_input_length(tensor_parallel_spec(), llama_8b, l4_gpu)
    assert paged < chunked < prefillonly
    assert paged < pipeline
    assert paged < tensor


def test_prefillonly_expands_mil_by_multiple_of_paged(qwen_32b, a100_gpu):
    """§7: PrefillOnly expands the MIL severalfold over the vanilla engine."""
    paged = max_input_length(paged_attention_spec(), qwen_32b, a100_gpu)
    prefillonly = max_input_length(prefillonly_engine_spec(), qwen_32b, a100_gpu)
    assert prefillonly > 4 * paged


def test_paged_attention_a100_mil_close_to_paper(qwen_32b, a100_gpu):
    """Table 2 reports 11,000 tokens for PagedAttention on A100/Qwen-32B."""
    mil = max_input_length(paged_attention_spec(), qwen_32b, a100_gpu)
    assert 8_000 < mil < 25_000


def test_chunked_prefill_roughly_doubles_paged(llama_8b, l4_gpu):
    paged = max_input_length(paged_attention_spec(), llama_8b, l4_gpu)
    chunked = max_input_length(chunked_prefill_spec(), llama_8b, l4_gpu)
    assert 1.3 < chunked / paged < 2.6


def test_workload_feasibility_marks():
    checks = workload_feasibility(50_000, {"WL1": 17_500, "WL2": 61_000})
    by_name = {check.workload: check.feasible for check in checks}
    assert by_name == {"WL1": True, "WL2": False}


def test_mil_table_shape_and_feasibility_columns():
    specs = [paged_attention_spec(), prefillonly_engine_spec()]
    setups = [get_hardware_setup("l4"), get_hardware_setup("a100")]
    rows = mil_table(specs, setups, get_model,
                     workload_max_tokens={"WL1": 17_500, "WL2": 61_000})
    assert len(rows) == 4
    for row in rows:
        assert {"engine", "hardware", "max_input_length", "feasible[WL1]", "feasible[WL2]"} <= row.keys()
    paged_a100 = next(r for r in rows if r["engine"] == "paged-attention" and r["hardware"] == "a100")
    assert not paged_a100["feasible[WL1]"]
    prefill_a100 = next(r for r in rows if r["engine"] == "prefillonly" and r["hardware"] == "a100")
    assert prefill_a100["feasible[WL2]"]
