"""Tests for GPU specs, interconnects, and the hardware setup registry."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import (
    HARDWARE_SETUPS,
    ClusterSpec,
    get_hardware_setup,
    list_hardware_setups,
    make_cluster,
)
from repro.hardware.gpu import A100_40GB, H100_80GB, L4, get_gpu, list_gpus
from repro.hardware.interconnect import (
    NVLINK,
    PCIE_GEN4,
    allreduce_time,
    get_interconnect,
    point_to_point_time,
)


def test_gpu_registry():
    assert set(list_gpus()) == {"l4", "a100-40gb", "h100-80gb"}
    assert get_gpu("l4") is L4
    with pytest.raises(ConfigurationError):
        get_gpu("tpu-v5")


def test_gpu_memory_ordering():
    assert L4.memory_bytes < A100_40GB.memory_bytes < H100_80GB.memory_bytes


def test_gpu_compute_ordering():
    assert L4.bf16_flops < A100_40GB.bf16_flops < H100_80GB.bf16_flops


def test_fp8_path_selected_for_quantised_weights():
    assert H100_80GB.matmul_flops(1.0) == H100_80GB.fp8_flops
    assert H100_80GB.matmul_flops(2.0) == H100_80GB.bf16_flops


def test_sustained_flops_below_peak():
    assert L4.sustained_flops(2.0) < L4.bf16_flops


def test_interconnect_registry():
    assert get_interconnect("nvlink") is NVLINK
    with pytest.raises(ConfigurationError):
        get_interconnect("infiniband")


def test_nvlink_is_much_faster_than_pcie():
    assert NVLINK.bandwidth > 10 * PCIE_GEN4.bandwidth


def test_allreduce_time_scales_with_message_size():
    small = allreduce_time(1 << 20, 2, PCIE_GEN4)
    large = allreduce_time(1 << 30, 2, PCIE_GEN4)
    assert large > 100 * small


def test_allreduce_on_one_gpu_is_free():
    assert allreduce_time(1 << 30, 1, PCIE_GEN4) == 0.0


def test_allreduce_requires_positive_gpus():
    with pytest.raises(ConfigurationError):
        allreduce_time(1024, 0, PCIE_GEN4)


def test_point_to_point_includes_latency():
    assert point_to_point_time(0, NVLINK) == pytest.approx(NVLINK.latency)


def test_hardware_setup_registry_matches_table3():
    assert list_hardware_setups() == ["l4", "a100", "h100", "h100-nvlink"]
    assert get_hardware_setup("l4").model_name == "llama-3.1-8b"
    assert get_hardware_setup("a100").model_name == "qwen-32b-fp8"
    assert get_hardware_setup("h100").model_name == "llama-3.3-70b-fp8"
    assert get_hardware_setup("h100-nvlink").cluster.interconnect is NVLINK
    with pytest.raises(ConfigurationError):
        get_hardware_setup("tpu-pod")


def test_every_setup_has_two_gpus():
    for setup in HARDWARE_SETUPS.values():
        assert setup.cluster.num_gpus == 2


def test_cluster_total_memory():
    cluster = make_cluster("l4", num_gpus=2)
    assert cluster.total_memory_bytes == 2 * L4.memory_bytes


def test_cluster_requires_at_least_one_gpu():
    with pytest.raises(ConfigurationError):
        ClusterSpec(gpu=L4, num_gpus=0, interconnect=PCIE_GEN4)


def test_setup_describe_includes_scenario():
    info = get_hardware_setup("h100-nvlink").describe()
    assert info["scenario"] == "High-end GPU w/ NVLink"
    assert info["model"] == "llama-3.3-70b-fp8"
