"""Tests for the model architecture registry and derived sizes."""

import pytest

from repro.errors import ConfigurationError
from repro.model.config import (
    LLAMA_3_1_8B,
    LLAMA_3_3_70B_FP8,
    QWEN_32B_FP8,
    ModelConfig,
    get_model,
    list_models,
)


def test_registry_contains_the_three_paper_models():
    assert set(list_models()) == {"llama-3.1-8b", "qwen-32b-fp8", "llama-3.3-70b-fp8"}


def test_get_model_unknown_name_raises():
    with pytest.raises(ConfigurationError):
        get_model("gpt-5")


def test_llama8b_parameter_count_is_about_8_billion():
    params = LLAMA_3_1_8B.num_parameters
    assert 7.0e9 < params < 9.0e9


def test_qwen32b_parameter_count_is_about_32_billion():
    params = QWEN_32B_FP8.num_parameters
    assert 30e9 < params < 37e9


def test_llama70b_parameter_count_is_about_70_billion():
    params = LLAMA_3_3_70B_FP8.num_parameters
    assert 65e9 < params < 75e9


def test_llama8b_kv_cache_size_matches_paper_example():
    """§2.1: a 100,000-token request is roughly 12 GB of KV cache on Llama-3.1-8B."""
    total_gib = 100_000 * LLAMA_3_1_8B.kv_bytes_per_token / (1 << 30)
    assert 10 < total_gib < 14


def test_llama8b_mlp_intermediate_matches_figure4():
    """Figure 4: the fused gate+up tensor has 28,672 elements per token."""
    assert LLAMA_3_1_8B.mlp_intermediate_elements_per_token == 28_672


def test_fp8_models_have_smaller_weight_footprint():
    assert QWEN_32B_FP8.weight_bytes < QWEN_32B_FP8.num_parameters * 2
    assert LLAMA_3_3_70B_FP8.weight_bytes == pytest.approx(
        LLAMA_3_3_70B_FP8.num_parameters, rel=0.01
    )


def test_describe_reports_key_dimensions():
    info = LLAMA_3_1_8B.describe()
    assert info["num_layers"] == 32
    assert info["hidden_size"] == 4096
    assert info["parameters_billions"] == pytest.approx(8.0, abs=1.0)


def test_invalid_head_configuration_rejected():
    with pytest.raises(ConfigurationError):
        ModelConfig(
            name="bad",
            display_name="bad",
            num_layers=2,
            hidden_size=64,
            num_attention_heads=6,
            num_kv_heads=4,
            head_dim=16,
            intermediate_size=128,
            vocab_size=100,
        )


def test_q_and_kv_dims():
    assert LLAMA_3_1_8B.q_dim == 4096
    assert LLAMA_3_1_8B.kv_dim == 1024
