"""Byte-identity pins for the fault subsystem's disabled state.

The acceptance criterion: with ``"faults"`` absent or disabled, the fleet and
every cookbook scenario produce byte-identical results to pre-PR behaviour —
no fault code path may perturb a fault-free run.  Also pins cross-process
reproducibility of chaos runs (the scenario suite re-derives everything from
explicit seeds in worker processes).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.faults import FaultSchedule
from repro.simulation.arrival import UniformArrivalProcess
from repro.simulation.scenario import run_scenario, run_scenario_suite, scenario_from_dict
from repro.simulation.simulator import simulate_fleet

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "examples" / "scenarios"
CHAOS_CONFIGS = sorted(SCENARIO_DIR.glob("chaos_*.json"))


def test_disabled_faults_fleet_is_byte_identical(h100_setup, small_post_trace):
    """None and a disabled schedule must not change a single fleet metric."""
    def run(faults):
        fleet = Fleet.for_setup(
            prefillonly_engine_spec(), h100_setup,
            max_input_length=small_post_trace.max_request_tokens, num_replicas=2,
        )
        requests = UniformArrivalProcess(rate=3.0).assign(list(small_post_trace.requests))
        return simulate_fleet(fleet, requests, faults=faults)

    plain = run(None)
    disabled = run(FaultSchedule([], enabled=False))
    key = lambda record: record.request_id  # noqa: E731
    assert sorted(disabled.finished, key=key) == sorted(plain.finished, key=key)
    assert disabled.summary == plain.summary
    assert disabled.fleet == plain.fleet
    assert disabled.fleet.as_dict() == plain.fleet.as_dict()
    assert disabled.cache_stats == plain.cache_stats
    assert disabled.num_events == plain.num_events
    # No resilience section (and no resilience report columns) without faults.
    assert plain.fleet.resilience is None
    assert "num_crashes" not in plain.fleet.as_dict()


@pytest.mark.parametrize(
    "config_path", sorted(SCENARIO_DIR.glob("*.json")), ids=lambda p: p.stem
)
def test_scenario_summaries_identical_with_default_off_faults(config_path):
    """Adding ``"faults": {"enabled": false}`` changes nothing, per config."""
    config = json.loads(config_path.read_text(encoding="utf-8"))
    config.pop("faults", None)  # the chaos cookbook configs: compare both off
    baseline = run_scenario(scenario_from_dict(json.loads(json.dumps(config))))
    config["faults"] = {"enabled": False}
    disabled = run_scenario(scenario_from_dict(config))
    assert disabled.result.summary == baseline.result.summary
    assert disabled.result.fleet == baseline.result.fleet
    assert [t.as_dict() for t in disabled.tenants] == [
        t.as_dict() for t in baseline.tenants
    ]
    # Fault-free tenant rows must not grow a "retried" column — unless the
    # config carries an active resilience block, whose policies keep the
    # resilience accounting (and its retried counter) alive without chaos.
    if scenario_from_dict(json.loads(json.dumps(config))).resilience is None:
        assert all("retried" not in t.as_dict() for t in baseline.tenants)


@pytest.mark.parametrize("config_path", CHAOS_CONFIGS, ids=lambda p: p.stem)
def test_chaos_scenarios_are_bit_reproducible_across_processes(config_path):
    """A fixed scenario seed reproduces the chaos run in a worker process."""
    serial = run_scenario_suite([config_path])
    parallel = run_scenario_suite([config_path] * 2, max_workers=2)
    for other in parallel:
        assert other.result.summary == serial[0].result.summary
        assert other.result.fleet == serial[0].result.fleet
        assert [t.as_dict() for t in other.tenants] == [
            t.as_dict() for t in serial[0].tenants
        ]


def test_chaos_cookbook_configs_inject_faults():
    """The shipped chaos configs actually exercise the subsystem."""
    assert CHAOS_CONFIGS, "expected chaos_*.json cookbook configs"
    for path in CHAOS_CONFIGS:
        result = run_scenario_suite([path])[0]
        resilience = result.result.fleet.resilience
        assert resilience is not None
        assert resilience.num_faults > 0
        assert all(t.retried is not None for t in result.tenants)
