"""Tests for the engine spec and the simulated engine instance."""

import pytest

from repro.baselines import (
    chunked_prefill_spec,
    paged_attention_spec,
    pipeline_parallel_spec,
    tensor_parallel_spec,
)
from repro.core.engine import EngineInstance, prefillonly_engine_spec
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.interconnect import PCIE_GEN4
from repro.kvcache.manager import CommitPolicy
from repro.model.memory import PrefillMode
from repro.workloads.trace import Request, TokenSegment, TokenSequence


def make_request(request_id: int, num_tokens: int, *, user: str = "u0",
                 shared_content: int | None = None, shared_tokens: int = 0) -> Request:
    segments = []
    if shared_content is not None and shared_tokens > 0:
        segments.append(TokenSegment(shared_content, shared_tokens))
    remaining = num_tokens - shared_tokens
    if remaining > 0:
        segments.append(TokenSegment(1000 + request_id, remaining))
    return Request(request_id=request_id, user_id=user, sequence=TokenSequence(segments))


def make_instance(spec, model, gpu, *, mil: int = 20_000, interconnect=None) -> EngineInstance:
    return EngineInstance(spec, model, gpu, interconnect=interconnect, max_input_length=mil)


# ----------------------------------------------------------------- spec

def test_prefillonly_spec_defaults():
    spec = prefillonly_engine_spec()
    assert spec.prefill_mode is PrefillMode.HYBRID
    assert spec.scheduling_policy == "srjf-calibrated"
    assert spec.commit_policy is CommitPolicy.SUFFIX_DISCARD
    assert not spec.reserve_full_kv
    assert spec.gpus_per_instance == 1


def test_baseline_specs_use_fcfs_and_full_kv():
    for spec in (paged_attention_spec(), chunked_prefill_spec(),
                 tensor_parallel_spec(), pipeline_parallel_spec()):
        assert spec.scheduling_policy == "fcfs"
        assert spec.reserve_full_kv


def test_parallel_specs_occupy_two_gpus():
    assert tensor_parallel_spec().gpus_per_instance == 2
    assert pipeline_parallel_spec().gpus_per_instance == 2


def test_spec_with_overrides():
    spec = prefillonly_engine_spec().with_overrides(fairness_lambda=0.0)
    assert spec.fairness_lambda == 0.0
    assert spec.name == "prefillonly"


def test_invalid_spec_rejected():
    with pytest.raises(ConfigurationError):
        prefillonly_engine_spec().with_overrides(tensor_parallel=0)
    with pytest.raises(ConfigurationError):
        prefillonly_engine_spec().with_overrides(chunk_tokens=0)


# ----------------------------------------------------------- single engine

def test_submit_and_drain_single_request(llama_8b, l4_gpu):
    instance = make_instance(prefillonly_engine_spec(), llama_8b, l4_gpu)
    request = make_request(0, 8_000)
    assert instance.submit(request, now=0.0)
    instance.advance_to(0.0)
    assert instance.num_running == 1
    finished = instance.drain_until()
    assert len(finished) == 1
    record = finished[0]
    assert record.execution_time > 0
    assert record.finish_time >= record.start_time >= record.arrival_time
    assert instance.is_idle()


def test_request_beyond_mil_is_rejected(llama_8b, l4_gpu):
    instance = make_instance(prefillonly_engine_spec(), llama_8b, l4_gpu, mil=10_000)
    accepted = instance.submit(make_request(0, 15_000), now=0.0)
    assert not accepted
    assert len(instance.rejected_requests) == 1
    assert "maximum" in instance.rejected_requests[0].rejection_reason


def test_parallel_engine_without_interconnect_rejected(llama_8b, l4_gpu):
    with pytest.raises(ConfigurationError):
        make_instance(tensor_parallel_spec(), llama_8b, l4_gpu)


def test_infeasible_profile_run_raises(llama_70b, l4_gpu):
    with pytest.raises(CapacityError):
        make_instance(paged_attention_spec(), llama_70b, l4_gpu, mil=10_000)


def test_prefix_cache_hit_reduces_execution_time(llama_8b, l4_gpu):
    instance = make_instance(prefillonly_engine_spec(), llama_8b, l4_gpu)
    first = make_request(0, 12_000, shared_content=7, shared_tokens=11_000)
    second = make_request(1, 12_000, shared_content=7, shared_tokens=11_000)
    instance.submit(first, now=0.0)
    instance.advance_to(0.0)
    finished = instance.drain_until()
    instance.submit(second, now=finished[0].finish_time)
    instance.advance_to(finished[0].finish_time)
    finished2 = instance.drain_until()
    assert finished2[0].cached_tokens > 10_000
    assert finished2[0].execution_time < finished[0].execution_time / 3


def test_fcfs_engine_runs_in_arrival_order(llama_8b, l4_gpu):
    instance = make_instance(paged_attention_spec(), llama_8b, l4_gpu, mil=16_000)
    instance.submit(make_request(0, 12_000), now=0.0)
    instance.submit(make_request(1, 2_000), now=0.001)
    instance.advance_to(0.001)
    finished = instance.drain_until()
    assert [record.request_id for record in finished] == [0, 1]


def test_srjf_engine_runs_short_request_first(llama_8b, l4_gpu):
    spec = prefillonly_engine_spec(fairness_lambda=0.0)
    instance = make_instance(spec, llama_8b, l4_gpu)
    # Both requests are waiting before the engine starts working.
    instance.submit(make_request(0, 12_000), now=0.0)
    instance.submit(make_request(1, 2_000), now=0.0)
    instance.advance_to(0.0)
    finished = instance.drain_until()
    assert [record.request_id for record in finished] == [1, 0]


def test_pipeline_engine_overlaps_two_requests(llama_8b, l4_gpu):
    spec = pipeline_parallel_spec()
    instance = make_instance(spec, llama_8b, l4_gpu, interconnect=PCIE_GEN4, mil=16_000)
    instance.submit(make_request(0, 8_000, user="a"), now=0.0)
    instance.submit(make_request(1, 8_000, user="b"), now=0.0)
    instance.advance_to(0.0)
    finished = instance.drain_until()
    assert len(finished) == 2
    # With two stages, the second request starts before the first finishes.
    assert finished[1].start_time < finished[0].finish_time
    # And the makespan is shorter than running the two back to back.
    sequential = 2 * finished[0].execution_time
    assert finished[1].finish_time - finished[0].start_time < sequential


def test_engine_busy_time_tracks_utilisation(llama_8b, l4_gpu):
    instance = make_instance(prefillonly_engine_spec(), llama_8b, l4_gpu)
    instance.submit(make_request(0, 8_000), now=0.0)
    instance.advance_to(0.0)
    finished = instance.drain_until()
    assert instance.busy_time == pytest.approx(finished[0].execution_time, rel=1e-6)


def test_finished_request_latency_accounting(llama_8b, l4_gpu):
    instance = make_instance(prefillonly_engine_spec(), llama_8b, l4_gpu)
    instance.submit(make_request(0, 4_000), now=1.5)
    instance.advance_to(1.5)
    record = instance.drain_until()[0]
    assert record.arrival_time == 1.5
    assert record.latency == pytest.approx(record.queueing_time + record.execution_time)


def test_engine_cache_stats_exposed(llama_8b, l4_gpu):
    instance = make_instance(prefillonly_engine_spec(), llama_8b, l4_gpu)
    instance.submit(make_request(0, 8_000, shared_content=3, shared_tokens=7_000), now=0.0)
    instance.advance_to(0.0)
    instance.drain_until()
    stats = instance.kv.stats()
    assert stats.requests == 1
    assert stats.tokens_total == 8_000
