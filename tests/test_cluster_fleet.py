"""Tests for the cluster fleet layer (replicas, admission, autoscaling)."""

import pytest

from repro.cluster import (
    Fleet,
    QueueDepthAdmission,
    ReactiveAutoscaler,
    ReplicaSpec,
)
from repro.core.engine import prefillonly_engine_spec
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.model.config import get_model
from repro.simulation.arrival import PoissonArrivalProcess, UniformArrivalProcess
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import simulate, simulate_fleet
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def tiny_trace():
    return get_workload("post-recommendation", num_users=4, posts_per_user=6, seed=7)


def build_fleet(setup, trace, **kwargs):
    return Fleet.for_setup(
        prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens, **kwargs,
    )


def arrivals(trace, rate=3.0):
    return UniformArrivalProcess(rate=rate).assign(list(trace.requests))


# ------------------------------------------------------------- construction


def test_fleet_requires_at_least_one_replica(h100_setup, tiny_trace):
    with pytest.raises(ConfigurationError):
        Fleet([], get_model(h100_setup.model_name),
              max_input_length=tiny_trace.max_request_tokens)


def test_for_setup_defaults_to_one_replica_per_gpu(h100_setup, tiny_trace):
    fleet = build_fleet(h100_setup, tiny_trace)
    assert fleet.num_replicas == h100_setup.cluster.num_gpus
    assert [r.name for r in fleet.replicas] == ["prefillonly-0", "prefillonly-1"]


def test_heterogeneous_replica_specs(h100_setup, tiny_trace):
    spec = prefillonly_engine_spec()
    model = get_model("llama-3.1-8b")
    replicas = [
        ReplicaSpec(engine=spec, gpu=h100_setup.cluster.gpu),
        ReplicaSpec(engine=spec.with_overrides(name="prefillonly-small",
                                               chunk_tokens=1024),
                    gpu=h100_setup.cluster.gpu),
    ]
    fleet = Fleet(replicas, model, max_input_length=tiny_trace.max_request_tokens)
    assert fleet.num_replicas == 2
    assert fleet.replicas[1].spec.chunk_tokens == 1024


# -------------------------------------------------- N=1 routing equivalence


def test_single_replica_fleet_matches_single_serving_system(h100_setup, tiny_trace):
    """A 1-replica fleet must reproduce a 1-instance ServingSystem exactly."""
    spec = prefillonly_engine_spec()
    model = get_model(h100_setup.model_name)
    cluster = ClusterSpec(gpu=h100_setup.cluster.gpu, num_gpus=1,
                          interconnect=h100_setup.cluster.interconnect)
    system = ServingSystem(spec, model, cluster,
                           max_input_length=tiny_trace.max_request_tokens)
    single = simulate(system, arrivals(tiny_trace))

    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=1)
    fleet_result = simulate_fleet(fleet, arrivals(tiny_trace))

    key = lambda record: record.request_id  # noqa: E731
    assert sorted(fleet_result.finished, key=key) == sorted(single.finished, key=key)
    assert fleet_result.summary == single.summary


def test_two_replica_fleet_matches_two_instance_serving_system(h100_setup, tiny_trace):
    """User-id routing over N replicas matches the seed ServingSystem layout."""
    system = ServingSystem.for_setup(
        prefillonly_engine_spec(), h100_setup,
        max_input_length=tiny_trace.max_request_tokens,
    )
    single = simulate(system, arrivals(tiny_trace))

    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=2)
    fleet_result = simulate_fleet(fleet, arrivals(tiny_trace))

    key = lambda record: record.request_id  # noqa: E731
    assert sorted(fleet_result.finished, key=key) == sorted(single.finished, key=key)


# --------------------------------------------------------- admission control


def test_admission_control_sheds_and_accounts(h100_setup, tiny_trace):
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=2,
                        admission=QueueDepthAdmission(2))
    requests = PoissonArrivalProcess(rate=50.0, seed=1).assign(list(tiny_trace.requests))
    result = simulate_fleet(fleet, requests)

    assert result.num_shed > 0
    # Every request is accounted for exactly once: finished, or rejected
    # (sheds are a subset of rejections).
    assert result.num_finished + result.num_rejected == len(tiny_trace)
    assert len(result.shed) == fleet.num_shed == fleet.admission.num_shed
    assert fleet.admission.num_admitted == fleet.stats.num_routed
    for record in result.shed:
        assert record.rejected
        assert record.rejection_reason.startswith("admission control:")
    assert result.fleet.num_shed == result.num_shed


def test_no_admission_policy_admits_everything(h100_setup, tiny_trace):
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=2)
    requests = PoissonArrivalProcess(rate=50.0, seed=1).assign(list(tiny_trace.requests))
    result = simulate_fleet(fleet, requests)
    assert result.num_shed == 0
    assert result.num_finished == len(tiny_trace)


def test_queue_depth_admission_validation():
    with pytest.raises(ConfigurationError):
        QueueDepthAdmission(0)
    with pytest.raises(ConfigurationError):
        QueueDepthAdmission(2, max_total_depth=0)


def test_fleet_total_depth_shedding(h100_setup, tiny_trace):
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=2,
                        admission=QueueDepthAdmission(100, max_total_depth=3))
    requests = PoissonArrivalProcess(rate=50.0, seed=1).assign(list(tiny_trace.requests))
    result = simulate_fleet(fleet, requests)
    assert result.num_shed > 0
    assert "fleet queue depth" in result.shed[0].rejection_reason


# ------------------------------------------------------------- autoscaling


def test_autoscaler_scales_up_under_overload(h100_setup, tiny_trace):
    autoscaler = ReactiveAutoscaler(
        min_replicas=1, max_replicas=4,
        scale_up_rps_per_replica=1.5,
        window_seconds=2.0, cooldown_seconds=3.0,
    )
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=1, autoscaler=autoscaler)
    result = simulate_fleet(fleet, arrivals(tiny_trace, rate=4.0))
    assert fleet.stats.num_scale_ups >= 1
    assert fleet.stats.peak_replicas > 1
    assert result.num_finished == len(tiny_trace)
    assert result.fleet.scale_events[0]["direction"] == "up"


def test_autoscaler_hysteresis_no_flapping_under_constant_load(h100_setup, tiny_trace):
    """Constant load inside the hysteresis band must not cause oscillation."""
    autoscaler = ReactiveAutoscaler(
        min_replicas=1, max_replicas=4,
        scale_up_rps_per_replica=3.0,
        scale_down_rps_per_replica=1.0,
        window_seconds=2.0, cooldown_seconds=1.0,
    )
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=2, autoscaler=autoscaler)
    # 4 rps over 2 replicas = 2 rps/replica: inside the (1.0, 3.0) band.
    result = simulate_fleet(fleet, arrivals(tiny_trace, rate=4.0))
    in_flight_events = [
        event for event in fleet.scale_events
        if event.time < max(r.arrival_time for r in tiny_trace.requests)
    ]
    assert in_flight_events == []
    assert result.num_finished == len(tiny_trace)


def test_autoscaler_scales_down_when_idle(h100_setup, tiny_trace):
    autoscaler = ReactiveAutoscaler(
        min_replicas=1, max_replicas=4,
        scale_up_rps_per_replica=100.0,
        scale_down_rps_per_replica=0.5,
        window_seconds=1.0, cooldown_seconds=0.5,
    )
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=3, autoscaler=autoscaler)
    result = simulate_fleet(fleet, arrivals(tiny_trace, rate=1.0))
    assert fleet.stats.num_scale_downs >= 1
    # Draining preserves every completion record.
    assert result.num_finished == len(tiny_trace)


def test_autoscaler_threshold_validation():
    with pytest.raises(ConfigurationError):
        ReactiveAutoscaler(scale_up_rps_per_replica=0.0)
    with pytest.raises(ConfigurationError):
        ReactiveAutoscaler(scale_up_rps_per_replica=1.0, scale_down_rps_per_replica=2.0)
    with pytest.raises(ConfigurationError):
        ReactiveAutoscaler(min_replicas=0, scale_up_rps_per_replica=1.0)


def test_manual_scale_down_drains_without_losing_requests(h100_setup, tiny_trace):
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=3)
    requests = arrivals(tiny_trace, rate=100.0)
    for request in requests[:6]:
        fleet.submit(request, request.arrival_time)
    fleet.scale_down(now=1.0, reason="test")
    assert fleet.num_replicas == 2
    while fleet.next_event_time() is not None:
        fleet.advance_to(fleet.next_event_time())
    assert len(fleet.finished_requests()) == 6
    # Retirement never orphans an in-flight execution lease: every replica
    # the fleet ever ran ends with zero outstanding leases.
    for state in fleet._all_serving() + fleet._retired:
        assert state.instance.kv.num_active_leases == 0
    with pytest.raises(ConfigurationError):
        fleet.scale_down(now=2.0)
        fleet.scale_down(now=2.0)


def test_scale_down_flushes_radix_tree_through_commit_policy(h100_setup, tiny_trace):
    """A retiring replica's cached prefixes flush via its commit policy.

    With the SUFFIX_OFFLOAD policy the drain stores the radix tree into the
    replica's offload store (visible in its stats) instead of dropping it.
    """
    from repro.core.engine import prefillonly_engine_spec
    from repro.kvcache.manager import CommitPolicy

    spec = prefillonly_engine_spec(
        commit_policy=CommitPolicy.SUFFIX_OFFLOAD, cpu_offload_gib=4.0,
    )
    fleet = Fleet.for_setup(
        spec, h100_setup,
        max_input_length=tiny_trace.max_request_tokens, num_replicas=2,
    )
    requests = arrivals(tiny_trace, rate=100.0)
    for request in requests:
        fleet.submit(request, request.arrival_time)
    while fleet.next_event_time() is not None:
        fleet.advance_to(fleet.next_event_time())
    victim = fleet.replicas[1]
    cached_blocks = victim.kv.num_cached_tokens // victim.kv.block_size
    assert cached_blocks > 0
    stored_before = victim.kv.stats().offload_stats["stored_blocks"]
    fleet.scale_down(now=1000.0, reason="test")
    assert fleet._retired and fleet._retired[0].instance is victim
    stats = victim.kv.stats().offload_stats
    # Every radix-tree block not already offloaded was flushed on retirement.
    assert stats["stored_blocks"] > stored_before
    assert victim.kv.num_active_leases == 0


# ------------------------------------------------------------ fleet metrics


def test_fleet_summary_metrics(h100_setup, tiny_trace):
    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=2)
    result = simulate_fleet(fleet, arrivals(tiny_trace))
    summary = result.fleet
    assert summary.num_replicas == 2
    assert set(summary.utilization_per_replica) == {"prefillonly-0", "prefillonly-1"}
    assert all(0.0 <= u <= 1.0 for u in summary.utilization_per_replica.values())
    assert summary.cache_hit_variance >= 0.0
    assert summary.num_shed == 0
    assert result.cache_stats and {"instance", "token_hit_rate"} <= set(result.cache_stats[0])


def test_fleet_report_formatting(h100_setup, tiny_trace):
    from repro.analysis.reporting import format_fleet_report

    fleet = build_fleet(h100_setup, tiny_trace, num_replicas=2)
    result = simulate_fleet(fleet, arrivals(tiny_trace))
    report = format_fleet_report(result)
    assert "Fleet summary" in report
    assert "prefillonly-0" in report
    assert "throughput" in report
