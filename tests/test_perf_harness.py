"""Tests for the perf-regression harness and its report driver."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.perf.harness import (
    PINNED_CASES,
    format_harness_report,
    measure_memoization,
    measure_parallel,
    run_case,
    run_harness,
    run_suite,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_pinned_suite_composition_is_stable():
    """BENCH files key on these names; renames break the perf trajectory."""
    assert list(PINNED_CASES) == [
        "single-engine", "fleet-4", "fleet-tiered", "fleet-chaos",
        "fleet-32-loop", "fleet-1024-shard", "analytic",
    ]


def test_run_case_measures_events_and_rss():
    result = run_case("fleet-4", scale="tiny")
    assert result.events > 0
    assert result.wall_s > 0
    assert result.events_per_s > 0
    assert result.peak_rss_kib > 0
    assert result.signature  # non-empty canonical JSON


def test_run_case_unknown_name():
    with pytest.raises(ConfigurationError):
        run_case("nope", scale="tiny")
    with pytest.raises(ConfigurationError):
        run_suite("huge")


def test_case_signatures_are_reproducible():
    first = run_case("single-engine", scale="tiny")
    second = run_case("single-engine", scale="tiny")
    assert first.signature == second.signature
    assert first.events == second.events


def test_measure_memoization_asserts_identity():
    report = measure_memoization("tiny")
    assert report["identical"] is True
    assert report["disabled_wall_s"] > 0
    assert report["enabled_wall_s"] > 0
    assert len(report["cases_disabled"]) == len(PINNED_CASES)


def test_measure_parallel_asserts_identity():
    report = measure_parallel("tiny", workers=2, clamp_to_cores=False)
    assert report["identical"] is True
    assert report["tasks"] > 0
    assert report["workers"] == 2


def test_run_harness_writes_bench_file(tmp_path):
    report = run_harness("unittest", scale="tiny", out_dir=tmp_path,
                         memo_comparison=False, parallel_check=False)
    path = tmp_path / "BENCH_unittest.json"
    assert path.exists()
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    assert on_disk["label"] == "unittest"
    assert on_disk["scale"] == "tiny"
    assert {case["name"] for case in on_disk["cases"]} == set(PINNED_CASES)
    for case in on_disk["cases"]:
        assert case["events_per_s"] > 0
        assert "signature" not in case  # signatures are in-memory only
    assert "memoization" not in on_disk
    text = format_harness_report(report)
    assert "unittest" in text and "single-engine" in text


def test_perf_report_compare_detects_regression(tmp_path):
    """The CLI compare path flags a >20% events/s drop and exits non-zero."""
    baseline = {
        "label": "base", "scale": "tiny",
        "cases": [
            {"name": "single-engine", "events_per_s": 1000.0},
            {"name": "analytic", "events_per_s": 2000.0},
        ],
    }
    regressed = {
        "label": "new", "scale": "tiny",
        "cases": [
            {"name": "single-engine", "events_per_s": 700.0},  # -30%
            {"name": "analytic", "events_per_s": 2000.0},
        ],
    }
    base_path = tmp_path / "BENCH_base.json"
    new_path = tmp_path / "BENCH_new.json"
    base_path.write_text(json.dumps(baseline))
    new_path.write_text(json.dumps(regressed))

    script = REPO_ROOT / "scripts" / "perf_report.py"

    def compare(*extra: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(script), "compare", str(base_path),
             str(new_path), *extra],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    failing = compare()
    assert failing.returncode == 1
    assert "REGRESSION" in failing.stdout

    tolerant = compare("--max-regression", "0.5")
    assert tolerant.returncode == 0

    # Same comparison, identical files: never a regression.
    clean = subprocess.run(
        [sys.executable, str(script), "compare", str(base_path), str(base_path)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert clean.returncode == 0
    assert "no regression" in clean.stdout


def test_committed_baseline_matches_schema():
    """The repo-root BENCH_pr10.json baseline stays loadable and complete."""
    path = REPO_ROOT / "BENCH_pr10.json"
    assert path.exists(), "BENCH_pr10.json baseline missing from the repo root"
    report = json.loads(path.read_text(encoding="utf-8"))
    assert report["label"] == "pr10"
    assert {case["name"] for case in report["cases"]} == set(PINNED_CASES)
    assert report["memoization"]["identical"] is True
    assert report["parallel"]["identical"] is True
    # The baseline must carry profiler phases so phase_deltas attribution
    # (scripts/perf_report.py compare) has something to diff against.
    assert any(case.get("phases") for case in report["cases"])
