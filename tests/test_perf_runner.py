"""Unit tests for the parallel experiment runner (`repro.perf.runner`)."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.perf.runner import (
    SERIAL_RUNNER,
    ParallelRunner,
    derive_task_seeds,
    resolve_runner,
)


def _square(value: int) -> int:
    return value * value


def test_serial_runner_preserves_order():
    runner = ParallelRunner(max_workers=1)
    assert runner.is_serial
    assert runner.map(_square, range(8)) == [v * v for v in range(8)]
    assert runner.last_mode == "serial"


def test_parallel_runner_preserves_order():
    runner = ParallelRunner(max_workers=2)
    results = runner.map(_square, range(16))
    assert results == [v * v for v in range(16)]
    assert runner.last_mode in ("parallel", "fallback")


def test_parallel_and_serial_results_identical():
    tasks = list(range(20))
    serial = ParallelRunner(max_workers=1).map(_square, tasks)
    parallel = ParallelRunner(max_workers=4).map(_square, tasks)
    assert serial == parallel


def test_single_task_runs_in_process():
    runner = ParallelRunner(max_workers=4)
    assert runner.map(_square, [3]) == [9]
    assert runner.last_mode == "serial"  # one task never pays for a pool


def test_zero_workers_means_serial():
    assert ParallelRunner(max_workers=0).is_serial
    assert ParallelRunner(max_workers=4, serial=True).is_serial


def test_negative_workers_rejected():
    with pytest.raises(ConfigurationError):
        ParallelRunner(max_workers=-1)
    with pytest.raises(ConfigurationError):
        ParallelRunner(chunksize=0)


def test_env_var_forces_serial(monkeypatch):
    monkeypatch.setenv("REPRO_SERIAL", "1")
    assert ParallelRunner(max_workers=4).is_serial


def _raise_oserror(value: int) -> int:
    if value == 3:
        raise FileNotFoundError(f"task {value} failed")
    return value


def test_task_exceptions_propagate_instead_of_falling_back():
    """An OSError raised *by a task* is not a pool failure: no serial rerun."""
    runner = ParallelRunner(max_workers=2)
    with pytest.raises(FileNotFoundError):
        runner.map(_raise_oserror, range(6))
    assert runner.last_mode != "fallback"


def test_resolve_runner():
    assert resolve_runner(None, None) is SERIAL_RUNNER
    assert resolve_runner(None, 3).max_workers == 3
    runner = ParallelRunner(max_workers=2)
    assert resolve_runner(runner, None) is runner
    with pytest.raises(ConfigurationError):
        resolve_runner(runner, 2)


def test_derive_task_seeds_deterministic_and_distinct():
    seeds_a = derive_task_seeds(7, 32)
    seeds_b = derive_task_seeds(7, 32)
    assert seeds_a == seeds_b
    assert len(set(seeds_a)) == 32
    # A different base seed produces a different (still deterministic) family.
    assert derive_task_seeds(8, 32) != seeds_a
    # Prefix stability: the first k seeds do not depend on the task count.
    assert derive_task_seeds(7, 8) == seeds_a[:8]
    with pytest.raises(ConfigurationError):
        derive_task_seeds(0, -1)


def test_default_worker_count_is_bounded():
    runner = ParallelRunner()
    assert 1 <= runner.max_workers <= min(os.cpu_count() or 1, 8)
