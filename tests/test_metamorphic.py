"""Metamorphic scenario fuzzing: resource knobs move metrics one way only.

Each test draws a ``(base, better)`` config pair from the mutators in
:mod:`repro.spec.fuzz` — two scenario documents identical except for one
resource knob turned strictly in the favourable direction — simulates both,
and checks the relation the knob's documentation promises:

* more replicas never lower goodput (:func:`capacity_pair_configs`);
* a deeper admission queue never sheds more requests
  (:func:`admission_pair_configs`);
* a faster tier interconnect never raises mean latency
  (:func:`interconnect_pair_configs`);
* a longer deadline never misses more deadlines
  (:func:`deadline_pair_configs`);
* hedging with loser cancellation never increases crash-lost tokens
  (:func:`hedge_pair_configs`);
* an inert ``"resilience"`` block is byte-identical to omitting it
  (:func:`breaker_toggle_configs`).

Unlike the invariant fuzzer (``test_scenario_fuzz.py``), which checks one
run against itself, these are *differential* oracles: they catch sign errors
and inverted comparisons that leave every single-run invariant intact — a
router preferring the fullest queue, an admission check shedding below the
limit, a transfer-time model dividing by bandwidth upside down.

Profiles are shared with the invariant fuzzer (``HYPOTHESIS_PROFILE=fuzz``
selects 200 examples; the tier-1 default is the 25-example smoke profile),
and both are derandomized, so the corpus each relation was verified over is
the corpus CI replays.
"""

from __future__ import annotations

import json
import os

from hypothesis import HealthCheck, assume, given, note, settings

from repro.simulation.invariants import scenario_fingerprint
from repro.simulation.scenario import build_mix, run_scenario, scenario_from_dict
from repro.spec.fuzz import (
    admission_pair_configs,
    breaker_toggle_configs,
    capacity_pair_configs,
    deadline_pair_configs,
    hedge_pair_configs,
    interconnect_pair_configs,
)

settings.register_profile(
    "fuzz",
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow, HealthCheck.data_too_large),
)
settings.register_profile("fuzz-smoke", settings.get_profile("fuzz"), max_examples=25)

_PROFILE = "fuzz" if os.environ.get("HYPOTHESIS_PROFILE") == "fuzz" else "fuzz-smoke"
fuzz_settings = settings.get_profile(_PROFILE)


def _run_pair(base: dict, better: dict):
    """Simulate both sides of a pair; skip draws whose stream is empty."""
    note(
        "replay: save either JSON below and run "
        "`prefillonly scenario run --config <file>`\n"
        "base:   " + json.dumps(base, sort_keys=True) + "\n"
        "better: " + json.dumps(better, sort_keys=True)
    )
    base_spec = scenario_from_dict(base)
    assume(build_mix(base_spec).requests)
    base_result = run_scenario(base_spec)
    better_result = run_scenario(scenario_from_dict(better))
    # Both sides must have seen the identical offered load, or the
    # comparison below compares nothing (rejected includes admission sheds,
    # so finished + rejected is every submitted request).
    assert (base_result.result.num_finished + base_result.result.num_rejected
            == better_result.result.num_finished
            + better_result.result.num_rejected)
    return base_result.result, better_result.result


@fuzz_settings
@given(pair=capacity_pair_configs())
def test_adding_replicas_never_lowers_goodput(pair):
    base, more = pair
    base_result, more_result = _run_pair(base, more)
    assert more_result.num_finished >= base_result.num_finished, (
        f"goodput fell from {base_result.num_finished} to "
        f"{more_result.num_finished} after adding "
        f"{more['replicas'] - base['replicas']} replica(s)"
    )


@fuzz_settings
@given(pair=admission_pair_configs())
def test_raising_admission_limit_never_sheds_more(pair):
    base, deeper = pair
    base_result, deeper_result = _run_pair(base, deeper)
    assert deeper_result.fleet.num_shed <= base_result.fleet.num_shed, (
        f"shed count rose from {base_result.fleet.num_shed} to "
        f"{deeper_result.fleet.num_shed} after raising max_queue_depth "
        f"from {base['max_queue_depth']} to {deeper['max_queue_depth']}"
    )


@fuzz_settings
@given(pair=interconnect_pair_configs())
def test_faster_interconnect_never_raises_mean_latency(pair):
    base, faster = pair
    base_result, faster_result = _run_pair(base, faster)
    # No admission control in this family: every request finishes on both
    # sides, so the two means average the same request population.
    assert faster_result.num_finished == base_result.num_finished
    assert (faster_result.summary.mean_latency
            <= base_result.summary.mean_latency), (
        f"mean latency rose from {base_result.summary.mean_latency:.6f}s to "
        f"{faster_result.summary.mean_latency:.6f}s on the faster link"
    )


@fuzz_settings
@given(pair=deadline_pair_configs())
def test_longer_deadline_never_misses_more(pair):
    base, longer = pair
    base_result, longer_result = _run_pair(base, longer)
    base_missed = base_result.fleet.resilience.policy["num_deadline_missed"]
    longer_missed = longer_result.fleet.resilience.policy["num_deadline_missed"]
    assert longer_missed <= base_missed, (
        f"deadline misses rose from {base_missed} to {longer_missed} after "
        f"extending the deadline from "
        f"{base['resilience']['deadline']['timeout_s']}s to "
        f"{longer['resilience']['deadline']['timeout_s']}s"
    )


@fuzz_settings
@given(pair=hedge_pair_configs())
def test_hedging_never_increases_lost_tokens(pair):
    base, hedged = pair
    base_result, hedged_result = _run_pair(base, hedged)
    base_lost = base_result.fleet.resilience.lost_work_tokens
    hedged_lost = hedged_result.fleet.resilience.lost_work_tokens
    assert hedged_lost <= base_lost, (
        f"crash-lost tokens rose from {base_lost} to {hedged_lost} with "
        f"hedging enabled — a cancelled or surviving hedge copy must never "
        f"count as lost work"
    )
    assert hedged_result.fleet.resilience.lost_work_tokens >= 0
    assert hedged_result.fleet.resilience.num_lost_in_flight >= 0


@fuzz_settings
@given(pair=breaker_toggle_configs())
def test_inert_resilience_block_is_byte_identical_to_omission(pair):
    base, toggled = pair
    base_spec = scenario_from_dict(base)
    assume(build_mix(base_spec).requests)
    base_fp = json.dumps(scenario_fingerprint(run_scenario(base_spec)),
                         sort_keys=True)
    toggled_fp = json.dumps(
        scenario_fingerprint(run_scenario(scenario_from_dict(toggled))),
        sort_keys=True,
    )
    assert base_fp == toggled_fp, (
        "an inert resilience block changed the simulation"
    )
