"""Tests for JCT profiling and estimation."""

import pytest

from repro.core.jct import JCTEstimator, JCTProfiler, jct_pearson_correlation
from repro.hardware.gpu import A100_40GB
from repro.model.config import QWEN_32B_FP8
from repro.model.latency import LatencyModel
from repro.model.memory import PrefillMode


@pytest.fixture(scope="module")
def latency_model():
    return LatencyModel(QWEN_32B_FP8, A100_40GB)


@pytest.fixture(scope="module")
def profile(latency_model):
    profiler = JCTProfiler(latency_model, mode=PrefillMode.HYBRID)
    return profiler.profile(20_000, granularity=2_000)


def test_profile_covers_the_grid(profile):
    assert len(profile) > 20
    assert max(profile.input_tokens) == 20_000
    assert all(c <= i for i, c in zip(profile.input_tokens, profile.cached_tokens))


def test_measurements_increase_with_uncached_tokens(latency_model):
    profiler = JCTProfiler(latency_model)
    assert profiler.measure(10_000, 0) > profiler.measure(10_000, 8_000)


def test_estimator_fit_predicts_profile_well(profile):
    estimator = JCTEstimator.fit(profile)
    assert estimator.r_squared(profile) > 0.98
    assert estimator.coef_uncached > 0


def test_estimator_estimates_are_monotone_in_uncached_tokens(profile):
    estimator = JCTEstimator.fit(profile)
    assert estimator.estimate(10_000, 0) > estimator.estimate(10_000, 9_000)
    assert estimator.estimate(10_000, 10_000) >= 0.0


def test_estimator_from_latency_model(latency_model):
    estimator = JCTEstimator.from_latency_model(latency_model, 20_000, granularity=2_000)
    direct = latency_model.prefill_time(10_000, mode=PrefillMode.HYBRID).total
    assert estimator.estimate(10_000, 0) == pytest.approx(direct, rel=0.15)


def test_proxy_is_cache_miss_tokens():
    assert JCTEstimator.proxy(12_000, 2_000) == 10_000
    assert JCTEstimator.proxy(1_000, 5_000) == 0


def test_pearson_correlation_matches_paper_measurement(latency_model):
    """§6.3: correlation between JCT and cache-miss tokens is ~0.987 on A100/Qwen-32B."""
    profiler = JCTProfiler(latency_model, mode=PrefillMode.HYBRID)
    profile = profiler.profile(80_000, granularity=4_000)
    correlation = jct_pearson_correlation(profile)
    assert correlation > 0.95


def test_pearson_correlation_robust_to_noise(latency_model):
    profiler = JCTProfiler(latency_model)
    noisy = profiler.profile(40_000, granularity=4_000, noise_std=0.05, seed=3)
    assert jct_pearson_correlation(noisy) > 0.9


def test_profile_rejects_invalid_input(latency_model):
    profiler = JCTProfiler(latency_model)
    with pytest.raises(ValueError):
        profiler.profile(0)


def test_fit_on_noisy_profile_still_reasonable(latency_model):
    profiler = JCTProfiler(latency_model)
    noisy = profiler.profile(40_000, granularity=4_000, noise_std=0.05, seed=1)
    estimator = JCTEstimator.fit(noisy)
    assert estimator.r_squared(noisy) > 0.9
