"""Tests for the §9 extension: offloading suffix KV to CPU instead of discarding."""

import pytest

from repro.core.engine import EngineInstance, prefillonly_engine_spec
from repro.kvcache.manager import CommitPolicy
from repro.workloads.trace import Request, TokenSegment, TokenSequence


def make_request(request_id: int, *, shared_tokens: int, unique_tokens: int,
                 user: str = "u0") -> Request:
    segments = [TokenSegment(7, shared_tokens), TokenSegment(1000 + request_id, unique_tokens)]
    return Request(request_id=request_id, user_id=user, sequence=TokenSequence(segments))


def offload_spec(cpu_offload_gib: float = 64.0):
    return prefillonly_engine_spec(
        commit_policy=CommitPolicy.SUFFIX_OFFLOAD, cpu_offload_gib=cpu_offload_gib
    )


@pytest.fixture()
def offload_instance(llama_8b, l4_gpu):
    # A deliberately large MIL so the GPU KV budget is small and the shared
    # prefix overflows into the offload store.
    return EngineInstance(offload_spec(), llama_8b, l4_gpu, max_input_length=120_000,
                          name="offload-0")


def test_offload_store_is_wired_when_policy_requests_it(offload_instance):
    assert offload_instance.kv._offload is not None  # noqa: SLF001 - white-box check


def test_no_offload_store_for_default_policy(llama_8b, l4_gpu):
    instance = EngineInstance(prefillonly_engine_spec(), llama_8b, l4_gpu,
                              max_input_length=120_000)
    assert instance.kv._offload is None  # noqa: SLF001


def test_offloaded_prefix_accelerates_repeat_requests(offload_instance):
    """The second request over the same long prefix benefits from host-offloaded KV."""
    instance = offload_instance
    gpu_budget = instance.kv.capacity_tokens
    shared = gpu_budget + 20_000  # guaranteed to overflow the GPU prefix cache
    first = make_request(0, shared_tokens=shared, unique_tokens=512)
    second = make_request(1, shared_tokens=shared, unique_tokens=512)

    instance.submit(first, now=0.0)
    instance.advance_to(0.0)
    cold = instance.drain_until()[0]
    finish = cold.finish_time

    instance.submit(second, now=finish)
    instance.advance_to(finish)
    warm = instance.drain_until()[0]

    # The warm request sees more cached tokens than the GPU alone could hold ...
    assert warm.cached_tokens > gpu_budget
    # ... and is therefore much faster than the cold one.
    assert warm.execution_time < cold.execution_time / 2


def test_discard_policy_caps_hits_at_gpu_budget(llama_8b, l4_gpu):
    """Without offloading, repeat requests can only hit what fits on the GPU."""
    instance = EngineInstance(prefillonly_engine_spec(), llama_8b, l4_gpu,
                              max_input_length=120_000)
    gpu_budget = instance.kv.capacity_tokens
    shared = gpu_budget + 20_000
    first = make_request(0, shared_tokens=shared, unique_tokens=512)
    second = make_request(1, shared_tokens=shared, unique_tokens=512)
    instance.submit(first, now=0.0)
    instance.advance_to(0.0)
    finish = instance.drain_until()[0].finish_time
    instance.submit(second, now=finish)
    instance.advance_to(finish)
    warm = instance.drain_until()[0]
    assert warm.cached_tokens <= gpu_budget


def test_offload_load_time_is_charged(offload_instance):
    """Streaming KV back from host memory is not free: execution includes transfer time."""
    instance = offload_instance
    gpu_budget = instance.kv.capacity_tokens
    shared = gpu_budget + 40_000
    first = make_request(0, shared_tokens=shared, unique_tokens=256)
    second = make_request(1, shared_tokens=shared, unique_tokens=256)
    instance.submit(first, now=0.0)
    instance.advance_to(0.0)
    finish = instance.drain_until()[0].finish_time
    instance.submit(second, now=finish)
    instance.advance_to(finish)
    warm = instance.drain_until()[0]
    # Offloaded tokens are streamed over PCIe (~25 GB/s), so the warm request
    # still takes a measurable fraction of a second.
    offloaded_tokens = warm.cached_tokens - gpu_budget
    assert offloaded_tokens > 0
    expected_transfer = (
        offloaded_tokens * instance.model.kv_bytes_per_token / 25e9
    )
    assert warm.execution_time > expected_transfer * 0.5
