"""Tests reproducing the Figure 5 scheduling example (A/B/C/D prefix scenario)."""

import pytest

from repro.analysis.scheduling_example import (
    build_example_requests,
    figure5_comparison,
    run_scheduling_example,
)


def test_example_request_lengths_follow_paper_ordering():
    requests = build_example_requests()
    lengths = {name: request.num_tokens for name, request in requests.items()}
    assert lengths["A"] < lengths["C"] < lengths["B"] < lengths["D"]


def test_example_prefix_sharing_structure():
    requests = build_example_requests()
    assert requests["A"].sequence.shared_prefix_tokens(requests["D"].sequence) > 0
    assert requests["B"].sequence.shared_prefix_tokens(requests["C"].sequence) > 0
    assert requests["A"].sequence.shared_prefix_tokens(requests["B"].sequence) == 0


def test_fifo_schedules_in_arrival_order_with_one_hit():
    result = run_scheduling_example("fcfs")
    assert result.schedule == ("A", "B", "C", "D")
    assert result.cache_hits == 1
    assert result.hit_requests == ("C",)


def test_plain_srjf_schedules_by_length_with_one_hit():
    result = run_scheduling_example("srjf")
    assert result.schedule == ("A", "C", "B", "D")
    assert result.cache_hits == 1
    assert result.hit_requests == ("B",)


def test_calibrated_srjf_reorders_d_and_gets_two_hits():
    result = run_scheduling_example("srjf-calibrated")
    assert result.schedule == ("A", "D", "C", "B")
    assert result.cache_hits == 2
    assert set(result.hit_requests) == {"D", "B"}


def test_comparison_matches_paper_figure5():
    """Figure 5's bottom line: calibration yields one more cache hit."""
    results = {result.policy: result for result in figure5_comparison()}
    assert results["fcfs"].cache_hits == 1
    assert results["srjf"].cache_hits == 1
    assert results["srjf-calibrated"].cache_hits == 2


@pytest.mark.parametrize("cache_blocks", [6, 8, 10])
def test_calibration_never_does_worse_than_plain_srjf(cache_blocks):
    plain = run_scheduling_example("srjf", cache_blocks=cache_blocks)
    calibrated = run_scheduling_example("srjf-calibrated", cache_blocks=cache_blocks)
    assert calibrated.cache_hits >= plain.cache_hits
