"""Edge-case and property tests for the lazy-deletion event heap.

The scenarios PR 2 left untested: several sources firing within
``TIME_EPSILON`` of each other, sources removed mid-heap (an autoscaler
draining a replica whose stale entries still sit in the heap), exhaustion of
an emptied queue, and — via hypothesis — equivalence of the heap against a
naive linear-scan model under random event storms, both at the data-structure
level and through the full simulation loop.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.simulation.events import TIME_EPSILON, EventQueue


# ---------------------------------------------------------- epsilon clusters


def test_pop_due_drains_everything_within_epsilon():
    queue = EventQueue()
    queue.update(0, 1.0)
    queue.update(1, 1.0 + TIME_EPSILON / 2)   # inside the window
    queue.update(2, 1.0 + TIME_EPSILON)       # exactly on the boundary
    queue.update(3, 1.0 + 3 * TIME_EPSILON)   # outside
    assert queue.pop_due(1.0, epsilon=TIME_EPSILON) == [0, 1, 2]
    assert queue.next_time() == 1.0 + 3 * TIME_EPSILON


def test_equal_times_fire_in_key_order_regardless_of_insertion_order():
    queue = EventQueue()
    for key in (5, 1, 3, 2, 4):
        queue.update(key, 2.0)
    assert queue.pop_due(2.0) == [1, 2, 3, 4, 5]


def test_popped_source_needs_update_before_firing_again():
    queue = EventQueue()
    queue.update(0, 1.0)
    assert queue.pop_due(1.0) == [0]
    # The pop cleared the recorded time: without an update the source is gone.
    assert queue.pop_due(10.0) == []
    queue.update(0, 5.0)
    assert queue.pop_due(10.0) == [0]


# ------------------------------------------------- removal mid-heap (drains)


def test_discard_with_stale_entries_mid_heap():
    """An autoscaler drain removes a source whose stale entries linger."""
    queue = EventQueue()
    queue.update(0, 1.0)
    queue.update(1, 2.0)
    queue.update(1, 1.5)   # stale (1, 2.0) entry still inside the heap
    queue.update(2, 3.0)
    queue.discard(1)       # retire the replica
    assert queue.peek() == (1.0, 0)
    assert queue.pop_due(2.5) == [0]       # key 1 never fires
    assert queue.next_time() == 3.0
    assert len(queue) == 1                 # only key 2 remains live


def test_discard_then_resurrect_key():
    """A key can be reused after discard (replica indices recycle)."""
    queue = EventQueue()
    queue.update(7, 4.0)
    queue.discard(7)
    assert queue.next_time() is None
    queue.update(7, 6.0)
    assert queue.peek() == (6.0, 7)


def test_discard_unknown_key_is_a_noop():
    queue = EventQueue()
    queue.update(0, 1.0)
    queue.discard(42)
    assert queue.peek() == (1.0, 0)


# ------------------------------------------------------------- exhaustion


def test_empty_queue_exhaustion():
    queue = EventQueue()
    assert queue.peek() is None
    assert queue.next_time() is None
    assert queue.pop_due(math.inf) == []
    assert len(queue) == 0
    # Fill, drain completely, and exhaust again.
    queue.update(0, 1.0)
    queue.update(1, 2.0)
    assert queue.pop_due(5.0) == [0, 1]
    assert queue.peek() is None
    assert queue.pop_due(math.inf) == []
    assert len(queue) == 0


def test_none_update_clears_without_discarding():
    queue = EventQueue()
    queue.update(0, 1.0)
    queue.update(0, None)
    assert queue.peek() is None
    assert len(queue) == 0
    queue.update(0, 2.0)
    assert queue.peek() == (2.0, 0)


# ----------------------------------------------------- hypothesis equivalence


class _ScanModel:
    """The seed implementation: a dict scanned linearly per query."""

    def __init__(self) -> None:
        self.times: dict[int, float | None] = {}

    def update(self, key: int, time: float | None) -> None:
        self.times[key] = time

    def discard(self, key: int) -> None:
        self.times.pop(key, None)

    def next_time(self) -> float | None:
        live = [t for t in self.times.values() if t is not None]
        return min(live) if live else None

    def pop_due(self, now: float, epsilon: float = 0.0) -> list[int]:
        due = sorted(
            (time, key) for key, time in self.times.items()
            if time is not None and time <= now + epsilon
        )
        for _, key in due:
            self.times[key] = None
        return [key for _, key in due]


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(0, 7),
                  st.one_of(st.none(), st.floats(0, 100, allow_nan=False))),
        st.tuples(st.just("discard"), st.integers(0, 7)),
        st.tuples(st.just("pop"), st.floats(0, 100, allow_nan=False),
                  st.sampled_from([0.0, TIME_EPSILON])),
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(operations=_ops)
def test_heap_matches_linear_scan_under_random_event_storms(operations):
    queue, model = EventQueue(), _ScanModel()
    for operation in operations:
        if operation[0] == "update":
            _, key, time = operation
            queue.update(key, time)
            model.update(key, time)
        elif operation[0] == "discard":
            _, key = operation
            queue.discard(key)
            model.discard(key)
        else:
            _, now, epsilon = operation
            assert queue.pop_due(now, epsilon=epsilon) == model.pop_due(now, epsilon)
        assert queue.next_time() == model.next_time()
        assert len(queue) == len([t for t in model.times.values() if t is not None])


@settings(max_examples=20, deadline=None)
@given(
    event_times=st.lists(
        st.lists(st.floats(0.001, 10.0, allow_nan=False), min_size=1, max_size=5),
        min_size=1, max_size=6,
    )
)
def test_simulation_loops_agree_under_random_storms(event_times):
    """Heap-driven and scan-driven loops fire identical event sequences.

    Each "instance" is a scripted stub that fires its pre-assigned event
    times in order; the two loop flavours of
    :func:`repro.simulation.simulator.simulate`'s event merge are emulated
    on it and must visit the same (time, instance) sequence.
    """

    class _Stub:
        def __init__(self, times: list[float]) -> None:
            self.pending = sorted(times)
            self.fired: list[float] = []

        def next_event_time(self) -> float | None:
            return self.pending[0] if self.pending else None

        def advance_to(self, now: float) -> None:
            while self.pending and self.pending[0] <= now + TIME_EPSILON:
                self.fired.append(self.pending.pop(0))

    def drive_with_heap(stubs: list[_Stub]) -> list[tuple[float, int]]:
        queue = EventQueue()
        for index, stub in enumerate(stubs):
            queue.update(index, stub.next_event_time())
        order: list[tuple[float, int]] = []
        while queue.next_time() is not None:
            now = queue.next_time()
            for key in queue.pop_due(now, epsilon=TIME_EPSILON):
                stubs[key].advance_to(now)
                order.append((now, key))
                queue.update(key, stubs[key].next_event_time())
        return order

    def drive_with_scan(stubs: list[_Stub]) -> list[tuple[float, int]]:
        order: list[tuple[float, int]] = []
        while True:
            times = [s.next_event_time() for s in stubs]
            live = [t for t in times if t is not None]
            if not live:
                return order
            now = min(live)
            for index, stub in enumerate(stubs):
                next_time = stub.next_event_time()
                if next_time is not None and next_time <= now + TIME_EPSILON:
                    stub.advance_to(now)
                    order.append((now, index))

    heap_stubs = [_Stub(times) for times in event_times]
    scan_stubs = [_Stub(times) for times in event_times]
    heap_order = drive_with_heap(heap_stubs)
    scan_order = drive_with_scan(scan_stubs)
    # Within one drain the heap visits sources in event-time order while the
    # scan visits them in index order; sources are independent, so only the
    # sorted visit multiset and each source's own fired sequence must agree.
    assert sorted(heap_order) == sorted(scan_order)
    assert [s.fired for s in heap_stubs] == [s.fired for s in scan_stubs]
    assert all(not s.pending for s in heap_stubs + scan_stubs)
