"""Tests for the KV-cache manager (the engine-facing storage interface)."""

import pytest

from repro.errors import CapacityError
from repro.kvcache.block import hash_token_blocks
from repro.kvcache.manager import CommitPolicy, KVCacheManager
from repro.kvcache.offload import CPUOffloadStore


BLOCK = 16


def hashes(tokens: list[int]) -> tuple[int, ...]:
    return tuple(hash_token_blocks(tokens, BLOCK))


def make_manager(capacity_tokens: int = 64 * BLOCK, **kwargs) -> KVCacheManager:
    return KVCacheManager(capacity_tokens, block_size=BLOCK, **kwargs)


def test_lookup_misses_before_commit():
    manager = make_manager()
    request = hashes(list(range(64)))
    assert manager.lookup(request) == 0


def test_commit_then_lookup_hits():
    manager = make_manager()
    request = hashes(list(range(64)))
    lease = manager.begin_execution(request, 64, reserve_full_kv=False)
    cached = manager.finish_execution(lease, policy=CommitPolicy.SUFFIX_DISCARD)
    assert cached == 64
    assert manager.lookup(request) == 64


def test_shared_prefix_hit_across_requests():
    manager = make_manager()
    profile = list(range(48))
    first = hashes(profile + [1] * 16)
    second = hashes(profile + [2] * 16)
    lease = manager.begin_execution(first, 64, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)
    assert manager.lookup(second) == 48


def test_reserve_full_kv_requires_capacity():
    manager = make_manager(capacity_tokens=4 * BLOCK)
    request = hashes(list(range(8 * BLOCK)))
    with pytest.raises(CapacityError):
        manager.begin_execution(request, 8 * BLOCK, reserve_full_kv=True)


def test_reserve_full_kv_evicts_cached_prefixes_under_pressure():
    """A long baseline request pushes other users' prefixes out of the cache."""
    manager = make_manager(capacity_tokens=8 * BLOCK)
    resident = hashes(list(range(4 * BLOCK)))
    lease = manager.begin_execution(resident, 4 * BLOCK, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)
    assert manager.lookup(resident) == 4 * BLOCK

    long_request = hashes(list(range(1000, 1000 + 7 * BLOCK)))
    lease = manager.begin_execution(long_request, 7 * BLOCK, reserve_full_kv=True)
    assert manager.lookup(resident) < 4 * BLOCK
    manager.finish_execution(lease, policy=CommitPolicy.FULL)


def test_prefillonly_execution_does_not_evict_cached_prefixes():
    """Hybrid prefilling holds no pool blocks during execution."""
    manager = make_manager(capacity_tokens=8 * BLOCK)
    resident = hashes(list(range(4 * BLOCK)))
    lease = manager.begin_execution(resident, 4 * BLOCK, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.SUFFIX_DISCARD)

    long_request = hashes(list(range(1000, 1000 + 7 * BLOCK)))
    lease = manager.begin_execution(long_request, 7 * BLOCK, reserve_full_kv=False)
    assert manager.lookup(resident) == 4 * BLOCK
    manager.finish_execution(lease, policy=CommitPolicy.SUFFIX_DISCARD)


def test_pinned_prefix_survives_other_commits():
    manager = make_manager(capacity_tokens=6 * BLOCK)
    shared = hashes(list(range(4 * BLOCK)))
    lease = manager.begin_execution(shared, 4 * BLOCK, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)

    running = manager.begin_execution(shared, 4 * BLOCK, reserve_full_kv=False)
    assert running.cached_tokens == 4 * BLOCK
    # Another request commits and would like to evict, but the pins hold.
    other = hashes(list(range(2000, 2000 + 6 * BLOCK)))
    other_lease = manager.begin_execution(other, 6 * BLOCK, reserve_full_kv=False)
    manager.finish_execution(other_lease, policy=CommitPolicy.FULL)
    assert manager.lookup(shared) == 4 * BLOCK
    manager.finish_execution(running, policy=CommitPolicy.FULL)


def test_commit_policy_none_caches_nothing():
    manager = make_manager()
    request = hashes(list(range(64)))
    lease = manager.begin_execution(request, 64, reserve_full_kv=False)
    assert manager.finish_execution(lease, policy=CommitPolicy.NONE) == 0
    assert manager.lookup(request) == 0


def test_prefix_caching_disabled():
    manager = make_manager(enable_prefix_caching=False)
    request = hashes(list(range(64)))
    lease = manager.begin_execution(request, 64, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)
    assert manager.lookup(request) == 0
    assert manager.cache_version == 0


def test_suffix_discard_keeps_prefix_when_pool_too_small():
    manager = make_manager(capacity_tokens=3 * BLOCK)
    request = hashes(list(range(8 * BLOCK)))
    lease = manager.begin_execution(request, 8 * BLOCK, reserve_full_kv=False)
    cached = manager.finish_execution(lease, policy=CommitPolicy.SUFFIX_DISCARD)
    assert cached == 3 * BLOCK
    assert manager.lookup(request) == 3 * BLOCK


def test_suffix_offload_spills_to_cpu():
    offload = CPUOffloadStore(capacity_bytes=1 << 30, block_bytes=1 << 20)
    manager = make_manager(capacity_tokens=3 * BLOCK, offload_store=offload)
    request = hashes(list(range(8 * BLOCK)))
    lease = manager.begin_execution(request, 8 * BLOCK, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.SUFFIX_OFFLOAD)
    assert manager.lookup(request) == 3 * BLOCK
    assert manager.lookup_offloaded(request) == 0  # GPU prefix missing, offload holds suffix only
    assert offload.num_blocks == 5


def test_cache_version_advances_on_commit():
    manager = make_manager()
    version = manager.cache_version
    request = hashes(list(range(64)))
    lease = manager.begin_execution(request, 64, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)
    assert manager.cache_version > version


def test_stats_track_hits():
    manager = make_manager()
    request = hashes(list(range(64)))
    lease = manager.begin_execution(request, 64, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)
    lease = manager.begin_execution(request, 64, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)
    stats = manager.stats()
    assert stats.requests == 2
    assert stats.requests_with_hit == 1
    assert 0.0 < stats.token_hit_rate < 1.0


def test_clear_resets_cache():
    manager = make_manager()
    request = hashes(list(range(64)))
    lease = manager.begin_execution(request, 64, reserve_full_kv=False)
    manager.finish_execution(lease, policy=CommitPolicy.FULL)
    manager.clear()
    assert manager.lookup(request) == 0
    assert manager.num_cached_tokens == 0
