"""Tests for the computation-graph IR and the virtual-layer grouping pass."""

import pytest

from repro.errors import ConfigurationError
from repro.execution.tensor_graph import (
    ComputationGraph,
    GraphNode,
    OpKind,
    VirtualLayer,
    build_transformer_graph,
    group_chunkable_operations,
)
from repro.model.config import LLAMA_3_1_8B


def test_build_graph_node_count():
    graph = build_transformer_graph(LLAMA_3_1_8B)
    # embedding + 10 ops per block + final norm
    assert len(graph) == 1 + 10 * LLAMA_3_1_8B.num_layers + 1


def test_graph_has_one_attention_per_block():
    graph = build_transformer_graph(LLAMA_3_1_8B)
    assert len(graph.attention_nodes) == LLAMA_3_1_8B.num_layers


def test_all_non_attention_ops_are_positionwise():
    graph = build_transformer_graph(LLAMA_3_1_8B)
    for node in graph.positionwise_nodes:
        assert node.kind is not OpKind.ATTENTION
        assert node.kind.is_positionwise


def test_graph_rejects_duplicate_names():
    graph = ComputationGraph()
    graph.add(GraphNode("a", OpKind.LINEAR, (), 16))
    with pytest.raises(ConfigurationError):
        graph.add(GraphNode("a", OpKind.LINEAR, (), 16))


def test_graph_rejects_unknown_dependencies():
    graph = ComputationGraph()
    with pytest.raises(ConfigurationError):
        graph.add(GraphNode("b", OpKind.LINEAR, ("missing",), 16))


def test_grouping_alternates_virtual_layers_and_attention():
    graph = build_transformer_graph(LLAMA_3_1_8B)
    plan = group_chunkable_operations(graph)
    kinds = ["attn" if isinstance(item, GraphNode) else "virtual" for item in plan]
    # Never two attention ops in a row, and the plan starts/ends position-wise.
    assert kinds[0] == "virtual"
    assert kinds[-1] == "virtual"
    for left, right in zip(kinds, kinds[1:]):
        assert not (left == "attn" and right == "attn")


def test_grouping_counts():
    graph = build_transformer_graph(LLAMA_3_1_8B)
    plan = group_chunkable_operations(graph)
    attention = [item for item in plan if isinstance(item, GraphNode)]
    virtual = [item for item in plan if isinstance(item, VirtualLayer)]
    assert len(attention) == LLAMA_3_1_8B.num_layers
    assert len(virtual) == LLAMA_3_1_8B.num_layers + 1


def test_grouping_preserves_every_positionwise_op():
    graph = build_transformer_graph(LLAMA_3_1_8B)
    plan = group_chunkable_operations(graph)
    grouped_ops = [node.name for item in plan if isinstance(item, VirtualLayer)
                   for node in item.nodes]
    original_ops = [node.name for node in graph.positionwise_nodes]
    assert grouped_ops == original_ops


def test_virtual_layer_peak_width_is_mlp_gate_up():
    graph = build_transformer_graph(LLAMA_3_1_8B)
    plan = group_chunkable_operations(graph)
    widest = max(item.peak_intermediate_width for item in plan
                 if isinstance(item, VirtualLayer))
    assert widest == 2 * LLAMA_3_1_8B.intermediate_size


def test_lm_head_inclusion():
    graph = build_transformer_graph(LLAMA_3_1_8B, include_lm_head=True)
    assert graph.nodes[-1].name == "lm_head"
    assert graph.nodes[-1].output_width == LLAMA_3_1_8B.vocab_size
