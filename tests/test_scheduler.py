"""Tests for the FCFS / SRJF / calibrated-SRJF schedulers (Algorithm 1)."""

import pytest

from repro.core.request_state import EngineRequest
from repro.core.scheduler import FCFSScheduler, SRJFScheduler, make_scheduler
from repro.errors import SchedulingError
from repro.kvcache.manager import CommitPolicy, KVCacheManager
from repro.workloads.trace import Request, TokenSegment, TokenSequence


BLOCK = 16


def make_request(request_id: int, segments: list[tuple[int, int]], *,
                 enqueue_time: float = 0.0, user: str = "u") -> EngineRequest:
    sequence = TokenSequence([TokenSegment(cid, length) for cid, length in segments])
    request = Request(request_id=request_id, user_id=user, sequence=sequence)
    return EngineRequest(
        request=request,
        block_hashes=sequence.block_hashes(BLOCK),
        enqueue_time=enqueue_time,
    )


def make_kv(capacity_tokens: int = 100 * BLOCK) -> KVCacheManager:
    return KVCacheManager(capacity_tokens, block_size=BLOCK)


def commit(kv: KVCacheManager, engine_request: EngineRequest) -> None:
    lease = kv.begin_execution(engine_request.block_hashes, engine_request.num_tokens,
                               reserve_full_kv=False)
    kv.finish_execution(lease, policy=CommitPolicy.FULL)


def test_fcfs_picks_earliest_arrival():
    scheduler = FCFSScheduler()
    kv = make_kv()
    queue = [
        make_request(1, [(1, 64)], enqueue_time=2.0),
        make_request(2, [(2, 32)], enqueue_time=1.0),
    ]
    decision = scheduler.select(queue, kv, now=5.0)
    assert decision.request.request_id == 2


def test_fcfs_empty_queue_returns_none():
    assert FCFSScheduler().select([], make_kv(), now=0.0) is None


def test_srjf_picks_shortest_request():
    scheduler = SRJFScheduler(fairness_lambda=0.0)
    kv = make_kv()
    queue = [
        make_request(1, [(1, 320)]),
        make_request(2, [(2, 64)]),
        make_request(3, [(3, 640)]),
    ]
    decision = scheduler.select(queue, kv, now=0.0)
    assert decision.request.request_id == 2


def test_calibrated_srjf_prioritises_cache_hit_requests():
    """A longer request that hits the prefix cache beats a shorter cold one."""
    scheduler = SRJFScheduler(fairness_lambda=0.0, continuous_calibration=True)
    kv = make_kv()
    shared = (10, 512)
    cached_request = make_request(1, [shared, (11, 64)])     # 576 tokens, 512 cached
    cold_request = make_request(2, [(20, 256)])               # 256 tokens, cold
    # Populate the cache with the shared prefix.
    seed = make_request(0, [shared])
    commit(kv, seed)
    decision = scheduler.select([cached_request, cold_request], kv, now=0.0)
    assert decision.request.request_id == 1
    assert decision.cached_tokens == 512


def test_uncalibrated_srjf_misses_cache_hit_opportunity():
    """§6.2: classic SRJF scores with the JCT captured at arrival time."""
    scheduler = SRJFScheduler(fairness_lambda=0.0, continuous_calibration=False)
    kv = make_kv()
    shared = (10, 512)
    cached_request = make_request(1, [shared, (11, 64)])
    cold_request = make_request(2, [(20, 256)])
    # At arrival time the cache is empty, so both record zero cached tokens.
    scheduler.on_submit(cached_request, kv, now=0.0)
    scheduler.on_submit(cold_request, kv, now=0.0)
    # The prefix arrives *after* submission.
    commit(kv, make_request(0, [shared]))
    decision = scheduler.select([cached_request, cold_request], kv, now=1.0)
    assert decision.request.request_id == 2  # still picks the shorter cold request


def test_fairness_lambda_promotes_old_requests():
    scheduler = SRJFScheduler(fairness_lambda=500.0)
    kv = make_kv()
    old_long = make_request(1, [(1, 640)], enqueue_time=0.0)
    new_short = make_request(2, [(2, 64)], enqueue_time=9.5)
    decision = scheduler.select([old_long, new_short], kv, now=10.0)
    assert decision.request.request_id == 1


def test_zero_lambda_ignores_waiting_time():
    scheduler = SRJFScheduler(fairness_lambda=0.0)
    kv = make_kv()
    old_long = make_request(1, [(1, 640)], enqueue_time=0.0)
    new_short = make_request(2, [(2, 64)], enqueue_time=9.5)
    decision = scheduler.select([old_long, new_short], kv, now=10.0)
    assert decision.request.request_id == 2


def test_negative_lambda_rejected():
    with pytest.raises(SchedulingError):
        SRJFScheduler(fairness_lambda=-1.0)


def test_calibration_memoised_per_cache_version():
    scheduler = SRJFScheduler(fairness_lambda=0.0)
    kv = make_kv()
    request = make_request(1, [(1, 64)])
    scheduler.select([request], kv, now=0.0)
    assert request.calibration(kv.cache_version) is not None
    # A cache change invalidates the memo.
    commit(kv, make_request(2, [(2, 64)]))
    assert request.calibration(kv.cache_version) is None


def test_tie_breaks_by_request_id():
    scheduler = SRJFScheduler(fairness_lambda=0.0)
    kv = make_kv()
    queue = [make_request(5, [(1, 64)]), make_request(3, [(2, 64)])]
    decision = scheduler.select(queue, kv, now=0.0)
    assert decision.request.request_id == 3


def test_make_scheduler_factory():
    assert isinstance(make_scheduler("fcfs"), FCFSScheduler)
    srjf = make_scheduler("srjf")
    assert isinstance(srjf, SRJFScheduler) and not srjf.continuous_calibration
    calibrated = make_scheduler("srjf-calibrated", fairness_lambda=42.0)
    assert calibrated.continuous_calibration
    assert calibrated.fairness_lambda == 42.0
    with pytest.raises(SchedulingError):
        make_scheduler("round-robin")
