"""Properties of the spec models themselves.

* The round-trip law ``to_dict(from_dict(x)) == normalize(x)`` for every
  documented model, over hypothesis-generated valid configs — ``from_dict``
  and ``normalize`` are two independent walks over the same declarations, so
  this genuinely cross-checks them against each other.
* Version-field handling: explicit supported versions parse, unsupported
  future versions raise :class:`SpecVersionError` naming what is supported,
  and non-integer versions raise the model's own error class.
* Pins tying spec-layer literals to the runtime registries they mirror, so
  the two cannot drift apart silently.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    FaultScheduleError,
    ScenarioSpecError,
    SpecError,
    SpecVersionError,
    TierSpecError,
)
from repro.faults.schedule import DEFAULT_WARM_RESTORE_BLOCKS
from repro.kvcache.tiers.policy import PROMOTION_POLICIES
from repro.spec.core import from_dict, normalize, spec_fields, to_dict
from repro.spec.fuzz import (
    alert_rule_configs,
    degrade_configs,
    fault_configs,
    kv_tiers_configs,
    model_strategy,
    observability_configs,
    resilience_configs,
    scenario_configs,
    spot_preempt_configs,
    tenant_configs,
)
from repro.spec.models import (
    _EVENT_MODELS,
    DOCUMENTED_MODELS,
    FAULT_KINDS,
    PROMOTION_POLICY_NAMES,
    TIER_NAMES,
    AlertRuleSpec,
    AutoscaleSpec,
    BreakerSpec,
    BrownoutEventSpec,
    ClusterTierSpec,
    CrashEventSpec,
    DeadlineSpec,
    DegradationSpec,
    FaultsSpec,
    GenerateSpec,
    HedgeSpec,
    HostTierSpec,
    KVTiersSpec,
    ObservabilitySpec,
    OutageEventSpec,
    RecoverEventSpec,
    ResilienceSpec,
    RetrySpec,
    ScenarioModel,
    SlowEventSpec,
    SpotPreemptEventSpec,
    TenantModel,
)

property_settings = settings(
    max_examples=50,
    derandomize=True,
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow,),
)


@st.composite
def crash_event_dicts(draw):
    """Valid crash events — ``recover_at`` strictly after ``at``."""
    event = {
        "kind": "crash",
        "replica": draw(st.integers(0, 3)),
        "at": draw(st.floats(0.0, 60.0, allow_nan=False).map(lambda v: round(v, 3))),
    }
    if draw(st.booleans()):
        delta = draw(st.floats(0.5, 60.0, allow_nan=False).map(lambda v: round(v, 3)))
        event["recover_at"] = round(event["at"] + delta, 3)
    return event


# A valid-config strategy for every documented model.  Models with
# independent fields use the generic derivation; the rest use the hand-built
# composites the scenario fuzzer runs on.
MODEL_STRATEGIES = {
    HostTierSpec: model_strategy(HostTierSpec),
    ClusterTierSpec: model_strategy(ClusterTierSpec),
    KVTiersSpec: kv_tiers_configs(),
    CrashEventSpec: crash_event_dicts(),
    RecoverEventSpec: model_strategy(RecoverEventSpec),
    SlowEventSpec: model_strategy(SlowEventSpec),
    BrownoutEventSpec: model_strategy(BrownoutEventSpec),
    OutageEventSpec: model_strategy(OutageEventSpec),
    SpotPreemptEventSpec: spot_preempt_configs(replicas=4),
    GenerateSpec: model_strategy(GenerateSpec),
    FaultsSpec: fault_configs(replicas=4),
    AutoscaleSpec: model_strategy(AutoscaleSpec),
    ObservabilitySpec: observability_configs(),
    AlertRuleSpec: alert_rule_configs(),
    DeadlineSpec: model_strategy(DeadlineSpec),
    RetrySpec: model_strategy(RetrySpec),
    HedgeSpec: model_strategy(HedgeSpec),
    BreakerSpec: model_strategy(BreakerSpec),
    DegradationSpec: degrade_configs(tenant_names=("tenant-a", "tenant-b")),
    ResilienceSpec: resilience_configs(tenant_names=("tenant-a", "tenant-b")),
    TenantModel: tenant_configs(name="tenant-a"),
    ScenarioModel: scenario_configs(),
}


def test_every_documented_model_has_a_strategy():
    assert set(MODEL_STRATEGIES) == set(DOCUMENTED_MODELS)


@pytest.mark.parametrize("cls", DOCUMENTED_MODELS, ids=lambda cls: cls.__name__)
@property_settings
@given(data=st.data())
def test_roundtrip_law(cls, data):
    """to_dict(from_dict(x)) == normalize(x), and the normalized form is a
    fixed point: reparsing it yields an equal model and identical dict."""
    config = data.draw(MODEL_STRATEGIES[cls])
    model = from_dict(cls, config)
    normalized = to_dict(model)
    assert normalized == normalize(cls, config)

    reparsed = from_dict(cls, json.loads(json.dumps(normalized)))
    assert reparsed == model
    assert to_dict(reparsed) == normalized


@pytest.mark.parametrize("cls", DOCUMENTED_MODELS, ids=lambda cls: cls.__name__)
@property_settings
@given(data=st.data())
def test_explicit_supported_version_is_accepted(cls, data):
    config = dict(data.draw(MODEL_STRATEGIES[cls]))
    config["version"] = 1
    model = from_dict(cls, config)
    if "version" in spec_fields(cls):
        assert to_dict(model)["version"] == 1


def _minimal_scenario() -> dict:
    return {
        "name": "s",
        "tenants": [{
            "name": "t", "workload": "post-recommendation",
            "workload_params": {"num_users": 2, "posts_per_user": 2},
            "arrival": "poisson", "arrival_params": {"rate": 4.0},
        }],
    }


def test_unsupported_future_version_names_supported_versions():
    config = _minimal_scenario()
    config["version"] = 99
    with pytest.raises(SpecVersionError) as excinfo:
        from_dict(ScenarioModel, config)
    assert excinfo.value.path == "version"
    assert "99" in str(excinfo.value)
    assert "1" in str(excinfo.value)


def test_unsupported_version_in_nested_block_carries_its_path():
    config = _minimal_scenario()
    config["kv_tiers"] = {"version": 7}
    with pytest.raises(SpecVersionError) as excinfo:
        from_dict(ScenarioModel, config)
    assert excinfo.value.path == "kv_tiers.version"

    with pytest.raises(SpecVersionError) as excinfo:
        from_dict(FaultsSpec, {"version": 2}, path="faults")
    assert excinfo.value.path == "faults.version"


def test_non_integer_version_raises_the_model_error():
    with pytest.raises(TierSpecError, match="version must be an integer"):
        from_dict(KVTiersSpec, {"version": "1"})
    with pytest.raises(FaultScheduleError, match="version must be an integer"):
        from_dict(FaultsSpec, {"version": 1.0})
    with pytest.raises(ScenarioSpecError, match="version must be an integer"):
        config = _minimal_scenario()
        config["version"] = True
        from_dict(ScenarioModel, config)


def test_spec_error_formats_path_prefix():
    plain = SpecError("bad value")
    assert plain.path == ""
    assert str(plain) == "bad value"
    pathed = SpecError("bad value", path="kv_tiers.tiers.host")
    assert pathed.path == "kv_tiers.tiers.host"
    assert str(pathed) == "kv_tiers.tiers.host: bad value"


def test_spec_literals_match_runtime_registries():
    """The spec layer duplicates a few runtime name sets as literals (so the
    models stay import-light); pin them to the registries they mirror."""
    assert PROMOTION_POLICY_NAMES == tuple(sorted(PROMOTION_POLICIES))
    assert set(_EVENT_MODELS) == set(FAULT_KINDS)
    assert spec_fields(FaultsSpec)["warm_restore_blocks"].default \
        == DEFAULT_WARM_RESTORE_BLOCKS
    from repro.kvcache.tiers import TIER_NAMES as RUNTIME_TIER_NAMES
    assert TIER_NAMES == RUNTIME_TIER_NAMES
    assert set(spec_fields(KVTiersSpec)["tiers"].key_models) == set(TIER_NAMES)
