"""Tests for the analytical memory model (the Figure 3 / Table 2 substrate)."""

import pytest

from repro.model.config import LLAMA_3_1_8B, QWEN_32B_FP8
from repro.model.memory import MemoryModel, PrefillMode


@pytest.fixture(scope="module")
def memory():
    return MemoryModel(LLAMA_3_1_8B)


def test_weight_bytes_shard_with_parallelism(memory):
    full = memory.weight_bytes()
    assert memory.weight_bytes(tensor_parallel=2) == pytest.approx(full / 2)
    assert memory.weight_bytes(pipeline_parallel=2) == pytest.approx(full / 2)
    assert memory.weight_bytes(tensor_parallel=2, pipeline_parallel=2) == pytest.approx(full / 4)


def test_kv_cache_scales_with_tokens_and_layers(memory):
    one_layer = memory.kv_cache_bytes_one_layer(1000)
    all_layers = memory.kv_cache_bytes(1000)
    assert all_layers == pytest.approx(one_layer * LLAMA_3_1_8B.num_layers)
    assert memory.kv_cache_bytes(2000) == pytest.approx(2 * all_layers)


def test_mlp_spike_dominates_activation_profile(memory):
    """The paper's core observation: MLP intermediates dwarf one-layer KV."""
    profile = memory.activation_profile()
    one_layer_kv = memory.kv_cache_bytes_one_layer(1)
    assert profile.mlp_peak_bytes > 10 * one_layer_kv


def test_full_mode_activation_scales_with_tokens(memory):
    small = memory.activation_peak_bytes(1_000, mode=PrefillMode.FULL)
    large = memory.activation_peak_bytes(10_000, mode=PrefillMode.FULL)
    assert large == pytest.approx(10 * small)


def test_chunked_mode_activation_bounded_by_chunk(memory):
    bounded = memory.activation_peak_bytes(100_000, mode=PrefillMode.CHUNKED, chunk_tokens=2048)
    unbounded = memory.activation_peak_bytes(100_000, mode=PrefillMode.FULL)
    assert bounded < unbounded / 10
    same_as_chunk = memory.activation_peak_bytes(2048, mode=PrefillMode.FULL)
    assert bounded == pytest.approx(same_as_chunk)


def test_hybrid_mode_between_full_and_chunked(memory):
    tokens = 32_768
    full = memory.activation_peak_bytes(tokens, mode=PrefillMode.FULL)
    hybrid = memory.activation_peak_bytes(tokens, mode=PrefillMode.HYBRID, chunk_tokens=2048)
    chunked = memory.activation_peak_bytes(tokens, mode=PrefillMode.CHUNKED, chunk_tokens=2048)
    assert chunked < hybrid < full


def test_hybrid_breakdown_keeps_only_one_layer_of_kv(memory):
    breakdown = memory.prefill_breakdown(
        32_768, mode=PrefillMode.HYBRID, retain_kv_layers=1
    )
    full_kv = memory.kv_cache_bytes(32_768)
    assert breakdown.kv_cache_bytes == pytest.approx(full_kv / LLAMA_3_1_8B.num_layers)


def test_full_breakdown_keeps_all_kv(memory):
    breakdown = memory.prefill_breakdown(32_768, mode=PrefillMode.FULL)
    assert breakdown.kv_cache_bytes == pytest.approx(memory.kv_cache_bytes(32_768))


def test_hybrid_reduces_peak_memory_for_long_prefill(memory):
    """Figure 3: hybrid prefilling shaves the MLP spikes off the peak."""
    tokens = 32_768
    full_peak = memory.peak_from_trace(
        memory.prefill_memory_trace(tokens, mode=PrefillMode.FULL)
    )
    hybrid_peak = memory.peak_from_trace(
        memory.prefill_memory_trace(tokens, mode=PrefillMode.HYBRID, retain_kv_layers=1)
    )
    saved_gib = (full_peak - hybrid_peak) / (1 << 30)
    assert saved_gib > 1.0  # the paper reports ~2 GB at 32k tokens


def test_memory_trace_is_never_below_weights(memory):
    trace = memory.prefill_memory_trace(8192, mode=PrefillMode.FULL)
    floor = memory.weight_bytes()
    assert all(value >= floor for _, value in trace)
    assert trace[0][0] == 0.0
    assert trace[-1][0] == 1.0


def test_tensor_parallel_shards_activations():
    memory = MemoryModel(QWEN_32B_FP8)
    full = memory.activation_peak_bytes(10_000, mode=PrefillMode.FULL)
    sharded = memory.activation_peak_bytes(10_000, mode=PrefillMode.FULL, tensor_parallel=2)
    # The residual stream is replicated; projections and MLP are sharded.
    assert full / 2 < sharded < full


def test_unknown_mode_rejected(memory):
    with pytest.raises(ValueError):
        memory.activation_peak_bytes(100, mode="not-a-mode")  # type: ignore[arg-type]
