"""Golden-pins for the plain-text report formatters.

Each report renders a deterministic cookbook scenario and is compared byte
for byte against a checked-in golden file — so an accidental formatting or
metric change in ``repro.analysis.reporting`` shows up as a readable diff of
the report itself, not a downstream test failure.

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_reporting_golden.py -q

then review the diff of ``tests/golden/reports/`` like any other code change.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path

import pytest

from repro.analysis.reporting import (
    format_alerts_report,
    format_critical_path_report,
    format_fleet_report,
    format_resilience_report,
    format_run_diff_report,
    format_scenario_report,
    format_tier_report,
)
from repro.obs.analysis import (
    DEFAULT_ALERT_RULES,
    decompose_requests,
    diff_runs,
    evaluate_alerts,
)
from repro.obs.recorder import ObsConfig
from repro.simulation.scenario import load_scenario, run_scenario

SCENARIOS = Path(__file__).parent.parent / "examples" / "scenarios"
GOLDEN_DIR = Path(__file__).parent / "golden" / "reports"

_RESULTS: dict = {}


def _scenario_result(stem: str):
    """One cached scenario run per module — reports share the runs."""
    if stem not in _RESULTS:
        _RESULTS[stem] = run_scenario(load_scenario(SCENARIOS / f"{stem}.json"))
    return _RESULTS[stem]


def _recorded(stem: str):
    """A cached *recorded* run (observability forced on) of a cookbook scenario."""
    key = f"obs:{stem}"
    if key not in _RESULTS:
        spec = dataclasses.replace(
            load_scenario(SCENARIOS / f"{stem}.json"),
            observability=ObsConfig(enabled=True),
        )
        _RESULTS[key] = run_scenario(spec)
    return _RESULTS[key]


def _check_golden(name: str, text: str) -> None:
    golden = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(text, encoding="utf-8")
        return
    if not golden.exists():
        pytest.fail(
            f"golden file missing: {golden}; generate it with "
            "REPRO_UPDATE_GOLDENS=1"
        )
    assert text == golden.read_text(encoding="utf-8"), (
        f"{name} report drifted from {golden}; if the change is intentional, "
        "regenerate with REPRO_UPDATE_GOLDENS=1 and review the diff"
    )


def test_fleet_report_golden():
    result = _scenario_result("steady_poisson")
    _check_golden("fleet_steady_poisson", format_fleet_report(result.result) + "\n")


def test_scenario_report_golden():
    result = _scenario_result("bursty_mix")
    _check_golden("scenario_bursty_mix", format_scenario_report(result) + "\n")


def test_scenario_report_chaos_golden():
    """The full scenario report of a chaos + tiers run — every section at once."""
    result = _scenario_result("chaos_tiered_recovery")
    _check_golden(
        "scenario_chaos_tiered_recovery", format_scenario_report(result) + "\n"
    )


def test_tier_report_golden():
    result = _scenario_result("chaos_tiered_recovery")
    tiers = result.result.fleet.tiers
    assert tiers is not None
    _check_golden("tier_chaos_tiered_recovery", format_tier_report(tiers) + "\n")


def test_resilience_report_golden():
    result = _scenario_result("chaos_tiered_recovery")
    resilience = result.result.fleet.resilience
    assert resilience is not None
    _check_golden(
        "resilience_chaos_tiered_recovery",
        format_resilience_report(resilience) + "\n",
    )


def test_critical_path_report_golden():
    """Critical-path decomposition of the chaos + tiers recording."""
    data = _recorded("chaos_tiered_recovery").result.obs
    report = decompose_requests(data)
    _check_golden(
        "critical_path_chaos_tiered_recovery",
        format_critical_path_report(report) + "\n",
    )


def test_run_diff_report_golden():
    """Run diff between two *different* cookbook recordings — every section
    (headline, phases, replicas, span kinds) has non-zero rows to pin."""
    diff = diff_runs(
        _recorded("steady_poisson").result.obs,
        _recorded("bursty_mix").result.obs,
    )
    _check_golden(
        "run_diff_steady_vs_bursty", format_run_diff_report(diff) + "\n"
    )


def test_alerts_report_golden():
    """Burn-rate alerts over the resilience cookbook scenario, default rules."""
    result = _recorded("chaos_resilience_policies")
    slos = {
        tenant.name: tenant.slo_latency_s
        for tenant in result.spec.tenants
        if tenant.slo_latency_s is not None
    }
    report = evaluate_alerts(
        result.result.obs, DEFAULT_ALERT_RULES, slos=slos
    )
    _check_golden(
        "alerts_chaos_resilience_policies", format_alerts_report(report) + "\n"
    )
