"""Golden-pins for the plain-text report formatters.

Each report renders a deterministic cookbook scenario and is compared byte
for byte against a checked-in golden file — so an accidental formatting or
metric change in ``repro.analysis.reporting`` shows up as a readable diff of
the report itself, not a downstream test failure.

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_reporting_golden.py -q

then review the diff of ``tests/golden/reports/`` like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.reporting import (
    format_fleet_report,
    format_resilience_report,
    format_scenario_report,
    format_tier_report,
)
from repro.simulation.scenario import load_scenario, run_scenario

SCENARIOS = Path(__file__).parent.parent / "examples" / "scenarios"
GOLDEN_DIR = Path(__file__).parent / "golden" / "reports"

_RESULTS: dict = {}


def _scenario_result(stem: str):
    """One cached scenario run per module — reports share the runs."""
    if stem not in _RESULTS:
        _RESULTS[stem] = run_scenario(load_scenario(SCENARIOS / f"{stem}.json"))
    return _RESULTS[stem]


def _check_golden(name: str, text: str) -> None:
    golden = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(text, encoding="utf-8")
        return
    if not golden.exists():
        pytest.fail(
            f"golden file missing: {golden}; generate it with "
            "REPRO_UPDATE_GOLDENS=1"
        )
    assert text == golden.read_text(encoding="utf-8"), (
        f"{name} report drifted from {golden}; if the change is intentional, "
        "regenerate with REPRO_UPDATE_GOLDENS=1 and review the diff"
    )


def test_fleet_report_golden():
    result = _scenario_result("steady_poisson")
    _check_golden("fleet_steady_poisson", format_fleet_report(result.result) + "\n")


def test_scenario_report_golden():
    result = _scenario_result("bursty_mix")
    _check_golden("scenario_bursty_mix", format_scenario_report(result) + "\n")


def test_scenario_report_chaos_golden():
    """The full scenario report of a chaos + tiers run — every section at once."""
    result = _scenario_result("chaos_tiered_recovery")
    _check_golden(
        "scenario_chaos_tiered_recovery", format_scenario_report(result) + "\n"
    )


def test_tier_report_golden():
    result = _scenario_result("chaos_tiered_recovery")
    tiers = result.result.fleet.tiers
    assert tiers is not None
    _check_golden("tier_chaos_tiered_recovery", format_tier_report(tiers) + "\n")


def test_resilience_report_golden():
    result = _scenario_result("chaos_tiered_recovery")
    resilience = result.result.fleet.resilience
    assert resilience is not None
    _check_golden(
        "resilience_chaos_tiered_recovery",
        format_resilience_report(resilience) + "\n",
    )
