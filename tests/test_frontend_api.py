"""Tests for the prefill-only API schema and parsing."""

import json

import pytest

from repro.frontend.api import (
    APIValidationError,
    CompletionChoice,
    CompletionRequest,
    CompletionResponse,
    TokenProbability,
    UsageInfo,
    parse_completion_request,
)


def test_valid_request_defaults():
    request = CompletionRequest(prompt="Should we recommend this? Answer:")
    assert request.allowed_outputs == ("Yes", "No")
    assert request.max_tokens == 1
    assert request.user == "default"


def test_empty_prompt_rejected():
    with pytest.raises(APIValidationError):
        CompletionRequest(prompt="")


def test_multi_token_output_rejected():
    """The API enforces the prefill-only contract: exactly one output token."""
    with pytest.raises(APIValidationError):
        CompletionRequest(prompt="hello", max_tokens=16)


def test_allowed_outputs_validation():
    with pytest.raises(APIValidationError):
        CompletionRequest(prompt="hello", allowed_outputs=("Yes",))
    with pytest.raises(APIValidationError):
        CompletionRequest(prompt="hello", allowed_outputs=("Yes", "Yes"))


def test_parse_payload_native_fields():
    request = parse_completion_request({
        "prompt": "credit check",
        "allowed_outputs": ["Approve", "Reject"],
        "user": "applicant-3",
        "request_id": "req-9",
    })
    assert request.allowed_outputs == ("Approve", "Reject")
    assert request.user == "applicant-3"
    assert request.request_id == "req-9"


def test_parse_payload_openai_alias():
    request = parse_completion_request({
        "prompt": "p", "logit_bias_tokens": ["A", "B"], "max_tokens": 1,
    })
    assert request.allowed_outputs == ("A", "B")


def test_parse_payload_rejects_unknown_fields():
    with pytest.raises(APIValidationError):
        parse_completion_request({"prompt": "p", "temperature": 0.7})


def test_parse_payload_rejects_non_dict():
    with pytest.raises(APIValidationError):
        parse_completion_request(["prompt"])  # type: ignore[arg-type]


def test_choice_probability_lookup():
    choice = CompletionChoice(
        text="Yes",
        probabilities=(TokenProbability("Yes", 0.8), TokenProbability("No", 0.2)),
    )
    assert choice.probability_of("No") == 0.2
    with pytest.raises(KeyError):
        choice.probability_of("Maybe")


def test_usage_total():
    usage = UsageInfo(prompt_tokens=1234)
    assert usage.total_tokens == 1235


def test_response_serialisation_round_trips_through_json():
    response = CompletionResponse(
        request_id="req-1",
        model="prefillonly-micro",
        choice=CompletionChoice(
            text="Yes",
            probabilities=(TokenProbability("Yes", 0.75), TokenProbability("No", 0.25)),
        ),
        usage=UsageInfo(prompt_tokens=100),
        cached_prompt_tokens=64,
        latency_seconds=0.012,
    )
    payload = json.loads(response.to_json())
    assert payload["id"] == "req-1"
    assert payload["object"] == "text_completion"
    assert payload["choices"][0]["text"] == "Yes"
    assert payload["choices"][0]["logprobs"]["top_logprobs"][0]["No"] == 0.25
    assert payload["usage"]["total_tokens"] == 101
    assert payload["prefillonly"]["cached_prompt_tokens"] == 64
