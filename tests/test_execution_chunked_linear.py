"""Tests for chunk-by-chunk position-wise execution."""

import numpy as np
import pytest

from repro.execution.chunked_linear import ChunkedExecutionOptions, chunked_positionwise
from repro.execution.memory_tracker import MemoryTracker


RNG = np.random.default_rng(0)


def test_result_matches_unchunked_linear():
    weights = RNG.standard_normal((32, 48))
    inputs = RNG.standard_normal((100, 32))
    expected = inputs @ weights
    result = chunked_positionwise(
        lambda rows: rows @ weights, inputs, 48,
        options=ChunkedExecutionOptions(chunk_tokens=7),
    )
    np.testing.assert_allclose(result, expected, rtol=1e-12)


def test_result_matches_for_nonlinear_positionwise_function():
    inputs = RNG.standard_normal((64, 16))

    def func(rows: np.ndarray) -> np.ndarray:
        return np.tanh(rows) * 2.0 + 1.0

    expected = func(inputs)
    result = chunked_positionwise(
        func, inputs.copy(), 16, options=ChunkedExecutionOptions(chunk_tokens=5)
    )
    np.testing.assert_allclose(result, expected, rtol=1e-12)


def test_without_preallocation_still_correct():
    weights = RNG.standard_normal((8, 24))
    inputs = RNG.standard_normal((33, 8))
    result = chunked_positionwise(
        lambda rows: rows @ weights, inputs, 24,
        options=ChunkedExecutionOptions(chunk_tokens=10, preallocate_output=False),
    )
    np.testing.assert_allclose(result, inputs @ weights, rtol=1e-12)


def test_inplace_reuses_input_buffer_when_widths_match():
    inputs = RNG.standard_normal((40, 16))
    result = chunked_positionwise(
        lambda rows: rows * 2.0, inputs, 16,
        options=ChunkedExecutionOptions(chunk_tokens=8, inplace_when_possible=True),
    )
    assert result is inputs


def test_inplace_disabled_allocates_fresh_output():
    inputs = RNG.standard_normal((40, 16))
    result = chunked_positionwise(
        lambda rows: rows * 2.0, inputs.copy(), 16,
        options=ChunkedExecutionOptions(chunk_tokens=8, inplace_when_possible=False),
    )
    np.testing.assert_allclose(result, inputs * 2.0)


def test_preallocation_reduces_tracked_peak():
    inputs = RNG.standard_normal((256, 32))
    func = lambda rows: np.concatenate([rows, rows], axis=1)  # noqa: E731

    tracker_prealloc = MemoryTracker()
    chunked_positionwise(
        func, inputs, 64,
        options=ChunkedExecutionOptions(chunk_tokens=32, preallocate_output=True,
                                        inplace_when_possible=False),
        tracker=tracker_prealloc,
    )
    tracker_naive = MemoryTracker()
    chunked_positionwise(
        func, inputs, 64,
        options=ChunkedExecutionOptions(chunk_tokens=32, preallocate_output=False),
        tracker=tracker_naive,
    )
    # Naive concatenation transiently holds both the chunk outputs and the
    # concatenated copy, so its peak is higher.
    assert tracker_naive.peak_bytes > tracker_prealloc.peak_bytes


def test_wrong_output_shape_raises():
    inputs = RNG.standard_normal((10, 4))
    with pytest.raises(ValueError):
        chunked_positionwise(lambda rows: rows, inputs, 8,
                             options=ChunkedExecutionOptions(chunk_tokens=4))


def test_chunk_size_larger_than_input_is_fine():
    inputs = RNG.standard_normal((5, 4))
    expected = inputs + 1  # computed before the (possibly in-place) call
    result = chunked_positionwise(lambda rows: rows + 1, inputs, 4,
                                  options=ChunkedExecutionOptions(chunk_tokens=100))
    np.testing.assert_allclose(result, expected)


def test_invalid_chunk_size():
    with pytest.raises(ValueError):
        ChunkedExecutionOptions(chunk_tokens=0)
