"""Tests for the hybrid prefilling planner."""

import pytest

from repro.core.hybrid_prefill import HybridPrefillPlanner
from repro.model.config import LLAMA_3_1_8B
from repro.model.memory import MemoryModel, PrefillMode


@pytest.fixture(scope="module")
def planner():
    return HybridPrefillPlanner(LLAMA_3_1_8B, chunk_tokens=2048)


def test_plan_counts_match_model(planner):
    plan = planner.plan()
    assert plan.num_attention_ops == LLAMA_3_1_8B.num_layers
    assert plan.num_virtual_layers == LLAMA_3_1_8B.num_layers + 1
    assert plan.chunk_tokens == 2048


def test_largest_group_width_is_mlp_gate_up(planner):
    plan = planner.plan()
    assert plan.largest_group_width == 2 * LLAMA_3_1_8B.intermediate_size


def test_peak_activation_scales_mostly_with_resident_bytes(planner):
    plan = planner.plan()
    small = plan.peak_activation_bytes(10_000)
    large = plan.peak_activation_bytes(100_000)
    # The chunked part is constant, so the growth is the per-token resident term.
    assert large - small == pytest.approx(90_000 * plan.resident_bytes_per_token, rel=1e-6)


def test_plan_matches_memory_model(planner):
    """The planner's activation estimate and the memory model must agree."""
    memory = MemoryModel(LLAMA_3_1_8B)
    tokens = 32_768
    plan_estimate = planner.plan().peak_activation_bytes(tokens)
    model_estimate = memory.activation_peak_bytes(
        tokens, mode=PrefillMode.HYBRID, chunk_tokens=2048
    )
    assert plan_estimate == pytest.approx(model_estimate, rel=0.25)


def test_peak_memory_includes_weights(planner):
    total = planner.peak_memory_bytes(32_768)
    assert total > LLAMA_3_1_8B.weight_bytes


def test_graph_and_plan_are_cached(planner):
    assert planner.graph() is planner.graph()
    assert planner.plan_items() is planner.plan_items()


def test_invalid_chunk_size():
    with pytest.raises(ValueError):
        HybridPrefillPlanner(LLAMA_3_1_8B, chunk_tokens=0)


def test_smaller_chunk_reduces_chunked_bytes():
    small = HybridPrefillPlanner(LLAMA_3_1_8B, chunk_tokens=256).plan()
    large = HybridPrefillPlanner(LLAMA_3_1_8B, chunk_tokens=4096).plan()
    assert small.chunked_bytes < large.chunked_bytes
    assert small.resident_bytes_per_token == large.resident_bytes_per_token
