"""Tests for the serving-system wrapper (instance layout, routing integration)."""

import pytest

from repro.baselines import pipeline_parallel_spec, tensor_parallel_spec
from repro.core.engine import prefillonly_engine_spec
from repro.errors import SimulationError
from repro.simulation.arrival import UniformArrivalProcess
from repro.simulation.routing import LeastLoadedRouter
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import simulate
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def tiny_trace():
    return get_workload("post-recommendation", num_users=3, posts_per_user=4, seed=11)


def build(spec, setup, trace, **kwargs):
    return ServingSystem.for_setup(spec, setup, max_input_length=trace.max_request_tokens,
                                   **kwargs)


def test_instances_are_named_uniquely(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace)
    names = [instance.name for instance in system.instances]
    assert names == ["prefillonly-0", "prefillonly-1"]


def test_max_input_length_exposed(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace)
    assert system.max_input_length == tiny_trace.max_request_tokens


def test_queue_depths_reflect_submissions(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace)
    request = list(tiny_trace)[0]
    request.arrival_time = 0.0
    system.submit(request, now=0.0)
    assert sum(system.queue_depths()) == 1
    assert not system.is_idle()


def test_custom_router_is_used(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace,
                   router=LeastLoadedRouter(2))
    requests = UniformArrivalProcess(rate=100.0).assign(list(tiny_trace))
    result = simulate(system, requests)
    assert result.num_finished == len(tiny_trace)
    # Least-loaded routing spreads one user's requests over both instances,
    # unlike the default user-id routing.
    instances_per_user: dict[str, set] = {}
    for record in result.finished:
        instances_per_user.setdefault(record.user_id, set()).add(record.instance_name)
    assert any(len(instances) > 1 for instances in instances_per_user.values())


def test_parallel_engines_share_interconnect_from_setup(h100_setup, tiny_trace):
    for spec in (tensor_parallel_spec(), pipeline_parallel_spec()):
        system = build(spec, h100_setup, tiny_trace)
        assert system.num_instances == 1
        assert system.instances[0].spec.gpus_per_instance == 2


def test_next_event_time_none_when_idle(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace)
    assert system.next_event_time() is None
    assert system.advance_to(1.0) == []


def test_simulator_event_guard(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace)
    requests = UniformArrivalProcess(rate=10.0).assign(list(tiny_trace))
    with pytest.raises(SimulationError):
        simulate(system, requests, max_events=2)


def test_simulator_time_guard(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace)
    requests = UniformArrivalProcess(rate=10.0).assign(list(tiny_trace))
    # Push one arrival beyond the time limit to trigger the guard.
    requests[-1].arrival_time = 1e9
    with pytest.raises(SimulationError):
        simulate(system, sorted(requests, key=lambda r: r.arrival_time),
                 max_simulated_seconds=1e6)


def test_summary_counts_match_trace(h100_setup, tiny_trace):
    system = build(prefillonly_engine_spec(), h100_setup, tiny_trace)
    requests = UniformArrivalProcess(rate=5.0).assign(list(tiny_trace))
    result = simulate(system, requests)
    assert result.summary.num_requests == len(tiny_trace)
    assert result.summary.num_rejected == 0
    assert result.engine_name == "prefillonly"
