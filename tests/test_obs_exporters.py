"""Export-format contracts: spans round-trip, Chrome schema, Prometheus text.

Runs one small recorder by hand plus one real cookbook scenario, and checks
the three export formats against their stated contracts — including the
Chrome trace against the checked-in ``schemas/chrome-trace.schema.json``,
the same validation CI performs on a chaos scenario via ``make obs-check``.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.errors import ObsError
from repro.obs.exporters import (
    export_chrome_trace,
    export_prometheus,
    export_spans,
    format_obs_summary,
    format_slo_report,
    parse_spans,
)
from repro.obs.recorder import GLOBAL_KEY, ObsConfig, TraceRecorder
from repro.obs.schema import validate_json
from repro.simulation.scenario import load_scenario, run_scenario

REPO = Path(__file__).parent.parent
CHROME_SCHEMA = json.loads(
    (REPO / "schemas" / "chrome-trace.schema.json").read_text(encoding="utf-8")
)


@pytest.fixture(scope="module")
def scenario_data():
    """One recorded cookbook run shared by the module's tests."""
    spec = load_scenario(REPO / "examples" / "scenarios" / "steady_poisson.json")
    spec = dataclasses.replace(spec, observability=ObsConfig(enabled=True))
    return run_scenario(spec).result.obs


def small_data():
    recorder = TraceRecorder(ObsConfig(enabled=True), tenant_slos={"gold": 1.0})
    recorder.register_replica(0, "replica-0")
    recorder.emit(0.0, GLOBAL_KEY, "submit", request=1)
    recorder.emit(0.0, 0, "route", request=1)
    recorder.emit(0.5, 0, "start", request=1)
    recorder.emit(1.5, 0, "finish", request=1, latency_s=1.5, tenant="gold")
    recorder.emit(2.0, GLOBAL_KEY, "shed", request=2)
    return recorder.freeze(2.0)


# ------------------------------------------------------------ repro-spans/v1


def test_spans_round_trip_byte_identical(scenario_data):
    text = export_spans(scenario_data)
    assert export_spans(parse_spans(text)) == text


def test_spans_header_carries_inventory():
    text = export_spans(small_data())
    header = json.loads(text.splitlines()[0])
    assert header["format"] == "repro-spans/v1"
    assert header["num_events"] == 5
    assert header["replicas"] == [[0, "replica-0"]]


def test_parse_spans_rejects_garbage():
    with pytest.raises(ObsError):
        parse_spans("")
    with pytest.raises(ObsError):
        parse_spans('{"format":"something-else/v9"}\n')
    good = export_spans(small_data())
    truncated = "\n".join(good.splitlines()[:-1]) + "\n"  # header count now lies
    with pytest.raises(ObsError):
        parse_spans(truncated)


# ------------------------------------------------------------- Chrome traces


def test_chrome_trace_validates_against_checked_in_schema(scenario_data):
    trace = json.loads(export_chrome_trace(scenario_data))
    validate_json(trace, CHROME_SCHEMA)


def test_chrome_trace_small_run_shape():
    trace = json.loads(export_chrome_trace(small_data()))
    validate_json(trace, CHROME_SCHEMA)
    events = trace["traceEvents"]
    # One metadata row per track: the fleet (pid 0) and replica-0 (pid 1).
    names = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    assert names[0] == "fleet"
    assert "replica-0" in names[1]
    # The queue span is an async b/e pair on the serving replica's track.
    queue = [e for e in events if e.get("name") == "queue"]
    assert [e["ph"] for e in queue] == ["b", "e"]
    assert all(e["pid"] == 1 and e["id"] == 1 for e in queue)
    # Service slice: starts at 0.5s = 500000us, lasts 1s = 1000000us.
    (service,) = [e for e in events if e.get("name") == "service"]
    assert service["ph"] == "X"
    assert service["ts"] == pytest.approx(500000.0)
    assert service["dur"] == pytest.approx(1000000.0)
    # The shed renders as an instant on the fleet track.
    (shed,) = [e for e in events if e.get("cat") == "shed"]
    assert shed["ph"] == "i" and shed["pid"] == 0


# ---------------------------------------------------------------- Prometheus


def test_prometheus_snapshot_text(scenario_data):
    text = export_prometheus(scenario_data)
    lines = text.splitlines()
    # Every metric family is announced before its rows.
    seen_types = set()
    for line in lines:
        if line.startswith("# TYPE"):
            seen_types.add(line.split()[2])
        elif not line.startswith("#"):
            family = line.split("{")[0].split(" ")[0]
            base = family
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix):
                    base = family[: -len(suffix)]
            assert base in seen_types, line
    assert any(line.startswith("repro_finished_total") for line in lines)


def test_prometheus_histogram_is_cumulative():
    text = export_prometheus(small_data())
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_request_latency_seconds_bucket")
    ]
    assert buckets == sorted(buckets)  # cumulative counts never decrease
    assert buckets[-1] == 1  # +Inf sees every observation
    assert "repro_request_latency_seconds_count 1" in text
    # latency 1.5 lands at the le="2.5" edge, not earlier.
    assert 'le="2.5"} 1' in text
    assert 'le="1.0"} 0' in text


# --------------------------------------------------------------- CLI reports


def test_obs_summary_mentions_inventory(scenario_data):
    text = format_obs_summary(scenario_data)
    assert "spans:" in text and "metrics:" in text
    assert "Span events by kind" in text
    assert "Counter snapshot" in text


def test_slo_report_attainment():
    recorder = TraceRecorder(ObsConfig(enabled=True), tenant_slos={"gold": 1.0})
    recorder.register_replica(0, "r0")
    recorder.emit(1.0, 0, "finish", latency_s=0.5, tenant="gold")
    recorder.emit(2.0, 0, "finish", latency_s=1.5, tenant="gold")
    text = format_slo_report(recorder.freeze(2.0))
    assert "gold" in text
    assert "0.5" in text  # one of two gold finishes made the 1.0s SLO
    # A tenant that never lands within its SLO reports attainment 0.0 —
    # distinct from a tenant with no SLO, which shows a dash.
    missed = format_slo_report(small_data())
    assert "gold" in missed and "0.0" in missed
    empty = format_slo_report(
        TraceRecorder(ObsConfig(enabled=True)).freeze(0.0)
    )
    assert empty == "no per-tenant completions recorded"
