"""Shared fixtures for the test suite.

Fixtures keep the expensive objects (workload traces, serving systems) small so
the whole suite stays fast; benchmarks use paper-scale parameters instead.
"""

from __future__ import annotations

import pytest

from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup
from repro.hardware.gpu import get_gpu
from repro.model.config import get_model
from repro.workloads.registry import get_workload


@pytest.fixture(scope="session")
def llama_8b():
    return get_model("llama-3.1-8b")


@pytest.fixture(scope="session")
def qwen_32b():
    return get_model("qwen-32b-fp8")


@pytest.fixture(scope="session")
def llama_70b():
    return get_model("llama-3.3-70b-fp8")


@pytest.fixture(scope="session")
def l4_gpu():
    return get_gpu("l4")


@pytest.fixture(scope="session")
def a100_gpu():
    return get_gpu("a100-40gb")


@pytest.fixture(scope="session")
def h100_gpu():
    return get_gpu("h100-80gb")


@pytest.fixture(scope="session")
def h100_setup():
    return get_hardware_setup("h100")


@pytest.fixture(scope="session")
def l4_setup():
    return get_hardware_setup("l4")


@pytest.fixture(scope="session")
def small_post_trace():
    """A shrunken post-recommendation trace (4 users x 8 posts)."""
    return get_workload("post-recommendation", num_users=4, posts_per_user=8, seed=7)


@pytest.fixture(scope="session")
def small_credit_trace():
    """A shrunken credit-verification trace (6 users)."""
    return get_workload("credit-verification", num_users=6, seed=7)


@pytest.fixture()
def prefillonly_spec():
    return prefillonly_engine_spec()
