"""Tests for the arrival processes."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.simulation.arrival import (
    BurstArrivalProcess,
    PoissonArrivalProcess,
    UniformArrivalProcess,
)
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def requests():
    return list(get_workload("post-recommendation", num_users=4, posts_per_user=10, seed=0))


def test_poisson_rate_matches_mean_gap(requests):
    process = PoissonArrivalProcess(rate=10.0, seed=1)
    assigned = process.assign(requests)
    times = [r.arrival_time for r in assigned]
    gaps = np.diff([0.0] + times)
    assert np.mean(gaps) == pytest.approx(0.1, rel=0.35)


def test_poisson_output_is_sorted(requests):
    assigned = PoissonArrivalProcess(rate=5.0, seed=2).assign(requests)
    times = [r.arrival_time for r in assigned]
    assert times == sorted(times)


def test_poisson_is_deterministic_per_seed(requests):
    a = PoissonArrivalProcess(rate=5.0, seed=3).assign(requests)
    b = PoissonArrivalProcess(rate=5.0, seed=3).assign(requests)
    assert [r.request_id for r in a] == [r.request_id for r in b]
    assert [r.arrival_time for r in a] == [r.arrival_time for r in b]


def test_poisson_shuffle_interleaves_users(requests):
    assigned = PoissonArrivalProcess(rate=5.0, seed=4, shuffle=True).assign(requests)
    first_ten_users = {r.user_id for r in assigned[:10]}
    assert len(first_ten_users) > 1


def test_poisson_invalid_rate():
    with pytest.raises(WorkloadError):
        PoissonArrivalProcess(rate=0.0)


def test_burst_assigns_same_time(requests):
    assigned = BurstArrivalProcess(at_time=2.0).assign(requests)
    assert all(r.arrival_time == 2.0 for r in assigned)
    assert len(assigned) == len(requests)


def test_uniform_spacing(requests):
    assigned = UniformArrivalProcess(rate=4.0).assign(requests)
    gaps = np.diff([r.arrival_time for r in assigned])
    assert np.allclose(gaps, 0.25)


def test_uniform_preserves_order_without_shuffle(requests):
    assigned = UniformArrivalProcess(rate=4.0, shuffle=False).assign(requests)
    ids = [r.request_id for r in assigned]
    assert ids == sorted(ids)
