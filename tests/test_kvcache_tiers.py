"""Tests for the tiered prefix-cache subsystem (config, stores, invariants)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TierCapacityError, TierError, UnknownNameError, UnknownTierError
from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.block import hash_token_blocks
from repro.kvcache.manager import CommitPolicy, KVCacheManager
from repro.kvcache.prefix_tree import RadixPrefixCache
from repro.kvcache.tiers import (
    ClusterPrefixStore,
    TierConfig,
    TieredPrefixStore,
    build_cluster_store,
    build_tiered_store,
    make_promotion_policy,
    tier_config_from_dict,
)
from repro.kvcache.tiers.policy import AlwaysPromote, NeverPromote, PromoteOnNthHit

BLOCK_SIZE = 4
BLOCK_BYTES = 1024


def chain(n, seed=0):
    """n chained block hashes over distinct token content."""
    tokens = [seed * 100_000 + i for i in range(n * BLOCK_SIZE)]
    return tuple(hash_token_blocks(tokens, BLOCK_SIZE))


def make_stack(*, gpu_blocks=8, host_blocks=8, cluster_blocks=32,
               promotion="always", threshold=2, demote_on_evict=True,
               replica="r0", cluster=None):
    """A manager + tiered store with capacities expressed in blocks."""
    config = TierConfig(
        enabled=True,
        host_gib=host_blocks * BLOCK_BYTES / (1 << 30),
        cluster_gib=cluster_blocks * BLOCK_BYTES / (1 << 30),
        promotion=promotion,
        promotion_threshold=threshold,
        demote_on_evict=demote_on_evict,
    )
    if cluster is None:
        cluster = build_cluster_store(config, block_bytes=BLOCK_BYTES)
    tiers = build_tiered_store(
        config, replica=replica, block_size=BLOCK_SIZE, block_bytes=BLOCK_BYTES,
        cluster=cluster, compute_tokens_per_second=1000.0,
    )
    manager = KVCacheManager(gpu_blocks * BLOCK_SIZE, block_size=BLOCK_SIZE, tiers=tiers)
    return manager, tiers, cluster


def run_request(manager, hashes, *, now=0.0, policy=CommitPolicy.SUFFIX_DISCARD):
    """One begin -> fetch -> finish cycle, like the engine's execution path."""
    lease = manager.begin_execution(
        hashes, len(hashes) * BLOCK_SIZE, reserve_full_kv=False, now=now
    )
    tier_tokens, load_seconds = manager.fetch_tiers(hashes, now=now)
    manager.finish_execution(lease, policy=policy, now=now + 0.5)
    return tier_tokens, load_seconds


# ------------------------------------------------------------------- config


def test_tier_config_defaults_disabled():
    assert TierConfig().enabled is False
    assert tier_config_from_dict({}).enabled is False


def test_tier_config_parses_full_block():
    config = tier_config_from_dict({
        "enabled": True,
        "tiers": {"host": {"capacity_gib": 2.0, "link": "pcie-gen4"},
                  "cluster": {"capacity_gib": 8.0, "link": "nvlink"}},
        "promotion": "on-nth-hit",
        "promotion_threshold": 3,
        "demote_on_evict": False,
        "prefetch": False,
    })
    assert config.enabled and config.host_gib == 2.0 and config.cluster_gib == 8.0
    assert config.promotion_threshold == 3
    assert config.demote_on_evict is False and config.prefetch is False


def test_unknown_tier_name_lists_valid_tiers_and_path():
    with pytest.raises(UnknownTierError) as excinfo:
        tier_config_from_dict({"enabled": True, "tiers": {"hots": {}}})
    message = str(excinfo.value)
    assert "kv_tiers.tiers" in message
    assert "host" in message and "cluster" in message
    assert excinfo.value.name == "hots"
    # The typed error is catchable as a TierError too.
    assert isinstance(excinfo.value, TierError)


def test_negative_capacity_raises_tier_capacity_error_with_path():
    with pytest.raises(TierCapacityError) as excinfo:
        tier_config_from_dict(
            {"enabled": True, "tiers": {"host": {"capacity_gib": -1}}}
        )
    assert "kv_tiers.tiers.host.capacity_gib" in str(excinfo.value)
    assert excinfo.value.tier == "host"


def test_non_numeric_capacity_rejected():
    with pytest.raises(TierCapacityError):
        tier_config_from_dict(
            {"enabled": True, "tiers": {"cluster": {"capacity_gib": "big"}}}
        )


def test_unknown_config_keys_rejected():
    with pytest.raises(TierError):
        tier_config_from_dict({"enabled": True, "promtion": "always"})
    with pytest.raises(TierError):
        tier_config_from_dict({"enabled": True, "tiers": {"host": {"gib": 1}}})


def test_unknown_promotion_policy_rejected_at_parse_time():
    with pytest.raises(TierError) as excinfo:
        tier_config_from_dict({"enabled": True, "promotion": "alwys"})
    assert "kv_tiers.promotion" in str(excinfo.value)
    assert "always" in str(excinfo.value)
    with pytest.raises(TierError) as excinfo:
        tier_config_from_dict({"enabled": True, "promotion_threshold": "two"})
    assert "kv_tiers.promotion_threshold" in str(excinfo.value)


def test_promotion_policy_registry():
    assert isinstance(make_promotion_policy("always"), AlwaysPromote)
    assert isinstance(make_promotion_policy("never"), NeverPromote)
    policy = make_promotion_policy("on-nth-hit", threshold=3)
    assert isinstance(policy, PromoteOnNthHit)
    assert not policy.should_promote(1, 2)
    assert policy.should_promote(1, 3)
    with pytest.raises(UnknownNameError):
        make_promotion_policy("sometimes")


def test_build_tiered_store_disabled_returns_none():
    config = TierConfig(enabled=False)
    assert build_tiered_store(config, replica="r", block_size=4, block_bytes=8) is None
    assert build_cluster_store(config, block_bytes=8) is None


# ------------------------------------------------------------ cluster store


def test_cluster_store_publish_fetch_lru():
    store = ClusterPrefixStore(capacity_bytes=4 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    hashes = list(chain(6))
    stored, seconds = store.publish("a", hashes[:4])
    assert stored == 4 and seconds > 0
    assert store.match_length(hashes) == 4
    # Publishing beyond capacity evicts LRU entries.
    store.publish("a", hashes[4:])
    assert store.num_blocks == 4
    assert hashes[0] not in store and hashes[5] in store
    assert store.stats.evicted_blocks == 2


def test_cluster_store_peer_fetch_accounting():
    store = ClusterPrefixStore(capacity_bytes=8 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    hashes = list(chain(2))
    store.publish("a", hashes)
    assert store.fetch_block("b", hashes[0])
    assert store.fetch_block("a", hashes[1])
    stats = store.stats
    assert stats.fetched_blocks == 2
    assert stats.peer_fetched_blocks == 1
    assert stats.hits_by_replica == {"a": 1, "b": 1}
    # Reads never remove; reclaim is explicit and owner-only.
    assert hashes[0] in store
    assert not store.discard_owned("b", hashes[0])
    assert store.discard_owned("a", hashes[0])
    assert hashes[0] not in store


def test_cluster_store_republish_keeps_owner():
    store = ClusterPrefixStore(capacity_bytes=8 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    hashes = list(chain(1))
    store.publish("a", hashes)
    stored, _ = store.publish("b", hashes)
    assert stored == 0
    assert store.owner_of(hashes[0]) == "a"


# ------------------------------------------------------------- tiered store


def test_commit_overflow_demotes_into_host_then_cluster():
    manager, tiers, cluster = make_stack(gpu_blocks=4, host_blocks=2, cluster_blocks=32)
    hashes = chain(10)
    run_request(manager, hashes)
    l1 = set(manager._cache.resident_hashes())
    l2 = set(tiers.host.resident_hashes())
    l3 = set(cluster.resident_hashes())
    assert len(l1) == 4 and len(l2) == 2
    # Everything the GPU and host could not keep cascaded into the cluster.
    assert l1 | l2 | l3 == set(hashes)


def test_fetch_streams_continuation_and_charges_transfer():
    manager, tiers, cluster = make_stack(gpu_blocks=4, host_blocks=4, cluster_blocks=32,
                                         promotion="never")
    hashes = chain(12)
    run_request(manager, hashes, now=0.0)
    tier_tokens, load_seconds = run_request(manager, hashes, now=10.0)
    # 4 blocks on the GPU; the remaining 8 streamed from host + cluster.
    assert tier_tokens == 8 * BLOCK_SIZE
    assert load_seconds > 0
    stats = tiers.stats
    assert stats.host_hit_blocks + stats.cluster_hit_blocks == 8
    assert stats.promoted_blocks == 0  # policy: never


def test_promote_on_nth_hit_waits_for_second_hit():
    manager, tiers, cluster = make_stack(gpu_blocks=8, host_blocks=8, cluster_blocks=32,
                                         promotion="on-nth-hit", threshold=2)
    short = chain(4, seed=1)   # fits on the GPU entirely
    long = chain(8, seed=2)    # evicts `short` when committed

    run_request(manager, short, now=0.0)
    run_request(manager, long, now=1.0)   # pressure demotes part of `short`
    demoted = set(tiers.host.resident_hashes())
    assert demoted, "expected eviction pressure to demote blocks"

    # First re-use: streamed from host, hit count 1 < 2 -> stays in host.
    run_request(manager, short, now=2.0)
    assert tiers.stats.promoted_blocks == 0
    # Second re-use: hit count reaches 2 -> promoted into L1.
    run_request(manager, short, now=3.0)
    assert tiers.stats.promoted_blocks > 0


def test_prefetch_warms_l1_without_charging_requests():
    manager, tiers, cluster = make_stack(gpu_blocks=8, host_blocks=8, cluster_blocks=32,
                                         promotion="never")
    hashes = chain(8, seed=3)
    run_request(manager, hashes, now=0.0)
    # Evict everything from L1 (demotes into the tiers).
    manager._cache.evict_blocks(8)
    assert manager.lookup(hashes) == 0
    moved = manager.prefetch_tiers(hashes, now=1.0)
    assert moved == 8 * BLOCK_SIZE
    assert manager.lookup(hashes) == 8 * BLOCK_SIZE
    stats = tiers.stats
    assert stats.prefetched_blocks == 8
    assert stats.prefetch_seconds > 0
    assert stats.load_seconds == 0.0  # nothing was charged to a request


def test_repeat_overflow_of_parked_blocks_is_not_recounted():
    """Re-offering already-host-resident overflow must not inflate demotion."""
    manager, tiers, cluster = make_stack(gpu_blocks=4, host_blocks=8,
                                         cluster_blocks=32, promotion="never")
    hashes = chain(8, seed=8)
    run_request(manager, hashes, now=0.0)
    demoted_once = tiers.stats.demoted_blocks
    bytes_once = tiers.stats.bytes_down
    assert demoted_once == 4  # the 4-block suffix that missed the GPU
    for step in range(5):
        run_request(manager, hashes, now=1.0 + step)
    # The suffix stays parked in the host tier; nothing new moved down.
    assert tiers.stats.demoted_blocks == demoted_once
    assert tiers.stats.bytes_down == bytes_once


def test_prefetch_counts_are_not_double_booked_as_promotions():
    manager, tiers, cluster = make_stack(gpu_blocks=8, host_blocks=8,
                                         cluster_blocks=32, promotion="never")
    hashes = chain(6, seed=10)
    run_request(manager, hashes, now=0.0)
    manager._cache.evict_blocks(6)
    moved = manager.prefetch_tiers(hashes, now=1.0)
    assert moved == 6 * BLOCK_SIZE
    stats = tiers.stats
    # Prefetch landings are prefetches, not promotions — even though the
    # blocks moved up; a never-promote policy must report zero promotions.
    assert stats.prefetched_blocks == 6
    assert stats.promoted_blocks == 0


def test_drain_publishes_l1_and_host_to_cluster():
    manager, tiers, cluster = make_stack(gpu_blocks=4, host_blocks=4, cluster_blocks=32)
    hashes = chain(8, seed=4)
    run_request(manager, hashes)
    before = set(cluster.resident_hashes())
    published = manager.drain()
    assert published > 0
    after = set(cluster.resident_hashes())
    # Every prefix block the replica held is now matchable fleet-wide.
    assert set(hashes) <= after | before
    assert cluster.match_length(hashes) == len(hashes)
    assert tiers.host.num_blocks == 0


def test_drain_refuses_with_active_lease():
    manager, tiers, cluster = make_stack()
    hashes = chain(4, seed=5)
    lease = manager.begin_execution(hashes, 4 * BLOCK_SIZE, reserve_full_kv=False)
    assert manager.num_active_leases == 1
    with pytest.raises(TierError):
        manager.drain()
    manager.finish_execution(lease, policy=CommitPolicy.SUFFIX_DISCARD)
    assert manager.num_active_leases == 0
    manager.drain()


def test_peer_replica_fetches_published_prefix():
    """A prefix computed on replica A is matchable and fetchable on replica B."""
    shared_config = TierConfig(enabled=True, host_gib=0.0,
                               cluster_gib=32 * BLOCK_BYTES / (1 << 30))
    cluster = build_cluster_store(shared_config, block_bytes=BLOCK_BYTES)
    manager_a, tiers_a, _ = make_stack(gpu_blocks=4, host_blocks=0, cluster_blocks=0,
                                       replica="a", cluster=cluster)
    manager_b, tiers_b, _ = make_stack(gpu_blocks=4, host_blocks=0, cluster_blocks=0,
                                       replica="b", cluster=cluster, promotion="never")
    hashes = chain(8, seed=6)
    run_request(manager_a, hashes)   # A computes; overflow publishes to L3
    manager_a.drain()                # ... and a scale-down drains A's L1 prefix
    assert cluster.match_length(hashes) == len(hashes)
    lookup = manager_b.lookup_with_tiers(hashes)
    assert lookup.cluster_tokens == 8 * BLOCK_SIZE  # B sees A's blocks
    tier_tokens, _ = run_request(manager_b, hashes)
    assert tier_tokens == lookup.cluster_tokens
    assert cluster.stats.peer_fetched_blocks > 0
    assert set(cluster.stats.hits_by_replica) == {"b"}


def test_tier_lookup_read_only():
    manager, tiers, cluster = make_stack(gpu_blocks=4, host_blocks=4, cluster_blocks=32)
    hashes = chain(8, seed=7)
    run_request(manager, hashes)
    version = manager.calibration_version
    stats_before = tiers.stats
    lookup = manager.lookup_with_tiers(hashes)
    assert lookup.total_tokens == 8 * BLOCK_SIZE
    assert lookup.penalty_tokens == pytest.approx(lookup.load_seconds * 1000.0)
    assert manager.calibration_version == version
    assert tiers.stats == stats_before


def test_manager_rejects_conflicting_stores():
    from repro.kvcache.offload import CPUOffloadStore

    tiers = TieredPrefixStore(replica="r", block_size=BLOCK_SIZE, block_bytes=BLOCK_BYTES)
    offload = CPUOffloadStore(capacity_bytes=BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    with pytest.raises(TierError):
        KVCacheManager(64, block_size=BLOCK_SIZE, tiers=tiers, offload_store=offload)
    with pytest.raises(TierError):
        KVCacheManager(64, block_size=8, tiers=tiers)


# ------------------------------------------------- property-based invariants


def residency_sets(manager, tiers, cluster):
    l1 = set(manager._cache.resident_hashes())
    l2 = set(tiers.host.resident_hashes()) if tiers.host is not None else set()
    l3 = set(cluster.resident_hashes()) if cluster is not None else set()
    return l1, l2, l3


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    promotion=st.sampled_from(["always", "never", "on-nth-hit"]),
    gpu_blocks=st.integers(min_value=2, max_value=6),
    host_blocks=st.integers(min_value=0, max_value=6),
)
def test_block_never_resident_in_two_tiers(data, promotion, gpu_blocks, host_blocks):
    """Single-replica exclusivity: every hash lives in at most one tier.

    With one replica, every cluster entry is self-owned, so full pairwise
    disjointness of L1 / L2 / L3 must hold after every operation.
    """
    manager, tiers, cluster = make_stack(
        gpu_blocks=gpu_blocks, host_blocks=host_blocks, cluster_blocks=16,
        promotion=promotion,
    )
    chains = [chain(data.draw(st.integers(1, 8), label=f"len{i}"), seed=i)
              for i in range(4)]
    ops = data.draw(st.lists(
        st.tuples(st.sampled_from(["run", "prefetch", "evict"]), st.integers(0, 3)),
        min_size=1, max_size=12,
    ), label="ops")
    now = 0.0
    for op, which in ops:
        now += 1.0
        hashes = chains[which]
        if op == "run":
            run_request(manager, hashes, now=now)
        elif op == "prefetch":
            manager.prefetch_tiers(hashes, now=now)
        else:
            manager._cache.evict_blocks(1)
        l1, l2, l3 = residency_sets(manager, tiers, cluster)
        assert not (l1 & l2), "hash resident in both L1 and L2"
        assert not (l2 & l3), "hash resident in both L2 and L3"
        assert not (l1 & l3), "hash resident in both L1 and L3"


@settings(max_examples=30, deadline=None)
@given(num_blocks=st.integers(min_value=1, max_value=6),
       host_blocks=st.integers(min_value=6, max_value=12))
def test_demote_promote_round_trip_is_byte_neutral(num_blocks, host_blocks):
    """Evict-to-host then promote-back moves the same bytes down and up."""
    manager, tiers, cluster = make_stack(
        gpu_blocks=8, host_blocks=host_blocks, cluster_blocks=32, promotion="always",
    )
    hashes = chain(num_blocks, seed=9)
    run_request(manager, hashes, now=0.0)
    l1_before, _, _ = residency_sets(manager, tiers, cluster)
    assert l1_before == set(hashes)

    base = tiers.stats
    evicted = manager._cache.evict_blocks(num_blocks)
    assert evicted == num_blocks
    after_demote = tiers.stats
    assert after_demote.bytes_down - base.bytes_down == num_blocks * BLOCK_BYTES

    moved = manager.prefetch_tiers(hashes, now=1.0)
    assert moved == num_blocks * BLOCK_SIZE
    after_promote = tiers.stats
    assert after_promote.bytes_up - after_demote.bytes_up == num_blocks * BLOCK_BYTES
    # The round trip is byte-neutral: down equals up, and residency returns
    # to exactly the starting state.
    assert (after_promote.bytes_down - base.bytes_down
            == after_promote.bytes_up - after_demote.bytes_up)
    l1, l2, l3 = residency_sets(manager, tiers, cluster)
    assert l1 == l1_before and not (l2 | l3) & set(hashes)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), capacity_blocks=st.integers(min_value=2, max_value=6))
def test_l1_eviction_order_matches_seed_with_tiering_enabled(data, capacity_blocks):
    """With L2/L3 disabled, the tiered cache evicts the seed's exact victims.

    The demotion hook only *observes* evictions; victim selection must be
    untouched.  Runs the same insert/evict script against a bare radix cache
    and one with a (sink-less) tiered store attached, recording both victim
    sequences through the eviction hook.
    """
    def build(record):
        allocator = BlockAllocator(capacity_blocks, BLOCK_SIZE)
        cache = RadixPrefixCache(allocator)
        return allocator, cache, record

    bare_victims: list[int] = []
    tiered_victims: list[int] = []
    _, bare, _ = build(bare_victims)
    bare.on_evict = lambda h, t: bare_victims.append(h)

    _, tiered_cache, _ = build(tiered_victims)
    tiers = TieredPrefixStore(replica="r", block_size=BLOCK_SIZE,
                              block_bytes=BLOCK_BYTES, host=None, cluster=None)
    tiers.bind_gpu_cache(tiered_cache)
    demote_hook = tiered_cache.on_evict
    tiered_cache.on_evict = lambda h, t: (tiered_victims.append(h), demote_hook(h, t))

    chains = [chain(data.draw(st.integers(1, 4), label=f"len{i}"), seed=i)
              for i in range(3)]
    ops = data.draw(st.lists(
        st.tuples(st.sampled_from(["insert", "evict"]), st.integers(0, 2)),
        min_size=1, max_size=15,
    ), label="ops")
    now = 0.0
    for op, which in ops:
        now += 1.0
        for cache in (bare, tiered_cache):
            if op == "insert":
                cache.insert(chains[which], block_size=BLOCK_SIZE, now=now)
            else:
                cache.evict_blocks(1)
    assert tiered_victims == bare_victims
    assert (set(bare.resident_hashes())
            == set(tiered_cache.resident_hashes()))
