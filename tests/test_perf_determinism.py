"""Parallel runs must be byte-identical to serial runs, and reproducible.

These tests pin the tentpole guarantee of the ``repro.perf`` subsystem: the
experiment layer can fan out across processes without changing a single bit
of any result — sweeps, engine comparisons, ablations, and scenario suites.
They also guard the precondition that makes it possible: no module-level
global RNG reads anywhere in the library (every random choice is owned by an
explicit seed or an injected generator).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis.ablation import mil_ablation
from repro.analysis.sweep import compare_engines, qps_sweep, throughput_comparison
from repro.baselines import paged_attention_spec
from repro.baselines.registry import all_engine_specs
from repro.core.engine import prefillonly_engine_spec
from repro.model.config import get_model
from repro.perf.runner import ParallelRunner
from repro.simulation.scenario import discover_scenarios, run_scenario_suite

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIO_DIR = REPO_ROOT / "examples" / "scenarios"

#: A 4-worker runner forced past the core-count clamp: correctness of the
#: multi-process path must hold even on a single-core machine.
FOUR_WORKERS = dict(max_workers=4)


def _sweep_bytes(points) -> str:
    return json.dumps([point.as_dict() for point in points])


def test_qps_sweep_parallel_matches_serial(h100_setup, small_post_trace):
    spec = prefillonly_engine_spec()
    qps_values = [2.0, 6.0, 18.0]
    serial = qps_sweep(spec, h100_setup, small_post_trace, qps_values)
    parallel = qps_sweep(spec, h100_setup, small_post_trace, qps_values,
                         runner=ParallelRunner(**FOUR_WORKERS))
    assert _sweep_bytes(serial) == _sweep_bytes(parallel)


def test_two_four_worker_runs_are_identical(h100_setup, small_post_trace):
    """Reproducibility across parallel runs, not just parallel-vs-serial."""
    spec = prefillonly_engine_spec()
    qps_values = [3.0, 9.0]
    first = qps_sweep(spec, h100_setup, small_post_trace, qps_values,
                      runner=ParallelRunner(**FOUR_WORKERS))
    second = qps_sweep(spec, h100_setup, small_post_trace, qps_values,
                       runner=ParallelRunner(**FOUR_WORKERS))
    assert _sweep_bytes(first) == _sweep_bytes(second)


def test_compare_engines_parallel_matches_serial(h100_setup, small_post_trace):
    specs = all_engine_specs()
    qps_values = [4.0, 12.0]
    serial = compare_engines(specs, h100_setup, small_post_trace, qps_values)
    parallel = compare_engines(specs, h100_setup, small_post_trace, qps_values,
                               runner=ParallelRunner(**FOUR_WORKERS))
    assert list(serial) == list(parallel)  # same engines, same order
    for name in serial:
        assert _sweep_bytes(serial[name]) == _sweep_bytes(parallel[name])


def test_throughput_comparison_parallel_matches_serial(l4_setup, small_post_trace):
    specs = all_engine_specs()
    serial = throughput_comparison(specs, l4_setup, small_post_trace)
    parallel = throughput_comparison(specs, l4_setup, small_post_trace,
                                     runner=ParallelRunner(**FOUR_WORKERS))
    assert serial == parallel


def test_mil_ablation_parallel_matches_serial(a100_gpu, qwen_32b):
    from repro.baselines import chunked_prefill_spec

    kwargs = dict(
        vanilla_spec=paged_attention_spec(),
        chunked_spec=chunked_prefill_spec(),
    )
    serial = mil_ablation(qwen_32b, a100_gpu, **kwargs)
    parallel = mil_ablation(qwen_32b, a100_gpu,
                            runner=ParallelRunner(**FOUR_WORKERS), **kwargs)
    assert serial == parallel


def test_scenario_suite_parallel_matches_serial():
    paths = discover_scenarios(SCENARIO_DIR)[:3]
    serial = run_scenario_suite(paths)
    parallel = run_scenario_suite(paths, runner=ParallelRunner(**FOUR_WORKERS))

    def signature(results):
        return json.dumps([
            [result.spec.name,
             result.result.num_events,
             result.result.summary.mean_latency,
             result.result.summary.p99_latency,
             result.result.fleet.as_dict(),
             [tenant.as_dict() for tenant in result.tenants]]
            for result in results
        ])

    assert signature(serial) == signature(parallel)


def test_scenario_suite_directory_discovery():
    paths = discover_scenarios(SCENARIO_DIR)
    assert paths == sorted(paths)
    assert all(path.suffix == ".json" for path in paths)
    from repro.errors import ScenarioError

    with pytest.raises(ScenarioError):
        discover_scenarios(SCENARIO_DIR / "does-not-exist")


# --------------------------------------------------------- global-RNG guard


def test_no_module_level_global_rng_reads():
    """Every RNG in the library must be an explicitly seeded Generator.

    Per-worker seeding can only reproduce a serial run if no code path reads
    the process-global numpy / stdlib RNG state: workers would consume from
    diverged streams.  This scans the library source for the forbidden
    patterns (``np.random.<call>`` other than the Generator constructors, and
    the stdlib ``random`` module).
    """
    allowed = re.compile(
        r"np\.random\.(default_rng|Generator|SeedSequence)\b"
    )
    forbidden_np = re.compile(r"np\.random\.\w+")
    forbidden_stdlib = re.compile(r"^\s*(import random\b|from random import)")
    offenders: list[str] = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            for match in forbidden_np.finditer(line):
                if not allowed.match(line, match.start()):
                    offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {line.strip()}")
            if forbidden_stdlib.search(line):
                offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {line.strip()}")
    assert not offenders, "global RNG reads found:\n" + "\n".join(offenders)
