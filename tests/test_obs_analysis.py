"""Tests for ``repro.obs.analysis`` — critical paths, run diffs, alerts.

The load-bearing guarantee is the **sum law**: every finished request's
phase decomposition (queue, retry wait, tier fetch, prefill, lost service)
sums to its end-to-end latency.  A hypothesis property pins it over fuzzed
scenarios — including retries, hedges, and deadline cancels — and a
cookbook-scenario test pins it on the chaos recording the CI ``obs`` job
exports.  The diff tests pin the two acceptance behaviours: same-seed
recordings diff to zero, and an injected slow-node fault ranks the affected
replica and phase first.  The CLI tests cover the ``--spans`` input paths
(plain file, ``.gz``, stdin) and the malformed-input exit-2 contract.
"""

from __future__ import annotations

import dataclasses
import gzip
import io
import json
import os
from math import fsum
from pathlib import Path

import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.cli import main
from repro.errors import ObsError, ScenarioSpecError
from repro.obs.analysis import (
    DEFAULT_ALERT_RULES,
    PHASES,
    AlertRule,
    decompose_requests,
    diff_bench_phases,
    diff_runs,
    evaluate_alerts,
    top_exemplars,
)
from repro.obs.exporters import export_alerts, export_spans
from repro.obs.recorder import ObsConfig, ObsData
from repro.obs.schema import validate_json
from repro.simulation.scenario import (
    build_mix,
    load_scenario,
    run_scenario,
    scenario_from_dict,
)
from repro.spec.core import from_dict
from repro.spec.fuzz import scenario_configs
from repro.spec.models import AlertRuleSpec

settings.register_profile(
    "fuzz",
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow, HealthCheck.data_too_large),
)
settings.register_profile("fuzz-smoke", settings.get_profile("fuzz"), max_examples=25)

_PROFILE = "fuzz" if os.environ.get("HYPOTHESIS_PROFILE") == "fuzz" else "fuzz-smoke"
fuzz_settings = settings.get_profile(_PROFILE)

REPO_ROOT = Path(__file__).parent.parent
SCENARIOS = REPO_ROOT / "examples" / "scenarios"

#: The diff acceptance pair: the same light two-replica workload, with the
#: candidate running replica 0 under a 3x slow fault for the whole run.  The
#: arrival rate is low enough that the slowdown shows up as service (prefill)
#: time rather than a queue backlog.
_DIFF_BASE = {
    "name": "diff-base",
    "replicas": 2,
    "router": "user-id",
    "seed": 7,
    "tenants": [{
        "name": "social",
        "workload": "post-recommendation",
        "workload_params": {"num_users": 6, "posts_per_user": 8},
        "slo_latency_s": 4.0,
        "arrival": "poisson",
        "arrival_params": {"rate": 0.3},
    }],
}


def _slow_variant() -> dict:
    config = json.loads(json.dumps(_DIFF_BASE))
    config["name"] = "diff-slow"
    config["faults"] = {"events": [{
        "kind": "slow", "replica": 0, "at": 0.0, "duration": 1000.0,
        "multiplier": 3.0,
    }]}
    return config


def _recorded(spec):
    """Run a scenario with recording force-enabled and return its ObsData."""
    spec = dataclasses.replace(spec, observability=ObsConfig(enabled=True))
    return run_scenario(spec).result.obs


_DATA_CACHE: dict = {}


def _cookbook_recording(stem: str) -> ObsData:
    if stem not in _DATA_CACHE:
        _DATA_CACHE[stem] = _recorded(load_scenario(SCENARIOS / f"{stem}.json"))
    return _DATA_CACHE[stem]


def _assert_sum_law(report) -> None:
    for request in report.requests:
        for phase, value in request.phases.items():
            assert value >= 0.0, (
                f"negative {phase} phase on request {request.request_id!r}"
            )
        assert set(request.phases) == set(PHASES)
        total = fsum(request.phases.values())
        assert abs(total - request.e2e_s) <= 1e-9, (
            f"request {request.request_id!r}: phases sum to {total!r}, "
            f"end-to-end latency is {request.e2e_s!r}"
        )


# ------------------------------------------------------- critical-path sums


def test_phase_decomposition_sums_on_chaos_cookbook():
    """Every finished chaos-run request decomposes exactly (crash retries,
    tier fetches, and warm restores included)."""
    report = decompose_requests(_cookbook_recording("chaos_tiered_recovery"))
    assert report.requests, "chaos scenario recorded no finished requests"
    _assert_sum_law(report)
    # The chaos schedule crashes a replica mid-run, so crash-evacuation
    # phases must actually appear in the decomposition.
    assert any(r.num_retries > 0 for r in report.requests)
    totals = report.phase_totals()
    assert totals["retry_wait"] > 0.0
    assert totals["tier_fetch"] > 0.0


@fuzz_settings
@given(config=scenario_configs())
def test_fuzzed_phase_decomposition_sums_to_e2e(config):
    """The sum law holds on random valid scenarios — including draws with
    retries, hedges, deadline cancels, sheds, and sharded execution."""
    spec = scenario_from_dict(config)
    assume(build_mix(spec).requests)
    data = _recorded(spec)
    report = decompose_requests(data)
    _assert_sum_law(report)
    # Conservation: every submitted request is finished, shed, or cancelled.
    submitted = sum(1 for _t, _k, kind, _a, _s in data.events
                    if kind == "submit")
    accounted = (len(report.requests) + report.num_shed
                 + report.num_deadline_missed)
    assert accounted == submitted


def test_top_exemplars_are_slowest_and_deterministic():
    report = decompose_requests(_cookbook_recording("chaos_tiered_recovery"))
    exemplars = top_exemplars(report, 5)
    assert len(exemplars) == min(5, len(report.requests))
    latencies = [e.e2e_s for e in exemplars]
    assert latencies == sorted(latencies, reverse=True)
    slowest = max(r.e2e_s for r in report.requests)
    assert exemplars[0].e2e_s == slowest
    assert top_exemplars(report, 5) == exemplars


# ------------------------------------------------------------------ run diff


def test_same_seed_recordings_diff_to_zero():
    spec = load_scenario(SCENARIOS / "chaos_tiered_recovery.json")
    diff = diff_runs(_recorded(spec), _recorded(spec))
    assert diff.is_zero
    assert all(row["delta"] == 0 for row in diff.headline)
    assert all(row["delta_s"] == 0 for row in diff.phases)


def test_slow_node_fault_ranks_affected_replica_and_phase_first():
    """The acceptance pair: a 3x slow fault on replica 0 must put that
    replica and the service (prefill) phase at the top of the ranking."""
    baseline = _recorded(scenario_from_dict(_DIFF_BASE))
    candidate = _recorded(scenario_from_dict(_slow_variant()))
    diff = diff_runs(baseline, candidate)
    assert not diff.is_zero
    assert diff.replicas[0]["replica"] == "prefillonly-0"
    assert diff.replicas[0]["delta_service_s"] > 0
    assert diff.phases[0]["phase"] == "prefill"
    assert diff.phases[0]["delta_s"] > 0


def test_diff_bench_phases_names_the_grown_phase():
    def bench(route_s: float, advance_s: float) -> dict:
        return {"cases": [{
            "name": "fleet-4",
            "phases": {
                "route": {"wall_s": route_s, "events": 10, "events_per_s": 1.0},
                "advance": {"wall_s": advance_s, "events": 10, "events_per_s": 1.0},
            },
        }]}

    deltas = diff_bench_phases(bench(3.0, 1.0), bench(1.0, 1.0))
    assert deltas["fleet-4"]["top_regressed"] == "route"
    route = deltas["fleet-4"]["phases"]["route"]
    assert route["baseline_share"] == 0.5
    assert route["share"] == 0.75
    assert route["delta_share"] == 0.25
    # Identical reports attribute nothing.
    same = diff_bench_phases(bench(1.0, 1.0), bench(1.0, 1.0))
    assert same["fleet-4"]["top_regressed"] is None


# -------------------------------------------------------------------- alerts


def test_burn_rate_alert_fires_and_resolves_on_synthetic_trace():
    """Hand-computed transitions: two SLO misses inside both windows fire
    the rule at the next boundary; the alert resolves once the short window
    drains."""
    def finish(time: float, latency: float):
        return (time, 0, "finish",
                {"request": int(time * 10), "latency_s": latency,
                 "tokens": 1, "tenant": "t"}, 0)

    data = ObsData(
        config=ObsConfig(enabled=True, sample_interval_s=1.0),
        events=(finish(0.25, 5.0), finish(0.5, 5.0), finish(6.5, 0.1)),
        end_time=10.0,
    )
    rule = AlertRule(name="r", objective=0.5, long_window_s=4.0,
                     short_window_s=1.0, burn_rate=1.5, severity="page")
    report = evaluate_alerts(data, (rule,), slos={"t": 1.0})
    transitions = [(e.time, e.state) for e in report.events]
    # Boundary 1: both misses are inside [long -4, short -1) windows; the
    # miss ratio is 1.0 against a 0.5 budget -> burn 2.0 >= 1.5, firing.
    # Boundary 2: the short window [1, 2) is empty -> burn 0, resolved.
    assert transitions == [(1.0, "firing"), (2.0, "resolved")]
    assert report.firing_at_end() == ()
    budget_row = report.budgets[0]
    assert budget_row["finished"] == 3
    assert budget_row["slo_misses"] == 2


def test_alert_evaluation_is_deterministic_and_schema_valid():
    spec = load_scenario(SCENARIOS / "chaos_resilience_policies.json")
    slos = {t.name: t.slo_latency_s for t in spec.tenants
            if t.slo_latency_s is not None}
    data = _recorded(spec)
    first = evaluate_alerts(data, DEFAULT_ALERT_RULES, slos=slos)
    second = evaluate_alerts(data, DEFAULT_ALERT_RULES, slos=slos)
    assert first == second
    assert first.events, "the resilience chaos run should trip an alert"
    export = export_alerts(first)
    assert export_alerts(second) == export
    schema = json.loads(
        (REPO_ROOT / "schemas" / "repro-alerts.schema.json").read_text()
    )
    for number, line in enumerate(export.splitlines(), start=1):
        validate_json(json.loads(line), schema, path=f"line {number}")


def test_alert_rule_naming_unknown_tenant_is_rejected():
    data = ObsData(config=ObsConfig(enabled=True), end_time=1.0)
    rule = AlertRule(name="r", tenant="nobody")
    with pytest.raises(ObsError, match="nobody"):
        evaluate_alerts(data, (rule,), slos={"t": 1.0})


def test_alert_rule_spec_cross_field_validation():
    with pytest.raises(ScenarioSpecError, match="short_window_s"):
        from_dict(AlertRuleSpec,
                  {"name": "r", "long_window_s": 5.0, "short_window_s": 5.0})
    with pytest.raises(ScenarioSpecError, match="objective"):
        from_dict(AlertRuleSpec, {"name": "r", "objective": 1.0})
    with pytest.raises(ScenarioSpecError, match="severity"):
        from_dict(AlertRuleSpec, {"name": "r", "severity": "sev1"})


def test_scenario_alert_rules_reach_the_compiled_obs_config():
    config = json.loads(json.dumps(_DIFF_BASE))
    config["observability"] = {
        "enabled": True,
        "alerts": [{"name": "mine", "objective": 0.9, "long_window_s": 8.0,
                    "short_window_s": 2.0, "burn_rate": 2.0,
                    "severity": "page"}],
    }
    spec = scenario_from_dict(config)
    assert [rule.name for rule in spec.observability.alerts] == ["mine"]
    assert spec.observability.alerts[0].severity == "page"


# ----------------------------------------------------------------------- CLI


def test_cli_diff_same_seed_spans_files_zero_delta(tmp_path, capsys):
    data = _cookbook_recording("steady_poisson")
    spans = export_spans(data)
    a = tmp_path / "a.spans.jsonl"
    a.write_text(spans, encoding="utf-8")
    b = tmp_path / "b.spans.jsonl.gz"
    with gzip.open(b, "wt", encoding="utf-8") as handle:
        handle.write(spans)
    assert main(["obs", "diff", str(a), str(b), "--fail-on-delta"]) == 0
    assert "zero delta" in capsys.readouterr().out


def test_cli_critical_path_reads_spans_from_stdin(tmp_path, capsys, monkeypatch):
    spans = export_spans(_cookbook_recording("steady_poisson"))
    monkeypatch.setattr("sys.stdin", io.StringIO(spans))
    assert main(["obs", "critical-path", "--spans", "-"]) == 0
    output = capsys.readouterr().out
    assert "Phase decomposition" in output
    assert "prefill" in output


def test_cli_exemplars_from_spans_file(tmp_path, capsys):
    spans_path = tmp_path / "run.spans.jsonl"
    spans_path.write_text(export_spans(_cookbook_recording("steady_poisson")),
                          encoding="utf-8")
    assert main(["obs", "exemplars", "--spans", str(spans_path),
                 "--top", "3"]) == 0
    assert "slowest exemplars" in capsys.readouterr().out


def test_cli_malformed_spans_exits_2_with_line_number(tmp_path, capsys):
    spans = export_spans(_cookbook_recording("steady_poisson"))
    lines = spans.splitlines()
    lines[3] = "{not json"
    bad = tmp_path / "bad.spans.jsonl"
    bad.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert main(["obs", "critical-path", "--spans", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "prefillonly: error:" in err
    assert "line 4" in err


def test_cli_missing_spans_file_exits_2(capsys):
    assert main(["obs", "critical-path", "--spans", "/no/such/file"]) == 2
    assert "prefillonly: error:" in capsys.readouterr().err


def test_cli_critical_path_without_config_or_spans_exits_2(capsys):
    assert main(["obs", "critical-path"]) == 2
    assert "either --config" in capsys.readouterr().err


def test_cli_diff_rejects_mixed_bench_and_spans(tmp_path, capsys):
    spans_path = tmp_path / "run.spans.jsonl"
    spans_path.write_text(export_spans(_cookbook_recording("steady_poisson")),
                          encoding="utf-8")
    bench_path = tmp_path / "BENCH_x.json"
    bench_path.write_text(json.dumps({"cases": []}), encoding="utf-8")
    assert main(["obs", "diff", str(spans_path), str(bench_path)]) == 2
    assert "cannot diff" in capsys.readouterr().err


def test_cli_diff_bench_reports_phase_attribution(tmp_path, capsys):
    def bench(path: Path, route_s: float) -> None:
        path.write_text(json.dumps({"cases": [{
            "name": "fleet-4",
            "phases": {
                "route": {"wall_s": route_s, "events": 1, "events_per_s": 1.0},
                "advance": {"wall_s": 1.0, "events": 1, "events_per_s": 1.0},
            },
        }]}), encoding="utf-8")

    base = tmp_path / "BENCH_base.json"
    new = tmp_path / "BENCH_new.json"
    bench(base, 1.0)
    bench(new, 3.0)
    assert main(["obs", "diff", str(base), str(new), "--fail-on-delta"]) == 1
    output = capsys.readouterr().out
    assert "largest share gain in phase 'route'" in output


def test_cli_alerts_writes_schema_valid_export(tmp_path, capsys):
    out = tmp_path / "alerts.jsonl"
    spans_path = tmp_path / "run.spans.jsonl"
    spans_path.write_text(
        export_spans(_cookbook_recording("chaos_resilience_policies")),
        encoding="utf-8",
    )
    code = main([
        "obs", "alerts",
        "--config", str(SCENARIOS / "chaos_resilience_policies.json"),
        "--spans", str(spans_path), "--out", str(out),
    ])
    assert code == 0
    assert "Burn-rate rules" in capsys.readouterr().out
    schema = json.loads(
        (REPO_ROOT / "schemas" / "repro-alerts.schema.json").read_text()
    )
    lines = out.read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[0])["format"] == "repro-alerts/v1"
    for number, line in enumerate(lines, start=1):
        validate_json(json.loads(line), schema, path=f"line {number}")
