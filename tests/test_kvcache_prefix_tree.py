"""Tests for the radix-tree prefix cache."""

import pytest

from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.block import hash_token_blocks
from repro.kvcache.prefix_tree import RadixPrefixCache


BLOCK = 16


def make_cache(num_blocks: int = 32) -> tuple[RadixPrefixCache, BlockAllocator]:
    allocator = BlockAllocator(num_blocks=num_blocks, block_size=BLOCK)
    return RadixPrefixCache(allocator), allocator


def hashes(tokens: list[int]) -> list[int]:
    return hash_token_blocks(tokens, BLOCK)


def test_insert_then_match():
    cache, _ = make_cache()
    request = hashes(list(range(64)))
    inserted = cache.insert(request, block_size=BLOCK)
    assert inserted == 4
    match = cache.match(request)
    assert match.num_blocks == 4
    assert match.num_tokens == 64


def test_partial_prefix_match():
    cache, _ = make_cache()
    shared = list(range(48))
    cache.insert(hashes(shared + [1] * 16), block_size=BLOCK)
    other = hashes(shared + [2] * 16)
    match = cache.match(other)
    assert match.num_blocks == 3  # the shared 48 tokens only


def test_match_length_does_not_touch_lru():
    cache, _ = make_cache(num_blocks=4)
    old = hashes(list(range(64)))
    cache.insert(old, block_size=BLOCK, now=1.0)
    # A read-only probe at a later time must not refresh the LRU timestamps.
    cache.match_length(old)
    new = hashes(list(range(1000, 1064)))
    cache.insert(new, block_size=BLOCK, now=2.0)
    assert cache.match_length(new) == 4
    assert cache.match_length(old) == 0


def test_lru_eviction_prefers_oldest_leaf():
    cache, allocator = make_cache(num_blocks=8)
    first = hashes(list(range(64)))          # 4 blocks
    second = hashes(list(range(100, 164)))   # 4 blocks
    cache.insert(first, block_size=BLOCK, now=1.0)
    cache.insert(second, block_size=BLOCK, now=2.0)
    assert allocator.num_free_blocks == 0
    third = hashes(list(range(200, 232)))    # 2 blocks, forces eviction
    cache.insert(third, block_size=BLOCK, now=3.0)
    # The oldest entry (first) lost blocks; the newest are intact.
    assert cache.match_length(third) == 2
    assert cache.match_length(second) == 4
    assert cache.match_length(first) < 4


def test_eviction_removes_leaves_first():
    cache, _ = make_cache(num_blocks=8)
    request = hashes(list(range(64)))
    cache.insert(request, block_size=BLOCK)
    evicted = cache.evict_blocks(1)
    assert evicted == 1
    # The prefix shrinks from the tail, never from the head.
    assert cache.match_length(request) == 3


def test_pinned_blocks_are_not_evicted():
    cache, _ = make_cache(num_blocks=4)
    request = hashes(list(range(64)))
    cache.insert(request, block_size=BLOCK)
    pinned = cache.pin_prefix(request)
    assert cache.evict_blocks(4) == 0
    cache.unpin(pinned)
    assert cache.evict_blocks(4) == 4


def test_insert_without_eviction_stops_when_full():
    cache, _ = make_cache(num_blocks=2)
    request = hashes(list(range(64)))  # needs 4 blocks
    resident = cache.insert(request, block_size=BLOCK, allow_eviction=False)
    assert resident == 2
    assert cache.num_cached_blocks == 2


def test_insert_max_new_blocks_limits_growth():
    cache, _ = make_cache()
    request = hashes(list(range(128)))  # 8 blocks
    resident = cache.insert(request, block_size=BLOCK, max_new_blocks=3)
    assert resident == 3


def test_version_changes_on_insert_and_evict():
    cache, _ = make_cache()
    version0 = cache.version
    cache.insert(hashes(list(range(32))), block_size=BLOCK)
    version1 = cache.version
    assert version1 > version0
    cache.evict_blocks(1)
    assert cache.version > version1


def test_version_unchanged_by_lookup():
    cache, _ = make_cache()
    request = hashes(list(range(32)))
    cache.insert(request, block_size=BLOCK)
    version = cache.version
    cache.match(request)
    cache.match_length(request)
    assert cache.version == version


def test_reinserting_existing_prefix_allocates_nothing():
    cache, allocator = make_cache()
    request = hashes(list(range(64)))
    cache.insert(request, block_size=BLOCK)
    free_before = allocator.num_free_blocks
    cache.insert(request, block_size=BLOCK)
    assert allocator.num_free_blocks == free_before


def test_clear_frees_all_blocks():
    cache, allocator = make_cache()
    cache.insert(hashes(list(range(64))), block_size=BLOCK)
    cache.clear()
    assert cache.num_cached_blocks == 0
    assert allocator.num_free_blocks == allocator.num_blocks


def test_stats_counters():
    cache, _ = make_cache()
    request = hashes(list(range(32)))
    cache.match(request)          # miss
    cache.insert(request, block_size=BLOCK)
    cache.match(request)          # hits
    stats = cache.stats
    assert stats["insertions"] == 2
    assert stats["block_hits"] == 2
    assert stats["block_misses"] >= 1
