"""Integration tests: serving systems simulated end to end."""

import pytest

from repro.baselines import (
    all_engine_specs,
    paged_attention_spec,
    pipeline_parallel_spec,
    tensor_parallel_spec,
)
from repro.core.engine import prefillonly_engine_spec
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.cluster import get_hardware_setup
from repro.simulation.arrival import BurstArrivalProcess, PoissonArrivalProcess
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import simulate


def build(spec, setup, trace):
    return ServingSystem.for_setup(spec, setup, max_input_length=trace.max_request_tokens)


def test_non_parallel_engine_gets_one_instance_per_gpu(h100_setup, small_post_trace):
    system = build(prefillonly_engine_spec(), h100_setup, small_post_trace)
    assert system.num_instances == 2


def test_parallel_engine_gets_single_instance(h100_setup, small_post_trace):
    system = build(tensor_parallel_spec(), h100_setup, small_post_trace)
    assert system.num_instances == 1


def test_mismatched_parallel_degree_rejected(h100_setup, small_post_trace):
    spec = tensor_parallel_spec(degree=3)
    with pytest.raises(ConfigurationError):
        build(spec, h100_setup, small_post_trace)


def test_every_request_completes_exactly_once(h100_setup, small_post_trace):
    system = build(prefillonly_engine_spec(), h100_setup, small_post_trace)
    requests = PoissonArrivalProcess(rate=4.0, seed=0).assign(list(small_post_trace))
    result = simulate(system, requests)
    assert result.num_finished + result.num_rejected == len(small_post_trace)
    finished_ids = sorted(record.request_id for record in result.finished)
    assert len(finished_ids) == len(set(finished_ids))


def test_latencies_are_positive_and_consistent(h100_setup, small_post_trace):
    system = build(prefillonly_engine_spec(), h100_setup, small_post_trace)
    requests = PoissonArrivalProcess(rate=4.0, seed=0).assign(list(small_post_trace))
    result = simulate(system, requests)
    for record in result.finished:
        assert record.finish_time > record.arrival_time
        assert record.start_time >= record.arrival_time
        assert record.execution_time > 0


def test_users_stay_on_one_instance(h100_setup, small_post_trace):
    system = build(prefillonly_engine_spec(), h100_setup, small_post_trace)
    requests = PoissonArrivalProcess(rate=4.0, seed=0).assign(list(small_post_trace))
    result = simulate(system, requests)
    user_instances: dict[str, set] = {}
    for record in result.finished:
        user_instances.setdefault(record.user_id, set()).add(record.instance_name)
    assert all(len(instances) == 1 for instances in user_instances.values())


def test_prefix_caching_produces_hits_on_post_recommendation(h100_setup, small_post_trace):
    system = build(prefillonly_engine_spec(), h100_setup, small_post_trace)
    requests = PoissonArrivalProcess(rate=2.0, seed=0).assign(list(small_post_trace))
    result = simulate(system, requests)
    assert result.summary.cache_hit_rate > 0.5


def test_higher_load_increases_latency(h100_setup, small_post_trace):
    spec = prefillonly_engine_spec()
    low = simulate(
        build(spec, h100_setup, small_post_trace),
        PoissonArrivalProcess(rate=1.0, seed=1).assign(list(small_post_trace)),
    )
    high = simulate(
        build(spec, h100_setup, small_post_trace),
        PoissonArrivalProcess(rate=50.0, seed=1).assign(list(small_post_trace)),
    )
    assert high.summary.mean_latency > low.summary.mean_latency


def test_burst_arrival_measures_peak_throughput(h100_setup, small_post_trace):
    spec = prefillonly_engine_spec()
    burst = simulate(
        build(spec, h100_setup, small_post_trace),
        BurstArrivalProcess(seed=0).assign(list(small_post_trace)),
    )
    trickle = simulate(
        build(spec, h100_setup, small_post_trace),
        PoissonArrivalProcess(rate=0.5, seed=0).assign(list(small_post_trace)),
    )
    assert burst.summary.throughput_rps > trickle.summary.throughput_rps


def test_prefillonly_beats_baselines_under_overload(l4_setup, small_post_trace):
    """The headline claim at small scale: lower mean latency under high load.

    Run on the L4 setup, where every engine (including PagedAttention) can
    serve the post-recommendation workload, per Table 2.
    """
    requests_rate = 40.0
    latencies = {}
    for spec in all_engine_specs():
        system = build(spec, l4_setup, small_post_trace)
        requests = PoissonArrivalProcess(rate=requests_rate, seed=3).assign(
            list(small_post_trace)
        )
        latencies[spec.name] = simulate(system, requests).summary.mean_latency
    assert latencies["prefillonly"] <= min(latencies.values()) * 1.05


def test_credit_verification_infeasible_on_a100_paged_attention(small_credit_trace):
    """Table 2: PagedAttention cannot handle the credit workload on the A100."""
    setup = get_hardware_setup("a100")
    with pytest.raises(CapacityError):
        build(paged_attention_spec(), setup, small_credit_trace)


def test_credit_verification_feasible_for_prefillonly_on_a100(small_credit_trace):
    setup = get_hardware_setup("a100")
    system = build(prefillonly_engine_spec(), setup, small_credit_trace)
    requests = PoissonArrivalProcess(rate=0.05, seed=0).assign(list(small_credit_trace))
    result = simulate(system, requests)
    assert result.num_finished == len(small_credit_trace)


def test_pipeline_parallel_end_to_end(l4_setup, small_post_trace):
    system = build(pipeline_parallel_spec(), l4_setup, small_post_trace)
    requests = PoissonArrivalProcess(rate=2.0, seed=0).assign(list(small_post_trace))
    result = simulate(system, requests)
    assert result.num_finished == len(small_post_trace)


def test_cache_stats_reported_per_instance(h100_setup, small_post_trace):
    system = build(prefillonly_engine_spec(), h100_setup, small_post_trace)
    requests = PoissonArrivalProcess(rate=4.0, seed=0).assign(list(small_post_trace))
    result = simulate(system, requests)
    assert len(result.cache_stats) == 2
    assert all("token_hit_rate" in entry for entry in result.cache_stats)
