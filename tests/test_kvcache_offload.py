"""Tests for the CPU offload store."""

import pytest

from repro.hardware.interconnect import NVLINK, PCIE_GEN4
from repro.kvcache.offload import CPUOffloadStore


BLOCK_BYTES = 1 << 20  # 1 MiB per block


def test_store_and_match():
    store = CPUOffloadStore(capacity_bytes=16 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    store.store([1, 2, 3])
    assert 2 in store
    assert store.match_length([1, 2, 3, 4]) == 3
    assert store.match_length([9, 1, 2]) == 0


def test_load_returns_prefix_and_time():
    store = CPUOffloadStore(capacity_bytes=16 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    store.store([1, 2, 3])
    loaded, seconds = store.load([1, 2, 5])
    assert loaded == 2
    assert seconds > 0


def test_transfer_time_scales_with_blocks():
    store = CPUOffloadStore(capacity_bytes=64 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    one = store.store([1])
    many = store.store([10, 11, 12, 13, 14, 15, 16, 17])
    assert many > one


def test_faster_link_reduces_transfer_time():
    slow = CPUOffloadStore(capacity_bytes=8 * BLOCK_BYTES, block_bytes=BLOCK_BYTES, link=PCIE_GEN4)
    fast = CPUOffloadStore(capacity_bytes=8 * BLOCK_BYTES, block_bytes=BLOCK_BYTES, link=NVLINK)
    assert fast.store([1, 2, 3, 4]) < slow.store([1, 2, 3, 4])


def test_lru_eviction_when_full():
    store = CPUOffloadStore(capacity_bytes=2 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    store.store([1, 2])
    store.store([3])
    assert 1 not in store
    assert 2 in store and 3 in store
    assert store.stats.evicted_blocks == 1


def test_restoring_existing_block_refreshes_lru():
    store = CPUOffloadStore(capacity_bytes=2 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    store.store([1, 2])
    store.store([1])       # refresh 1
    store.store([3])       # evicts 2, not 1
    assert 1 in store
    assert 2 not in store


def test_zero_capacity_stores_nothing():
    store = CPUOffloadStore(capacity_bytes=0, block_bytes=BLOCK_BYTES)
    store.store([1, 2, 3])
    assert store.num_blocks == 0


def test_stats_counts():
    store = CPUOffloadStore(capacity_bytes=8 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    store.store([1, 2, 3])
    store.load([1, 2])
    stats = store.stats
    assert stats.stored_blocks == 3
    assert stats.loaded_blocks == 2
    assert stats.current_blocks == 3


def test_invalid_construction():
    with pytest.raises(ValueError):
        CPUOffloadStore(capacity_bytes=-1, block_bytes=BLOCK_BYTES)
    with pytest.raises(ValueError):
        CPUOffloadStore(capacity_bytes=BLOCK_BYTES, block_bytes=0)


def test_clear():
    store = CPUOffloadStore(capacity_bytes=8 * BLOCK_BYTES, block_bytes=BLOCK_BYTES)
    store.store([1, 2, 3])
    store.clear()
    assert store.num_blocks == 0
