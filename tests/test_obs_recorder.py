"""Unit tests of the span/metrics recorder's time and merge semantics.

The identity contracts (disabled path == seed, sharded exports == unsharded)
are pinned end-to-end in ``tests/test_obs_identity.py``; this module covers
the recorder's own edges — sample boundaries, zero-duration runs, intervals
longer than the run, histogram ``le`` bucket boundaries, and the per-shard
payload merge.
"""

import pytest

from repro.obs.recorder import (
    DEFAULT_LATENCY_BUCKETS,
    GLOBAL_KEY,
    KIND_ORDER,
    NULL_RECORDER,
    ObsConfig,
    TraceRecorder,
    merge_shard_payloads,
)


def make_recorder(**overrides) -> TraceRecorder:
    return TraceRecorder(ObsConfig(enabled=True, **overrides))


def sample_times(data, name="queue_depth"):
    return [time for time, n, _labels, _v in data.samples if n == name]


# ------------------------------------------------------------- null recorder


def test_null_recorder_is_inert():
    NULL_RECORDER.register_replica(0, "r0")
    NULL_RECORDER.emit(1.0, 0, "finish", latency_s=0.5)
    NULL_RECORDER.maybe_sample(2.0)
    NULL_RECORDER.finalize(3.0)
    assert NULL_RECORDER.enabled is False


# ------------------------------------------------------------ span ordering


def test_events_sort_in_canonical_order():
    recorder = make_recorder()
    # Emitted out of lifecycle order, all at the same instant.
    recorder.emit(1.0, 0, "finish", latency_s=0.5)
    recorder.emit(1.0, 0, "start")
    recorder.emit(1.0, GLOBAL_KEY, "submit")
    recorder.emit(0.5, 3, "start")
    data = recorder.freeze(1.0)
    assert [(t, k, kind) for t, k, kind, _a, _s in data.events] == [
        (0.5, 3, "start"),
        (1.0, GLOBAL_KEY, "submit"),
        (1.0, 0, "start"),
        (1.0, 0, "finish"),
    ]


def test_sequence_numbers_break_same_slot_ties():
    recorder = make_recorder()
    recorder.emit(2.0, 0, "finish", latency_s=0.1, request=7)
    recorder.emit(2.0, 0, "finish", latency_s=0.2, request=9)
    data = recorder.freeze(2.0)
    assert [event[3]["request"] for event in data.events] == [7, 9]
    assert [event[4] for event in data.events] == [0, 1]


def test_kind_order_covers_every_counted_kind():
    """Every kind the counter switch knows has a canonical rank."""
    recorder = make_recorder()
    for kind in KIND_ORDER:
        recorder.emit(0.0, 0, kind)
    assert len(recorder.freeze(0.0).events) == len(KIND_ORDER)


# ----------------------------------------------------------- sampling edges


def test_boundaries_sampled_before_the_batch():
    """The sample at boundary b reflects state strictly before b."""
    recorder = make_recorder(sample_interval_s=1.0)
    recorder.register_replica(0, "r0")
    recorder.maybe_sample(0.0)
    recorder.emit(0.4, 0, "finish", latency_s=0.4)
    recorder.maybe_sample(1.0)  # boundary 1.0: sees the 0.4 finish
    recorder.emit(1.0, 0, "finish", latency_s=0.6)
    data = recorder.freeze(1.0)
    finished = {
        time: value for time, name, _l, value in data.samples
        if name == "finished_total"
    }
    assert finished == {1.0: 1}  # the finish *at* 1.0 is not in boundary 1.0


def test_zero_duration_run_records_exactly_boundary_zero():
    recorder = make_recorder(sample_interval_s=1.0)
    recorder.emit(0.0, 0, "finish", latency_s=0.0)
    data = recorder.freeze(0.0)
    assert data.num_boundaries == 1
    assert data.end_time == 0.0
    times = {time for time, *_ in data.samples}
    assert times == {0.0}


def test_interval_longer_than_run_yields_one_boundary():
    recorder = make_recorder(sample_interval_s=100.0)
    recorder.maybe_sample(0.0)
    recorder.emit(3.0, 0, "finish", latency_s=1.0)
    data = recorder.freeze(3.0)
    assert data.num_boundaries == 1  # only k = 0; 100.0 > end of run
    assert data.end_time == 3.0


def test_finalize_catches_skipped_boundaries():
    """A stream ending between boundaries still samples every k*interval."""
    recorder = make_recorder(sample_interval_s=1.0)
    recorder.maybe_sample(0.0)
    recorder.maybe_sample(3.5)  # loop jumps straight to 3.5
    recorder.finalize(3.5)
    data = recorder.freeze()
    assert data.num_boundaries == 4  # 0, 1, 2, 3
    assert data.end_time == 3.5


def test_finalize_is_idempotent():
    recorder = make_recorder(sample_interval_s=1.0)
    recorder.finalize(2.0)
    before = recorder.freeze()
    recorder.finalize(2.0)
    assert recorder.freeze() == before


def test_gauges_invoked_once_per_boundary():
    calls = []
    recorder = make_recorder(sample_interval_s=1.0)

    def gauges():
        calls.append(len(calls))
        return [("queue_depth", (("replica", "r0"),), len(calls))]

    recorder.maybe_sample(2.0, gauges)  # crosses 0, 1, 2
    assert calls == [0, 1, 2]
    data = recorder.freeze(2.0)
    assert sample_times(data) == [0.0, 1.0, 2.0]


# ------------------------------------------------------ histogram boundaries


def test_histogram_value_on_edge_falls_in_that_bucket():
    """Prometheus le semantics: value == edge counts in the edge's bucket."""
    recorder = make_recorder(latency_buckets=(0.1, 1.0, 10.0))
    for latency in (0.1, 1.0, 10.0):
        recorder.emit(0.0, 0, "finish", latency_s=latency)
    data = recorder.freeze(0.0)
    assert data.hist_counts == (1, 1, 1, 0)
    assert data.hist_count == 3
    assert data.hist_sum == pytest.approx(11.1)


def test_histogram_overflow_bucket():
    recorder = make_recorder(latency_buckets=(0.1, 1.0))
    recorder.emit(0.0, 0, "finish", latency_s=1.0000001)  # just over the edge
    recorder.emit(0.0, 0, "finish", latency_s=50.0)
    data = recorder.freeze(0.0)
    assert data.hist_counts == (0, 0, 2)


def test_histogram_zero_latency_lands_in_first_bucket():
    recorder = make_recorder()
    recorder.emit(0.0, 0, "finish", latency_s=0.0)
    data = recorder.freeze(0.0)
    assert data.hist_counts[0] == 1
    assert data.hist_buckets == DEFAULT_LATENCY_BUCKETS


# -------------------------------------------------------------- shard merge


def _shard_recorder(config, key, name, finishes):
    shard = TraceRecorder(config)
    shard.register_replica(key, name)
    shard.maybe_sample(0.0, lambda: [("queue_depth", (("replica", name),), 0)])
    for time, latency in finishes:
        shard.emit(time, key, "finish", latency_s=latency)
        shard.maybe_sample(
            time, lambda: [("queue_depth", (("replica", name),), 0)]
        )
    shard.finalize(finishes[-1][0] if finishes else 0.0)
    return shard


def test_merge_pads_short_shards_with_final_state():
    config = ObsConfig(enabled=True, sample_interval_s=1.0)
    coordinator = TraceRecorder(config)
    coordinator.register_replica(0, "r0")
    coordinator.register_replica(1, "r1")
    long_shard = _shard_recorder(config, 0, "r0", [(1.0, 0.5), (4.0, 0.5)])
    short_shard = _shard_recorder(config, 1, "r1", [(1.0, 0.25)])

    data = merge_shard_payloads(
        coordinator, [long_shard.payload(), short_shard.payload()]
    )
    assert data.num_boundaries == 5  # 0..4 from the long shard
    assert data.end_time == 4.0
    # The short shard sampled boundary 1.0 itself; boundaries 2, 3, 4 are
    # padded with its final counter value (1).
    r1_finished = {
        time: value for time, name, labels, value in data.samples
        if name == "finished_total" and labels == (("replica", "r1"),)
    }
    assert r1_finished == {1.0: 1, 2.0: 1, 3.0: 1, 4.0: 1}
    # Queue depth pads to zero, so both replicas have the full series.
    r1_queue = [
        time for time, name, labels, _v in data.samples
        if name == "queue_depth" and labels == (("replica", "r1"),)
    ]
    assert r1_queue == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_merge_excludes_snapshot_only_counters_from_padding():
    config = ObsConfig(enabled=True, sample_interval_s=1.0)
    coordinator = TraceRecorder(config)
    coordinator.register_replica(0, "r0")
    coordinator.emit(0.0, GLOBAL_KEY, "submit")
    coordinator.emit(0.0, 0, "route")
    shard = _shard_recorder(config, 0, "r0", [(2.0, 0.5)])

    data = merge_shard_payloads(coordinator, [shard.payload()])
    assert ("submitted_total", ()) in dict(data.counters)
    assert all(name != "submitted_total" for _t, name, _l, _v in data.samples)
    assert all(name != "routed_total" for _t, name, _l, _v in data.samples)


def test_merge_idle_replicas_contribute_zero_series():
    config = ObsConfig(enabled=True, sample_interval_s=1.0)
    coordinator = TraceRecorder(config)
    coordinator.register_replica(0, "r0")
    coordinator.register_replica(1, "idle")
    shard = _shard_recorder(config, 0, "r0", [(2.0, 0.5)])

    data = merge_shard_payloads(
        coordinator, [shard.payload()], idle_replicas=[(1, "idle")]
    )
    idle_series = [
        (time, value) for time, name, labels, value in data.samples
        if name == "queue_depth" and labels == (("replica", "idle"),)
    ]
    assert idle_series == [(0.0, 0), (1.0, 0), (2.0, 0)]


def test_merge_histogram_sum_matches_single_recorder():
    """fsum makes the merged sum independent of shard assignment."""
    latencies = [0.1 + 0.07 * i for i in range(20)]
    config = ObsConfig(enabled=True)

    single = TraceRecorder(config)
    single.register_replica(0, "r0")
    for latency in latencies:
        single.emit(1.0, 0, "finish", latency_s=latency)
    expected = single.freeze(1.0)

    coordinator = TraceRecorder(config)
    coordinator.register_replica(0, "r0")
    shard_a, shard_b = TraceRecorder(config), TraceRecorder(config)
    shard_a.register_replica(0, "r0")
    shard_b.register_replica(0, "r0")
    # Interleave observations across shards in a different order.
    for index, latency in enumerate(reversed(latencies)):
        (shard_a if index % 2 else shard_b).emit(1.0, 0, "finish", latency_s=latency)
    shard_a.finalize(1.0)
    shard_b.finalize(1.0)
    merged = merge_shard_payloads(
        coordinator, [shard_a.payload(), shard_b.payload()]
    )
    assert merged.hist_sum == expected.hist_sum  # bit-equal, not approx
    assert merged.hist_count == expected.hist_count
    assert merged.hist_counts == expected.hist_counts


# ---------------------------------------------------------------- counters


def test_tenant_slo_attainment_counters():
    recorder = TraceRecorder(
        ObsConfig(enabled=True), tenant_slos={"gold": 1.0}
    )
    recorder.register_replica(0, "r0")
    recorder.emit(1.0, 0, "finish", latency_s=0.5, tenant="gold")
    recorder.emit(2.0, 0, "finish", latency_s=2.0, tenant="gold")
    recorder.emit(3.0, 0, "finish", latency_s=9.0, tenant="free")
    counters = dict(recorder.freeze(3.0).counters)
    assert counters[("tenant_finished_total", (("tenant", "gold"),))] == 2
    assert counters[("tenant_slo_ok_total", (("tenant", "gold"),))] == 1
    # "free" has no SLO: finished is counted, attainment is not.
    assert counters[("tenant_finished_total", (("tenant", "free"),))] == 1
    assert ("tenant_slo_ok_total", (("tenant", "free"),)) not in counters


def test_spans_and_metrics_toggles_are_independent():
    spans_only = TraceRecorder(ObsConfig(enabled=True, metrics=False))
    spans_only.emit(1.0, 0, "finish", latency_s=0.5)
    data = spans_only.freeze(1.0)
    assert len(data.events) == 1 and data.counters == () and data.samples == ()

    metrics_only = TraceRecorder(ObsConfig(enabled=True, spans=False))
    metrics_only.register_replica(0, "r0")
    metrics_only.emit(1.0, 0, "finish", latency_s=0.5)
    data = metrics_only.freeze(1.0)
    assert data.events == () and len(data.counters) == 1
