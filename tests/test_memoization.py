"""Memoized analytic models must be bit-identical to the unmemoized paths.

The memo layers (latency-model LRU, precomputed FLOPs coefficients, interned
hash chains, profile-run and JCT-estimator interning) exist purely for speed;
these property tests pin that every cached value equals a fresh computation
exactly — no rounding, no drift — and that the
:mod:`repro.perf.memo` switchboard cleanly toggles and clears the caches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.jct import JCTEstimator
from repro.core.profile_run import run_profile
from repro.hardware.interconnect import PCIE_GEN4
from repro.kvcache.block import (
    GLOBAL_HASH_CHAIN_CACHE,
    HashChainCache,
    hash_chain,
    hash_token_blocks,
)
from repro.model.config import get_model
from repro.model.flops import FlopsModel
from repro.model.latency import LatencyModel
from repro.model.memory import PrefillMode
from repro.perf import memo
from repro.workloads.trace import TokenSegment, TokenSequence


@pytest.fixture()
def memo_off():
    """Run a test with every memo layer disabled; restore afterwards."""
    was = memo.memo_enabled()
    memo.set_memo_enabled(False)
    yield
    memo.set_memo_enabled(was)


# --------------------------------------------------------------- latency LRU


@settings(max_examples=60, deadline=None)
@given(
    new_tokens=st.integers(min_value=0, max_value=40_000),
    cached_tokens=st.integers(min_value=0, max_value=40_000),
    mode=st.sampled_from(list(PrefillMode)),
    chunk_tokens=st.sampled_from([512, 2048]),
    parallel=st.sampled_from([(1, 1), (2, 1), (1, 2)]),
)
def test_prefill_time_memo_is_bit_identical(new_tokens, cached_tokens, mode,
                                            chunk_tokens, parallel):
    model = get_model("llama-3.1-8b")
    from repro.hardware.gpu import get_gpu

    gpu = get_gpu("h100-80gb")
    tensor_parallel, pipeline_parallel = parallel
    memoized = LatencyModel(model, gpu, PCIE_GEN4)
    was = memo.memo_enabled()
    try:
        memo.set_memo_enabled(True)
        warm_model = memoized
        first = warm_model.prefill_time(
            new_tokens, num_cached_tokens=cached_tokens, mode=mode,
            chunk_tokens=chunk_tokens, tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
        )
        second = warm_model.prefill_time(
            new_tokens, num_cached_tokens=cached_tokens, mode=mode,
            chunk_tokens=chunk_tokens, tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
        )
        memo.set_memo_enabled(False)
        cold = LatencyModel(model, gpu, PCIE_GEN4).prefill_time(
            new_tokens, num_cached_tokens=cached_tokens, mode=mode,
            chunk_tokens=chunk_tokens, tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
        )
    finally:
        memo.set_memo_enabled(was)
    assert second is first  # the memo returned the cached object
    assert (first.compute_time, first.communication_time, first.overhead_time) == (
        cold.compute_time, cold.communication_time, cold.overhead_time
    )


@settings(max_examples=30, deadline=None)
@given(
    prompt=st.integers(min_value=0, max_value=20_000),
    outputs=st.integers(min_value=0, max_value=200),
    batch=st.sampled_from([1, 8, 32]),
)
def test_decode_time_memo_is_bit_identical(prompt, outputs, batch):
    model = get_model("qwen-32b-fp8")
    from repro.hardware.gpu import get_gpu

    gpu = get_gpu("a100-40gb")
    was = memo.memo_enabled()
    try:
        memo.set_memo_enabled(True)
        warm = LatencyModel(model, gpu)
        first = warm.decode_time(prompt, outputs, batch_size=batch)
        second = warm.decode_time(prompt, outputs, batch_size=batch)
        memo.set_memo_enabled(False)
        cold = LatencyModel(model, gpu).decode_time(prompt, outputs, batch_size=batch)
    finally:
        memo.set_memo_enabled(was)
    assert first == second == cold


def test_latency_memo_toggle_clears(memo_off):
    from repro.hardware.gpu import get_gpu

    latency = LatencyModel(get_model("llama-3.1-8b"), get_gpu("l4"))
    latency.prefill_time(1000)
    assert latency.memo_sizes() == (0, 0)  # disabled: nothing cached
    memo.set_memo_enabled(True)
    latency.prefill_time(1000)
    latency.decode_time(1000, 4)
    assert latency.memo_sizes() == (1, 1)
    memo.set_memo_enabled(False)
    latency.prefill_time(1000)  # uncached path; stale entries linger unused
    assert latency.memo_sizes() == (1, 1)
    memo.set_memo_enabled(True)
    latency.decode_time(2000, 4)  # epoch change drops the stale entries first
    assert latency.memo_sizes() == (0, 1)


# ----------------------------------------------- FLOPs coefficient precompute


@settings(max_examples=60, deadline=None)
@given(
    new_tokens=st.integers(min_value=0, max_value=100_000),
    cached_tokens=st.integers(min_value=0, max_value=100_000),
)
def test_precomputed_prefill_flops_match_seed_formula(new_tokens, cached_tokens):
    """The precomputed coefficients reproduce the seed's inline arithmetic."""
    model = get_model("llama-3.3-70b-fp8")
    got = FlopsModel(model).prefill(new_tokens, num_cached_tokens=cached_tokens)
    # The seed implementation, verbatim:
    dense = 2.0 * model.num_parameters * new_tokens
    per_layer = 4.0 * model.num_attention_heads * model.head_dim
    new_new = per_layer * new_tokens * max(new_tokens, 1) / 2.0
    new_cached = per_layer * new_tokens * cached_tokens
    attention = model.num_layers * (new_new + new_cached)
    assert got.dense_flops == dense
    assert got.attention_flops == attention


@settings(max_examples=40, deadline=None)
@given(context=st.integers(min_value=0, max_value=200_000))
def test_precomputed_decode_flops_match_seed_formula(context):
    model = get_model("qwen-32b-fp8")
    got = FlopsModel(model).decode_step(context)
    dense = 2.0 * model.num_parameters
    per_layer = 4.0 * model.num_attention_heads * model.head_dim
    attention = model.num_layers * per_layer * context
    assert got.dense_flops == dense
    assert got.attention_flops == attention


# ------------------------------------------------------- interned hash chains


@settings(max_examples=50, deadline=None)
@given(
    parent=st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    content=st.lists(st.tuples(st.integers(0, 2 ** 30), st.integers(0, 255),
                               st.integers(1, 256)), min_size=1, max_size=4),
)
def test_interned_chain_equals_hash_chain(parent, content):
    cache = HashChainCache(maxsize=128)
    content = tuple(content)
    assert cache.chain(parent, content) == hash_chain(parent, content)
    # Second query hits and still agrees.
    assert cache.chain(parent, content) == hash_chain(parent, content)
    assert cache.hits == 1 and cache.misses == 1


def test_hash_chain_cache_bounded():
    cache = HashChainCache(maxsize=4)
    for value in range(10):
        cache.chain(value, (value,))
    assert len(cache) <= 4
    with pytest.raises(ValueError):
        HashChainCache(maxsize=0)


@settings(max_examples=40, deadline=None)
@given(
    segments=st.lists(
        st.tuples(st.integers(0, 10), st.integers(1, 700)),
        min_size=1, max_size=6,
    ),
    block_size=st.sampled_from([16, 256]),
)
def test_block_hashes_identical_with_and_without_interning(segments, block_size):
    """The whole-sequence memo + interned chains reproduce the seed hashes."""
    was = memo.memo_enabled()
    try:
        memo.set_memo_enabled(False)
        plain = TokenSequence(
            [TokenSegment(cid, length) for cid, length in segments]
        ).block_hashes(block_size)
        memo.set_memo_enabled(True)
        interned_first = TokenSequence(
            [TokenSegment(cid, length) for cid, length in segments]
        ).block_hashes(block_size)
        # A *distinct but equal* sequence must hit the whole-sequence memo.
        interned_second = TokenSequence(
            [TokenSegment(cid, length) for cid, length in segments]
        ).block_hashes(block_size)
    finally:
        memo.set_memo_enabled(was)
    assert plain == interned_first
    assert interned_second is interned_first


def test_shared_prefixes_hit_the_chain_cache():
    memo.clear_all_caches()
    base = [TokenSegment(1, 512)]
    TokenSequence(base + [TokenSegment(2, 256)]).block_hashes(256)
    hits_before = GLOBAL_HASH_CHAIN_CACHE.hits
    # Shares the first two blocks (the 512-token segment) with the first
    # sequence; the interned chain serves them from cache.
    TokenSequence(base + [TokenSegment(3, 256)]).block_hashes(256)
    assert GLOBAL_HASH_CHAIN_CACHE.hits >= hits_before + 2


def test_hash_token_blocks_unchanged_by_memoization(memo_off):
    tokens = list(range(1000))
    plain = hash_token_blocks(tokens, 256)
    memo.set_memo_enabled(True)
    assert hash_token_blocks(tokens, 256) == plain


# ------------------------------------------- profile-run / estimator interning


def test_run_profile_interned_result_is_identical(h100_gpu, llama_70b):
    was = memo.memo_enabled()
    try:
        memo.set_memo_enabled(True)
        first = run_profile(llama_70b, h100_gpu, max_input_length=20_000,
                            mode=PrefillMode.HYBRID)
        second = run_profile(llama_70b, h100_gpu, max_input_length=20_000,
                             mode=PrefillMode.HYBRID)
        memo.set_memo_enabled(False)
        cold = run_profile(llama_70b, h100_gpu, max_input_length=20_000,
                           mode=PrefillMode.HYBRID)
    finally:
        memo.set_memo_enabled(was)
    assert second is first
    assert first == cold


def test_jct_estimator_interned_fit_is_identical(h100_gpu, llama_70b):
    latency = LatencyModel(llama_70b, h100_gpu)
    was = memo.memo_enabled()
    try:
        memo.set_memo_enabled(True)
        first = JCTEstimator.from_latency_model(latency, 12_000)
        second = JCTEstimator.from_latency_model(latency, 12_000)
        memo.set_memo_enabled(False)
        cold = JCTEstimator.from_latency_model(latency, 12_000)
    finally:
        memo.set_memo_enabled(was)
    assert second is first
    assert (first.coef_uncached, first.coef_cached, first.intercept) == (
        cold.coef_uncached, cold.coef_cached, cold.intercept
    )


# ------------------------------------------------------- end-to-end identity


def test_simulation_results_identical_with_memo_on_and_off(h100_setup, small_post_trace):
    """A full simulation must not change by a bit when memoization is off."""
    from repro.analysis.sweep import run_once
    from repro.core.engine import prefillonly_engine_spec

    spec = prefillonly_engine_spec()
    was = memo.memo_enabled()
    try:
        memo.set_memo_enabled(True)
        warm = run_once(spec, h100_setup, small_post_trace, qps=6.0)
        memo.set_memo_enabled(False)
        cold = run_once(spec, h100_setup, small_post_trace, qps=6.0)
    finally:
        memo.set_memo_enabled(was)
    assert warm.summary == cold.summary
    warm_records = [(r.request_id, r.start_time, r.finish_time, r.cached_tokens)
                    for r in warm.finished]
    cold_records = [(r.request_id, r.start_time, r.finish_time, r.cached_tokens)
                    for r in cold.finished]
    assert warm_records == cold_records
    assert warm.num_events == cold.num_events
