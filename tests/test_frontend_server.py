"""Tests for the frontend server, RPC boundary, and micro-model backend."""

import pytest

from repro.frontend.api import CompletionRequest
from repro.frontend.rpc import InProcessChannel, RPCError, ScoreReply, SubmitRequest
from repro.frontend.server import (
    FleetBackend,
    MicroModelBackend,
    PrefillOnlyFrontend,
    ScoringBackend,
)


PROMPT = (
    "Here is the user profile: reads systems papers about GPU scheduling. "
    "Should we recommend the article about KV cache management? Your answer is:"
)


# ----------------------------------------------------------------- RPC layer

def test_submit_request_round_trip():
    message = SubmitRequest(request_id="r1", user_id="u1", token_ids=(1, 2, 3),
                            allowed_outputs=("Yes", "No"), arrival_time=1.5)
    restored = SubmitRequest.from_dict(message.to_dict())
    assert restored == message


def test_score_reply_round_trip():
    reply = ScoreReply(request_id="r1", probabilities=(("Yes", 0.6), ("No", 0.4)),
                       prompt_tokens=12, cached_prompt_tokens=8, latency_seconds=0.25)
    restored = ScoreReply.from_dict(reply.to_dict())
    assert restored == reply


def test_wrong_message_type_rejected():
    with pytest.raises(RPCError):
        SubmitRequest.from_dict({"type": "score"})
    with pytest.raises(RPCError):
        ScoreReply.from_dict({"type": "submit"})


def test_channel_is_fifo_and_counts():
    channel = InProcessChannel()
    channel.send(SubmitRequest("a", "u", (1,), ("Yes", "No")))
    channel.send(SubmitRequest("b", "u", (2,), ("Yes", "No")))
    first = channel.receive()
    assert first["request_id"] == "a"
    assert channel.sent == 2 and channel.received == 1
    assert len(channel) == 1


def test_channel_empty_receive_raises():
    with pytest.raises(RPCError):
        InProcessChannel().receive()


# ----------------------------------------------------------------- frontend

@pytest.fixture(scope="module")
def frontend():
    return PrefillOnlyFrontend()


def test_handle_completion_returns_openai_shape(frontend):
    body = frontend.handle_completion({"prompt": PROMPT, "user": "alice"})
    assert body["object"] == "text_completion"
    assert body["choices"][0]["text"] in {"Yes", "No"}
    top = body["choices"][0]["logprobs"]["top_logprobs"][0]
    assert set(top) == {"Yes", "No"}
    assert sum(top.values()) == pytest.approx(1.0)
    assert body["usage"]["prompt_tokens"] > 10


def test_scores_are_deterministic(frontend):
    first = frontend.score(PROMPT, user="bob")
    second = frontend.score(PROMPT, user="bob")
    assert first == second


def test_custom_allowed_outputs(frontend):
    scores = frontend.score("approve this credit application? answer:",
                            allowed_outputs=("Approve", "Reject"), user="carol")
    assert set(scores) == {"Approve", "Reject"}
    assert sum(scores.values()) == pytest.approx(1.0)


def test_repeat_prompts_from_same_user_report_cache_hits(frontend):
    long_prefix = "profile details " * 200
    first = frontend.complete(CompletionRequest(prompt=long_prefix + " post one. answer:",
                                                user="dave"))
    second = frontend.complete(CompletionRequest(prompt=long_prefix + " post two. answer:",
                                                 user="dave"))
    assert first.cached_prompt_tokens == 0
    assert second.cached_prompt_tokens > 0
    assert second.cached_prompt_tokens <= second.usage.prompt_tokens


def test_cache_affinity_is_per_user(frontend):
    long_prefix = "browsing history " * 200
    frontend.complete(CompletionRequest(prompt=long_prefix + " item a. answer:", user="erin"))
    other_user = frontend.complete(CompletionRequest(prompt=long_prefix + " item b. answer:",
                                                     user="frank"))
    assert other_user.cached_prompt_tokens == 0


def test_request_ids_unique_and_served_counter(frontend):
    before = frontend.requests_served
    a = frontend.complete(CompletionRequest(prompt="question one? answer:"))
    b = frontend.complete(CompletionRequest(prompt="question two? answer:"))
    assert a.request_id != b.request_id
    assert frontend.requests_served == before + 2


def test_caller_supplied_request_id_is_echoed(frontend):
    response = frontend.complete(CompletionRequest(prompt="hello? answer:", request_id="my-id"))
    assert response.request_id == "my-id"


def test_validation_errors_propagate(frontend):
    from repro.frontend.api import APIValidationError

    with pytest.raises(APIValidationError):
        frontend.handle_completion({"prompt": "hi", "max_tokens": 4})


def test_messages_cross_the_serialisation_boundary(frontend):
    sent_before = frontend.channel.sent
    frontend.score("does the boundary count messages? answer:", user="gina")
    assert frontend.channel.sent == sent_before + 1
    assert len(frontend.channel) == 0  # everything sent was also consumed


# ------------------------------------------------------------ custom backend

class _ConstantBackend(ScoringBackend):
    """Test double returning a fixed distribution."""

    def score(self, request: SubmitRequest) -> ScoreReply:
        return ScoreReply(
            request_id=request.request_id,
            probabilities=tuple((token, 1.0 / len(request.allowed_outputs))
                                for token in request.allowed_outputs),
            prompt_tokens=len(request.token_ids),
        )


def test_frontend_accepts_custom_backend():
    frontend = PrefillOnlyFrontend(backend=_ConstantBackend(), model_name="stub")
    scores = frontend.score("anything? answer:", allowed_outputs=("A", "B", "C", "D"))
    assert all(value == pytest.approx(0.25) for value in scores.values())


def test_micro_backend_output_token_mapping_is_stable():
    backend = MicroModelBackend(seed=1)
    assert backend._output_token_id("Yes") == backend._output_token_id("Yes")
    assert backend._output_token_id("Yes") != backend._output_token_id("No")


# -------------------------------------------------------------- fleet backend

def test_fleet_backend_same_user_stays_on_one_replica():
    backend = FleetBackend(num_replicas=2)
    frontend = PrefillOnlyFrontend(backend=backend)
    for _ in range(3):
        frontend.score(PROMPT, user="alice")
    assert sorted(backend.served_per_replica) == [0, 3]


def test_fleet_backend_spreads_users_and_keeps_cache_hits():
    backend = FleetBackend(num_replicas=2)
    frontend = PrefillOnlyFrontend(backend=backend)
    long_prompt = "shared profile prefix " * 200 + " recommend this post? answer:"
    first = frontend.complete(CompletionRequest(prompt=long_prompt, user="alice"))
    repeat = frontend.complete(CompletionRequest(prompt=long_prompt, user="alice"))
    other = frontend.complete(CompletionRequest(prompt=long_prompt, user="bob"))
    assert first.cached_prompt_tokens == 0
    # Same user, same replica: the repeat reports a block-aligned cache hit.
    assert repeat.cached_prompt_tokens > 0
    # A different user lands on the other replica with a cold cache.
    assert other.cached_prompt_tokens == 0
    assert backend.served_per_replica == [2, 1]


def test_fleet_backend_requires_a_replica():
    with pytest.raises(ValueError):
        FleetBackend(num_replicas=0)
