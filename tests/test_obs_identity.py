"""The tracing subsystem's two hard identity contracts, pinned end to end.

1. **Disabled is the seed** — with observability off (the default), every
   cookbook scenario reproduces the golden fingerprints captured before the
   subsystem landed (``tests/golden/cookbook_fingerprints.json``), at one
   shard and at four.  The null-recorder hooks must be invisible.
2. **Enabled is read-only and deterministic** — turning recording on changes
   no simulation result, and the exports themselves are byte-reproducible:
   same seed twice, sharded vs unsharded, lockstep vs decoupled-parallel,
   and any shard worker count all serialise to identical bytes.

To regenerate the golden file after an *intentional* simulation change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_obs_identity.py -q
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.obs.exporters import export_chrome_trace, export_prometheus, export_spans
from repro.obs.recorder import ObsConfig
from repro.simulation.invariants import scenario_fingerprint
from repro.simulation.scenario import (
    _build_fleet,
    build_mix,
    load_scenario,
    run_scenario,
)
from repro.simulation.simulator import simulate_fleet

REPO = Path(__file__).parent.parent
SCENARIOS = REPO / "examples" / "scenarios"
GOLDEN = REPO / "tests" / "golden" / "cookbook_fingerprints.json"

STEMS = sorted(path.stem for path in SCENARIOS.glob("*.json"))


def _fingerprint(spec):
    """JSON-normalised fingerprint, as the golden file stores it."""
    return json.loads(json.dumps(scenario_fingerprint(run_scenario(spec))))


def _spec(stem: str, *, shards: int = 1, enabled: bool = False):
    spec = load_scenario(SCENARIOS / f"{stem}.json")
    spec = dataclasses.replace(spec, shards=shards)
    if enabled:
        spec = dataclasses.replace(spec, observability=ObsConfig(enabled=True))
    return spec


def _exports(data):
    return (export_spans(data), export_chrome_trace(data), export_prometheus(data))


# ------------------------------------------------- contract 1: disabled path


def test_golden_file_covers_every_cookbook_scenario():
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    expected = {f"{stem}@shards={n}" for stem in STEMS for n in (1, 4)}
    assert set(golden) == expected


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("stem", STEMS)
def test_disabled_path_matches_seed_golden(stem, shards):
    key = f"{stem}@shards={shards}"
    fingerprint = _fingerprint(_spec(stem, shards=shards))
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        golden[key] = fingerprint
        GOLDEN.write_text(
            json.dumps(golden, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert fingerprint == golden[key], (
        f"{key} drifted from the seed fingerprint; the disabled observability "
        "path must be byte-identical to a build without the subsystem"
    )


# ---------------------------------------- contract 2: enabled but read-only


@pytest.mark.parametrize("stem", ["steady_poisson", "chaos_tiered_recovery",
                                  "tiered_shared_prefix"])
def test_enabled_recording_leaves_results_unchanged(stem):
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert _fingerprint(_spec(stem, enabled=True)) == golden[f"{stem}@shards=1"]


def test_enabled_recording_unchanged_when_sharded():
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    fingerprint = _fingerprint(_spec("steady_poisson", shards=4, enabled=True))
    assert fingerprint == golden["steady_poisson@shards=4"]


def test_same_seed_runs_export_identical_bytes():
    first = run_scenario(_spec("chaos_tiered_recovery", enabled=True)).result.obs
    second = run_scenario(_spec("chaos_tiered_recovery", enabled=True)).result.obs
    assert _exports(first) == _exports(second)


# ----------------------------------- contract 2: shard-shape reproducibility


def _simulate(stem: str, *, shards: int, shard_workers: int, shard_mode: str):
    """One enabled run through the explicit simulate_fleet shard knobs."""
    spec = _spec(stem, shards=shards, enabled=True)
    requests = build_mix(spec).requests
    max_input_length = spec.max_input_length
    if max_input_length is None:
        max_input_length = max(request.num_tokens for request in requests)
    fleet = _build_fleet(spec, max_input_length,
                         use_event_queue=True, engine_fast_paths=True)
    return simulate_fleet(
        fleet, requests, faults=spec.faults, shards=spec.shards,
        lookahead=spec.lookahead, shard_workers=shard_workers,
        shard_mode=shard_mode, shard_seed=spec.seed,
    )


@pytest.mark.parametrize("shards,workers,mode", [
    (4, 1, "lockstep"),   # globally sequenced shards
    (4, 1, "auto"),       # decoupled in-process parallel path
    (4, 2, "auto"),       # decoupled across a worker pool
    (4, 3, "auto"),       # worker count must not matter
])
def test_sharded_exports_match_unsharded(shards, workers, mode):
    """Every shard execution shape serialises to the unsharded bytes."""
    baseline = _simulate("steady_poisson", shards=1, shard_workers=1,
                         shard_mode="lockstep")
    sharded = _simulate("steady_poisson", shards=shards, shard_workers=workers,
                        shard_mode=mode)
    assert _exports(sharded.obs) == _exports(baseline.obs)


def test_chaos_sharded_exports_match_unsharded():
    """Fault schedules force lockstep; the merge must still be identical."""
    baseline = _simulate("chaos_tiered_recovery", shards=1, shard_workers=1,
                         shard_mode="lockstep")
    sharded = _simulate("chaos_tiered_recovery", shards=4, shard_workers=1,
                        shard_mode="auto")
    assert _exports(sharded.obs) == _exports(baseline.obs)


def test_disabled_run_carries_no_obs_data():
    result = run_scenario(_spec("steady_poisson")).result
    assert result.obs is None
