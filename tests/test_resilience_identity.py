"""The resilience layer's two hard identity contracts, pinned end to end.

1. **Off is the seed** — with no ``"resilience"`` block (or an inert one),
   every result is byte-identical to the pre-subsystem golden fingerprints
   (``tests/golden/cookbook_fingerprints.json``), at one shard and at four.
   The policy hooks on the fleet's submit/finish/fault paths must be
   invisible when no policy is configured.
2. **On is deterministic** — an enabled policy stack is bit-reproducible:
   same seed twice, any shard count, lockstep or auto mode, any worker
   count.  Policies couple replicas (hedges, breakers, degrade pressure), so
   the sharded engine must force the globally-sequenced lockstep path rather
   than silently diverge on the pre-routed parallel one.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup
from repro.resilience import resilience_from_dict
from repro.simulation.arrival import PoissonArrivalProcess
from repro.simulation.invariants import scenario_fingerprint
from repro.simulation.routing import make_router
from repro.simulation.scenario import load_scenario, run_scenario, scenario_from_dict
from repro.simulation.sharded import fleet_is_decoupled, resolve_shard_mode
from repro.simulation.simulator import simulate_fleet
from repro.workloads.registry import get_workload

REPO = Path(__file__).resolve().parent.parent
SCENARIOS = REPO / "examples" / "scenarios"
GOLDEN = REPO / "tests" / "golden" / "cookbook_fingerprints.json"

#: Policy-free cookbook chaos runs: the layer must reproduce their seed
#: fingerprints bit for bit.  The policy-carrying cookbook scenarios.
SEED_STEMS = ("chaos_replica_crash", "chaos_tiered_recovery")
POLICY_STEM = "chaos_resilience_policies"


def _canon(fingerprint: dict) -> str:
    """JSON with unrounded floats: string equality is bit equality."""
    return json.dumps(fingerprint, sort_keys=True)


def _run(spec, shards: int) -> str:
    result = run_scenario(dataclasses.replace(spec, shards=shards))
    return _canon(scenario_fingerprint(result))


# ------------------------------------------------- contract 1: off == seed


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("stem", SEED_STEMS)
def test_policy_free_chaos_matches_seed_golden(stem, shards):
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    spec = load_scenario(SCENARIOS / f"{stem}.json")
    assert spec.resilience is None
    fingerprint = json.loads(_canon(
        scenario_fingerprint(run_scenario(dataclasses.replace(spec, shards=shards)))
    ))
    assert fingerprint == golden[f"{stem}@shards={shards}"]


def test_inert_blocks_compile_away():
    """Disabled or empty blocks never reach the fleet: the spec drops them."""
    base = {
        "name": "inert",
        "replicas": 2,
        "seed": 3,
        "tenants": [{
            "name": "t", "workload": "post-recommendation",
            "workload_params": {"num_users": 2, "posts_per_user": 4},
            "arrival": "poisson", "arrival_params": {"rate": 4.0},
        }],
    }
    for block in ({"enabled": False, "deadline": {"timeout_s": 1.0}},
                  {"enabled": True}, {}):
        spec = scenario_from_dict({**base, "resilience": block})
        assert spec.resilience is None


def test_inert_block_is_byte_identical_to_absence():
    config = {
        "name": "inert-identity",
        "replicas": 2,
        "seed": 5,
        "faults": {"events": [
            {"kind": "crash", "replica": 0, "at": 1.0, "recover_at": 2.0},
        ]},
        "tenants": [{
            "name": "t", "workload": "post-recommendation",
            "workload_params": {"num_users": 3, "posts_per_user": 6},
            "arrival": "poisson", "arrival_params": {"rate": 6.0},
        }],
    }
    absent = _canon(scenario_fingerprint(run_scenario(scenario_from_dict(config))))
    inert = _canon(scenario_fingerprint(run_scenario(scenario_from_dict(
        {**config, "resilience": {"enabled": False, "hedge": {"delay_s": 0.5}}}
    ))))
    assert absent == inert


# ------------------------------------------- contract 2: on is deterministic


def test_policy_scenario_bit_reproducible_across_shard_counts():
    spec = load_scenario(SCENARIOS / f"{POLICY_STEM}.json")
    assert spec.resilience is not None and spec.resilience.active
    baseline = _run(spec, shards=1)
    for shards in (2, 4):
        assert _run(spec, shards) == baseline, (
            f"shards={shards} diverged from the unsharded policy run"
        )
    assert _run(spec, 4) == _run(spec, 4)


def test_policy_scenario_matches_its_golden():
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    spec = load_scenario(SCENARIOS / f"{POLICY_STEM}.json")
    for shards in (1, 4):
        fingerprint = json.loads(_canon(
            scenario_fingerprint(run_scenario(dataclasses.replace(spec, shards=shards)))
        ))
        assert fingerprint == golden[f"{POLICY_STEM}@shards={shards}"]


def _policy_fleet(trace, *, policies):
    return Fleet.for_setup(
        prefillonly_engine_spec(), get_hardware_setup("h100"),
        max_input_length=trace.max_request_tokens, num_replicas=2,
        router=make_router("user-id", 2), policies=policies,
    )


def _result_bytes(result) -> str:
    payload = {
        "summary": dataclasses.asdict(result.summary),
        "fleet": result.fleet.as_dict(),
        "num_events": result.num_events,
        "finished": [dataclasses.asdict(r) for r in result.finished],
        "rejected": [dataclasses.asdict(r) for r in result.rejected],
    }
    return json.dumps(payload, sort_keys=True)


def test_policies_force_lockstep_and_match_across_modes_and_workers():
    """User-id routing without policies takes the parallel path; adding any
    policy must force lockstep — and auto mode with a worker pool must then
    produce the same bytes as explicit lockstep."""
    trace = get_workload("post-recommendation", num_users=4, posts_per_user=8,
                         seed=7)
    policies = resilience_from_dict({
        "deadline": {"timeout_s": 30.0},
        "hedge": {"delay_s": 2.0},
    })
    bare = _policy_fleet(trace, policies=None)
    assert fleet_is_decoupled(bare, None)
    assert resolve_shard_mode("auto", bare, None) == "parallel"
    guarded = _policy_fleet(trace, policies=policies)
    assert not fleet_is_decoupled(guarded, None)
    assert resolve_shard_mode("auto", guarded, None) == "lockstep"

    def run(shard_mode, shard_workers):
        fleet = _policy_fleet(trace, policies=policies)
        requests = PoissonArrivalProcess(rate=8.0, seed=0).assign(
            list(trace.requests)
        )
        return _result_bytes(simulate_fleet(
            fleet, requests, shards=4, shard_mode=shard_mode,
            shard_workers=shard_workers,
        ))

    baseline = run("lockstep", 1)
    assert run("auto", 1) == baseline
    assert run("auto", 2) == baseline
    assert run("lockstep", 2) == baseline
