"""Scenario fuzzer: random valid specs through the full fleet simulator.

Every example drawn from :func:`repro.spec.fuzz.scenario_configs` is parsed
by the spec layer, simulated end to end, and checked against the global
invariants in :mod:`repro.simulation.invariants` — request conservation,
goodput bound, single KV residency, tenant consistency — plus same-seed
bit-reproducibility via a second independent run.

Profiles (selected with ``HYPOTHESIS_PROFILE=fuzz``, e.g. via ``make fuzz``):

* ``fuzz`` — 200 examples, derandomized; the CI fuzz job.
* ``fuzz-smoke`` — 25 examples, derandomized; the tier-1 default, so the
  regular suite stays fast but never skips the fuzzer entirely.

Both profiles are derandomized: a failure reproduces on every run, and the
falsifying example's notes include the scenario JSON so it can be saved to a
file and replayed with ``prefillonly scenario run --config <file>``.
"""

from __future__ import annotations

import json
import os

from hypothesis import HealthCheck, assume, given, note, settings

from repro.simulation.invariants import (
    check_scenario_invariants,
    scenario_fingerprint,
)
from repro.simulation.scenario import build_mix, run_scenario, scenario_from_dict
from repro.spec.core import from_dict, normalize, to_dict
from repro.spec.fuzz import _ARRIVAL_STRATEGIES, _WORKLOAD_STRATEGIES, scenario_configs
from repro.spec.models import ScenarioModel

settings.register_profile(
    "fuzz",
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow, HealthCheck.data_too_large),
)
settings.register_profile("fuzz-smoke", settings.get_profile("fuzz"), max_examples=25)

_PROFILE = "fuzz" if os.environ.get("HYPOTHESIS_PROFILE") == "fuzz" else "fuzz-smoke"
fuzz_settings = settings.get_profile(_PROFILE)


def test_fuzzer_matches_runtime_registries():
    """The fuzzer's name tables must track the runtime registries.

    If a workload, arrival process, or router is added without teaching the
    fuzzer about it, that dimension silently stops being covered — fail
    loudly here instead.
    """
    from repro.simulation.arrival import ARRIVAL_FACTORIES
    from repro.simulation.routing import ROUTER_FACTORIES
    from repro.workloads.registry import list_workloads

    assert sorted(_WORKLOAD_STRATEGIES) == list_workloads()
    missing_arrivals = set(ARRIVAL_FACTORIES) - set(_ARRIVAL_STRATEGIES)
    assert not missing_arrivals, (
        f"arrival processes not covered by the fuzzer: {sorted(missing_arrivals)}"
    )
    assert set(_ARRIVAL_STRATEGIES) <= set(ARRIVAL_FACTORIES)
    assert {"user-id", "least-loaded", "prefix-affinity"} == set(ROUTER_FACTORIES)


@fuzz_settings
@given(config=scenario_configs())
def test_fuzzed_scenarios_satisfy_global_invariants(config):
    """Invariants 1-5 hold for every randomly generated valid scenario."""
    # The replay JSON spells out the shard count and seed even when the draw
    # left them defaulted: an InvariantViolation must be replayable on the
    # exact engine configuration (sharded or not) and RNG streams that hit it.
    replay = dict(config)
    replay.setdefault("shards", 1)
    replay.setdefault("seed", 0)
    note(
        "replay: save the JSON below to fail.json and run "
        "`prefillonly scenario run --config fail.json`\n"
        + json.dumps(replay, sort_keys=True)
    )
    spec = scenario_from_dict(config)
    requests = build_mix(spec).requests
    # A sub-1.0 tenant weight can subsample a tiny trace down to nothing;
    # run_scenario correctly refuses empty streams, so skip those draws.
    assume(requests)

    first = run_scenario(spec, keep_fleet=True)
    check_scenario_invariants(first, requests)

    second = run_scenario(spec)
    assert scenario_fingerprint(first) == scenario_fingerprint(second), (
        "same spec, same seed, different results — determinism is broken"
    )


@fuzz_settings
@given(config=scenario_configs())
def test_fuzzed_configs_reparse_from_normalized_form(config):
    """A generated document survives a JSON round trip, and the two
    independent spec walks (``to_dict(from_dict(x))`` vs ``normalize(x)``)
    agree on it."""
    model = from_dict(ScenarioModel, config)
    rehydrated = from_dict(ScenarioModel, json.loads(json.dumps(config)))
    assert model == rehydrated
    assert to_dict(model) == normalize(ScenarioModel, config)
