"""Tests for latency / throughput summaries."""

import pytest

from repro.core.engine import FinishedRequest
from repro.simulation.metrics import latency_cdf, percentile, summarize_finished


def make_record(request_id: int, arrival: float, start: float, finish: float, *,
                tokens: int = 1000, cached: int = 0) -> FinishedRequest:
    return FinishedRequest(
        request_id=request_id,
        user_id="u",
        num_tokens=tokens,
        cached_tokens=cached,
        arrival_time=arrival,
        start_time=start,
        finish_time=finish,
        instance_name="i0",
        engine_name="test",
    )


def test_percentile_basic():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile(values, 100) == 4.0
    assert percentile([], 99) == 0.0


def test_summary_of_empty_run():
    summary = summarize_finished([])
    assert summary.num_requests == 0
    assert summary.throughput_rps == 0.0


def test_summary_latency_statistics():
    records = [
        make_record(0, arrival=0.0, start=0.0, finish=1.0),
        make_record(1, arrival=0.0, start=1.0, finish=3.0),
        make_record(2, arrival=1.0, start=3.0, finish=6.0),
    ]
    summary = summarize_finished(records)
    assert summary.num_requests == 3
    assert summary.mean_latency == pytest.approx((1.0 + 3.0 + 5.0) / 3)
    assert summary.max_latency == 5.0
    assert summary.makespan == pytest.approx(6.0)
    assert summary.throughput_rps == pytest.approx(0.5)
    assert summary.mean_queueing_time == pytest.approx((0.0 + 1.0 + 2.0) / 3)


def test_summary_cache_hit_rates():
    records = [
        make_record(0, 0.0, 0.0, 1.0, tokens=1000, cached=0),
        make_record(1, 0.0, 1.0, 2.0, tokens=1000, cached=500),
    ]
    summary = summarize_finished(records)
    assert summary.cache_hit_rate == 0.5
    assert summary.token_hit_rate == 0.25


def test_summary_counts_rejections():
    record = make_record(0, 0.0, 0.0, 1.0)
    rejection = make_record(1, 0.0, 0.0, 0.0)
    summary = summarize_finished([record], [rejection])
    assert summary.num_rejected == 1


def test_summary_as_dict_keys():
    record = make_record(0, 0.0, 0.0, 1.0)
    payload = summarize_finished([record]).as_dict()
    assert {"mean_latency_s", "p99_latency_s", "throughput_rps"} <= payload.keys()


def test_latency_cdf_is_monotone():
    records = [make_record(i, 0.0, 0.0, float(i + 1)) for i in range(10)]
    cdf = latency_cdf(records)
    latencies = [x for x, _ in cdf]
    fractions = [y for _, y in cdf]
    assert latencies == sorted(latencies)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


def test_latency_cdf_downsamples():
    records = [make_record(i, 0.0, 0.0, float(i + 1)) for i in range(500)]
    cdf = latency_cdf(records, num_points=50)
    assert len(cdf) == 50


def test_latency_cdf_empty():
    assert latency_cdf([]) == []


# --------------------------------------------------------------- time edges


def test_summary_zero_duration_run():
    """All records on one instant: the makespan clamp keeps rates finite."""
    records = [make_record(i, arrival=5.0, start=5.0, finish=5.0) for i in range(3)]
    summary = summarize_finished(records)
    assert summary.makespan == pytest.approx(1e-12)
    assert summary.mean_latency == 0.0
    assert summary.p99_latency == 0.0
    assert summary.throughput_rps == pytest.approx(3 / 1e-12)
    import math
    assert math.isfinite(summary.throughput_rps)


def test_summary_all_rejected_run():
    """Nothing finished but requests were offered: zeros, not a crash."""
    rejections = [make_record(i, 0.0, 0.0, 0.0) for i in range(4)]
    summary = summarize_finished([], rejections)
    assert summary.num_requests == 0
    assert summary.num_rejected == 4
    assert summary.makespan == 0.0
    assert summary.throughput_rps == 0.0


def test_summary_zero_token_records():
    """token_hit_rate guards the zero-token denominator."""
    summary = summarize_finished([make_record(0, 0.0, 0.0, 1.0, tokens=0)])
    assert summary.token_hit_rate == 0.0


def test_resilience_zero_makespan_yields_zero_rates():
    """The all-crashed run that finishes nothing must not divide by zero."""
    from repro.faults.schedule import ResilienceCounters
    from repro.simulation.metrics import summarize_resilience

    summary = summarize_resilience(
        ResilienceCounters(), num_submitted=0, num_finished=0, makespan=0.0
    )
    assert summary.offered_rps == 0.0
    assert summary.goodput_rps == 0.0
    assert summary.goodput_ratio == 0.0
    assert summary.mean_mttr_s == 0.0


def test_resilience_rates_with_positive_makespan():
    from repro.faults.schedule import ResilienceCounters
    from repro.simulation.metrics import summarize_resilience

    counters = ResilienceCounters(num_faults_applied=2, mttr_samples=[1.0, 3.0])
    summary = summarize_resilience(
        counters, num_submitted=10, num_finished=8, makespan=4.0
    )
    assert summary.offered_rps == pytest.approx(2.5)
    assert summary.goodput_rps == pytest.approx(2.0)
    assert summary.goodput_ratio == pytest.approx(0.8)
    assert summary.mean_mttr_s == pytest.approx(2.0)
