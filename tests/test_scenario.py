"""Tests for the scenario engine: arrivals, mixing, trace files, fast paths.

The two load-bearing properties pinned here:

* **Record → replay determinism** — any request stream survives a JSONL
  round-trip bit-for-bit (property-based over generated segment structures and
  arrival processes), and a recorded scenario replays to the exact metrics of
  the original run.
* **Fast-path equivalence** — the heap-based event loops (simulator event
  queue, fleet event queue, prefix-cache eviction heap, incremental JCT
  calibration) produce results identical to the seed implementation's linear
  scans on the existing workloads.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.errors import ScenarioError, UnknownNameError, UnknownWorkloadError, WorkloadError
from repro.hardware.cluster import get_hardware_setup
from repro.simulation.arrival import (
    ARRIVAL_FACTORIES,
    ClosedLoopArrivalProcess,
    DiurnalArrivalProcess,
    FlashCrowdArrivalProcess,
    MMPPArrivalProcess,
    make_arrival,
)
from repro.simulation.scenario import (
    load_scenario,
    replay_scenario,
    run_scenario,
    scenario_from_dict,
)
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import simulate, simulate_fleet
from repro.workloads.mixer import TenantSpec, mix_tenants
from repro.workloads.registry import get_workload
from repro.workloads.trace import Request, TokenSegment, TokenSequence
from repro.workloads.tracefile import load_trace, save_trace


@pytest.fixture(scope="module")
def small_trace():
    return get_workload("post-recommendation", num_users=4, posts_per_user=8, seed=0)


# ------------------------------------------------------------------ arrivals


@pytest.mark.parametrize("name", sorted(ARRIVAL_FACTORIES))
def test_every_arrival_is_sorted_and_deterministic(name, small_trace):
    params = {
        "poisson": {"rate": 5.0},
        "burst": {},
        "uniform": {"rate": 5.0},
        "mmpp": {"base_rate": 2.0, "burst_rate": 20.0},
        "diurnal": {"mean_rate": 5.0, "period_seconds": 60.0},
        "flash-crowd": {"base_rate": 2.0, "spike_rate": 25.0},
        "closed-loop": {"num_clients": 3},
    }[name]
    process = make_arrival(name, seed=9, **params)
    first = process.assign(list(small_trace.requests))
    second = process.assign(list(small_trace.requests))
    times = [r.arrival_time for r in first]
    assert times == sorted(times)
    assert times == [r.arrival_time for r in second]
    assert [r.request_id for r in first] == [r.request_id for r in second]


def test_mmpp_is_burstier_than_poisson(small_trace):
    """The squared coefficient of variation of MMPP gaps exceeds Poisson's ~1."""
    import numpy as np

    requests = list(small_trace.requests)
    mmpp = MMPPArrivalProcess(base_rate=1.0, burst_rate=50.0,
                              mean_quiet_seconds=30.0, mean_burst_seconds=3.0,
                              seed=1).assign(requests)
    gaps = np.diff([r.arrival_time for r in mmpp])
    cv2 = np.var(gaps) / np.mean(gaps) ** 2
    assert cv2 > 1.5


def test_diurnal_mean_rate_is_respected():
    requests = list(get_workload("post-recommendation", num_users=8,
                                 posts_per_user=25, seed=0))
    process = DiurnalArrivalProcess(mean_rate=4.0, period_seconds=50.0, seed=2)
    assigned = process.assign(requests)
    realized = len(assigned) / assigned[-1].arrival_time
    assert realized == pytest.approx(4.0, rel=0.35)


def test_flash_crowd_concentrates_arrivals_in_spike(small_trace):
    process = FlashCrowdArrivalProcess(base_rate=0.5, spike_rate=50.0,
                                       first_spike_at=10.0, spike_seconds=5.0,
                                       seed=3)
    assigned = process.assign(list(small_trace.requests))
    in_spike = sum(1 for r in assigned if 10.0 <= r.arrival_time < 15.0)
    assert in_spike > len(assigned) / 2


def test_closed_loop_respects_client_concurrency(small_trace):
    """No client ever has two requests outstanding: per-client spacing >= estimate."""
    process = ClosedLoopArrivalProcess(num_clients=2, mean_think_seconds=0.5,
                                       service_estimate_seconds=1.0, seed=4,
                                       shuffle=False)
    requests = list(small_trace.requests)
    assigned = process.assign(requests)
    # Reconstruct the per-client streams from the round-robin deal order.
    clients: dict[int, list[float]] = {0: [], 1: []}
    for index, request in enumerate(requests):
        clients[index % 2].append(request.arrival_time)
    del assigned
    for times in clients.values():
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 1.0 for gap in gaps)


def test_make_arrival_unknown_name_lists_choices():
    with pytest.raises(UnknownNameError) as excinfo:
        make_arrival("pareto", rate=1.0)
    assert "mmpp" in str(excinfo.value)
    assert "pareto" == excinfo.value.name


def test_make_arrival_bad_params_raise_workload_error():
    with pytest.raises(WorkloadError):
        make_arrival("poisson", rate=1.0, unknown_knob=3)
    with pytest.raises(WorkloadError):
        make_arrival("mmpp", base_rate=5.0, burst_rate=1.0)


# ------------------------------------------------------------------ registry


def test_workload_registry_unknown_name_is_typed():
    with pytest.raises(UnknownWorkloadError) as excinfo:
        get_workload("does-not-exist")
    error = excinfo.value
    assert error.name == "does-not-exist"
    assert error.available == ["credit-verification", "post-recommendation"]
    assert "post-recommendation" in str(error)
    # Still catchable as the package-level workload error.
    assert isinstance(error, WorkloadError)


# --------------------------------------------------------------------- mixer


def test_mix_tenants_namespaces_and_weights(small_trace):
    tenants = [
        TenantSpec(name="a", workload="post-recommendation",
                   arrival=make_arrival("poisson", rate=5.0, seed=1),
                   workload_params={"num_users": 3, "posts_per_user": 6}),
        TenantSpec(name="b", workload="post-recommendation",
                   arrival=make_arrival("poisson", rate=5.0, seed=2),
                   workload_params={"num_users": 3, "posts_per_user": 6},
                   weight=0.5),
    ]
    mix = mix_tenants(tenants, name="two-tenant", seed=0)
    counts = mix.per_tenant_counts()
    assert counts["a"] == 18
    assert counts["b"] == 9
    # Globally unique ids, arrival-sorted, tenant recorded in metadata.
    ids = [r.request_id for r in mix.requests]
    assert ids == list(range(len(mix.requests)))
    times = [r.arrival_time for r in mix.requests]
    assert times == sorted(times)
    assert {r.metadata["tenant"] for r in mix.requests} == {"a", "b"}
    # Identical workloads must not share content ids across tenants.
    a_ids = {s.content_id for r in mix.requests if r.metadata["tenant"] == "a"
             for s in r.sequence.segments}
    b_ids = {s.content_id for r in mix.requests if r.metadata["tenant"] == "b"
             for s in r.sequence.segments}
    assert not a_ids & b_ids


def test_mix_tenants_rejects_duplicates():
    tenant = TenantSpec(name="a", workload="post-recommendation",
                        arrival=make_arrival("burst"),
                        workload_params={"num_users": 1, "posts_per_user": 2})
    with pytest.raises(WorkloadError):
        mix_tenants([tenant, tenant])


# ----------------------------------------------------- trace file round-trip

segments_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**40),
              st.integers(min_value=1, max_value=5000)),
    min_size=1, max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            segments_strategy,
            st.floats(min_value=0, max_value=1e7, allow_nan=False, allow_infinity=False),
            st.text(alphabet=st.characters(codec="utf-8", exclude_characters="\n\r"),
                    min_size=1, max_size=12),
        ),
        min_size=1, max_size=8,
    ),
)
def test_trace_roundtrip_is_bit_exact(tmp_path_factory, rows):
    """Arbitrary segment structures, float times, and user ids survive JSONL."""
    requests = [
        Request(
            request_id=index,
            user_id=user_id,
            sequence=TokenSequence([TokenSegment(cid, length) for cid, length in segments]),
            arrival_time=arrival,
            metadata={"tenant": "t", "index": index},
        )
        for index, (segments, arrival, user_id) in enumerate(rows)
    ]
    path = tmp_path_factory.mktemp("traces") / "roundtrip.jsonl"
    save_trace(path, requests, name="prop", seed=1)
    header, loaded = load_trace(path)
    assert header["num_requests"] == len(requests)
    assert len(loaded) == len(requests)
    for original, restored in zip(requests, loaded):
        assert restored.request_id == original.request_id
        assert restored.user_id == original.user_id
        assert restored.arrival_time == original.arrival_time  # exact, not approx
        assert math.copysign(1, restored.arrival_time) == math.copysign(1, original.arrival_time)
        assert restored.sequence.segments == original.sequence.segments
        assert restored.allowed_outputs == original.allowed_outputs
        assert restored.metadata == original.metadata


def test_trace_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"schema": "other/v9"}) + "\n")
    with pytest.raises(ScenarioError):
        load_trace(path)


def test_trace_rejects_count_mismatch(tmp_path):
    path = tmp_path / "bad.jsonl"
    header = {"schema": "repro-trace/v1", "name": "x", "num_requests": 2}
    row = {"request_id": 0, "user_id": "u", "arrival_time": 0.0,
           "allowed_outputs": ["Yes"], "segments": [[1, 4]], "metadata": {}}
    path.write_text(json.dumps(header) + "\n" + json.dumps(row) + "\n")
    with pytest.raises(ScenarioError):
        load_trace(path)


# --------------------------------------------------------------- event queue


def test_event_queue_lazy_deletion_and_ties():
    from repro.simulation.events import EventQueue

    queue = EventQueue()
    queue.update(0, 5.0)
    queue.update(1, 3.0)
    queue.update(2, 3.0)
    assert queue.peek() == (3.0, 1)  # ties break on the lower key
    queue.update(1, 7.0)             # stale entry for key 1 left behind
    assert queue.peek() == (3.0, 2)
    assert queue.pop_due(3.0) == [2]
    assert queue.next_time() == 5.0
    queue.update(0, None)            # key 0 no longer has an event
    assert queue.peek() == (7.0, 1)
    queue.discard(1)
    assert queue.peek() is None


def test_event_queue_pop_due_epsilon():
    from repro.simulation.events import EventQueue

    queue = EventQueue()
    queue.update(0, 1.0)
    queue.update(1, 1.0 + 5e-10)
    queue.update(2, 1.1)
    assert queue.pop_due(1.0, epsilon=1e-9) == [0, 1]
    assert queue.next_time() == 1.1


# ------------------------------------------- cache fast-path micro-behaviour


def test_lookup_from_matches_lookup_for_any_hint():
    from repro.kvcache.manager import KVCacheManager

    kv = KVCacheManager(16 * 256, block_size=256)
    hashes = tuple(range(1, 13))
    kv._cache.insert(hashes[:7], block_size=256, now=1.0)
    for hint in range(0, len(hashes) + 2):
        assert kv.lookup_from(hashes, hint) == kv.lookup(hashes)
    # After evicting, every hint must still agree with the fresh walk.
    kv._cache.evict_blocks(3)
    for hint in range(0, len(hashes) + 2):
        assert kv.lookup_from(hashes, hint) == kv.lookup(hashes)


def test_eviction_heap_matches_scan_victim_order():
    """Heap-based and scan-based caches evict identical victims under churn."""
    import numpy as np

    from repro.kvcache.allocator import BlockAllocator
    from repro.kvcache.prefix_tree import RadixPrefixCache

    rng = np.random.default_rng(0)
    caches = [
        RadixPrefixCache(BlockAllocator(24, 16), use_eviction_heap=True),
        RadixPrefixCache(BlockAllocator(24, 16), use_eviction_heap=False),
    ]
    chains = [tuple(int(rng.integers(1, 2**30)) for _ in range(rng.integers(1, 9)))
              for _ in range(12)]
    for step in range(300):
        chain = chains[int(rng.integers(len(chains)))]
        op = rng.integers(3)
        count = int(rng.integers(1, 4))
        for cache in caches:
            if op == 0:
                cache.insert(chain, block_size=16, now=float(step))
            elif op == 1:
                cache.match(chain, now=float(step))
            else:
                cache.evict_blocks(count)
        assert caches[0].stats == caches[1].stats
        assert (sorted(h for h in chains[0] if h in caches[0])
                == sorted(h for h in chains[0] if h in caches[1]))
    assert caches[0].stats["evictions"] > 0


# ---------------------------------------------------- heap/scan equivalence


def test_simulate_heap_loop_matches_seed_scan(small_trace):
    """Event-queue and linear-scan loops agree record-for-record."""
    setup = get_hardware_setup("h100")
    for arrival in (make_arrival("poisson", rate=4.0, seed=1),
                    make_arrival("burst", seed=2),
                    make_arrival("mmpp", base_rate=2.0, burst_rate=20.0, seed=3)):
        requests = arrival.assign(list(small_trace.requests))
        results = {}
        for fast in (True, False):
            system = ServingSystem.for_setup(
                prefillonly_engine_spec(), setup,
                max_input_length=small_trace.max_request_tokens,
                engine_fast_paths=fast,
            )
            results[fast] = simulate(system, requests, use_event_queue=fast)
        assert results[True].summary == results[False].summary
        fast_records = [(r.request_id, r.start_time, r.finish_time, r.cached_tokens)
                        for r in results[True].finished]
        seed_records = [(r.request_id, r.start_time, r.finish_time, r.cached_tokens)
                        for r in results[False].finished]
        assert fast_records == seed_records
        assert results[True].cache_stats == results[False].cache_stats


@pytest.mark.parametrize("workload,params", [
    ("post-recommendation", {"num_users": 5, "posts_per_user": 8}),
    ("credit-verification", {"num_users": 8}),
])
def test_fleet_heap_loop_matches_seed_scan(workload, params):
    """Fleet fast paths reproduce the seed scans on the existing workloads."""
    trace = get_workload(workload, seed=1, **params)
    setup = get_hardware_setup("h100")
    requests = make_arrival("mmpp", base_rate=2.0, burst_rate=15.0, seed=4).assign(
        list(trace.requests)
    )
    results = {}
    for fast in (True, False):
        fleet = Fleet.for_setup(
            prefillonly_engine_spec(), setup,
            max_input_length=trace.max_request_tokens,
            num_replicas=2,
            use_event_queue=fast,
            engine_fast_paths=fast,
        )
        results[fast] = simulate_fleet(fleet, requests)
    assert results[True].summary == results[False].summary
    assert results[True].fleet.as_dict() == results[False].fleet.as_dict()
    assert results[True].cache_stats == results[False].cache_stats
    assert results[True].num_events == results[False].num_events


# ------------------------------------------------------------ scenario runs


def _two_tenant_config(**overrides):
    config = {
        "name": "test-mix",
        "setup": "h100",
        "replicas": 2,
        "seed": 5,
        "tenants": [
            {"name": "social", "workload": "post-recommendation",
             "workload_params": {"num_users": 3, "posts_per_user": 6},
             "slo_latency_s": 5.0,
             "arrival": "mmpp",
             "arrival_params": {"base_rate": 2.0, "burst_rate": 10.0}},
            {"name": "bank", "workload": "credit-verification",
             "workload_params": {"num_users": 4},
             "arrival": "poisson", "arrival_params": {"rate": 0.5}},
        ],
    }
    config.update(overrides)
    return config


def test_scenario_run_reports_every_tenant():
    result = run_scenario(scenario_from_dict(_two_tenant_config()))
    assert [report.name for report in result.tenants] == ["social", "bank"]
    total = sum(report.summary.num_requests for report in result.tenants)
    assert total == result.result.num_finished
    social = result.tenants[0]
    assert social.slo_latency_s == 5.0
    assert social.slo_attainment is not None
    assert 0.0 <= social.slo_attainment <= 1.0
    assert result.tenants[1].slo_attainment is None


def test_scenario_record_then_replay_is_identical(tmp_path):
    spec = scenario_from_dict(_two_tenant_config())
    trace_path = tmp_path / "mix.jsonl"
    original = run_scenario(spec, record=trace_path)
    assert original.trace_path == trace_path
    replayed = replay_scenario(spec, trace_path)
    assert replayed.result.summary == original.result.summary
    assert replayed.result.fleet.as_dict() == original.result.fleet.as_dict()
    assert [r.as_dict() for r in replayed.tenants] == [r.as_dict() for r in original.tenants]


def test_scenario_rejects_unknown_keys():
    with pytest.raises(ScenarioError):
        scenario_from_dict(_two_tenant_config(qps=3.0))
    bad_tenant = _two_tenant_config()
    bad_tenant["tenants"][0]["slo"] = 1.0
    with pytest.raises(ScenarioError):
        scenario_from_dict(bad_tenant)


def test_load_scenario_from_file(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(_two_tenant_config()))
    spec = load_scenario(path)
    assert spec.name == "test-mix"
    assert len(spec.tenants) == 2
    with pytest.raises(ScenarioError):
        load_scenario(tmp_path / "missing.json")


def test_scenario_cli_run_and_replay(tmp_path, capsys):
    from repro.cli import main

    config_path = tmp_path / "scenario.json"
    config_path.write_text(json.dumps(_two_tenant_config()))
    trace_path = tmp_path / "trace.jsonl"

    assert main(["scenario", "run", "--config", str(config_path),
                 "--record", str(trace_path)]) == 0
    run_output = capsys.readouterr().out
    assert "Per-tenant summary" in run_output
    assert "social" in run_output and "bank" in run_output
    assert trace_path.exists()

    assert main(["scenario", "replay", "--config", str(config_path),
                 "--trace", str(trace_path)]) == 0
    replay_output = capsys.readouterr().out
    # The replay reproduces the run's tables exactly (minus the record notice).
    assert replay_output.strip() == run_output.split("\nTrace recorded to")[0].strip()

    assert main(["scenario", "arrivals"]) == 0
    assert "mmpp" in capsys.readouterr().out
