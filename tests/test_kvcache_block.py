"""Tests for KV block hashing and block bookkeeping."""

import pytest

from repro.kvcache.block import (
    Block,
    count_blocks,
    count_full_blocks,
    hash_token_blocks,
    iter_block_slices,
)


def test_hash_token_blocks_only_full_blocks():
    tokens = list(range(100))
    hashes = hash_token_blocks(tokens, block_size=16)
    assert len(hashes) == 100 // 16


def test_hash_token_blocks_prefix_property():
    """Two sequences sharing a prefix share the leading block hashes."""
    a = list(range(64)) + [1, 2, 3, 4] * 8
    b = list(range(64)) + [9, 9, 9, 9] * 8
    ha = hash_token_blocks(a, block_size=16)
    hb = hash_token_blocks(b, block_size=16)
    assert ha[:4] == hb[:4]
    assert ha[4] != hb[4]


def test_hash_token_blocks_chained_not_positional():
    """A change early in the sequence changes every later block hash."""
    a = list(range(64))
    b = [999] + list(range(1, 64))
    ha = hash_token_blocks(a, block_size=16)
    hb = hash_token_blocks(b, block_size=16)
    assert all(x != y for x, y in zip(ha, hb))


def test_hash_token_blocks_invalid_block_size():
    with pytest.raises(ValueError):
        hash_token_blocks([1, 2, 3], block_size=0)


def test_count_blocks_helpers():
    assert count_full_blocks(100, 16) == 6
    assert count_blocks(100, 16) == 7
    assert count_blocks(96, 16) == 6
    assert count_blocks(0, 16) == 0
    with pytest.raises(ValueError):
        count_blocks(10, 0)


def test_iter_block_slices_covers_everything():
    slices = list(iter_block_slices(100, 16))
    assert slices[0] == (0, 16)
    assert slices[-1] == (96, 100)
    assert sum(end - start for start, end in slices) == 100


def test_block_pinning():
    block = Block(block_id=1)
    assert not block.is_pinned
    block.pin()
    block.pin()
    assert block.ref_count == 2
    block.unpin()
    block.unpin()
    assert not block.is_pinned
    with pytest.raises(ValueError):
        block.unpin()


def test_block_touch_is_monotonic():
    block = Block(block_id=1, last_access=5.0)
    block.touch(3.0)
    assert block.last_access == 5.0
    block.touch(7.0)
    assert block.last_access == 7.0
