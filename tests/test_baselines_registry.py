"""Tests for the engine-spec registry."""

import pytest

from repro.baselines.registry import ENGINE_ORDER, all_engine_specs, baseline_specs, get_engine_spec
from repro.errors import ConfigurationError
from repro.kvcache.manager import CommitPolicy


def test_all_engine_specs_count_and_order():
    specs = all_engine_specs()
    assert [spec.name for spec in specs] == ENGINE_ORDER
    assert len(specs) == 5


def test_baseline_specs_exclude_prefillonly():
    names = [spec.name for spec in baseline_specs()]
    assert "prefillonly" not in names
    assert len(names) == 4


def test_get_engine_spec_with_overrides():
    spec = get_engine_spec("chunked-prefill", chunk_tokens=1024)
    assert spec.chunk_tokens == 1024
    spec = get_engine_spec("prefillonly", fairness_lambda=0.0)
    assert spec.fairness_lambda == 0.0


def test_get_engine_spec_unknown():
    with pytest.raises(ConfigurationError):
        get_engine_spec("sglang")


def test_disabling_prefix_caching_switches_commit_policy():
    spec = get_engine_spec("paged-attention", enable_prefix_caching=False)
    assert spec.commit_policy is CommitPolicy.NONE
    assert not spec.enable_prefix_caching


def test_engine_names_are_unique():
    names = [spec.name for spec in all_engine_specs()]
    assert len(names) == len(set(names))
