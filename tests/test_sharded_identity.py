"""Differential identity tests: sharded runs are byte-identical to unsharded.

The sharded engine's contract (``docs/SHARDING.md``) is that the shard count
is an *execution* detail, never an *observable* one: for any scenario — tiered
caches, autoscaling, admission control, chaos schedules, every router — the
full :func:`~repro.simulation.invariants.scenario_fingerprint` (unrounded
floats, per-request records, fleet summaries) is bit-equal at every shard
count, and two same-seed sharded runs are bit-equal to each other.  These
tests pin that contract over the whole cookbook, plus the decoupled parallel
path (with a real worker pool) and the :class:`ShardStoreBus` L3 facade.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.baselines.registry import get_engine_spec
from repro.cluster import Fleet
from repro.hardware.cluster import get_hardware_setup
from repro.kvcache.tiers import ShardStoreBus
from repro.simulation.arrival import make_arrival
from repro.simulation.invariants import scenario_fingerprint
from repro.simulation.routing import make_router
from repro.simulation.scenario import load_scenario, run_scenario
from repro.simulation.simulator import simulate_fleet
from repro.workloads.registry import get_workload

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "examples" / "scenarios"
SCENARIO_FILES = sorted(path.name for path in SCENARIO_DIR.glob("*.json"))


def _canon(fingerprint: dict) -> str:
    """JSON with unrounded floats: string equality is bit equality."""
    return json.dumps(fingerprint, sort_keys=True)


def _run(spec, shards: int) -> str:
    result = run_scenario(dataclasses.replace(spec, shards=shards))
    return _canon(scenario_fingerprint(result))


def test_cookbook_covers_both_chaos_scenarios():
    """The differential sweep below must include the chaos cookbook entries."""
    assert "chaos_replica_crash.json" in SCENARIO_FILES
    assert "chaos_tiered_recovery.json" in SCENARIO_FILES


@pytest.mark.parametrize("name", SCENARIO_FILES)
def test_scenario_byte_identical_across_shard_counts(name):
    spec = load_scenario(SCENARIO_DIR / name)
    baseline = _run(spec, shards=1)
    assert baseline == _canon(scenario_fingerprint(run_scenario(spec)))
    for shards in (2, 4):
        assert _run(spec, shards) == baseline, (
            f"{name}: shards={shards} diverged from the unsharded run"
        )
    # Determinism within a shard count: same seed, same bytes.
    assert _run(spec, 4) == _run(spec, 4)


# -------------------------------------------- decoupled path, real pool


def _fleet_fingerprint(result) -> str:
    payload = {
        "summary": dataclasses.asdict(result.summary),
        "fleet": result.fleet.as_dict(),
        "cache_stats": result.cache_stats,
        "num_events": result.num_events,
        # Unsorted: record *order* must match too.
        "finished": [dataclasses.asdict(r) for r in result.finished],
        "rejected": [dataclasses.asdict(r) for r in result.rejected],
    }
    return json.dumps(payload, sort_keys=True)


def _build_fleet(num_replicas: int, trace) -> Fleet:
    return Fleet.for_setup(
        get_engine_spec("prefillonly"),
        get_hardware_setup("h100"),
        max_input_length=trace.max_request_tokens,
        num_replicas=num_replicas,
        router=make_router("user-id", num_replicas),
        name="identity-fleet",
    )


def _make_requests(trace):
    arrival = make_arrival("diurnal", mean_rate=8.0, period_seconds=30.0,
                           amplitude=0.6, seed=11)
    return arrival.assign(list(trace.requests))


@pytest.mark.parametrize("shard_workers", [1, 2])
def test_decoupled_parallel_matches_unsharded(shard_workers):
    """A user-id-routed fleet takes the parallel path; bytes still match.

    ``shard_workers=2`` spawns a real process pool, pinning the pool
    round-trip (pickling, merge order) — not just the in-process engines.
    """
    trace = get_workload("post-recommendation", num_users=16, posts_per_user=2,
                         seed=5)
    baseline = simulate_fleet(_build_fleet(16, trace), _make_requests(trace))
    assert baseline.sharding is None
    sharded = simulate_fleet(
        _build_fleet(16, trace), _make_requests(trace),
        shards=4, shard_workers=shard_workers, shard_seed=5,
    )
    assert sharded.sharding is not None
    assert sharded.sharding["mode"] == "parallel"
    assert sharded.sharding["shards"] == 4
    assert _fleet_fingerprint(sharded) == _fleet_fingerprint(baseline)


def test_lockstep_mode_matches_parallel_mode():
    """Forcing lockstep on a decoupled fleet changes nothing but metadata."""
    trace = get_workload("post-recommendation", num_users=8, posts_per_user=2,
                         seed=7)
    parallel = simulate_fleet(
        _build_fleet(8, trace), _make_requests(trace),
        shards=2, shard_workers=1, shard_seed=7,
    )
    lockstep = simulate_fleet(
        _build_fleet(8, trace), _make_requests(trace),
        shards=2, shard_workers=1, shard_seed=7, shard_mode="lockstep",
    )
    assert parallel.sharding["mode"] == "parallel"
    assert lockstep.sharding["mode"] == "lockstep"
    assert _fleet_fingerprint(lockstep) == _fleet_fingerprint(parallel)


# ------------------------------------------------------- L3 shard bus


def test_sharded_tiered_scenario_journals_store_traffic():
    """A sharded tiered run wraps the L3 store in the versioned message bus."""
    spec = load_scenario(SCENARIO_DIR / "tiered_shared_prefix.json")
    outcome = run_scenario(dataclasses.replace(spec, shards=2), keep_fleet=True)
    store = outcome.fleet.cluster_store
    assert isinstance(store, ShardStoreBus)
    assert store.num_messages > 0
    assert store.message_counts.get("publish", 0) > 0
    seqs = [message.seq for message in store.recent_messages]
    assert seqs == sorted(seqs)
    versions = [message.version for message in store.recent_messages]
    assert versions == sorted(versions)
