"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.request_state import EngineRequest
from repro.core.scheduler import SRJFScheduler
from repro.execution.chunked_linear import ChunkedExecutionOptions, chunked_positionwise
from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.block import count_blocks, count_full_blocks, hash_token_blocks
from repro.kvcache.manager import CommitPolicy, KVCacheManager
from repro.kvcache.prefix_tree import RadixPrefixCache
from repro.simulation.arrival import PoissonArrivalProcess
from repro.simulation.metrics import summarize_finished
from repro.core.engine import FinishedRequest
from repro.workloads.trace import Request, TokenSegment, TokenSequence


BLOCK = 16

# ------------------------------------------------------------------ hashing

token_lists = st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=200)


@given(tokens=token_lists, block_size=st.integers(min_value=1, max_value=64))
def test_hash_block_count_matches_full_blocks(tokens, block_size):
    hashes = hash_token_blocks(tokens, block_size)
    assert len(hashes) == count_full_blocks(len(tokens), block_size)
    assert count_blocks(len(tokens), block_size) >= len(hashes)


@given(shared=token_lists, a_suffix=token_lists, b_suffix=token_lists)
def test_hash_prefix_agreement_equals_shared_blocks(shared, a_suffix, b_suffix):
    """Two token streams agree on exactly the blocks fully inside their common prefix."""
    a = shared + a_suffix
    b = shared + b_suffix
    ha = hash_token_blocks(a, BLOCK)
    hb = hash_token_blocks(b, BLOCK)
    common_prefix = 0
    for x, y in zip(a, b):
        if x != y:
            break
        common_prefix += 1
    guaranteed = common_prefix // BLOCK
    # They must agree on every block fully contained in the common prefix ...
    assert ha[:guaranteed] == hb[:guaranteed]
    # ... and the first disagreement (if any) happens exactly where content differs,
    # unless the suffixes happen to be identical too.
    for index, (x, y) in enumerate(zip(ha, hb)):
        if x != y:
            assert index >= guaranteed
            break


# ------------------------------------------------------------ token sequences

segments_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=400)),
    min_size=1,
    max_size=8,
)


@given(segments=segments_strategy, block_size=st.sampled_from([16, 64, 256]))
def test_token_sequence_block_hash_count(segments, block_size):
    sequence = TokenSequence([TokenSegment(cid, length) for cid, length in segments])
    hashes = sequence.block_hashes(block_size)
    assert len(hashes) == sequence.num_tokens // block_size
    assert len(set(hashes)) == len(hashes)  # chained hashes never repeat within one sequence


@given(segments=segments_strategy)
def test_token_sequence_shared_prefix_is_symmetric_and_bounded(segments):
    a = TokenSequence([TokenSegment(cid, length) for cid, length in segments])
    b = TokenSequence([TokenSegment(cid, length) for cid, length in segments])
    assert a.shared_prefix_tokens(b) == b.shared_prefix_tokens(a) == a.num_tokens


# ---------------------------------------------------------------- allocator

@given(operations=st.lists(st.booleans(), max_size=80))
def test_allocator_conservation(operations):
    """allocate/free in any order never loses or duplicates blocks."""
    allocator = BlockAllocator(num_blocks=16, block_size=BLOCK)
    held = []
    for allocate in operations:
        if allocate and allocator.num_free_blocks:
            held.append(allocator.allocate())
        elif held:
            allocator.free(held.pop())
        assert allocator.num_free_blocks + allocator.num_allocated_blocks == 16
        assert len(held) == allocator.num_allocated_blocks
    ids = [block.block_id for block in held]
    assert len(ids) == len(set(ids))


# --------------------------------------------------------------- radix tree

request_pool = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=BLOCK, max_size=6 * BLOCK),
    min_size=1,
    max_size=12,
)


@given(requests=request_pool)
@settings(max_examples=50)
def test_radix_tree_never_exceeds_capacity_and_match_is_consistent(requests):
    allocator = BlockAllocator(num_blocks=8, block_size=BLOCK)
    cache = RadixPrefixCache(allocator)
    for index, tokens in enumerate(requests):
        hashes = hash_token_blocks(tokens, BLOCK)
        cache.insert(hashes, block_size=BLOCK, now=float(index))
        assert cache.num_cached_blocks <= 8
        # Whatever is reported as matched must be a prefix (no holes).
        match = cache.match_length(hashes)
        for position in range(match):
            assert hashes[position] in cache


# ------------------------------------------------------------------ manager

@given(
    lengths=st.lists(st.integers(min_value=1, max_value=20 * BLOCK), min_size=1, max_size=10),
    reserve=st.booleans(),
)
@settings(max_examples=50)
def test_manager_hit_tokens_never_exceed_request(lengths, reserve):
    manager = KVCacheManager(64 * BLOCK, block_size=BLOCK)
    for index, num_tokens in enumerate(lengths):
        sequence = TokenSequence([TokenSegment(index % 3, num_tokens)])
        hashes = sequence.block_hashes(BLOCK)
        cached = manager.lookup(hashes)
        assert 0 <= cached <= num_tokens
        lease = manager.begin_execution(hashes, num_tokens, reserve_full_kv=reserve)
        assert lease.cached_tokens <= num_tokens
        manager.finish_execution(lease, policy=CommitPolicy.SUFFIX_DISCARD)


# ---------------------------------------------------------------- scheduler

queue_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5000),   # tokens
        st.floats(min_value=0.0, max_value=100.0),  # enqueue time
    ),
    min_size=1,
    max_size=20,
)


@given(queue_spec=queue_strategy, fairness=st.floats(min_value=0.0, max_value=1000.0))
@settings(max_examples=60)
def test_srjf_always_picks_the_minimum_score(queue_spec, fairness):
    kv = KVCacheManager(64 * BLOCK, block_size=BLOCK)
    scheduler = SRJFScheduler(fairness_lambda=fairness)
    queue = []
    for index, (tokens, enqueue_time) in enumerate(queue_spec):
        request = Request(request_id=index, user_id=f"u{index}",
                          sequence=TokenSequence([TokenSegment(index, tokens)]))
        queue.append(EngineRequest(request=request,
                                   block_hashes=request.sequence.block_hashes(BLOCK),
                                   enqueue_time=enqueue_time))
    now = 200.0
    decision = scheduler.select(queue, kv, now=now)
    scores = [
        er.num_tokens - fairness * (now - er.enqueue_time) for er in queue
    ]
    assert decision.score == min(scores)


@given(queue_spec=queue_strategy)
@settings(max_examples=30)
def test_srjf_with_zero_lambda_picks_fewest_uncached_tokens(queue_spec):
    kv = KVCacheManager(64 * BLOCK, block_size=BLOCK)
    scheduler = SRJFScheduler(fairness_lambda=0.0)
    queue = []
    for index, (tokens, enqueue_time) in enumerate(queue_spec):
        request = Request(request_id=index, user_id=f"u{index}",
                          sequence=TokenSequence([TokenSegment(index, tokens)]))
        queue.append(EngineRequest(request=request,
                                   block_hashes=request.sequence.block_hashes(BLOCK),
                                   enqueue_time=enqueue_time))
    decision = scheduler.select(queue, kv, now=500.0)
    assert decision.request.num_tokens == min(er.num_tokens for er in queue)


# ------------------------------------------------------------------ chunking

@given(
    num_tokens=st.integers(min_value=1, max_value=300),
    width=st.integers(min_value=1, max_value=32),
    chunk=st.integers(min_value=1, max_value=64),
    prealloc=st.booleans(),
)
@settings(max_examples=60)
def test_chunked_positionwise_matches_direct_application(num_tokens, width, chunk, prealloc):
    rng = np.random.default_rng(num_tokens * 1000 + width)
    inputs = rng.standard_normal((num_tokens, width))
    weights = rng.standard_normal((width, width + 3))
    expected = inputs @ weights
    result = chunked_positionwise(
        lambda rows: rows @ weights, inputs, width + 3,
        options=ChunkedExecutionOptions(chunk_tokens=chunk, preallocate_output=prealloc),
    )
    np.testing.assert_allclose(result, expected, rtol=1e-10, atol=1e-10)


# ------------------------------------------------------------------ arrivals

@given(rate=st.floats(min_value=0.01, max_value=1000.0), seed=st.integers(0, 2**16))
@settings(max_examples=40)
def test_poisson_arrival_times_sorted_and_positive(rate, seed):
    requests = [
        Request(request_id=i, user_id=f"u{i % 3}",
                sequence=TokenSequence([TokenSegment(i, 100)]))
        for i in range(20)
    ]
    assigned = PoissonArrivalProcess(rate=rate, seed=seed).assign(requests)
    times = [r.arrival_time for r in assigned]
    assert times == sorted(times)
    assert all(t > 0 for t in times)
    assert len(assigned) == 20


# ------------------------------------------------------------------- metrics

finished_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),   # arrival
        st.floats(min_value=0.0, max_value=50.0),    # queueing
        st.floats(min_value=0.001, max_value=50.0),  # execution
    ),
    min_size=1,
    max_size=40,
)


@given(samples=finished_strategy)
@settings(max_examples=50)
def test_latency_summary_invariants(samples):
    records = []
    for index, (arrival, queueing, execution) in enumerate(samples):
        start = arrival + queueing
        records.append(FinishedRequest(
            request_id=index, user_id="u", num_tokens=100, cached_tokens=0,
            arrival_time=arrival, start_time=start, finish_time=start + execution,
            instance_name="i", engine_name="e",
        ))
    summary = summarize_finished(records)
    assert summary.p50_latency <= summary.p90_latency <= summary.p99_latency <= summary.max_latency
    assert 0 < summary.mean_latency <= summary.max_latency
    assert summary.throughput_rps > 0
    assert summary.mean_latency >= summary.mean_execution_time * 0.999
