"""Golden identity tests: the spec-layer parsers must not change any result.

The refactor contract of the ``repro.spec`` layer is that every cookbook
config parses to *byte-identical* simulation results: the goldens under
``tests/golden/spec_identity.json`` were captured from the pre-refactor
hand-rolled parsers (``scenario_from_dict`` / ``tier_config_from_dict`` /
``fault_schedule_from_dict``), and every file under ``examples/scenarios/``
and ``examples/faults/`` must keep reproducing them exactly — summaries,
fleet reports, per-tenant tables, and compiled fault schedules, with no
float rounded and no tolerance applied.

Regenerate (only when *adding* a new example, never to paper over a diff)::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_spec_identity.py -q
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.faults import fault_schedule_from_dict
from repro.simulation.scenario import load_scenario, run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIO_DIR = REPO_ROOT / "examples" / "scenarios"
FAULTS_DIR = REPO_ROOT / "examples" / "faults"
GOLDEN_PATH = Path(__file__).parent / "golden" / "spec_identity.json"

UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"

SCENARIO_FILES = sorted(path.name for path in SCENARIO_DIR.glob("*.json"))
FAULT_FILES = sorted(path.name for path in FAULTS_DIR.glob("*.json"))


def _scenario_fingerprint(name: str) -> dict:
    """Everything observable from one scenario run, JSON-serialisable.

    Floats are emitted unrounded; ``json.dumps`` uses the shortest
    round-trip repr, so equality after a JSON round trip is bit equality.
    """
    spec = load_scenario(SCENARIO_DIR / name)
    result = run_scenario(spec)
    return {
        "summary": dataclasses.asdict(result.result.summary),
        "fleet": result.result.fleet.as_dict(),
        "tenants": [report.as_dict() for report in result.tenants],
        "num_events": result.result.num_events,
        "finished_ids": sorted(r.request_id for r in result.result.finished),
        "rejected_ids": sorted(r.request_id for r in result.result.rejected),
    }


def _fault_fingerprint(name: str) -> list:
    """The compiled event tuple of one fault-schedule config file."""
    config = json.loads((FAULTS_DIR / name).read_text(encoding="utf-8"))
    if "faults" in config:
        config = config["faults"]
    schedule = fault_schedule_from_dict(config, default_replicas=4)
    return [
        [event.time, event.kind,
         event.replica if event.replica is not None else "-",
         event.multiplier, event.seq]
        for event in schedule
    ]


def _load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file missing: {GOLDEN_PATH}; regenerate with "
            "REPRO_UPDATE_GOLDENS=1"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _update_golden(section: str, key: str, value) -> None:
    goldens = (
        json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        if GOLDEN_PATH.exists() else {}
    )
    goldens.setdefault(section, {})[key] = value
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(goldens, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.mark.parametrize("name", SCENARIO_FILES)
def test_scenario_results_match_pre_refactor_golden(name):
    fingerprint = json.loads(json.dumps(_scenario_fingerprint(name)))
    if UPDATE:
        _update_golden("scenarios", name, fingerprint)
        return
    goldens = _load_goldens()
    assert name in goldens.get("scenarios", {}), (
        f"no golden for {name}; regenerate with REPRO_UPDATE_GOLDENS=1"
    )
    assert fingerprint == goldens["scenarios"][name]


@pytest.mark.parametrize("name", FAULT_FILES)
def test_fault_schedule_compiles_to_pre_refactor_golden(name):
    fingerprint = json.loads(json.dumps(_fault_fingerprint(name)))
    if UPDATE:
        _update_golden("fault_schedules", name, fingerprint)
        return
    goldens = _load_goldens()
    assert name in goldens.get("fault_schedules", {}), (
        f"no golden for {name}; regenerate with REPRO_UPDATE_GOLDENS=1"
    )
    assert fingerprint == goldens["fault_schedules"][name]


def test_every_example_has_a_golden():
    """A new example file must come with a captured golden."""
    if UPDATE:
        return
    goldens = _load_goldens()
    assert sorted(goldens.get("scenarios", {})) == SCENARIO_FILES
    assert sorted(goldens.get("fault_schedules", {})) == FAULT_FILES
