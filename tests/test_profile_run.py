"""Tests for the profile run (MIL-driven KV budgeting)."""

import pytest

from repro.core.profile_run import DEFAULT_GPU_MEMORY_UTILIZATION, run_profile
from repro.errors import CapacityError
from repro.model.memory import PrefillMode


def test_hybrid_profile_leaves_kv_budget(llama_8b, l4_gpu):
    result = run_profile(llama_8b, l4_gpu, max_input_length=32_000, mode=PrefillMode.HYBRID,
                         retain_kv_layers=1)
    assert result.kv_budget_bytes > 0
    assert result.kv_budget_tokens > 0
    assert not result.requires_pool_for_inflight


def test_full_mode_requires_pool_for_inflight(llama_8b, l4_gpu):
    result = run_profile(llama_8b, l4_gpu, max_input_length=10_000, mode=PrefillMode.FULL)
    assert result.requires_pool_for_inflight
    assert result.kv_budget_tokens >= 10_000


def test_full_mode_rejects_lengths_beyond_pool(llama_8b, l4_gpu):
    with pytest.raises(CapacityError):
        run_profile(llama_8b, l4_gpu, max_input_length=120_000, mode=PrefillMode.FULL)


def test_hybrid_supports_much_longer_inputs_than_full(llama_8b, l4_gpu):
    # 100k tokens: impossible for FULL on an L4, fine for HYBRID.
    with pytest.raises(CapacityError):
        run_profile(llama_8b, l4_gpu, max_input_length=100_000, mode=PrefillMode.FULL)
    result = run_profile(llama_8b, l4_gpu, max_input_length=100_000, mode=PrefillMode.HYBRID,
                         retain_kv_layers=1)
    assert result.kv_budget_bytes >= 0


def test_larger_mil_leaves_smaller_budget(llama_8b, l4_gpu):
    small = run_profile(llama_8b, l4_gpu, max_input_length=8_000, mode=PrefillMode.HYBRID,
                        retain_kv_layers=1)
    large = run_profile(llama_8b, l4_gpu, max_input_length=64_000, mode=PrefillMode.HYBRID,
                        retain_kv_layers=1)
    assert large.kv_budget_tokens < small.kv_budget_tokens
    assert large.peak_forward_bytes > small.peak_forward_bytes


def test_tensor_parallel_shards_reduce_peak(llama_70b, h100_gpu):
    single = run_profile(llama_70b, h100_gpu, max_input_length=10_000, mode=PrefillMode.FULL)
    sharded = run_profile(llama_70b, h100_gpu, max_input_length=10_000, mode=PrefillMode.FULL,
                          tensor_parallel=2)
    assert sharded.peak_forward_bytes < single.peak_forward_bytes


def test_model_too_big_for_gpu_raises(llama_70b, l4_gpu):
    with pytest.raises(CapacityError):
        run_profile(llama_70b, l4_gpu, max_input_length=1_000, mode=PrefillMode.FULL)


def test_invalid_mil_rejected(llama_8b, l4_gpu):
    with pytest.raises(CapacityError):
        run_profile(llama_8b, l4_gpu, max_input_length=0, mode=PrefillMode.HYBRID)


def test_peak_never_exceeds_gpu_memory(llama_8b, l4_gpu):
    result = run_profile(llama_8b, l4_gpu, max_input_length=20_000, mode=PrefillMode.CHUNKED)
    assert result.peak_forward_bytes <= l4_gpu.memory_bytes
    assert result.usable_memory_bytes == pytest.approx(
        l4_gpu.memory_bytes * DEFAULT_GPU_MEMORY_UTILIZATION
    )
    assert result.peak_forward_bytes + result.kv_budget_bytes == pytest.approx(
        result.usable_memory_bytes
    )


def test_gpu_memory_utilization_knob(llama_8b, l4_gpu):
    generous = run_profile(llama_8b, l4_gpu, max_input_length=10_000, mode=PrefillMode.HYBRID,
                           retain_kv_layers=1, gpu_memory_utilization=1.0)
    strict = run_profile(llama_8b, l4_gpu, max_input_length=10_000, mode=PrefillMode.HYBRID,
                         retain_kv_layers=1, gpu_memory_utilization=0.8)
    assert strict.kv_budget_tokens < generous.kv_budget_tokens
    with pytest.raises(CapacityError):
        run_profile(llama_8b, l4_gpu, max_input_length=10_000, mode=PrefillMode.HYBRID,
                    gpu_memory_utilization=1.5)
