"""Property tests for the shard partitioner and the cross-shard event merge.

The sharded engine's byte-identity rests on one law: a
:class:`~repro.simulation.sharded.ShardedEventQueue` — N per-shard heaps with
keys routed by :meth:`~repro.simulation.sharded.ShardPlan.owner` and due
events merged by ``(time, key)`` — drains in exactly the global order of a
single :class:`~repro.simulation.events.EventQueue` holding every source.
This file fuzzes that law under random event storms across random shard
counts (mirroring ``test_events_edge_cases.py``'s heap-vs-scan storm test),
and pins the partitioner/seed-stream half of the determinism contract.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.perf.runner import derive_task_seeds
from repro.simulation.events import TIME_EPSILON, EventQueue
from repro.simulation.sharded import ShardedEventQueue, ShardPlan


# ------------------------------------------------------------- partitioner


def test_owner_covers_every_shard_and_is_stable():
    plan = ShardPlan(4)
    owners = [plan.owner(key) for key in range(32)]
    assert set(owners) == {0, 1, 2, 3}
    # Pure function of the key: crash/recover cycles (fresh keys) rebalance,
    # but a given key's owner never moves.
    assert owners == [plan.owner(key) for key in range(32)]


def test_single_shard_owns_everything():
    plan = ShardPlan(1)
    assert all(plan.owner(key) == 0 for key in range(100))


def test_invalid_shard_count_rejected():
    with pytest.raises(ConfigurationError):
        ShardPlan(0)


def test_shard_seeds_derive_from_derive_task_seeds():
    """The per-shard RNG streams are the documented pure function of the seed."""
    plan = ShardPlan(4, base_seed=123)
    assert list(plan.shard_seeds) == derive_task_seeds(123, 4)
    # Independent of anything but (base_seed, shard): rebuilding the plan —
    # or building a wider one — never changes an existing shard's stream.
    assert ShardPlan(4, base_seed=123).shard_seeds == plan.shard_seeds
    assert ShardPlan(2, base_seed=123).shard_seeds == plan.shard_seeds[:2]
    assert ShardPlan(4, base_seed=124).shard_seeds != plan.shard_seeds


# ------------------------------------------------------- merge determinism


def test_equal_time_events_merge_by_key_across_shards():
    """Cross-shard ties resolve by the fixed sequence key, not shard order."""
    sharded = ShardedEventQueue(ShardPlan(3))
    for key in (5, 1, 4, 2, 0, 3):   # keys land on shards 2,1,1,2,0,0
        sharded.update(key, 7.0)
    assert sharded.pop_due(7.0) == [0, 1, 2, 3, 4, 5]


def test_peek_returns_global_minimum():
    sharded = ShardedEventQueue(ShardPlan(4))
    sharded.update(3, 5.0)
    sharded.update(6, 2.0)
    sharded.update(1, 9.0)
    assert sharded.peek() == (2.0, 6)
    assert sharded.next_time() == 2.0


def test_discard_routes_to_owning_shard():
    plan = ShardPlan(2)
    sharded = ShardedEventQueue(plan)
    sharded.update(2, 1.0)
    sharded.update(3, 1.0)
    sharded.discard(3)
    assert len(sharded.shard(plan.owner(3))) == 0
    assert sharded.pop_due(1.0) == [2]


# ----------------------------------------------------- hypothesis storms

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(0, 15),
                  st.one_of(st.none(), st.floats(0, 100, allow_nan=False))),
        st.tuples(st.just("discard"), st.integers(0, 15)),
        st.tuples(st.just("pop"), st.floats(0, 100, allow_nan=False),
                  st.sampled_from([0.0, TIME_EPSILON])),
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(operations=_ops, num_shards=st.integers(1, 6))
def test_sharded_merge_matches_single_queue_under_random_storms(
        operations, num_shards):
    """Random storms across random shard counts drain in the global order."""
    single = EventQueue()
    sharded = ShardedEventQueue(ShardPlan(num_shards))
    for operation in operations:
        if operation[0] == "update":
            _, key, time = operation
            single.update(key, time)
            sharded.update(key, time)
        elif operation[0] == "discard":
            _, key = operation
            single.discard(key)
            sharded.discard(key)
        else:
            _, now, epsilon = operation
            assert (
                sharded.pop_due_entries(now, epsilon=epsilon)
                == single.pop_due_entries(now, epsilon=epsilon)
            )
        assert sharded.next_time() == single.next_time()
        assert sharded.peek() == single.peek()
        assert len(sharded) == len(single)
    # Final drain: whatever survived the storm leaves in identical order.
    assert sharded.pop_due(math.inf) == single.pop_due(math.inf)
