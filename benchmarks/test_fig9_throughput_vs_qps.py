"""Figure 9 — achieved request throughput vs offered QPS (post recommendation,
2x H100 without NVLink).

The paper uses this figure to explain *where* PrefillOnly's improvement comes
from on the prefix-heavy workload: as the offered load grows, the
chunked-prefill baseline's prefix cache starts thrashing (long requests keep
evicting the user prefixes other requests would have reused), so its goodput
flattens or drops, while PrefillOnly's continuous JCT calibration keeps
prioritising cache-hit requests and sustains a higher goodput.  The
parallelisation baselines avoid cache thrashing but pay communication and
bubble overheads.
"""

from __future__ import annotations

from conftest import post_recommendation_trace, qps_multipliers, show

from repro.analysis.sweep import base_throughput, compare_engines, paper_qps_points
from repro.baselines import chunked_prefill_spec, pipeline_parallel_spec, tensor_parallel_spec
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup

SPECS = [
    prefillonly_engine_spec(),
    chunked_prefill_spec(),
    pipeline_parallel_spec(),
    tensor_parallel_spec(),
]


def _compute():
    setup = get_hardware_setup("h100")
    trace = post_recommendation_trace()
    base = base_throughput(prefillonly_engine_spec(), setup, trace)
    qps_values = paper_qps_points(base, qps_multipliers())
    return qps_values, compare_engines(SPECS, setup, trace, qps_values)


def test_fig9_goodput_vs_offered_load(benchmark):
    qps_values, results = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = []
    for engine, points in results.items():
        for point in points:
            rows.append({
                "engine": engine,
                "offered_qps": round(point.qps, 3),
                "achieved_rps": round(point.throughput_rps, 3),
                "cache_hit_rate": round(point.cache_hit_rate, 3),
            })
    show("Figure 9 — post recommendation on 2x H100: goodput vs offered QPS", rows)
    benchmark.extra_info["fig9"] = rows

    at_top = {engine: points[-1] for engine, points in results.items() if points}

    # PrefillOnly sustains the highest goodput at the highest offered load.
    best = max(point.throughput_rps for point in at_top.values())
    assert at_top["prefillonly"].throughput_rps >= best * 0.999

    # The source of the improvement: a higher prefix-cache hit rate than the
    # chunked prefill baseline under overload (cache thrashing vs calibration).
    if "chunked-prefill" in at_top:
        assert at_top["prefillonly"].cache_hit_rate >= at_top["chunked-prefill"].cache_hit_rate

    # Parallelisation baselines deliver less goodput than PrefillOnly because
    # of communication / bubbles, despite having ample prefix-cache space.
    for baseline in ("tensor-parallel", "pipeline-parallel"):
        assert at_top["prefillonly"].throughput_rps >= at_top[baseline].throughput_rps
