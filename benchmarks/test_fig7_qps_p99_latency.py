"""Figure 7 — offered QPS vs P99 latency, per workload and hardware setup.

Same runs as Figure 6 (the sweep grid is shared), reported at the 99th
percentile.  The paper's claim is that PrefillOnly's JCT-based scheduling does
not hurt tail latency once the fairness offset is applied: at the highest
offered load its P99 is competitive with (in our reproduction: no more than a
small factor above) the best baseline, while its mean latency is the lowest.
"""

from __future__ import annotations

from conftest import compute_sweep_grid, show

#: P99 competitiveness tolerance at the top offered load.
P99_TOLERANCE = 1.25


def test_fig7_qps_vs_p99_latency(benchmark):
    grid = benchmark.pedantic(compute_sweep_grid, rounds=1, iterations=1)

    for (setup_name, workload_name), payload in grid.items():
        rows = []
        for engine, points in payload["results"].items():
            for point in points:
                rows.append({
                    "engine": engine,
                    "qps": round(point.qps, 3),
                    "p99_latency_s": round(point.p99_latency, 3),
                })
            if not points:
                rows.append({"engine": engine, "qps": "-", "p99_latency_s": "infeasible"})
        show(f"Figure 7 — {workload_name} on {setup_name}: QPS vs P99 latency", rows)

    for (setup_name, workload_name), payload in grid.items():
        results = payload["results"]
        top_p99 = {
            engine: points[-1].p99_latency
            for engine, points in results.items() if points
        }
        best = min(top_p99.values())
        assert top_p99["prefillonly"] <= best * P99_TOLERANCE, (
            f"PrefillOnly's P99 is not competitive at the top offered load for "
            f"{workload_name} on {setup_name}: {top_p99}"
        )


def test_fig7_p99_dominates_mean(benchmark):
    grid = benchmark.pedantic(compute_sweep_grid, rounds=1, iterations=1)
    for payload in grid.values():
        for points in payload["results"].values():
            for point in points:
                assert point.p99_latency >= point.mean_latency * 0.999
