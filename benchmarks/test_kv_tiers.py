"""KV tiering — tiered prefix cache versus suffix discard at equal GPU capacity.

Not a figure from the paper, but the quantitative case for the tiered
subsystem (the §9 direction: offload instead of discard, grown into a
GPU -> host -> cluster hierarchy).  The scenario is a multi-tenant bursty
fleet whose tenants each carry a large shared prompt prefix: every request
opens with its tenant's system prompt, so the prefix working set far exceeds
a deliberately small GPU KV budget.  With suffix discarding, whatever the
radix tree cannot hold is recomputed; with tiering, it streams back from host
memory or the fleet-shared cluster store at interconnect cost.

Both arms run the *same* GPU KV capacity (``kv_capacity_tokens``), the same
replica count, router, and arrival process — the only difference is where
evicted prefixes go.  The benchmark asserts the headline claim (>= 1.3x mean
latency at equal GPU capacity) and reports per-tier hit rates, which is also
where the cluster store's cross-replica sharing shows up (peer fetches:
replica B matching blocks that replica A published).
"""

from __future__ import annotations

from conftest import PAPER_SCALE, show

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup
from repro.kvcache import TierConfig
from repro.simulation.arrival import MMPPArrivalProcess
from repro.simulation.simulator import simulate_fleet
from repro.workloads.trace import Request, TokenSegment, TokenSequence

NUM_REPLICAS = 2
GPU_KV_TOKENS = 4096           # deliberately small: ~ one tenant prefix
TENANT_PREFIX_TOKENS = 3072
USER_PREFIX_TOKENS = 512
DOC_TOKENS = 1024

if PAPER_SCALE:
    NUM_TENANTS, USERS_PER_TENANT, REQUESTS_PER_USER = 4, 8, 10
else:
    NUM_TENANTS, USERS_PER_TENANT, REQUESTS_PER_USER = 3, 4, 6


def shared_prefix_trace() -> list[Request]:
    """Multi-tenant requests: tenant prompt + user prefix + fresh document."""
    requests: list[Request] = []
    request_id = 0
    content_id = 0
    for tenant in range(NUM_TENANTS):
        tenant_segment = TokenSegment(
            content_id=1_000_000 + tenant, length=TENANT_PREFIX_TOKENS
        )
        for user in range(USERS_PER_TENANT):
            user_segment = TokenSegment(
                content_id=2_000_000 + tenant * 1000 + user,
                length=USER_PREFIX_TOKENS,
            )
            for _ in range(REQUESTS_PER_USER):
                content_id += 1
                document = TokenSegment(content_id=content_id, length=DOC_TOKENS)
                requests.append(Request(
                    request_id=request_id,
                    user_id=f"tenant{tenant}-user{user}",
                    sequence=TokenSequence([tenant_segment, user_segment, document]),
                    metadata={"tenant": f"tenant{tenant}"},
                ))
                request_id += 1
    return requests


def run_arm(tier_config: TierConfig | None):
    setup = get_hardware_setup("h100")
    spec = prefillonly_engine_spec().with_overrides(kv_capacity_tokens=GPU_KV_TOKENS)
    requests = shared_prefix_trace()
    max_tokens = max(request.num_tokens for request in requests)
    fleet = Fleet.for_setup(
        spec, setup,
        max_input_length=max_tokens,
        num_replicas=NUM_REPLICAS,
        tier_config=tier_config,
        name="tiered" if tier_config is not None else "discard",
    )
    arrivals = MMPPArrivalProcess(
        base_rate=2.0, burst_rate=8.0,
        mean_quiet_seconds=15.0, mean_burst_seconds=5.0, seed=3,
    )
    return simulate_fleet(fleet, arrivals.assign(requests)), fleet


def _compute():
    tier_config = TierConfig(
        enabled=True, host_gib=1.0, cluster_gib=16.0,
        promotion="on-nth-hit", promotion_threshold=2,
    )
    discard, _ = run_arm(None)
    tiered, fleet = run_arm(tier_config)
    return discard, tiered, fleet


def test_tiered_prefix_cache_vs_suffix_discard(benchmark):
    discard, tiered, fleet = benchmark.pedantic(_compute, rounds=1, iterations=1)

    tiers = tiered.fleet.tiers
    speedup = discard.summary.mean_latency / tiered.summary.mean_latency
    rows = [{
        "arm": "suffix-discard",
        "mean_latency_s": round(discard.summary.mean_latency, 3),
        "p99_latency_s": round(discard.summary.p99_latency, 3),
        "token_hit_rate": round(discard.summary.token_hit_rate, 3),
        "speedup": 1.0,
    }, {
        "arm": "tiered (host+cluster)",
        "mean_latency_s": round(tiered.summary.mean_latency, 3),
        "p99_latency_s": round(tiered.summary.p99_latency, 3),
        "token_hit_rate": round(tiered.summary.token_hit_rate, 3),
        "speedup": round(speedup, 2),
    }]
    show("KV tiers vs suffix discard — equal GPU KV capacity "
         f"({GPU_KV_TOKENS} tokens, {NUM_REPLICAS} replicas)", rows)

    tier_rows = [{
        "gpu_hit_rate": round(tiers.gpu_hit_rate, 3),
        "host_hit_rate": round(tiers.host_hit_rate, 3),
        "cluster_hit_rate": round(tiers.cluster_hit_rate, 3),
        "recompute_rate": round(1.0 - tiers.tier_hit_rate, 3),
        "peer_fetches": tiers.cluster["peer_fetched_blocks"],
        "promoted": tiers.promoted_blocks,
        "demoted": tiers.demoted_blocks,
    }]
    show("Per-tier hit rates (tiered arm)", tier_rows)
    benchmark.extra_info["kv_tiers"] = {"arms": rows, "tiers": tier_rows}

    # Both arms complete the full trace.
    assert discard.num_rejected == 0 and tiered.num_rejected == 0
    assert discard.num_finished == tiered.num_finished

    # Headline: >= 1.3x mean-latency improvement at equal GPU KV capacity.
    assert speedup >= 1.3, (
        f"tiering speedup {speedup:.2f}x below the 1.3x acceptance threshold"
    )

    # The win comes from the hierarchy: tokens that discard recomputes are
    # served from the tiers (directly, or via prefetch that warms L1 from the
    # tiers while a request queues), and the shared cluster store saw
    # cross-replica reuse (blocks one replica published hit on another).
    assert tiered.summary.token_hit_rate > discard.summary.token_hit_rate + 0.1
    assert tiers.host_hit_rate + tiers.cluster_hit_rate > 0.0
    assert tiers.prefetched_blocks > 0
    assert tiers.cluster["fetched_blocks"] > 0
    assert tiers.cluster["peer_fetched_blocks"] > 0
