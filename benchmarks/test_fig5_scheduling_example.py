"""Figure 5 — FIFO vs SRJF vs SRJF + continuous JCT calibration.

Replays the paper's four-request example (A/B/C/D with shared prefixes and a
prefix cache that holds roughly one request's state) under the three scheduling
policies and reports the schedules and cache-hit counts.  The paper's outcome —
one hit for FIFO, one for plain SRJF, two for calibrated SRJF — is asserted.
"""

from __future__ import annotations

from conftest import show

from repro.analysis.scheduling_example import figure5_comparison


def test_fig5_scheduling_policies(benchmark):
    results = benchmark.pedantic(figure5_comparison, rounds=1, iterations=1)
    rows = [
        {"policy": result.policy,
         "schedule": " -> ".join(result.schedule),
         "cache_hits": result.cache_hits,
         "hit_requests": ", ".join(result.hit_requests) or "-"}
        for result in results
    ]
    show("Figure 5 — scheduling example (A < C < B < D, A/D and B/C share prefixes)", rows)
    benchmark.extra_info["fig5"] = rows

    by_policy = {result.policy: result for result in results}
    assert by_policy["fcfs"].schedule == ("A", "B", "C", "D")
    assert by_policy["fcfs"].cache_hits == 1
    assert by_policy["srjf"].schedule == ("A", "C", "B", "D")
    assert by_policy["srjf"].cache_hits == 1
    assert by_policy["srjf-calibrated"].schedule == ("A", "D", "C", "B")
    assert by_policy["srjf-calibrated"].cache_hits == 2
