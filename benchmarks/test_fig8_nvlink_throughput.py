"""Figure 8 — throughput of PrefillOnly vs parallelisation on 2x H100,
with and without NVLink, on the credit-verification workload.

The paper's point: NVLink greatly accelerates the tensor-parallel baseline's
all-reduce traffic, but PrefillOnly still has the highest request throughput
because it spends no GPU time on cross-GPU communication at all.
"""

from __future__ import annotations

from conftest import credit_verification_trace, show

from repro.analysis.sweep import throughput_comparison
from repro.baselines import pipeline_parallel_spec, tensor_parallel_spec
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup

SPECS = [prefillonly_engine_spec(), pipeline_parallel_spec(), tensor_parallel_spec()]


def _compute():
    trace = credit_verification_trace()
    return {
        "h100 (PCIe)": throughput_comparison(SPECS, get_hardware_setup("h100"), trace),
        "h100 (NVLink)": throughput_comparison(SPECS, get_hardware_setup("h100-nvlink"), trace),
    }


def test_fig8_throughput_with_and_without_nvlink(benchmark):
    results = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for setup_name, throughputs in results.items():
        for engine, value in throughputs.items():
            rows.append({"setup": setup_name, "engine": engine,
                         "throughput_req_per_s": round(value, 4)})
    show("Figure 8 — credit-verification throughput on 2x H100", rows)
    benchmark.extra_info["fig8"] = rows

    pcie = results["h100 (PCIe)"]
    nvlink = results["h100 (NVLink)"]

    # NVLink helps the communication-heavy tensor-parallel baseline a lot ...
    assert nvlink["tensor-parallel"] > pcie["tensor-parallel"] * 1.3
    # ... and is irrelevant to PrefillOnly, which does not communicate.
    assert abs(nvlink["prefillonly"] - pcie["prefillonly"]) / pcie["prefillonly"] < 0.02
    # PrefillOnly has the highest throughput in both cases (the paper's headline).
    for setup_name, throughputs in results.items():
        best_baseline = max(throughputs["tensor-parallel"], throughputs["pipeline-parallel"])
        assert throughputs["prefillonly"] >= best_baseline, (
            f"PrefillOnly is not the fastest on {setup_name}: {throughputs}"
        )
