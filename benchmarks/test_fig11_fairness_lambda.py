"""Figure 11 — request latency CDF under different fairness parameters λ.

PrefillOnly offsets each request's JCT score by λ times its queueing time
(Algorithm 1).  The paper varies λ in {0, 200, 2000} and shows that a larger λ
improves the tail (P99) latency at the cost of a higher average latency.  The
benchmark replays the post-recommendation workload at an overloaded rate under
the three values and reports the CDF summary.
"""

from __future__ import annotations

from conftest import post_recommendation_trace, show

from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup
from repro.simulation.arrival import PoissonArrivalProcess
from repro.simulation.metrics import latency_cdf
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import simulate

LAMBDAS = (0.0, 200.0, 2000.0)
#: Offered load multiplier over PrefillOnly's base throughput (overload regime,
#: where scheduling order actually matters).
OVERLOAD_FACTOR = 3.0


def _run_all():
    setup = get_hardware_setup("h100")
    trace = post_recommendation_trace()
    from repro.analysis.sweep import base_throughput

    base = base_throughput(prefillonly_engine_spec(), setup, trace)
    rate = base * OVERLOAD_FACTOR
    results = {}
    for fairness in LAMBDAS:
        spec = prefillonly_engine_spec(fairness_lambda=fairness)
        system = ServingSystem.for_setup(spec, setup,
                                         max_input_length=trace.max_request_tokens)
        requests = PoissonArrivalProcess(rate=rate, seed=11).assign(list(trace.requests))
        results[fairness] = simulate(system, requests)
    return results


def test_fig11_latency_cdf_vs_lambda(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for fairness, result in results.items():
        summary = result.summary
        rows.append({
            "lambda": fairness,
            "mean_latency_s": round(summary.mean_latency, 3),
            "p50_latency_s": round(summary.p50_latency, 3),
            "p99_latency_s": round(summary.p99_latency, 3),
            "max_latency_s": round(summary.max_latency, 3),
        })
    show("Figure 11 — latency statistics of PrefillOnly under different λ", rows)
    benchmark.extra_info["fig11"] = rows

    # Larger λ improves the tail ...
    assert results[2000.0].summary.p99_latency <= results[0.0].summary.p99_latency * 1.001
    # ... and costs (or at least does not improve) the average.
    assert results[2000.0].summary.mean_latency >= results[0.0].summary.mean_latency * 0.999

    # The CDFs are well formed and cover every request.
    for fairness, result in results.items():
        cdf = latency_cdf(result.finished)
        assert cdf[-1][1] == 1.0
        assert all(a[0] <= b[0] for a, b in zip(cdf, cdf[1:]))
