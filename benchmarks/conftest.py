"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
workload scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) — shrunken traces so the whole harness finishes in a few
  minutes on a laptop CPU; the *shape* of every result is preserved.
* ``paper`` — the paper's full Table 1 parameters (20 users x 50 posts,
  60 credit users); slower, for a faithful regeneration.

Benchmarks print the rows / series they reproduce (run pytest with ``-s`` to
see them) and attach the same data to ``benchmark.extra_info`` so the JSON
output of pytest-benchmark carries the results.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.reporting import format_table
from repro.workloads.registry import get_workload

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
PAPER_SCALE = SCALE == "paper"


def post_recommendation_trace(seed: int = 0):
    """The post-recommendation trace at the configured scale."""
    if PAPER_SCALE:
        return get_workload("post-recommendation", seed=seed)
    return get_workload("post-recommendation", num_users=6, posts_per_user=12, seed=seed)


def credit_verification_trace(seed: int = 0):
    """The credit-verification trace at the configured scale."""
    if PAPER_SCALE:
        return get_workload("credit-verification", seed=seed)
    return get_workload("credit-verification", num_users=10, seed=seed)


def qps_multipliers() -> tuple[float, ...]:
    """Offered-load multipliers of the base throughput (fewer points when small)."""
    if PAPER_SCALE:
        return (0.25, 0.5, 1.0, 2.0, 3.0, 4.0)
    return (0.5, 1.0, 2.0, 4.0)


def hardware_setups_for_figures() -> list[str]:
    """Hardware setups swept by Figures 6 and 7."""
    if PAPER_SCALE:
        return ["l4", "a100", "h100", "h100-nvlink"]
    return ["l4", "h100"]


def show(title: str, rows: list[dict], *, columns: list[str] | None = None) -> None:
    """Print one reproduced table/figure."""
    print()
    print(format_table(rows, columns=columns, title=title))


@pytest.fixture(scope="session")
def post_trace():
    return post_recommendation_trace()


@pytest.fixture(scope="session")
def credit_trace():
    return credit_verification_trace()


_SWEEP_GRID_CACHE: dict | None = None


def compute_sweep_grid() -> dict:
    """Run the full Figure 6/7 grid once per session and cache the points.

    The grid covers every engine on every configured hardware setup and both
    workloads, over the offered-QPS multipliers of the paper (anchored at
    PrefillOnly's burst throughput on that setup/workload).  Figures 6 and 7
    plot the same runs (mean vs P99 latency), so they share this cache.
    """
    global _SWEEP_GRID_CACHE
    if _SWEEP_GRID_CACHE is not None:
        return _SWEEP_GRID_CACHE

    from repro.analysis.sweep import base_throughput, compare_engines, paper_qps_points
    from repro.baselines.registry import all_engine_specs
    from repro.core.engine import prefillonly_engine_spec
    from repro.hardware.cluster import get_hardware_setup

    grid: dict = {}
    traces = {
        "post-recommendation": post_recommendation_trace(),
        "credit-verification": credit_verification_trace(),
    }
    for setup_name in hardware_setups_for_figures():
        setup = get_hardware_setup(setup_name)
        for workload_name, trace in traces.items():
            base = base_throughput(prefillonly_engine_spec(), setup, trace)
            qps_values = paper_qps_points(base, qps_multipliers())
            results = compare_engines(all_engine_specs(), setup, trace, qps_values)
            grid[(setup_name, workload_name)] = {
                "base_qps": base,
                "qps_values": qps_values,
                "results": results,
            }
    _SWEEP_GRID_CACHE = grid
    return grid
