"""§6.3 measurement — the cache-miss-token proxy predicts JCT almost perfectly.

The paper measures a Pearson correlation of 0.987 between the actual JCT and
the number of cache-miss tokens on one A100 with Qwen-32B FP8, which justifies
using the proxy instead of the fitted linear model by default.  The benchmark
reproduces the profiling pass (with measurement noise) and the correlation, and
also reports the fitted linear model's quality.
"""

from __future__ import annotations

from conftest import show

from repro.core.jct import JCTEstimator, JCTProfiler, jct_pearson_correlation
from repro.hardware.gpu import get_gpu
from repro.model.config import get_model
from repro.model.latency import LatencyModel
from repro.model.memory import PrefillMode

MAX_INPUT = 80_000
GRANULARITY = 2_000
NOISE = 0.03


def _profile():
    latency = LatencyModel(get_model("qwen-32b-fp8"), get_gpu("a100-40gb"))
    profiler = JCTProfiler(latency, mode=PrefillMode.HYBRID)
    return profiler.profile(MAX_INPUT, granularity=GRANULARITY, noise_std=NOISE, seed=0)


def test_jct_proxy_correlation(benchmark):
    profile = benchmark.pedantic(_profile, rounds=1, iterations=1)
    correlation = jct_pearson_correlation(profile)
    estimator = JCTEstimator.fit(profile)
    r_squared = estimator.r_squared(profile)

    rows = [
        {"metric": "Pearson(JCT, cache-miss tokens)", "ours": round(correlation, 4),
         "paper": 0.987},
        {"metric": "R^2 of fitted linear JCT model", "ours": round(r_squared, 4), "paper": "-"},
        {"metric": "profiling samples", "ours": len(profile), "paper": "-"},
    ]
    show("§6.3 — JCT predictability on A100 / Qwen-32B FP8", rows)
    benchmark.extra_info["jct_correlation"] = rows

    assert correlation > 0.95
    assert r_squared > 0.95
    assert estimator.coef_uncached > estimator.coef_cached >= 0.0
