"""Figure 3 — GPU memory trace of prefilling 32,768 tokens, with and without
hybrid prefilling.

Two reproductions are produced:

* the *analytical* trace at paper scale (Llama-3.1-8B, 32,768 tokens), whose
  peak drops by ~2 GB when hybrid prefilling chunks the MLP spikes away; and
* the *measured* trace on the NumPy micro-transformer, where the allocation
  ledger shows the same shape at toy scale.
"""

from __future__ import annotations

import numpy as np
from conftest import show

from repro.execution.chunked_linear import ChunkedExecutionOptions
from repro.execution.numeric import MicroTransformer, MicroTransformerConfig
from repro.model.config import get_model
from repro.model.memory import MemoryModel, PrefillMode

TOKENS = 32_768


def _analytical_traces():
    memory = MemoryModel(get_model("llama-3.1-8b"))
    full = memory.prefill_memory_trace(TOKENS, mode=PrefillMode.FULL)
    hybrid = memory.prefill_memory_trace(TOKENS, mode=PrefillMode.HYBRID, retain_kv_layers=1)
    return memory, full, hybrid


def test_fig3_analytical_memory_trace(benchmark):
    memory, full, hybrid = benchmark.pedantic(_analytical_traces, rounds=1, iterations=1)
    full_peak = memory.peak_from_trace(full)
    hybrid_peak = memory.peak_from_trace(hybrid)
    saved_gib = (full_peak - hybrid_peak) / (1 << 30)

    rows = [
        {"variant": "without hybrid prefilling (Fig. 3a)",
         "peak_gib": round(full_peak / (1 << 30), 2),
         "samples": len(full)},
        {"variant": "with hybrid prefilling (Fig. 3b)",
         "peak_gib": round(hybrid_peak / (1 << 30), 2),
         "samples": len(hybrid)},
        {"variant": "peak reduction (paper: ~2 GB)",
         "peak_gib": round(saved_gib, 2), "samples": "-"},
    ]
    show("Figure 3 — peak GPU memory of prefilling 32,768 tokens (Llama-3.1-8B)", rows)
    benchmark.extra_info["fig3_analytical"] = rows

    # The paper reports roughly 2 GB of peak reduction at 32k tokens.
    assert saved_gib > 1.0
    # The un-hybrid trace shows the periodic MLP spikes: its max is well above its median.
    full_values = np.array([value for _, value in full])
    assert full_values.max() > np.median(full_values) * 1.05
    # The hybrid trace is much flatter.
    hybrid_values = np.array([value for _, value in hybrid])
    assert (hybrid_values.max() - np.median(hybrid_values)) < (
        full_values.max() - np.median(full_values)
    ) / 2


def _micro_traces():
    model = MicroTransformer(MicroTransformerConfig(), seed=0)
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, 512, size=2048).tolist()
    full = model.prefill_full(tokens)
    hybrid = model.prefill_hybrid(tokens, options=ChunkedExecutionOptions(chunk_tokens=128))
    return full, hybrid


def test_fig3_microtransformer_measured_trace(benchmark):
    full, hybrid = benchmark.pedantic(_micro_traces, rounds=1, iterations=1)
    rows = [
        {"variant": "micro-transformer, full prefill", "peak_bytes": full.peak_bytes},
        {"variant": "micro-transformer, hybrid prefill", "peak_bytes": hybrid.peak_bytes},
        {"variant": "reduction", "peak_bytes": full.peak_bytes - hybrid.peak_bytes},
    ]
    show("Figure 3 (measured at micro scale) — allocation-ledger peaks", rows)
    benchmark.extra_info["fig3_micro"] = rows
    assert hybrid.peak_bytes < full.peak_bytes
    np.testing.assert_allclose(hybrid.logits, full.logits, rtol=1e-9, atol=1e-9)
