"""Figure 10 — maximum input length ablation (Qwen-32B FP8 on one A100).

Decomposes PrefillOnly's MIL improvement into the paper's incremental steps:
vanilla vLLM, chunked prefill, hybrid chunking, + output preallocation,
+ in-place computation.  The paper reports a 7.9x improvement over vanilla for
the full pipeline (and notes that chunked prefill's improvement comes at the
cost of throughput); the assertion checks a several-fold improvement with the
same monotone staircase.
"""

from __future__ import annotations

from conftest import show

from repro.analysis.ablation import mil_ablation
from repro.baselines import chunked_prefill_spec, paged_attention_spec
from repro.hardware.gpu import get_gpu
from repro.model.config import get_model

#: Paper values for the printed comparison (approximate, read off Figure 10).
PAPER_FIG10 = {
    "vanilla-vllm": 11_000,
    "chunked-prefill": 17_000,
    "hybrid+in-place": 87_000,
}


def _compute():
    return mil_ablation(
        get_model("qwen-32b-fp8"),
        get_gpu("a100-40gb"),
        vanilla_spec=paged_attention_spec(),
        chunked_spec=chunked_prefill_spec(),
    )


def test_fig10_mil_ablation(benchmark):
    steps = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        {"stage": step.name,
         "max_input_length": step.max_input_length,
         "improvement_vs_vanilla": round(step.improvement_over_vanilla, 2),
         "hurts_throughput": step.hurts_throughput,
         "paper_value": PAPER_FIG10.get(step.name, "-")}
        for step in steps
    ]
    show("Figure 10 — MIL ablation (Qwen-32B FP8, 1x A100)", rows)
    benchmark.extra_info["fig10"] = rows

    by_name = {step.name: step for step in steps}
    vanilla = by_name["vanilla-vllm"].max_input_length
    final = by_name["hybrid+in-place"].max_input_length

    # The staircase is monotone across the three hybrid stages.
    assert (by_name["hybrid-chunking"].max_input_length
            <= by_name["hybrid+preallocation"].max_input_length
            <= final)
    # Chunked prefill helps but is the only stage that costs throughput.
    assert by_name["chunked-prefill"].max_input_length > vanilla
    assert by_name["chunked-prefill"].hurts_throughput
    assert not by_name["hybrid+in-place"].hurts_throughput
    # Paper: 7.9x improvement over vanilla; we assert a large multiple.
    assert final / vanilla > 4.0
