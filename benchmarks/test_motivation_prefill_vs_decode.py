"""§2.3 measurement — prefill-only requests are cheaper than generative requests.

The paper measures that, on Llama-3.1-8B with one H100, a request with 2,048
input tokens and 256 output tokens is about 1.5x slower than the same request
with a single output token.  The latency model reproduces the comparison (the
exact factor depends on the decode batch size the serving engine sustains).
"""

from __future__ import annotations

from conftest import show

from repro.hardware.gpu import get_gpu
from repro.model.config import get_model
from repro.model.latency import LatencyModel

INPUT_TOKENS = 2_048
OUTPUT_TOKENS = 256
DECODE_BATCH = 64


def _measure():
    latency = LatencyModel(get_model("llama-3.1-8b"), get_gpu("h100-80gb"))
    prefill_only = latency.request_time(INPUT_TOKENS, 1)
    generative = latency.request_time(INPUT_TOKENS, OUTPUT_TOKENS, batch_size=DECODE_BATCH)
    return prefill_only, generative


def test_motivation_prefill_only_is_faster(benchmark):
    prefill_only, generative = benchmark.pedantic(_measure, rounds=1, iterations=1)
    ratio = generative / prefill_only
    rows = [
        {"request": f"{INPUT_TOKENS} in / 1 out (prefill-only)",
         "latency_s": round(prefill_only, 4)},
        {"request": f"{INPUT_TOKENS} in / {OUTPUT_TOKENS} out (generative)",
         "latency_s": round(generative, 4)},
        {"request": "slowdown of generative vs prefill-only (paper: ~1.5x)",
         "latency_s": round(ratio, 2)},
    ]
    show("§2.3 — prefill-only vs generative request latency (Llama-3.1-8B, H100)", rows)
    benchmark.extra_info["motivation"] = rows

    assert ratio > 1.3, "generating 256 tokens should be clearly slower than prefill-only"
    assert ratio < 30.0, "under continuous batching the slowdown stays moderate"
