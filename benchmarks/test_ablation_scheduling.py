"""Ablation — the scheduler's contribution to PrefillOnly's improvement.

Holds hybrid prefilling fixed and swaps only the scheduling policy (FCFS,
plain SRJF, SRJF with continuous JCT calibration) on the post-recommendation
workload under overload.  This isolates the second half of the paper's
contribution: calibration should raise the prefix-cache hit rate and cut both
the mean and tail latency relative to FCFS.
"""

from __future__ import annotations

from conftest import post_recommendation_trace, show

from repro.analysis.sweep import base_throughput, qps_sweep
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup

POLICIES = ("fcfs", "srjf", "srjf-calibrated")
OVERLOAD_FACTOR = 2.0


def _run():
    setup = get_hardware_setup("h100")
    trace = post_recommendation_trace()
    base = base_throughput(prefillonly_engine_spec(), setup, trace)
    qps = base * OVERLOAD_FACTOR
    results = {}
    for policy in POLICIES:
        spec = prefillonly_engine_spec(scheduling_policy=policy)
        results[policy] = qps_sweep(spec, setup, trace, [qps], seed=7)[0]
    return results


def test_ablation_scheduling_policy(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {"scheduler": policy,
         "mean_latency_s": round(point.mean_latency, 3),
         "p99_latency_s": round(point.p99_latency, 3),
         "cache_hit_rate": round(point.cache_hit_rate, 3)}
        for policy, point in results.items()
    ]
    show("Ablation — scheduling policy on the PrefillOnly engine (2x overload)", rows)
    benchmark.extra_info["scheduling_ablation"] = rows

    fcfs = results["fcfs"]
    calibrated = results["srjf-calibrated"]
    plain = results["srjf"]
    # Calibration beats FCFS on mean latency and never loses on hit rate.
    assert calibrated.mean_latency < fcfs.mean_latency
    assert calibrated.cache_hit_rate >= fcfs.cache_hit_rate
    # Calibration also beats (or matches) arrival-time SRJF.
    assert calibrated.mean_latency <= plain.mean_latency * 1.01
    assert calibrated.cache_hit_rate >= plain.cache_hit_rate
