"""Figure 6 — offered QPS vs mean latency, per workload and hardware setup.

For every hardware setup and both workloads, every engine is swept over a grid
of offered loads anchored at PrefillOnly's burst throughput (the paper's
{1/4x ... 4x} grid).  The reproduced series is printed per subplot; the
assertions capture the figure's qualitative claims: PrefillOnly has the lowest
mean latency at the highest offered load, and engines whose Table-2 MIL is too
small for the workload are absent (empty series), exactly like the missing
curves in the paper.
"""

from __future__ import annotations

from conftest import compute_sweep_grid, show

#: At the top offered load, PrefillOnly's mean latency must be within this
#: factor of the best engine (it is normally *the* best).
TOLERANCE = 1.05


def test_fig6_qps_vs_mean_latency(benchmark):
    grid = benchmark.pedantic(compute_sweep_grid, rounds=1, iterations=1)
    benchmark.extra_info["subplots"] = len(grid)

    for (setup_name, workload_name), payload in grid.items():
        rows = []
        for engine, points in payload["results"].items():
            for point in points:
                rows.append({
                    "engine": engine,
                    "qps": round(point.qps, 3),
                    "mean_latency_s": round(point.mean_latency, 3),
                })
            if not points:
                rows.append({"engine": engine, "qps": "-", "mean_latency_s": "infeasible"})
        show(f"Figure 6 — {workload_name} on {setup_name}: QPS vs mean latency", rows)

    for (setup_name, workload_name), payload in grid.items():
        results = payload["results"]
        top_qps_latency = {
            engine: points[-1].mean_latency
            for engine, points in results.items() if points
        }
        assert "prefillonly" in top_qps_latency
        best = min(top_qps_latency.values())
        assert top_qps_latency["prefillonly"] <= best * TOLERANCE, (
            f"PrefillOnly is not the best engine at the top offered load for "
            f"{workload_name} on {setup_name}: {top_qps_latency}"
        )
        # Latency grows (weakly) with offered load for PrefillOnly.
        prefill_points = results["prefillonly"]
        assert prefill_points[0].mean_latency <= prefill_points[-1].mean_latency * 1.001


def test_fig6_infeasible_engines_match_table2(benchmark):
    grid = benchmark.pedantic(compute_sweep_grid, rounds=1, iterations=1)
    for (setup_name, workload_name), payload in grid.items():
        results = payload["results"]
        # The credit-verification workload (40k-60k tokens) exceeds the
        # PagedAttention baseline's maximum input length on every setup.
        if workload_name == "credit-verification":
            assert results["paged-attention"] == []
        # PrefillOnly and the parallelisation baselines serve both workloads.
        assert results["prefillonly"] != []
        assert results["tensor-parallel"] != []
        assert results["pipeline-parallel"] != []
