"""Resilience policies versus naive retry under chaos — the policy payoff.

The quantitative case for the resilience layer (the acceptance criterion of
``repro.resilience``): on a fleet with a flaky replica — repeated slow-node
windows plus a mid-run crash — the naive baseline keeps routing work onto
the sick node and re-submits crash victims immediately, so stragglers pile
up in the tail.  The policy arm runs the same fleet, workload, and fault
schedule with circuit breakers (slow completions count as failures, so the
router steers around the sick replica), hedged requests (stragglers get a
second chance on a healthy replica, first completion wins), and seeded
backoff retries.

Both arms see the *same* arrivals and the *same* chaos.  The benchmark
asserts the policy arm beats the baseline on SLO goodput (completions within
the latency SLO) and on P99 latency, while hedge waste — tokens burnt on
duplicate copies that lost the race — stays a bounded fraction of the
useful work.
"""

from __future__ import annotations

from conftest import PAPER_SCALE, show

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.faults import fault_schedule_from_dict
from repro.hardware.cluster import get_hardware_setup
from repro.resilience import resilience_from_dict
from repro.simulation.arrival import MMPPArrivalProcess
from repro.simulation.metrics import percentile
from repro.simulation.routing import make_router
from repro.simulation.simulator import simulate_fleet
from repro.workloads.registry import get_workload

NUM_REPLICAS = 3
SLO_S = 6.0                    # per-request latency SLO the goodput counts
HEDGE_WASTE_CAP = 0.15         # hedge losers may burn <= 15% of useful tokens

#: The paper-scale run offers ~2.4x the requests over a proportionally longer
#: window, so the sick replica stays sick for the whole run (two extra slow
#: windows, a second crash) and the hedge delay tightens to match the
#: higher congestion.
if PAPER_SCALE:
    NUM_USERS, POSTS_PER_USER = 12, 16
    HEDGE_DELAY_S = 4.0
    EXTRA_EVENTS = [
        {"kind": "slow", "replica": 0, "at": 38.0, "duration": 14.0,
         "multiplier": 6.0},
        {"kind": "slow", "replica": 0, "at": 56.0, "duration": 14.0,
         "multiplier": 6.0},
        {"kind": "crash", "replica": 1, "at": 45.0, "recover_at": 48.0},
    ]
else:
    NUM_USERS, POSTS_PER_USER = 8, 10
    HEDGE_DELAY_S = 5.0
    EXTRA_EVENTS = []

#: One sick replica (repeated slow windows) plus clean crash/repairs:
#: exercises breakers, hedges, and retries in a single schedule.
FAULTS = {
    "events": [
        {"kind": "slow", "replica": 0, "at": 2.0, "duration": 14.0,
         "multiplier": 6.0},
        {"kind": "slow", "replica": 0, "at": 20.0, "duration": 14.0,
         "multiplier": 6.0},
        {"kind": "crash", "replica": 1, "at": 10.0, "recover_at": 13.0},
        *EXTRA_EVENTS,
    ],
}

POLICIES = {
    "seed": 17,
    "retry": {"max_attempts": 3, "backoff_base_s": 0.2,
              "backoff_multiplier": 2.0, "jitter": 0.5},
    "hedge": {"delay_s": HEDGE_DELAY_S},
    "breaker": {"window": 12, "failure_ratio": 0.4, "min_samples": 3,
                "cooldown_s": 10.0, "half_open_probes": 2,
                "slow_latency_s": SLO_S},
}


def run_arm(policies: dict | None):
    trace = get_workload("post-recommendation", num_users=NUM_USERS,
                         posts_per_user=POSTS_PER_USER, seed=13)
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), get_hardware_setup("h100"),
        max_input_length=trace.max_request_tokens,
        num_replicas=NUM_REPLICAS,
        router=make_router("least-loaded", NUM_REPLICAS),
        policies=resilience_from_dict(policies) if policies else None,
        name="policies" if policies else "naive-retry",
    )
    arrivals = MMPPArrivalProcess(
        base_rate=2.0, burst_rate=8.0,
        mean_quiet_seconds=10.0, mean_burst_seconds=5.0, seed=5,
    )
    schedule = fault_schedule_from_dict(FAULTS)
    return simulate_fleet(fleet, arrivals.assign(list(trace.requests)),
                          faults=schedule)


def slo_goodput(result) -> float:
    """Fraction of the offered load completed within the latency SLO."""
    offered = result.num_finished + len(result.rejected)
    within = sum(1 for record in result.finished if record.latency <= SLO_S)
    return within / offered if offered else 0.0


def _compute():
    return run_arm(None), run_arm(POLICIES)


def test_resilience_policies_vs_naive_retry(benchmark):
    naive, guarded = benchmark.pedantic(_compute, rounds=1, iterations=1)

    naive_p99 = percentile([r.latency for r in naive.finished], 99)
    guarded_p99 = percentile([r.latency for r in guarded.finished], 99)
    naive_goodput = slo_goodput(naive)
    guarded_goodput = slo_goodput(guarded)
    policy = guarded.fleet.resilience.policy
    useful_tokens = sum(record.num_tokens for record in guarded.finished)
    waste_ratio = (policy["hedge_wasted_tokens"] / useful_tokens
                   if useful_tokens else 0.0)

    rows = [{
        "arm": "naive retry (PR-5 faults only)",
        "slo_goodput": round(naive_goodput, 3),
        "p99_latency_s": round(naive_p99, 3),
        "hedges": 0,
        "breaker_opens": 0,
        "hedge_waste_ratio": 0.0,
    }, {
        "arm": "resilience policies",
        "slo_goodput": round(guarded_goodput, 3),
        "p99_latency_s": round(guarded_p99, 3),
        "hedges": policy["num_hedges"],
        "breaker_opens": policy["num_breaker_opens"],
        "hedge_waste_ratio": round(waste_ratio, 3),
    }]
    show(f"Resilience policies vs naive retry — sick replica + crash, "
         f"SLO {SLO_S:g}s ({NUM_REPLICAS} replicas)", rows)
    benchmark.extra_info["resilience_policies"] = rows

    # The same chaos hit both arms: identical schedule, identical arrivals.
    num_crashes = sum(1 for e in FAULTS["events"] if e["kind"] == "crash")
    num_slow = sum(1 for e in FAULTS["events"] if e["kind"] == "slow")
    assert naive.fleet.resilience.num_crashes == num_crashes
    assert guarded.fleet.resilience.num_crashes == num_crashes
    assert naive.fleet.resilience.num_slow_events == num_slow
    offered = {len(result.finished) + len(result.rejected)
               for result in (naive, guarded)}
    assert len(offered) == 1

    # The policies actually engaged.
    assert policy["num_hedges"] > 0
    assert policy["num_breaker_opens"] > 0

    # Acceptance: better goodput, better tail, bounded hedge waste.
    assert guarded_goodput > naive_goodput, (
        f"SLO goodput {guarded_goodput:.3f} (policies) should beat "
        f"{naive_goodput:.3f} (naive retry)"
    )
    assert guarded_p99 < naive_p99, (
        f"P99 {guarded_p99:.3f}s (policies) should beat {naive_p99:.3f}s "
        f"(naive retry)"
    )
    assert waste_ratio <= HEDGE_WASTE_CAP, (
        f"hedge losers burnt {waste_ratio:.1%} of useful tokens "
        f"(cap {HEDGE_WASTE_CAP:.0%})"
    )
