"""Table 3 — hardware scenarios and the model served on each.

Regenerates the pairing of GPU clusters and LLMs used throughout the
evaluation, and checks the derived capacities the rest of the harness relies
on (weight footprints fit, FP8 models are paired with the larger GPUs).
"""

from __future__ import annotations

from conftest import show

from repro.hardware.cluster import get_hardware_setup, list_hardware_setups
from repro.model.config import get_model


def _build_rows():
    rows = []
    for name in list_hardware_setups():
        setup = get_hardware_setup(name)
        model = get_model(setup.model_name)
        rows.append({
            "scenario": setup.scenario,
            "gpus": f"2x {setup.cluster.gpu.display_name}",
            "interconnect": setup.cluster.interconnect.name,
            "model": model.display_name,
            "model_params_b": round(model.num_parameters / 1e9, 1),
            "weight_gib": round(model.weight_bytes / (1 << 30), 1),
            "gpu_memory_gib": round(setup.cluster.gpu.memory_bytes / (1 << 30), 1),
        })
    return rows


def test_table3_hardware_and_models(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    show("Table 3 — hardware setups and models", rows)
    benchmark.extra_info["table3"] = rows

    assert len(rows) == 4
    by_scenario = {row["scenario"]: row for row in rows}
    assert "Llama-3.1-8B" in by_scenario["Low-end GPU"]["model"]
    assert "Qwen-32B" in by_scenario["Middle-end GPU"]["model"]
    assert "70B" in by_scenario["High-end GPU"]["model"]
    assert by_scenario["High-end GPU w/ NVLink"]["interconnect"] == "nvlink"
    # Every model's weights fit on its scenario's GPU (the pairing is servable).
    for row in rows:
        assert row["weight_gib"] < row["gpu_memory_gib"]
