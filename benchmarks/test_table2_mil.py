"""Table 2 — maximum input length per engine per GPU.

Regenerates the MIL matrix: PagedAttention, Chunked Prefill, Pipeline Parallel,
Tensor Parallel, and PrefillOnly on the L4, A100, and H100 setups, plus the
WL1/WL2 feasibility marks.  Absolute token counts differ from the paper (our
memory model is analytical), but the ordering and the headline ratios — chunked
~2x paged, PrefillOnly several-fold over the non-parallel baselines without any
parallelisation — are asserted.
"""

from __future__ import annotations

from conftest import show

from repro.analysis.mil import mil_table
from repro.baselines.registry import all_engine_specs
from repro.hardware.cluster import get_hardware_setup
from repro.model.config import get_model

#: Paper Table 2 values (tokens), for side-by-side printing.
PAPER_TABLE2 = {
    ("paged-attention", "l4"): 24_000,
    ("paged-attention", "a100"): 11_000,
    ("paged-attention", "h100"): 15_000,
    ("chunked-prefill", "l4"): 46_000,
    ("chunked-prefill", "a100"): 17_000,
    ("chunked-prefill", "h100"): 25_000,
    ("pipeline-parallel", "l4"): 72_000,
    ("pipeline-parallel", "a100"): 38_000,
    ("pipeline-parallel", "h100"): 183_000,
    ("tensor-parallel", "l4"): 195_000,
    ("tensor-parallel", "a100"): 77_000,
    ("tensor-parallel", "h100"): 238_000,
    ("prefillonly", "l4"): 130_000,
    ("prefillonly", "a100"): 87_000,
    ("prefillonly", "h100"): 97_000,
}

WORKLOAD_MAX_TOKENS = {
    "WL1-post-recommendation": 17_500,
    "WL2-credit-verification": 61_000,
}


def _compute_table():
    specs = all_engine_specs()
    setups = [get_hardware_setup(name) for name in ("l4", "a100", "h100")]
    return mil_table(specs, setups, get_model, workload_max_tokens=WORKLOAD_MAX_TOKENS)


def test_table2_max_input_length(benchmark):
    rows = benchmark.pedantic(_compute_table, rounds=1, iterations=1)
    for row in rows:
        row["paper_mil"] = PAPER_TABLE2.get((row["engine"], row["hardware"]), "-")
    show("Table 2 — maximum input length (ours vs paper)", rows,
         columns=["engine", "hardware", "model", "max_input_length", "paper_mil",
                  "feasible[WL1-post-recommendation]", "feasible[WL2-credit-verification]"])
    benchmark.extra_info["table2"] = rows

    mil = {(row["engine"], row["hardware"]): row["max_input_length"] for row in rows}

    # Ordering within each non-parallel column: paged < chunked < prefillonly.
    for hardware in ("l4", "a100", "h100"):
        assert mil[("paged-attention", hardware)] < mil[("chunked-prefill", hardware)]
        assert mil[("chunked-prefill", hardware)] < mil[("prefillonly", hardware)]

    # §7: PrefillOnly expands MIL by up to ~5x over the non-parallel baselines.
    assert mil[("prefillonly", "l4")] > 4 * mil[("paged-attention", "l4")]
    assert mil[("prefillonly", "a100")] > 4 * mil[("paged-attention", "a100")]

    # Tensor parallelism has the largest MIL of the baselines (it shards everything).
    for hardware in ("l4", "a100", "h100"):
        assert mil[("tensor-parallel", hardware)] >= mil[("pipeline-parallel", hardware)]


def test_table2_workload_feasibility(benchmark):
    rows = benchmark.pedantic(_compute_table, rounds=1, iterations=1)
    feasibility = {
        (row["engine"], row["hardware"]): (
            row["feasible[WL1-post-recommendation]"],
            row["feasible[WL2-credit-verification]"],
        )
        for row in rows
    }
    # Paper Table 2: PagedAttention cannot run the credit workload anywhere and
    # cannot run post recommendation on the A100; PrefillOnly and the parallel
    # engines handle both workloads everywhere.
    assert feasibility[("paged-attention", "a100")] == (False, False)
    assert feasibility[("paged-attention", "l4")][1] is False
    for hardware in ("l4", "a100", "h100"):
        assert feasibility[("prefillonly", hardware)] == (True, True)
        assert feasibility[("tensor-parallel", hardware)] == (True, True)
        assert feasibility[("pipeline-parallel", hardware)] == (True, True)
