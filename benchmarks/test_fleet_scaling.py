"""Fleet scaling — aggregate throughput versus replica count.

Not a figure from the paper, but the fleet-scale extension of its deployment
rule: PrefillOnly launches one engine instance per GPU and routes by user id,
so adding replicas should scale aggregate throughput close to linearly while
each replica's prefix-cache hit rate stays at the single-instance level (every
user's shared prefix lives on exactly one replica, whatever the fleet size).

This benchmark records the throughput trajectory at N = 1, 2, 4 replicas so
future PRs can track fleet-layer performance, and asserts the two properties
the routing argument predicts.
"""

from __future__ import annotations

from conftest import post_recommendation_trace, show

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup
from repro.simulation.arrival import BurstArrivalProcess
from repro.simulation.simulator import simulate_fleet

REPLICA_COUNTS = (1, 2, 4)


def _run_at_scale(num_replicas: int):
    setup = get_hardware_setup("h100")
    trace = post_recommendation_trace(seed=5)
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=num_replicas,
        name=f"prefillonly-x{num_replicas}",
    )
    requests = BurstArrivalProcess(seed=0).assign(list(trace.requests))
    return simulate_fleet(fleet, requests)


def _compute():
    return {count: _run_at_scale(count) for count in REPLICA_COUNTS}


def test_fleet_scaling_throughput_vs_replicas(benchmark):
    results = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = []
    for count, result in results.items():
        hit_rates = [
            rate for name, rate in result.fleet.token_hit_rate_per_replica.items()
            if result.fleet.utilization_per_replica.get(name, 0) > 0
        ]
        rows.append({
            "replicas": count,
            "throughput_rps": round(result.summary.throughput_rps, 3),
            "speedup_vs_1": round(
                result.summary.throughput_rps / results[1].summary.throughput_rps, 2
            ),
            "mean_latency_s": round(result.summary.mean_latency, 3),
            "min_replica_token_hit": round(min(hit_rates), 3),
            "max_replica_token_hit": round(max(hit_rates), 3),
            "cache_hit_variance": round(result.fleet.cache_hit_variance, 5),
        })
    show("Fleet scaling — throughput vs replica count (user-id routing)", rows)
    benchmark.extra_info["fleet_scaling"] = rows

    single = results[1]
    quad = results[4]

    # Every run completes the whole trace (no sheds, no rejections).
    for result in results.values():
        assert result.num_rejected == 0
        assert result.num_finished == single.num_finished

    # More replicas → higher aggregate throughput, monotonically.
    throughputs = [results[count].summary.throughput_rps for count in REPLICA_COUNTS]
    assert throughputs == sorted(throughputs)
    assert quad.summary.throughput_rps > 1.5 * single.summary.throughput_rps

    # User-id routing keeps every replica's prefix cache as effective as the
    # single-instance cache: per-replica token hit rates within 5%.
    single_hit = single.summary.token_hit_rate
    for name, rate in quad.fleet.token_hit_rate_per_replica.items():
        if quad.fleet.utilization_per_replica.get(name, 0) > 0:
            assert abs(rate - single_hit) <= 0.05 * max(single_hit, 1e-9), (
                f"replica {name} hit rate {rate:.3f} deviates more than 5% "
                f"from the single-instance {single_hit:.3f}"
            )
