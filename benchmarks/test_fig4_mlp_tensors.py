"""Figure 4 — intermediate tensor sizes of the MLP module in Llama-3.1-8B.

Regenerates the per-token tensor shapes of the SwiGLU MLP and their ratio to
the one-layer KV cache (28,672 elements per token, 14x and 7x one-layer KV).
"""

from __future__ import annotations

from conftest import show

from repro.model.config import get_model
from repro.model.layers import mlp_tensor_report

TOKENS = 32_768


def test_fig4_mlp_intermediate_tensor_sizes(benchmark):
    model = get_model("llama-3.1-8b")
    report = benchmark.pedantic(lambda: mlp_tensor_report(model), rounds=1, iterations=1)
    rows = report.rows(num_tokens=TOKENS, bytes_per_element=model.activation_bytes_per_element)
    show(f"Figure 4 — MLP tensors for a {TOKENS}-token prefill (Llama-3.1-8B, bf16)", rows)
    benchmark.extra_info["fig4"] = rows

    by_name = {row["tensor"]: row for row in rows}
    assert by_name["input"]["per_token_elements"] == 4096
    assert by_name["intermediate_1 (gate+up)"]["per_token_elements"] == 28_672
    assert by_name["intermediate_2 (after SwiGLU)"]["per_token_elements"] == 14_336
    assert by_name["output"]["per_token_elements"] == 4096
    # Paper callouts: 14x and 7x larger than one layer of KV cache.
    assert by_name["intermediate_1 (gate+up)"]["vs_one_layer_kv"] == 14.0
    assert by_name["intermediate_2 (after SwiGLU)"]["vs_one_layer_kv"] == 7.0


def test_fig4_holds_for_all_registered_models(benchmark):
    """The observation generalises: MLP intermediates dwarf one-layer KV everywhere."""
    from repro.model.config import MODEL_REGISTRY

    def build():
        return {name: mlp_tensor_report(model) for name, model in MODEL_REGISTRY.items()}

    reports = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        {"model": name,
         "gate_up_vs_one_layer_kv": round(report.gate_up_vs_one_layer_kv, 1),
         "down_input_vs_one_layer_kv": round(report.down_input_vs_one_layer_kv, 1)}
        for name, report in reports.items()
    ]
    show("Figure 4 (generalised) — MLP intermediate vs one-layer KV across models", rows)
    for report in reports.values():
        assert report.gate_up_vs_one_layer_kv > 5.0
