"""Table 1 — the two evaluation datasets.

Regenerates the dataset summary the paper reports: number of users, request
length distribution, requests per user, and total token counts, for the post
recommendation and credit verification workloads.
"""

from __future__ import annotations

from conftest import PAPER_SCALE, show

from repro.workloads.registry import get_workload

#: Paper values (Table 1) for reference in the printed output.
PAPER_TABLE1 = {
    "post-recommendation": {
        "num_users": 20,
        "requests_per_user": 50,
        "profile_tokens": "11,000 - 17,000",
        "post_tokens": 150,
        "total_tokens": 14_000_000,
    },
    "credit-verification": {
        "num_users": 60,
        "requests_per_user": 1,
        "history_tokens": "40,000 - 60,000",
        "total_tokens": 3_000_000,
    },
}


def _generate_both():
    return {
        "post-recommendation": get_workload("post-recommendation"),
        "credit-verification": get_workload("credit-verification"),
    }


def test_table1_dataset_summaries(benchmark):
    """Generate both paper-scale datasets and reproduce Table 1."""
    traces = benchmark.pedantic(_generate_both, rounds=1, iterations=1)

    rows = []
    for name, trace in traces.items():
        summary = trace.summary()
        paper = PAPER_TABLE1[name]
        rows.append({
            "dataset": name,
            "users (paper)": paper["num_users"],
            "users (ours)": summary["num_users"],
            "requests": summary["num_requests"],
            "min tokens": summary["min_request_tokens"],
            "max tokens": summary["max_request_tokens"],
            "total tokens (paper)": paper["total_tokens"],
            "total tokens (ours)": summary["total_tokens"],
        })
    show("Table 1 — evaluation datasets (paper-scale generation)", rows)
    benchmark.extra_info["table1"] = rows

    post = traces["post-recommendation"]
    credit = traces["credit-verification"]
    assert post.num_users == 20 and len(post) == 1000
    assert credit.num_users == 60 and len(credit) == 60
    assert 13_000_000 < post.total_tokens < 16_000_000
    assert 2_400_000 < credit.total_tokens < 3_800_000


def test_table1_request_length_distributions(benchmark):
    """Request lengths fall in the paper's ranges for both datasets."""
    traces = benchmark.pedantic(_generate_both, rounds=1, iterations=1)
    post = traces["post-recommendation"]
    credit = traces["credit-verification"]
    for request in post:
        assert 11_000 <= request.metadata["profile_tokens"] <= 17_000
    for request in credit:
        assert 40_000 <= request.metadata["history_tokens"] <= 60_000
    rows = [
        {"dataset": post.name, "mean request tokens": round(post.mean_request_tokens),
         "scale": "paper" if PAPER_SCALE else "paper (Table 1 always full scale)"},
        {"dataset": credit.name, "mean request tokens": round(credit.mean_request_tokens),
         "scale": "paper"},
    ]
    show("Table 1 — request length distributions", rows)
