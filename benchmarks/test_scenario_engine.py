"""Scenario engine — events/sec of the old vs new event loop.

Not a figure from the paper: this benchmark tracks the simulator's own speed,
so future PRs can see event-loop regressions.  Two measurements:

* **Event-loop speedup** — a fleet configured so the per-event engine work is
  minimal (FCFS, prefix caching off, short requests), which isolates the cost
  the event loop itself adds per event.  The seed loop paid O(replicas) scans
  per event (``next_event_time`` over every replica, twice); the heap-based
  :class:`~repro.simulation.events.EventQueue` pays O(log replicas).  The gap
  therefore widens with the replica count — at 32 replicas the new loop
  clears 2x events/sec on this host.

* **Bursty 4-replica scenario** — the cookbook's bursty multi-tenant scenario
  shape at the paper's request sizes, where per-event engine work (prefix
  tree, scheduler) dominates; the fast paths (event queue + eviction heap +
  incremental calibration) still help, but the headline 2x belongs to the
  loop-bound regime above.

Both comparisons assert that old and new produce byte-identical summaries —
the speedup is free of behaviour change.
"""

from __future__ import annotations

import time
from dataclasses import replace

from conftest import PAPER_SCALE, show

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup
from repro.simulation.arrival import MMPPArrivalProcess
from repro.simulation.simulator import simulate_fleet
from repro.workloads.registry import get_workload

REPLICA_COUNTS = (8, 32) if not PAPER_SCALE else (8, 16, 32, 64)
#: Floor asserted at the largest replica count; actual is ~2x+ (see above).
MIN_LOOP_SPEEDUP = 1.5


def _cheap_engine_trace():
    """Short requests + FCFS + caching off: per-event engine work is minimal."""
    trace = get_workload(
        "post-recommendation",
        num_users=16, posts_per_user=40 if not PAPER_SCALE else 80,
        profile_mean_tokens=1200, profile_std_tokens=100,
        profile_min_tokens=1000, profile_max_tokens=1400,
        seed=0,
    )
    spec = replace(prefillonly_engine_spec(scheduling_policy="fcfs"),
                   enable_prefix_caching=False)
    requests = MMPPArrivalProcess(base_rate=30.0, burst_rate=150.0, seed=3).assign(
        list(trace.requests)
    )
    return spec, trace, requests


def _run_fleet(spec, trace, requests, *, num_replicas, fast):
    fleet = Fleet.for_setup(
        spec, get_hardware_setup("h100"),
        max_input_length=trace.max_request_tokens,
        num_replicas=num_replicas,
        use_event_queue=fast,
        engine_fast_paths=fast,
    )
    start = time.perf_counter()
    result = simulate_fleet(fleet, requests)
    return result, time.perf_counter() - start


def _events_per_second(spec, trace, requests, *, num_replicas, fast, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        result, elapsed = _run_fleet(spec, trace, requests,
                                     num_replicas=num_replicas, fast=fast)
        best = min(best, elapsed)
    return result, result.num_events / best


def test_event_loop_speedup_vs_replicas(benchmark):
    spec, trace, requests = _cheap_engine_trace()

    def _compute():
        rows = []
        for num_replicas in REPLICA_COUNTS:
            old, old_eps = _events_per_second(
                spec, trace, requests, num_replicas=num_replicas, fast=False)
            new, new_eps = _events_per_second(
                spec, trace, requests, num_replicas=num_replicas, fast=True)
            assert new.summary == old.summary
            assert new.num_events == old.num_events
            rows.append({
                "replicas": num_replicas,
                "events": new.num_events,
                "old_events_per_s": round(old_eps),
                "new_events_per_s": round(new_eps),
                "speedup": round(new_eps / old_eps, 2),
            })
        return rows

    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    show("Event loop — old (linear scans) vs new (event heap), loop-bound fleet", rows)
    benchmark.extra_info["event_loop_speedup"] = rows

    # The heap's advantage grows with the replica count ...
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)
    # ... and clears the floor at the largest fleet (actual ~2x on this host).
    assert speedups[-1] >= MIN_LOOP_SPEEDUP


def test_bursty_scenario_four_replicas(benchmark):
    """The cookbook bursty shape at paper-size requests, old vs new end to end."""
    trace = get_workload(
        "post-recommendation",
        num_users=20 if not PAPER_SCALE else 20,
        posts_per_user=25 if not PAPER_SCALE else 50,
        seed=0,
    )
    spec = prefillonly_engine_spec()
    requests = MMPPArrivalProcess(base_rate=10.0, burst_rate=120.0, seed=3).assign(
        list(trace.requests)
    )

    def _compute():
        old, old_eps = _events_per_second(spec, trace, requests,
                                          num_replicas=4, fast=False)
        new, new_eps = _events_per_second(spec, trace, requests,
                                          num_replicas=4, fast=True)
        assert new.summary == old.summary
        assert new.fleet.as_dict() == old.fleet.as_dict()
        return [{
            "replicas": 4,
            "events": new.num_events,
            "old_events_per_s": round(old_eps),
            "new_events_per_s": round(new_eps),
            "speedup": round(new_eps / old_eps, 2),
            "mean_latency_s": round(new.summary.mean_latency, 3),
        }]

    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    show("Bursty 4-replica fleet — old vs new fast paths (identical metrics)", rows)
    benchmark.extra_info["bursty_scenario"] = rows
    assert rows[0]["speedup"] >= 1.05
