"""Fault recovery — tiered warm restore versus cold restart after a crash.

The quantitative case for KV-aware recovery (the acceptance criterion of the
fault subsystem): on a shared-prefix fleet, a crashed replica's hot prefixes
survive in the fleet-shared cluster store, so a rebuilt replica that
warm-restores from L3 serves its first requests from the tiers instead of
recomputing every prefix cold.

Both arms run the *same* GPU KV capacity, replica count, router, arrival
process, and crash/recover schedule — the only difference is whether the
tiered hierarchy (and therefore warm restore) exists.  The benchmark asserts
the acceptance criterion: the tiered arm's warm-restore hit rate is > 0 and
its post-recovery P99 (over requests started after the rejoin) beats the
cold-restart arm's.
"""

from __future__ import annotations

from conftest import PAPER_SCALE, show

from repro.cluster import Fleet
from repro.core.engine import prefillonly_engine_spec
from repro.faults import fault_schedule_from_dict
from repro.hardware.cluster import get_hardware_setup
from repro.kvcache import TierConfig
from repro.simulation.arrival import MMPPArrivalProcess
from repro.simulation.metrics import percentile
from repro.simulation.routing import make_router
from repro.simulation.simulator import simulate_fleet
from repro.workloads.trace import Request, TokenSegment, TokenSequence

NUM_REPLICAS = 2
GPU_KV_TOKENS = 4096           # deliberately small: ~ one tenant prefix
TENANT_PREFIX_TOKENS = 3072
USER_PREFIX_TOKENS = 512
DOC_TOKENS = 1024
CRASH_AT = 20.0
RECOVER_AT = 24.0

if PAPER_SCALE:
    NUM_TENANTS, USERS_PER_TENANT, REQUESTS_PER_USER = 4, 8, 10
else:
    NUM_TENANTS, USERS_PER_TENANT, REQUESTS_PER_USER = 3, 4, 8


def shared_prefix_trace() -> list[Request]:
    """Multi-tenant requests: tenant prompt + user prefix + fresh document."""
    requests: list[Request] = []
    request_id = 0
    content_id = 0
    for tenant in range(NUM_TENANTS):
        tenant_segment = TokenSegment(
            content_id=1_000_000 + tenant, length=TENANT_PREFIX_TOKENS
        )
        for user in range(USERS_PER_TENANT):
            user_segment = TokenSegment(
                content_id=2_000_000 + tenant * 1000 + user,
                length=USER_PREFIX_TOKENS,
            )
            for _ in range(REQUESTS_PER_USER):
                content_id += 1
                document = TokenSegment(content_id=content_id, length=DOC_TOKENS)
                requests.append(Request(
                    request_id=request_id,
                    user_id=f"tenant{tenant}-user{user}",
                    sequence=TokenSequence([tenant_segment, user_segment, document]),
                    metadata={"tenant": f"tenant{tenant}"},
                ))
                request_id += 1
    return requests


def run_arm(tier_config: TierConfig | None):
    setup = get_hardware_setup("h100")
    spec = prefillonly_engine_spec().with_overrides(kv_capacity_tokens=GPU_KV_TOKENS)
    requests = shared_prefix_trace()
    fleet = Fleet.for_setup(
        spec, setup,
        max_input_length=max(request.num_tokens for request in requests),
        num_replicas=NUM_REPLICAS,
        # Least-loaded so the rebuilt replica actually receives traffic (the
        # sticky routers would leave every existing user on the survivor).
        router=make_router("least-loaded", NUM_REPLICAS),
        tier_config=tier_config,
        name="warm-restore" if tier_config is not None else "cold-restart",
    )
    schedule = fault_schedule_from_dict({
        "warm_restore_blocks": 4096,
        "events": [{"kind": "crash", "replica": 0, "at": CRASH_AT,
                    "recover_at": RECOVER_AT}],
    })
    arrivals = MMPPArrivalProcess(
        base_rate=2.0, burst_rate=8.0,
        mean_quiet_seconds=15.0, mean_burst_seconds=5.0, seed=3,
    )
    return simulate_fleet(fleet, arrivals.assign(requests), faults=schedule)


def post_recovery_p99(result) -> float:
    """P99 latency over the requests that started after the replica rejoined."""
    latencies = [
        record.latency for record in result.finished
        if record.start_time >= RECOVER_AT
    ]
    return percentile(latencies, 99)


def _compute():
    cold = run_arm(None)
    warm = run_arm(TierConfig(
        enabled=True, host_gib=1.0, cluster_gib=16.0,
        promotion="on-nth-hit", promotion_threshold=2,
    ))
    return cold, warm


def test_tiered_recovery_vs_cold_restart(benchmark):
    cold, warm = benchmark.pedantic(_compute, rounds=1, iterations=1)

    cold_p99 = post_recovery_p99(cold)
    warm_p99 = post_recovery_p99(warm)
    warm_res = warm.fleet.resilience
    rows = [{
        "arm": "cold restart",
        "mean_latency_s": round(cold.summary.mean_latency, 3),
        "post_recovery_p99_s": round(cold_p99, 3),
        "warm_restored_blocks": 0,
        "warm_restore_hit_rate": 0.0,
    }, {
        "arm": "tiered warm restore",
        "mean_latency_s": round(warm.summary.mean_latency, 3),
        "post_recovery_p99_s": round(warm_p99, 3),
        "warm_restored_blocks": warm_res.warm_restored_blocks,
        "warm_restore_hit_rate": round(warm_res.warm_restore_hit_rate, 3),
    }]
    show("Tiered recovery vs cold restart — crash at "
         f"{CRASH_AT:g}s, rejoin at {RECOVER_AT:g}s "
         f"({GPU_KV_TOKENS} GPU KV tokens, {NUM_REPLICAS} replicas)", rows)
    benchmark.extra_info["fault_recovery"] = rows

    # The same fault hit both arms identically.
    cold_res = cold.fleet.resilience
    assert cold_res.num_crashes == warm_res.num_crashes == 1
    assert cold_res.num_recoveries == warm_res.num_recoveries == 1
    assert cold.num_finished == warm.num_finished

    # Acceptance: warm restore happened, was hit, and recovery beat cold
    # restart on post-rejoin tail latency.
    assert warm_res.warm_restored_blocks > 0
    assert warm_res.warm_restore_hit_rate > 0.0
    assert cold_res.warm_restore_hit_rate == 0.0
    assert warm_p99 < cold_p99, (
        f"post-recovery P99 {warm_p99:.3f}s (warm) should beat "
        f"{cold_p99:.3f}s (cold)"
    )
