"""Ablation — hybrid-prefilling chunk size.

The chunk size of the position-wise virtual layers trades peak activation
memory (and therefore maximum input length) against per-chunk launch overhead.
This ablation sweeps the chunk size on the A100/Qwen-32B configuration and
reports both effects; the design choice called out in DESIGN.md is that a
few-thousand-token chunk captures almost all of the MIL benefit at negligible
latency cost.
"""

from __future__ import annotations

from conftest import show

from repro.analysis.mil import max_input_length
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.gpu import get_gpu
from repro.model.config import get_model
from repro.model.latency import LatencyModel
from repro.model.memory import PrefillMode

CHUNK_SIZES = (512, 2048, 8192, 32768)
PROBE_TOKENS = 60_000


def _run():
    model = get_model("qwen-32b-fp8")
    gpu = get_gpu("a100-40gb")
    latency = LatencyModel(model, gpu)
    rows = []
    for chunk in CHUNK_SIZES:
        spec = prefillonly_engine_spec(chunk_tokens=chunk)
        mil = max_input_length(spec, model, gpu)
        hybrid = latency.prefill_time(PROBE_TOKENS, mode=PrefillMode.HYBRID,
                                      chunk_tokens=chunk).total
        full = latency.prefill_time(PROBE_TOKENS, mode=PrefillMode.FULL).total
        rows.append({
            "chunk_tokens": chunk,
            "max_input_length": mil,
            "latency_overhead_vs_full_%": round((hybrid / full - 1.0) * 100, 3),
        })
    return rows


def test_ablation_hybrid_chunk_size(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show("Ablation — hybrid prefilling chunk size (Qwen-32B FP8, 1x A100)", rows)
    benchmark.extra_info["chunk_ablation"] = rows

    by_chunk = {row["chunk_tokens"]: row for row in rows}
    # Smaller chunks never reduce the maximum input length.
    mils = [by_chunk[c]["max_input_length"] for c in CHUNK_SIZES]
    assert mils == sorted(mils, reverse=True)
    # The latency overhead of hybrid prefilling stays tiny even at 512-token chunks.
    assert by_chunk[512]["latency_overhead_vs_full_%"] < 2.0
    # The default (2048) keeps at least ~90% of the best MIL.
    assert by_chunk[2048]["max_input_length"] >= 0.9 * mils[0]
