"""Ablation — what happens to the KV cache after a prefill-only request.

Compares three commit policies on the PrefillOnly engine:

* ``NONE``            — prefix caching disabled (every request recomputes);
* ``SUFFIX_DISCARD``  — the paper's default (keep what fits on the GPU, drop the rest);
* ``SUFFIX_OFFLOAD``  — the §9 extension (spill the overflow to host memory and
  stream it back over PCIe on a hit).

The post-recommendation workload is prefix-heavy, so caching policies should
clearly beat no caching; offloading can only help further (it trades PCIe
transfer time for recomputation of whatever did not fit on the GPU).
"""

from __future__ import annotations

from conftest import post_recommendation_trace, show

from repro.analysis.sweep import base_throughput, qps_sweep
from repro.core.engine import prefillonly_engine_spec
from repro.hardware.cluster import get_hardware_setup
from repro.kvcache.manager import CommitPolicy

OVERLOAD_FACTOR = 1.5


def _run():
    setup = get_hardware_setup("l4")
    trace = post_recommendation_trace()
    base = base_throughput(prefillonly_engine_spec(), setup, trace)
    qps = base * OVERLOAD_FACTOR

    variants = {
        "no prefix caching": prefillonly_engine_spec().with_overrides(
            enable_prefix_caching=False, commit_policy=CommitPolicy.NONE
        ),
        "suffix discarding (paper default)": prefillonly_engine_spec(),
        "suffix offloading to CPU (§9)": prefillonly_engine_spec(
            commit_policy=CommitPolicy.SUFFIX_OFFLOAD, cpu_offload_gib=64.0
        ),
    }
    results = {}
    for label, spec in variants.items():
        results[label] = qps_sweep(spec, setup, trace, [qps], seed=9)[0]
    return results


def test_ablation_kv_commit_policy(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {"policy": label,
         "mean_latency_s": round(point.mean_latency, 3),
         "p99_latency_s": round(point.p99_latency, 3),
         "throughput_rps": round(point.throughput_rps, 3),
         "cache_hit_rate": round(point.cache_hit_rate, 3)}
        for label, point in results.items()
    ]
    show("Ablation — KV cache commit policy (post recommendation, 2x L4)", rows)
    benchmark.extra_info["kv_policy_ablation"] = rows

    none = results["no prefix caching"]
    discard = results["suffix discarding (paper default)"]
    offload = results["suffix offloading to CPU (§9)"]

    # Prefix caching is the big win on this workload.
    assert discard.mean_latency < none.mean_latency / 2
    assert discard.cache_hit_rate > 0.5 and none.cache_hit_rate == 0.0
    # Offloading never hurts hit rate and keeps latency within a small factor
    # of (usually at or below) plain discarding.
    assert offload.cache_hit_rate >= discard.cache_hit_rate - 1e-9
    assert offload.mean_latency <= discard.mean_latency * 1.1
