#!/usr/bin/env python
"""Credit verification: very long inputs, one request per applicant.

A bank asks the LLM to verify an applicant's credit from roughly ten months of
credit history (40,000-60,000 tokens).  This is the paper's long-context
workload: there is no prefix reuse, so everything hinges on whether the engine
can fit the request at all and how fast it can push long prefills through the
GPU.

The example shows:

* the maximum input length of every engine on the A100 setup, and why the
  vanilla PagedAttention configuration simply cannot serve this workload
  (Table 2's ✗ cells);
* PrefillOnly and the parallelisation baselines serving the trace, with the
  latency / throughput trade-off the paper's Figure 6(e-h) reports.

Run with::

    python examples/credit_verification.py
"""

from __future__ import annotations

from repro import (
    PoissonArrivalProcess,
    ServingSystem,
    all_engine_specs,
    get_hardware_setup,
    get_workload,
    max_input_length,
    prefillonly_engine_spec,
    simulate,
)
from repro.analysis.reporting import format_table
from repro.analysis.sweep import base_throughput
from repro.errors import CapacityError
from repro.model.config import get_model


def capacity_overview(setup, trace) -> None:
    print("=" * 72)
    print("Part 1: which engines can serve 40k-60k token requests on 2x A100 at all?")
    print("=" * 72)
    model = get_model(setup.model_name)
    rows = []
    for spec in all_engine_specs():
        mil = max_input_length(spec, model, setup.cluster.gpu)
        rows.append({
            "engine": spec.name,
            "max_input_length": mil,
            "longest_request": trace.max_request_tokens,
            "can_serve_workload": mil >= trace.max_request_tokens,
        })
    print(format_table(rows, title=f"Maximum input length on {setup.cluster.gpu.display_name}"))
    print()


def serve_the_trace(setup, trace) -> None:
    print("=" * 72)
    print("Part 2: serving the credit-verification trace")
    print("=" * 72)
    reference = prefillonly_engine_spec()
    base = base_throughput(reference, setup, trace)
    offered_qps = base  # the paper's "1x" point
    print(f"PrefillOnly base throughput on this setup: {base:.3f} requests/s")
    print(f"Replaying the trace at an offered load of {offered_qps:.3f} requests/s\n")

    rows = []
    for spec in all_engine_specs():
        try:
            system = ServingSystem.for_setup(spec, setup,
                                             max_input_length=trace.max_request_tokens)
        except CapacityError as error:
            rows.append({"engine": spec.name, "mean_latency_s": "cannot serve",
                         "p99_latency_s": "-", "throughput_rps": "-",
                         "note": str(error)[:60] + "..."})
            continue
        requests = PoissonArrivalProcess(rate=offered_qps, seed=2).assign(list(trace.requests))
        summary = simulate(system, requests).summary
        rows.append({
            "engine": spec.name,
            "mean_latency_s": round(summary.mean_latency, 1),
            "p99_latency_s": round(summary.p99_latency, 1),
            "throughput_rps": round(summary.throughput_rps, 3),
            "note": "",
        })
    print(format_table(rows, title=f"{len(trace)} applicants, 2x {setup.cluster.gpu.display_name}"))
    print()
    print("PrefillOnly fits the long requests on a single GPU (hybrid prefilling + suffix "
          "discarding), so it avoids the all-reduce cost of tensor parallelism and the "
          "pipeline bubbles of pipeline parallelism.")


def main() -> None:
    setup = get_hardware_setup("a100")
    trace = get_workload("credit-verification", num_users=12, seed=4)
    capacity_overview(setup, trace)
    serve_the_trace(setup, trace)


if __name__ == "__main__":
    main()
