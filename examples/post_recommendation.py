#!/usr/bin/env python
"""Post recommendation: the paper's motivating application, end to end.

A social-media platform wants to pick the 3 most relevant posts (out of a
candidate set) for each user.  Each candidate becomes one prefill-only request:
a long shared prefix (system prompt + user profile + browsing history) followed
by the candidate post, with the LLM's P(Yes) used as the recommendation score.

The example has two parts:

* **scoring** — build real prompts with the synthetic tokenizer, score every
  candidate with the micro-transformer, and rank them (this is what a single
  application server does);
* **serving** — replay the paper's post-recommendation trace against
  PrefillOnly and against the PagedAttention baseline at the same offered load,
  to show where the engine's scheduling and prefix-cache behaviour pay off.

Run with::

    python examples/post_recommendation.py
"""

from __future__ import annotations

from repro import (
    MicroTransformer,
    PoissonArrivalProcess,
    ServingSystem,
    get_hardware_setup,
    get_workload,
    paged_attention_spec,
    prefillonly_engine_spec,
    simulate,
)
from repro.analysis.reporting import format_table
from repro.workloads.tokenizer import SyntheticTokenizer

USER_PROFILE = (
    "The user is a backend engineer who reads about operating systems, GPU "
    "scheduling, cache-aware data structures, and large-scale serving. Over the "
    "last month they clicked on articles about paged memory management, radix "
    "trees, request routing, and tail-latency debugging."
)

CANDIDATE_POSTS = {
    "kv-cache-deep-dive": "A deep dive into KV cache management for LLM serving engines.",
    "sourdough-tips": "Ten tips for baking a better sourdough loaf this weekend.",
    "srjf-scheduling": "Why shortest-remaining-job-first still matters for modern schedulers.",
    "celebrity-gossip": "You will not believe what happened at the award show last night.",
    "gpu-memory-spikes": "Understanding activation memory spikes in transformer inference.",
}

YES_TOKEN, NO_TOKEN = 7, 13


def build_prompt(post_text: str) -> str:
    return (
        "You are a recommendation assistant that uses the user's profile and history "
        "to decide whether to recommend an item.\n"
        f"Here is the user profile:\n{USER_PROFILE}\n"
        f"If we recommend the following article to this user, will the user be "
        f"interested in reading it? Please respond using Yes or No.\n{post_text}\n"
        "Your answer is:"
    )


def rank_candidates() -> None:
    print("=" * 72)
    print("Part 1: scoring candidate posts with prefill-only requests")
    print("=" * 72)
    tokenizer = SyntheticTokenizer(vocab_size=512)
    model = MicroTransformer(seed=3)

    rows = []
    for name, text in CANDIDATE_POSTS.items():
        token_ids = tokenizer.encode(build_prompt(text))
        result = model.prefill_hybrid(token_ids)
        score = result.constrained_probabilities([YES_TOKEN, NO_TOKEN])[YES_TOKEN]
        rows.append({"post": name, "prompt_tokens": len(token_ids),
                     "p_yes": round(score, 4)})
    rows.sort(key=lambda row: row["p_yes"], reverse=True)
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    print(format_table(rows, columns=["rank", "post", "prompt_tokens", "p_yes"],
                       title="Recommendation scores (top 3 would be shown to the user)"))
    print()


def serve_the_trace() -> None:
    print("=" * 72)
    print("Part 2: serving the post-recommendation trace (PrefillOnly vs PagedAttention)")
    print("=" * 72)
    setup = get_hardware_setup("l4")
    trace = get_workload("post-recommendation", num_users=6, posts_per_user=15, seed=1)
    offered_qps = 6.0

    rows = []
    for spec in (prefillonly_engine_spec(), paged_attention_spec()):
        system = ServingSystem.for_setup(spec, setup,
                                         max_input_length=trace.max_request_tokens)
        requests = PoissonArrivalProcess(rate=offered_qps, seed=5).assign(list(trace.requests))
        result = simulate(system, requests)
        summary = result.summary
        rows.append({
            "engine": spec.name,
            "offered_qps": offered_qps,
            "mean_latency_s": round(summary.mean_latency, 2),
            "p99_latency_s": round(summary.p99_latency, 2),
            "throughput_rps": round(summary.throughput_rps, 2),
            "cache_hit_rate": round(summary.cache_hit_rate, 2),
        })
    print(format_table(rows, title=f"2x NVIDIA L4, Llama-3.1-8B, {len(trace)} requests"))
    print()
    print("PrefillOnly's calibrated SRJF prioritises requests whose user profile is "
          "already cached, which keeps latency lower at the same offered load.")


def main() -> None:
    rank_candidates()
    serve_the_trace()


if __name__ == "__main__":
    main()
