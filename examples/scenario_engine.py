#!/usr/bin/env python
"""Scenario engine: multi-tenant mixes, bursty arrivals, record & replay.

This example drives the scenario engine from Python instead of the
``prefillonly scenario`` CLI:

1. build a two-tenant scenario in code (a bursty MMPP social tenant over a
   trickle of long credit checks) and run it on a 4-replica fleet;
2. record the generated request stream to a ``repro-trace/v1`` JSONL file and
   replay it, checking the replay reproduces the run exactly;
3. replay the *same* traffic against a bigger fleet to compare serving
   configurations on identical inputs.

Run with::

    python examples/scenario_engine.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_scenario_report
from repro.simulation.scenario import (
    ScenarioSpec,
    replay_scenario,
    run_scenario,
    scenario_from_dict,
)


def two_tenant_spec(replicas: int = 4) -> ScenarioSpec:
    """The cookbook's bursty mix, built from a plain dict."""
    return scenario_from_dict({
        "name": f"bursty-mix-x{replicas}",
        "engine": "prefillonly",
        "setup": "h100",
        "replicas": replicas,
        "router": "user-id",
        "seed": 7,
        "tenants": [
            {"name": "social", "workload": "post-recommendation",
             "workload_params": {"num_users": 6, "posts_per_user": 10},
             "slo_latency_s": 2.0,
             "arrival": "mmpp",
             "arrival_params": {"base_rate": 2.0, "burst_rate": 12.0,
                                "mean_quiet_seconds": 20.0,
                                "mean_burst_seconds": 5.0}},
            {"name": "bank", "workload": "credit-verification",
             "workload_params": {"num_users": 12},
             "weight": 0.5, "slo_latency_s": 8.0,
             "arrival": "poisson", "arrival_params": {"rate": 0.4}},
        ],
    })


def main() -> None:
    spec = two_tenant_spec()

    print("=" * 72)
    print("Step 1: run the bursty two-tenant scenario, recording the trace")
    print("=" * 72)
    trace_path = Path(tempfile.mkdtemp()) / "bursty-mix.jsonl"
    original = run_scenario(spec, record=trace_path)
    print(format_scenario_report(original))

    print()
    print("=" * 72)
    print("Step 2: replay the trace — metrics must match bit for bit")
    print("=" * 72)
    replayed = replay_scenario(spec, trace_path)
    assert replayed.result.summary == original.result.summary
    assert [r.as_dict() for r in replayed.tenants] == [r.as_dict() for r in original.tenants]
    print(f"replay of {trace_path.name} reproduced "
          f"{replayed.result.num_finished} completions exactly")

    print()
    print("=" * 72)
    print("Step 3: same traffic, 8 replicas — what would more hardware buy?")
    print("=" * 72)
    bigger = replay_scenario(two_tenant_spec(replicas=8), trace_path)
    for before, after in zip(original.tenants, bigger.tenants):
        print(f"{before.name:>8}: p99 {before.summary.p99_latency:6.2f}s -> "
              f"{after.summary.p99_latency:6.2f}s, "
              f"SLO attainment {before.slo_attainment} -> {after.slo_attainment}")


if __name__ == "__main__":
    main()
