#!/usr/bin/env python
"""Quickstart: serve a prefill-only workload with PrefillOnly.

This example walks through the three things a user of the library does most
often:

1. score a single prefill-only request (the "P(Yes) / P(No)" contract of the
   paper's applications) on the numerical micro-transformer;
2. stand up a PrefillOnly serving system on one of the paper's hardware setups;
3. replay a small post-recommendation trace against it and read the latency /
   throughput / cache-hit summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MicroTransformer,
    PoissonArrivalProcess,
    ServingSystem,
    get_hardware_setup,
    get_workload,
    prefillonly_engine_spec,
    simulate,
)
from repro.analysis.reporting import format_table
from repro.workloads.tokenizer import SyntheticTokenizer


def score_one_request() -> None:
    """Step 1: one prefill-only request, scored with constrained output."""
    print("=" * 72)
    print("Step 1: scoring a single prefill-only request")
    print("=" * 72)

    tokenizer = SyntheticTokenizer(vocab_size=512)
    prompt = (
        "You are a recommendation assistant. Here is the user profile: "
        "enjoys long-form systems papers, reads about GPU scheduling daily. "
        "If we recommend the article 'PagedAttention explained' to this user, "
        "will the user be interested in reading it? Please respond Yes or No. "
        "Your answer is:"
    )
    token_ids = tokenizer.encode(prompt)

    model = MicroTransformer(seed=0)
    # The application constrains the output to two tokens and uses P(yes) as a
    # score, exactly as described in §2.3 of the paper.
    yes_token, no_token = 7, 13
    result = model.prefill_hybrid(token_ids)
    scores = result.constrained_probabilities([yes_token, no_token])
    print(f"prompt tokens      : {len(token_ids)}")
    print(f"P(yes)             : {scores[yes_token]:.3f}")
    print(f"P(no)              : {scores[no_token]:.3f}")
    print(f"peak activation use: {result.peak_bytes / 1024:.1f} KiB (hybrid prefilling)")
    print()


def serve_a_trace() -> None:
    """Steps 2 and 3: build a serving system and replay a workload."""
    print("=" * 72)
    print("Step 2: serving a post-recommendation trace with PrefillOnly")
    print("=" * 72)

    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=6, posts_per_user=10)
    print(format_table([trace.summary()], title="Workload"))
    print()

    spec = prefillonly_engine_spec()
    system = ServingSystem.for_setup(spec, setup, max_input_length=trace.max_request_tokens)
    print(f"engine             : {spec.description}")
    print(f"instances          : {system.num_instances} (one per GPU, user-id routing)")
    print(f"KV budget / GPU    : {system.instances[0].profile.kv_budget_tokens:,} tokens")
    print()

    requests = PoissonArrivalProcess(rate=8.0, seed=0).assign(list(trace.requests))
    result = simulate(system, requests)
    print(format_table([result.summary.as_dict()], title="Simulation summary"))
    print()
    print(format_table(result.cache_stats, title="Per-instance prefix cache statistics"))


def main() -> None:
    score_one_request()
    serve_a_trace()


if __name__ == "__main__":
    main()
