#!/usr/bin/env python
"""Engine comparison: regenerate a Figure-6-style sweep from the public API.

Sweeps all five engines (PrefillOnly plus the four baselines) over a grid of
offered loads on one hardware setup and workload, and prints the QPS vs
mean/P99 latency series plus the scheduling ablation (FCFS vs SRJF vs SRJF with
continuous calibration) on the same workload.

Run with::

    python examples/engine_comparison.py [setup] [workload]

where ``setup`` is one of l4 / a100 / h100 / h100-nvlink (default h100) and
``workload`` is post-recommendation or credit-verification (default
post-recommendation).
"""

from __future__ import annotations

import sys

from repro import all_engine_specs, get_hardware_setup, get_workload, prefillonly_engine_spec
from repro.analysis.reporting import format_table
from repro.analysis.sweep import base_throughput, compare_engines, paper_qps_points, qps_sweep
from repro.core.engine import EngineSpec


def sweep_all_engines(setup, trace) -> None:
    print("=" * 72)
    print(f"Part 1: QPS sweep of every engine ({trace.name} on {setup.name})")
    print("=" * 72)
    base = base_throughput(prefillonly_engine_spec(), setup, trace)
    qps_values = paper_qps_points(base, (0.5, 1.0, 2.0, 4.0))
    results = compare_engines(all_engine_specs(), setup, trace, qps_values)

    rows = []
    for engine, points in results.items():
        if not points:
            rows.append({"engine": engine, "qps": "-", "mean_latency_s": "cannot serve",
                         "p99_latency_s": "-", "throughput_rps": "-"})
            continue
        for point in points:
            rows.append({
                "engine": engine,
                "qps": round(point.qps, 2),
                "mean_latency_s": round(point.mean_latency, 2),
                "p99_latency_s": round(point.p99_latency, 2),
                "throughput_rps": round(point.throughput_rps, 2),
            })
    print(format_table(rows))
    print()


def scheduling_ablation(setup, trace) -> None:
    print("=" * 72)
    print("Part 2: scheduling ablation on the PrefillOnly engine")
    print("=" * 72)
    base = base_throughput(prefillonly_engine_spec(), setup, trace)
    qps = base * 2.0  # overload, where scheduling order matters

    variants: list[tuple[str, EngineSpec]] = [
        ("fcfs", prefillonly_engine_spec(scheduling_policy="fcfs")),
        ("srjf (arrival-time JCT)", prefillonly_engine_spec(scheduling_policy="srjf")),
        ("srjf + continuous calibration", prefillonly_engine_spec()),
    ]
    rows = []
    for label, spec in variants:
        point = qps_sweep(spec, setup, trace, [qps])[0]
        rows.append({
            "scheduler": label,
            "offered_qps": round(qps, 2),
            "mean_latency_s": round(point.mean_latency, 2),
            "p99_latency_s": round(point.p99_latency, 2),
            "cache_hit_rate": round(point.cache_hit_rate, 2),
        })
    print(format_table(rows, title="Hybrid prefilling fixed; only the scheduler varies"))


def main() -> None:
    setup_name = sys.argv[1] if len(sys.argv) > 1 else "h100"
    workload_name = sys.argv[2] if len(sys.argv) > 2 else "post-recommendation"
    setup = get_hardware_setup(setup_name)
    if workload_name == "post-recommendation":
        trace = get_workload(workload_name, num_users=6, posts_per_user=12, seed=0)
    else:
        trace = get_workload(workload_name, num_users=10, seed=0)
    sweep_all_engines(setup, trace)
    scheduling_ablation(setup, trace)


if __name__ == "__main__":
    main()
