#!/usr/bin/env python
"""Serving frontend: handle OpenAI-style prefill-only completion requests.

The paper's engine exposes an OpenAI-compatible HTTP endpoint; applications
send a prompt, a list of acceptable output tokens (e.g. Yes/No), and a user id,
and receive the constrained-output probabilities back.  This example drives the
in-process frontend exactly the way an HTTP handler would: JSON-style payloads
in, JSON-style bodies out — including the prefix-cache accounting that shows up
when one user sends many requests sharing a long profile prefix.

Run with::

    python examples/api_frontend.py
"""

from __future__ import annotations

import json

from repro import PrefillOnlyFrontend
from repro.analysis.reporting import format_table

USER_PROFILE = (
    "User profile: a site reliability engineer who reads about schedulers, "
    "GPU memory management, caching, and latency debugging. "
) * 20  # a long shared prefix, as in the post-recommendation workload

POSTS = [
    "An illustrated guide to paged KV cache allocators.",
    "Five easy weeknight pasta recipes.",
    "How continuous calibration keeps job-completion-time estimates fresh.",
    "Celebrity skincare routines ranked.",
]


def main() -> None:
    frontend = PrefillOnlyFrontend()

    print("One raw OpenAI-style exchange:")
    payload = {
        "prompt": USER_PROFILE + f"Should we recommend: {POSTS[0]} Answer:",
        "allowed_outputs": ["Yes", "No"],
        "user": "user-42",
        "max_tokens": 1,
    }
    body = frontend.handle_completion(payload)
    print(json.dumps(body, indent=2)[:600])
    print()

    rows = []
    for index, post in enumerate(POSTS):
        body = frontend.handle_completion({
            "prompt": USER_PROFILE + f"Should we recommend: {post} Answer:",
            "allowed_outputs": ["Yes", "No"],
            "user": "user-42",
        })
        top = body["choices"][0]["logprobs"]["top_logprobs"][0]
        rows.append({
            "request": index,
            "post": post[:44],
            "p_yes": round(top["Yes"], 3),
            "decision": body["choices"][0]["text"],
            "prompt_tokens": body["usage"]["prompt_tokens"],
            "cached_prompt_tokens": body["prefillonly"]["cached_prompt_tokens"],
        })
    print(format_table(rows, title="Four requests from the same user (prefix reuse visible)"))
    print()
    print("Note how requests after the first report a large cached_prompt_tokens value: the "
          "user's shared profile prefix is reused, which is exactly what PrefillOnly's "
          "calibrated scheduler exploits on the serving path.")


if __name__ == "__main__":
    main()
