#!/usr/bin/env python
"""Fleet simulation: multi-replica serving with routing, shedding, autoscaling.

This example scales the paper's deployment rule (one engine instance per GPU,
user-id routing) up to a fleet:

1. serve a trace with a fixed 4-replica fleet and read the fleet report;
2. protect the fleet from overload with queue-depth admission control;
3. let a reactive autoscaler grow and shrink the fleet with the load.

Run with::

    python examples/fleet_simulation.py
"""

from __future__ import annotations

from repro import (
    Fleet,
    PoissonArrivalProcess,
    QueueDepthAdmission,
    ReactiveAutoscaler,
    get_hardware_setup,
    get_workload,
    prefillonly_engine_spec,
    simulate_fleet,
)
from repro.analysis.reporting import format_fleet_report


def fixed_fleet() -> None:
    """Step 1: a fixed-size fleet of four replicas."""
    print("=" * 72)
    print("Step 1: four replicas, user-id routing")
    print("=" * 72)

    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=8, posts_per_user=10)
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=4,
        name="prefillonly-x4",
    )
    requests = PoissonArrivalProcess(rate=8.0).assign(list(trace.requests))
    result = simulate_fleet(fleet, requests)
    print(format_fleet_report(result))


def shedding_fleet() -> None:
    """Step 2: admission control sheds load the fleet cannot absorb."""
    print()
    print("=" * 72)
    print("Step 2: overload with queue-depth admission control")
    print("=" * 72)

    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=8, posts_per_user=10)
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=2,
        admission=QueueDepthAdmission(4),
        name="prefillonly-x2-shedding",
    )
    requests = PoissonArrivalProcess(rate=40.0).assign(list(trace.requests))
    result = simulate_fleet(fleet, requests)
    print(format_fleet_report(result))
    print(f"\nshed {result.num_shed} of {len(requests)} requests "
          "to keep the admitted requests' latency bounded")


def autoscaling_fleet() -> None:
    """Step 3: the autoscaler grows the fleet under load and drains it after."""
    print()
    print("=" * 72)
    print("Step 3: reactive autoscaling")
    print("=" * 72)

    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=8, posts_per_user=10)
    fleet = Fleet.for_setup(
        prefillonly_engine_spec(), setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=1,
        autoscaler=ReactiveAutoscaler(
            min_replicas=1, max_replicas=4,
            scale_up_rps_per_replica=2.0,
            window_seconds=5.0, cooldown_seconds=5.0,
        ),
        name="prefillonly-autoscaled",
    )
    requests = PoissonArrivalProcess(rate=6.0).assign(list(trace.requests))
    result = simulate_fleet(fleet, requests)
    print(format_fleet_report(result))


def main() -> None:
    fixed_fleet()
    shedding_fleet()
    autoscaling_fleet()


if __name__ == "__main__":
    main()
