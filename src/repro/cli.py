"""Command-line interface for the PrefillOnly reproduction.

Subcommands map to the main things a user wants to do without writing code:

* ``prefillonly list``      — show the registered models, GPUs, setups, engines;
* ``prefillonly mil``       — print the Table 2 maximum-input-length matrix;
* ``prefillonly sweep``     — run a QPS sweep of one engine on one setup;
* ``prefillonly compare``   — compare every engine at one offered QPS;
* ``prefillonly workload``  — print a workload's Table 1 summary;
* ``prefillonly fleet``     — simulate a multi-replica fleet (routing,
  admission control, autoscaling, optional ``--tiers`` tiered prefix cache,
  optional ``--faults`` chaos schedule) and print the fleet report;
* ``prefillonly scenario``  — the scenario engine: ``run`` / ``replay`` a
  config-file scenario (multi-tenant mixes, bursty/diurnal/flash-crowd/
  closed-loop arrivals, trace recording), run a whole ``suite`` directory of
  configs (optionally across CPU cores), or list the ``arrivals``.  The
  cookbook in ``docs/SCENARIOS.md`` has one worked example per knob;
* ``prefillonly perf``      — the perf-regression harness: time the pinned
  suite, cross-check memoized and parallel execution, and write
  ``BENCH_<label>.json`` (see ``docs/PERFORMANCE.md``);
* ``prefillonly obs``       — run a scenario with recording force-enabled and
  ``export`` its spans / Chrome trace / Prometheus snapshot, or print the
  ``summary`` / per-tenant ``slo`` report (see ``docs/OBSERVABILITY.md``).

The top-level ``--log-level`` flag turns on structured stderr logging; every
record carries the scenario seed and shard id.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.analysis.mil import mil_table
from repro.analysis.reporting import (
    format_alerts_report,
    format_critical_path_report,
    format_fleet_report,
    format_run_diff_report,
    format_scenario_report,
    format_table,
)
from repro.analysis.sweep import compare_engines, paper_qps_points, base_throughput, qps_sweep
from repro.baselines.registry import ENGINE_ORDER, all_engine_specs, get_engine_spec
from repro.cluster import Fleet, QueueDepthAdmission, ReactiveAutoscaler
from repro.errors import FaultScheduleError, ObsError, ReproError, ResilienceError
from repro.faults import fault_schedule_from_dict
from repro.resilience import resilience_from_dict
from repro.hardware.cluster import get_hardware_setup, list_hardware_setups, HARDWARE_SETUPS
from repro.kvcache.tiers import PROMOTION_POLICIES, tier_config_from_dict
from repro.model.config import MODEL_REGISTRY, get_model
from repro.obs.analysis import (
    DEFAULT_ALERT_RULES,
    decompose_requests,
    diff_bench_phases,
    diff_runs,
    evaluate_alerts,
    top_exemplars,
)
from repro.obs.exporters import (
    export_alerts,
    export_chrome_trace,
    export_prometheus,
    export_spans,
    format_obs_summary,
    format_slo_report,
    parse_spans,
)
from repro.obs.logging import LOG_LEVELS, configure as configure_logging
from repro.obs.logging import set_context as set_log_context
from repro.obs.recorder import ObsConfig
from repro.hardware.gpu import GPU_REGISTRY
from repro.simulation.arrival import (
    ARRIVAL_FACTORIES,
    BurstArrivalProcess,
    DiurnalArrivalProcess,
    PoissonArrivalProcess,
)
from repro.simulation.routing import ROUTER_FACTORIES, make_router
from repro.simulation.scenario import (
    load_scenario,
    replay_scenario,
    run_scenario,
    run_scenario_suite,
)
from repro.simulation.simulator import simulate_fleet
from repro.workloads.registry import get_workload, list_workloads


def _cmd_list(_args: argparse.Namespace) -> int:
    print(format_table([m.describe() for m in MODEL_REGISTRY.values()], title="Models"))
    print()
    print(format_table([g.describe() for g in GPU_REGISTRY.values()], title="GPUs"))
    print()
    print(format_table([s.describe() for s in HARDWARE_SETUPS.values()], title="Hardware setups"))
    print()
    print(format_table(
        [{"engine": spec.name, "description": spec.description} for spec in all_engine_specs()],
        title="Engines",
    ))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    trace = get_workload(args.name)
    print(format_table([trace.summary()], title=f"Workload: {args.name}"))
    return 0


def _cmd_mil(args: argparse.Namespace) -> int:
    specs = [get_engine_spec(name) for name in (args.engines or ENGINE_ORDER)]
    setups = [get_hardware_setup(name) for name in (args.setups or list_hardware_setups())]
    workload_max = {
        "WL1-post-recommendation": 17_500,
        "WL2-credit-verification": 61_000,
    }
    rows = mil_table(specs, setups, get_model, workload_max_tokens=workload_max)
    print(format_table(rows, title="Maximum input length (Table 2)"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = get_engine_spec(args.engine)
    setup = get_hardware_setup(args.setup)
    trace = get_workload(args.workload, num_users=args.num_users)
    if args.qps:
        qps_values = args.qps
    else:
        base = base_throughput(spec, setup, trace)
        qps_values = paper_qps_points(base)
    points = qps_sweep(spec, setup, trace, qps_values)
    print(format_table(
        [point.as_dict() for point in points],
        title=f"{args.engine} on {args.setup} / {args.workload}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    setup = get_hardware_setup(args.setup)
    trace = get_workload(args.workload, num_users=args.num_users)
    specs = [get_engine_spec(name) for name in ENGINE_ORDER]
    reference = get_engine_spec("prefillonly")
    base = base_throughput(reference, setup, trace)
    qps_values = args.qps or [base]
    results = compare_engines(specs, setup, trace, qps_values)
    rows = [point.as_dict() for points in results.values() for point in points]
    for name, points in results.items():
        if not points:
            rows.append({"engine": name, "hardware": setup.name, "workload": trace.name,
                         "qps": "-", "mean_latency_s": "infeasible"})
    print(format_table(rows, title=f"Engine comparison on {args.setup} / {args.workload}"))
    return 0


def _load_fault_schedule(path: str, *, default_replicas: int | None):
    """Load a fault schedule from a JSON file for the ``fleet`` subcommand.

    Accepts either the bare ``"faults"`` block or a wrapping object with a
    ``"faults"`` key (so a scenario config's block can be reused verbatim).
    """
    file = Path(path)
    if not file.exists():
        raise FaultScheduleError(f"fault schedule file not found: {path}")
    try:
        config = json.loads(file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise FaultScheduleError(f"{path}: invalid JSON ({exc})") from None
    if isinstance(config, dict) and "faults" in config:
        config = config["faults"]
    return fault_schedule_from_dict(config, default_replicas=default_replicas)


def _load_resilience(path: str):
    """Load resilience policies from a JSON file for the ``fleet`` subcommand.

    Accepts either the bare ``"resilience"`` block or a wrapping object with
    a ``"resilience"`` key (so a scenario config's block can be reused
    verbatim).  An inert block (disabled, or no sub-policies) returns None —
    byte-identical to not passing the flag.
    """
    file = Path(path)
    if not file.exists():
        raise ResilienceError(f"resilience config file not found: {path}")
    try:
        config = json.loads(file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ResilienceError(f"{path}: invalid JSON ({exc})") from None
    if isinstance(config, dict) and "resilience" in config:
        config = config["resilience"]
    compiled = resilience_from_dict(config)
    return compiled if compiled.active else None


def _cmd_fleet(args: argparse.Namespace) -> int:
    spec = get_engine_spec(args.engine)
    setup = get_hardware_setup(args.setup)
    trace = get_workload(args.workload, num_users=args.num_users)

    admission = None
    if args.max_queue_depth is not None:
        admission = QueueDepthAdmission(args.max_queue_depth)
    autoscaler = None
    if args.autoscale_max is not None:
        autoscaler = ReactiveAutoscaler(
            min_replicas=args.autoscale_min,
            max_replicas=args.autoscale_max,
            scale_up_rps_per_replica=args.scale_up_rps,
            window_seconds=args.autoscale_window,
            cooldown_seconds=args.autoscale_cooldown,
        )
    tier_config = None
    if args.tiers:
        # Route the flags through the same spec-layer parser a scenario
        # config's "kv_tiers" block uses, so flag validation is identical.
        tier_config = tier_config_from_dict({
            "enabled": True,
            "tiers": {"host": {"capacity_gib": args.tier_host_gib},
                      "cluster": {"capacity_gib": args.tier_cluster_gib}},
            "promotion": args.tier_promotion,
            "prefetch": not args.no_tier_prefetch,
        })
    fleet = Fleet.for_setup(
        spec, setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=args.replicas,
        router=make_router(args.router, args.replicas or 1),
        admission=admission,
        autoscaler=autoscaler,
        name=f"{args.engine}x{args.replicas or 'auto'}",
        tier_config=tier_config,
        policies=(
            _load_resilience(args.resilience)
            if args.resilience is not None else None
        ),
    )
    faults = None
    if args.faults is not None:
        faults = _load_fault_schedule(args.faults, default_replicas=args.replicas)
    qps = args.qps if args.qps is not None else 8.0
    if args.arrival == "diurnal":
        arrivals = DiurnalArrivalProcess(mean_rate=qps, seed=args.seed)
    elif args.arrival == "poisson" or (args.arrival == "auto" and args.qps is not None):
        arrivals = PoissonArrivalProcess(rate=qps, seed=args.seed)
    else:
        arrivals = BurstArrivalProcess(seed=args.seed)
    requests = arrivals.assign(list(trace.requests))
    result = simulate_fleet(
        fleet, requests, faults=faults,
        shards=args.shards,
        lookahead=args.lookahead,
        shard_workers=args.shard_workers,
        shard_seed=args.seed,
    )
    if result.sharding is not None:
        info = result.sharding
        print(
            f"sharding: {info['shards']} shards, {info['mode']} mode "
            f"({info['executed']}), lookahead {info['lookahead_s']:.2e}s"
        )
    print(format_fleet_report(result))
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    spec = load_scenario(args.config)
    if args.no_resilience and spec.resilience is not None:
        spec = dataclasses.replace(spec, resilience=None)
    result = run_scenario(
        spec, record=args.record,
        use_event_queue=not args.legacy_loop,
        engine_fast_paths=not args.legacy_loop,
    )
    print(format_scenario_report(result))
    return 0


def _cmd_scenario_replay(args: argparse.Namespace) -> int:
    spec = load_scenario(args.config)
    result = replay_scenario(spec, args.trace)
    print(format_scenario_report(result))
    return 0


def _cmd_scenario_suite(args: argparse.Namespace) -> int:
    results = run_scenario_suite(
        args.dir,
        max_workers=args.workers,
        use_event_queue=not args.legacy_loop,
        engine_fast_paths=not args.legacy_loop,
    )
    rows = []
    for result in results:
        summary = result.result.summary
        rows.append({
            "scenario": result.spec.name,
            "tenants": len(result.spec.tenants),
            "finished": summary.num_requests,
            "rejected": summary.num_rejected,
            "mean_latency_s": round(summary.mean_latency, 3),
            "p99_latency_s": round(summary.p99_latency, 3),
            "throughput_rps": round(summary.throughput_rps, 3),
            "events": result.result.num_events,
        })
    print(format_table(rows, title=f"Scenario suite: {args.dir}"))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf.harness import format_harness_report, run_harness

    report = run_harness(
        args.label,
        scale=args.scale,
        workers=args.workers,
        out_dir=args.out,
        memo_comparison=not args.no_memo_comparison,
        parallel_check=not args.no_parallel_check,
        baseline=args.baseline,
    )
    print(format_harness_report(report))
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.spec.docgen import model_summary_rows, model_table
    from repro.spec.models import DOCUMENTED_MODELS

    if args.model is None:
        print(format_table(model_summary_rows(), title="Spec models (docs/SPEC.md)"))
        return 0
    by_name = {cls.__name__: cls for cls in DOCUMENTED_MODELS}
    cls = by_name[args.model]
    print(f"{cls.__name__} — {cls.__spec__.title}")
    print()
    print(model_table(cls))
    return 0


#: ``prefillonly obs export --format`` choices -> exporter functions.
_OBS_EXPORTERS = {
    "spans": export_spans,
    "chrome": export_chrome_trace,
    "prometheus": export_prometheus,
}


def _obs_data(args: argparse.Namespace):
    """Run the scenario with recording force-enabled and return its ObsData.

    The config's own ``"observability"`` block (if any) supplies the
    defaults; ``enabled`` is overridden to true so the ``obs`` subcommands
    work on any scenario config, and ``--sample-interval`` overrides the
    block's interval.  Forcing the recorder on never changes the simulation —
    the identity tests pin that.
    """
    spec = load_scenario(args.config)
    obs_config = spec.observability if spec.observability is not None else ObsConfig()
    updates: dict = {"enabled": True}
    if args.sample_interval is not None:
        updates["sample_interval_s"] = args.sample_interval
    spec = dataclasses.replace(
        spec, observability=dataclasses.replace(obs_config, **updates)
    )
    set_log_context(seed=spec.seed)
    return run_scenario(spec).result.obs


def _cmd_obs_export(args: argparse.Namespace) -> int:
    text = _OBS_EXPORTERS[args.format](_obs_data(args))
    if args.out is None or args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} export to {args.out}")
    return 0


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    print(format_obs_summary(_obs_data(args)))
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    print(format_slo_report(_obs_data(args)))
    return 0


def _read_spans_text(path: str) -> str:
    """Read a spans document from a file, ``-`` (stdin), or a ``.gz`` file."""
    try:
        if path == "-":
            return sys.stdin.read()
        if path.endswith(".gz"):
            import gzip

            with gzip.open(path, "rt", encoding="utf-8") as handle:
                return handle.read()
        return Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ObsError(f"cannot read spans file {path!r} ({exc})") from None


def _obs_input(args: argparse.Namespace):
    """The recording to analyse: a ``--spans`` file, or a fresh run."""
    if getattr(args, "spans", None):
        return parse_spans(_read_spans_text(args.spans))
    if args.config is None:
        raise ObsError("either --config (run the scenario) or --spans "
                       "(analyse a recording) is required")
    return _obs_data(args)


def _cmd_obs_critical_path(args: argparse.Namespace) -> int:
    report = decompose_requests(_obs_input(args))
    print(format_critical_path_report(report, top=args.top))
    return 0


def _cmd_obs_exemplars(args: argparse.Namespace) -> int:
    report = decompose_requests(_obs_input(args))
    rows = [
        {
            "request": exemplar.request_id,
            "tenant": exemplar.tenant or "-",
            "replica": exemplar.replica,
            "e2e_s": round(exemplar.e2e_s, 4),
            "retries": exemplar.num_retries,
            "hedges": exemplar.num_hedges,
            **{phase: round(value, 4)
               for phase, value in exemplar.phases.items()},
        }
        for exemplar in top_exemplars(report, args.top)
    ]
    if not rows:
        print("no finished requests to rank")
        return 0
    print(format_table(rows, title=f"Top {len(rows)} slowest exemplars"))
    return 0


def _load_diff_input(path: str):
    """A diff operand: a ``repro-spans/v1`` file or a ``BENCH_*.json`` report."""
    text = _read_spans_text(path)
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "cases" in document:
        return "bench", document
    return "spans", parse_spans(text)


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    kind_a, baseline = _load_diff_input(args.baseline)
    kind_b, candidate = _load_diff_input(args.candidate)
    if kind_a != kind_b:
        raise ObsError(
            f"cannot diff a {kind_a} input against a {kind_b} input; pass "
            f"two spans files or two BENCH_*.json reports"
        )
    if kind_a == "bench":
        deltas = diff_bench_phases(candidate, baseline)
        if not deltas:
            print("no shared profiled cases between the two bench reports")
            return 0
        rows = [
            {"case": case, "phase": phase, **stats}
            for case, entry in sorted(deltas.items())
            for phase, stats in entry["phases"].items()
        ]
        print(format_table(rows, title="Bench hot-loop phase shares "
                                       "(candidate - baseline)"))
        regressed = {
            case: entry["top_regressed"]
            for case, entry in sorted(deltas.items()) if entry["top_regressed"]
        }
        for case, phase in regressed.items():
            print(f"{case}: largest share gain in phase {phase!r}")
        if args.fail_on_delta and regressed:
            return 1
        return 0
    diff = diff_runs(baseline, candidate)
    print(format_run_diff_report(diff))
    if args.fail_on_delta and not diff.is_zero:
        return 1
    return 0


def _cmd_obs_alerts(args: argparse.Namespace) -> int:
    spec = load_scenario(args.config)
    slos = {
        tenant.name: tenant.slo_latency_s for tenant in spec.tenants
        if tenant.slo_latency_s is not None
    }
    rules = DEFAULT_ALERT_RULES
    if spec.observability is not None and spec.observability.alerts:
        rules = spec.observability.alerts
    interval = args.sample_interval
    if interval is None and spec.observability is not None:
        interval = spec.observability.sample_interval_s
    report = evaluate_alerts(_obs_input(args), rules, slos=slos,
                             interval_s=interval)
    print(format_alerts_report(report))
    if args.out is not None:
        Path(args.out).write_text(export_alerts(report), encoding="utf-8")
        print(f"wrote repro-alerts/v1 export to {args.out}")
    return 0


def _cmd_scenario_arrivals(_args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(ARRIVAL_FACTORIES):
        factory = ARRIVAL_FACTORIES[name]
        params = ", ".join(
            f.name for f in dataclasses.fields(factory) if f.name != "seed"
        )
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        rows.append({"arrival": name, "parameters": params, "description": doc})
    print(format_table(rows, title="Arrival processes"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prefillonly",
        description="PrefillOnly (SOSP 2025) reproduction on a simulated GPU substrate",
    )
    parser.add_argument("--log-level", default=None, choices=LOG_LEVELS,
                        help="enable structured stderr logging at this level "
                             "(records carry the scenario seed and shard id)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list models, GPUs, setups, engines")
    list_parser.set_defaults(func=_cmd_list)

    workload_parser = subparsers.add_parser("workload", help="summarise a workload (Table 1)")
    workload_parser.add_argument("name", choices=list_workloads())
    workload_parser.set_defaults(func=_cmd_workload)

    mil_parser = subparsers.add_parser("mil", help="maximum input length matrix (Table 2)")
    mil_parser.add_argument("--engines", nargs="*", choices=ENGINE_ORDER)
    mil_parser.add_argument("--setups", nargs="*", choices=list_hardware_setups())
    mil_parser.set_defaults(func=_cmd_mil)

    sweep_parser = subparsers.add_parser("sweep", help="QPS sweep of one engine")
    sweep_parser.add_argument("--engine", default="prefillonly", choices=ENGINE_ORDER)
    sweep_parser.add_argument("--setup", default="h100", choices=list_hardware_setups())
    sweep_parser.add_argument("--workload", default="post-recommendation", choices=list_workloads())
    sweep_parser.add_argument("--num-users", type=int, default=8)
    sweep_parser.add_argument("--qps", nargs="*", type=float)
    sweep_parser.set_defaults(func=_cmd_sweep)

    compare_parser = subparsers.add_parser("compare", help="compare every engine at one QPS")
    compare_parser.add_argument("--setup", default="h100", choices=list_hardware_setups())
    compare_parser.add_argument("--workload", default="post-recommendation",
                                choices=list_workloads())
    compare_parser.add_argument("--num-users", type=int, default=8)
    compare_parser.add_argument("--qps", nargs="*", type=float)
    compare_parser.set_defaults(func=_cmd_compare)

    fleet_parser = subparsers.add_parser(
        "fleet", help="simulate a multi-replica fleet with routing / admission / autoscaling"
    )
    fleet_parser.add_argument("--engine", default="prefillonly", choices=ENGINE_ORDER)
    fleet_parser.add_argument("--setup", default="h100", choices=list_hardware_setups())
    fleet_parser.add_argument("--workload", default="post-recommendation",
                              choices=list_workloads())
    fleet_parser.add_argument("--num-users", type=int, default=8)
    fleet_parser.add_argument("--replicas", type=int, default=None,
                              help="replica count (default: one per GPU of the setup)")
    fleet_parser.add_argument("--router", default="user-id",
                              choices=sorted(ROUTER_FACTORIES))
    fleet_parser.add_argument("--qps", type=float, default=None,
                              help="Poisson arrival rate (default: burst arrivals)")
    fleet_parser.add_argument("--arrival", default="auto",
                              choices=["auto", "burst", "poisson", "diurnal"],
                              help="arrival process (auto: poisson when --qps is "
                                   "given, else burst; diurnal uses --qps as the "
                                   "mean rate)")
    fleet_parser.add_argument("--max-queue-depth", type=int, default=None,
                              help="enable admission control at this per-replica depth")
    fleet_parser.add_argument("--autoscale-min", type=int, default=1)
    fleet_parser.add_argument("--autoscale-max", type=int, default=None,
                              help="enable autoscaling up to this replica count")
    fleet_parser.add_argument("--scale-up-rps", type=float, default=2.0,
                              help="per-replica arrival rate that triggers scale-up")
    fleet_parser.add_argument("--autoscale-window", type=float, default=30.0)
    fleet_parser.add_argument("--autoscale-cooldown", type=float, default=60.0)
    fleet_parser.add_argument("--tiers", action="store_true",
                              help="enable the tiered prefix cache "
                                   "(GPU -> host -> cluster; see docs/KV_TIERS.md)")
    fleet_parser.add_argument("--tier-host-gib", type=float, default=4.0,
                              help="host (L2) tier budget per replica, GiB")
    fleet_parser.add_argument("--tier-cluster-gib", type=float, default=16.0,
                              help="fleet-shared cluster (L3) tier budget, GiB")
    fleet_parser.add_argument("--tier-promotion", default="on-nth-hit",
                              choices=sorted(PROMOTION_POLICIES),
                              help="when a lower-tier hit is promoted into GPU memory")
    fleet_parser.add_argument("--no-tier-prefetch", action="store_true",
                              help="disable router-hint prefetch into the routed replica")
    fleet_parser.add_argument("--resilience", default=None, metavar="CONFIG",
                              help="JSON file with resilience policies "
                                   "(a \"resilience\" block; see "
                                   "docs/RESILIENCE.md)")
    fleet_parser.add_argument("--faults", default=None, metavar="SCHEDULE",
                              help="inject a chaos schedule from this JSON file "
                                   "(a \"faults\" block; see docs/FAULTS.md)")
    fleet_parser.add_argument("--seed", type=int, default=0)
    fleet_parser.add_argument("--shards", type=int, default=1,
                              help="partition replicas across this many shards "
                                   "(results are byte-identical on any count; "
                                   "see docs/SHARDING.md)")
    fleet_parser.add_argument("--shard-workers", type=int, default=None,
                              help="worker processes for decoupled sharded runs "
                                   "(default: one per shard up to the CPU count; "
                                   "1 keeps the shard engines in-process)")
    fleet_parser.add_argument("--lookahead", type=float, default=None,
                              help="conservative cross-shard lookahead window in "
                                   "simulated seconds (default: derived from the "
                                   "modelled interconnect latency)")
    fleet_parser.set_defaults(func=_cmd_fleet)

    scenario_parser = subparsers.add_parser(
        "scenario", help="run / replay config-file scenarios (see docs/SCENARIOS.md)"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)

    scenario_run = scenario_sub.add_parser(
        "run", help="run a scenario from a JSON config file"
    )
    scenario_run.add_argument("--config", required=True,
                              help="path to the scenario JSON config")
    scenario_run.add_argument("--record", default=None, metavar="TRACE",
                              help="record the request stream to this JSONL trace file")
    scenario_run.add_argument("--no-resilience", action="store_true",
                              help="ignore the config's \"resilience\" block "
                                   "(for policy-on/off comparisons)")
    scenario_run.add_argument("--legacy-loop", action="store_true",
                              help="use the pre-heap event loop and cache scans "
                                   "(identical results, for comparison)")
    scenario_run.set_defaults(func=_cmd_scenario_run)

    scenario_replay = scenario_sub.add_parser(
        "replay", help="replay a recorded trace through a scenario's fleet"
    )
    scenario_replay.add_argument("--config", required=True,
                                 help="path to the scenario JSON config")
    scenario_replay.add_argument("--trace", required=True,
                                 help="path to a recorded repro-trace/v1 JSONL file")
    scenario_replay.set_defaults(func=_cmd_scenario_replay)

    scenario_suite = scenario_sub.add_parser(
        "suite", help="run every scenario config in a directory"
    )
    scenario_suite.add_argument("--dir", required=True,
                                help="directory of scenario JSON configs")
    scenario_suite.add_argument("--workers", type=int, default=None,
                                help="fan scenarios across this many processes "
                                     "(default: serial; results are identical)")
    scenario_suite.add_argument("--legacy-loop", action="store_true",
                                help="use the pre-heap event loop and cache scans "
                                     "(identical results, for comparison)")
    scenario_suite.set_defaults(func=_cmd_scenario_suite)

    scenario_arrivals = scenario_sub.add_parser(
        "arrivals", help="list the registered arrival processes"
    )
    scenario_arrivals.set_defaults(func=_cmd_scenario_arrivals)

    perf_parser = subparsers.add_parser(
        "perf", help="run the perf-regression harness (see docs/PERFORMANCE.md)"
    )
    perf_parser.add_argument("--label", default="local",
                             help="bench label; output file is BENCH_<label>.json")
    perf_parser.add_argument("--scale", default="small",
                             choices=["tiny", "small", "paper"],
                             help="pinned-suite workload scale")
    perf_parser.add_argument("--workers", type=int, default=4,
                             help="worker processes for the parallel cross-check "
                                  "(clamped to the machine's cores)")
    perf_parser.add_argument("--out", default=".",
                             help="directory the BENCH file is written to")
    perf_parser.add_argument("--no-memo-comparison", action="store_true",
                             help="skip the memoization on/off measurement")
    perf_parser.add_argument("--no-parallel-check", action="store_true",
                             help="skip the parallel-vs-serial sweep cross-check")
    perf_parser.add_argument("--baseline", default=None, metavar="BENCH_JSON",
                             help="earlier BENCH_*.json to compute the "
                                  "phase_deltas section against")
    perf_parser.set_defaults(func=_cmd_perf)

    obs_parser = subparsers.add_parser(
        "obs", help="export / summarise a scenario run's spans & telemetry "
                    "(see docs/OBSERVABILITY.md)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    def _add_obs_common(sub: argparse.ArgumentParser, *,
                        config_required: bool = True) -> None:
        sub.add_argument("--config", required=config_required,
                         help="path to the scenario JSON config (recording is "
                              "force-enabled; the run itself is unchanged)")
        sub.add_argument("--sample-interval", type=float, default=None,
                         help="override the metric sample interval "
                              "(simulated seconds)")

    def _add_spans_input(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--spans", default=None, metavar="FILE",
                         help="analyse a recorded repro-spans/v1 file instead "
                              "of running the scenario ('-' reads stdin; "
                              ".gz files are decompressed)")

    obs_export = obs_sub.add_parser(
        "export", help="run the scenario and export its recording"
    )
    _add_obs_common(obs_export)
    obs_export.add_argument("--format", required=True,
                            choices=sorted(_OBS_EXPORTERS),
                            help="spans: repro-spans/v1 JSONL; chrome: "
                                 "trace-event JSON (Perfetto-loadable); "
                                 "prometheus: text exposition snapshot")
    obs_export.add_argument("--out", default=None, metavar="FILE",
                            help="output file (default: stdout)")
    obs_export.set_defaults(func=_cmd_obs_export)

    obs_summary = obs_sub.add_parser(
        "summary", help="print a human-readable overview of the recording"
    )
    _add_obs_common(obs_summary)
    obs_summary.set_defaults(func=_cmd_obs_summary)

    obs_slo = obs_sub.add_parser(
        "slo", help="print per-tenant SLO attainment from the recording"
    )
    _add_obs_common(obs_slo)
    obs_slo.set_defaults(func=_cmd_obs_slo)

    obs_critical = obs_sub.add_parser(
        "critical-path",
        help="decompose every request's latency into phases (queue, retry "
             "wait, tier fetch, prefill, lost service) that sum to its "
             "end-to-end latency",
    )
    _add_obs_common(obs_critical, config_required=False)
    _add_spans_input(obs_critical)
    obs_critical.add_argument("--top", type=int, default=5,
                              help="slowest exemplar traces to include")
    obs_critical.set_defaults(func=_cmd_obs_critical_path)

    obs_exemplars = obs_sub.add_parser(
        "exemplars",
        help="print only the top-K slowest requests with their phase "
             "breakdowns",
    )
    _add_obs_common(obs_exemplars, config_required=False)
    _add_spans_input(obs_exemplars)
    obs_exemplars.add_argument("--top", type=int, default=5,
                               help="slowest exemplar traces to print")
    obs_exemplars.set_defaults(func=_cmd_obs_exemplars)

    obs_diff = obs_sub.add_parser(
        "diff",
        help="attribute the delta between two recordings (or two "
             "BENCH_*.json reports) to phases, replicas, and span kinds",
    )
    obs_diff.add_argument("baseline",
                          help="baseline repro-spans/v1 file or BENCH_*.json "
                               "('-' reads stdin; .gz files are decompressed)")
    obs_diff.add_argument("candidate",
                          help="candidate repro-spans/v1 file or BENCH_*.json")
    obs_diff.add_argument("--fail-on-delta", action="store_true",
                          help="exit 1 when any tracked quantity differs "
                               "(CI guard for same-seed reproducibility)")
    obs_diff.set_defaults(func=_cmd_obs_diff)

    obs_alerts = obs_sub.add_parser(
        "alerts",
        help="evaluate multi-window burn-rate alert rules against the "
             "tenants' latency SLOs, in simulated time",
    )
    _add_obs_common(obs_alerts)
    _add_spans_input(obs_alerts)
    obs_alerts.add_argument("--out", default=None, metavar="FILE",
                            help="also write the repro-alerts/v1 JSONL export")
    obs_alerts.set_defaults(func=_cmd_obs_alerts)

    from repro.spec.models import DOCUMENTED_MODELS

    spec_parser = subparsers.add_parser(
        "spec", help="show the config spec models and their field tables (docs/SPEC.md)"
    )
    spec_parser.add_argument("--model", default=None,
                             choices=[cls.__name__ for cls in DOCUMENTED_MODELS],
                             help="print one model's field table instead of the overview")
    spec_parser.set_defaults(func=_cmd_spec)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``prefillonly`` console script.

    Every config/validation failure in the library raises a
    :class:`~repro.errors.ReproError` (spec-layer errors carry the dotted
    JSON path of the offending value); the CLI turns them into a one-line
    stderr message and exit code 2 instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"prefillonly: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
