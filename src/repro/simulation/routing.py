"""Request routing across engine instances.

For PrefillOnly and the non-parallel baselines, the paper launches one engine
instance per GPU and performs *user-id-based routing*: all requests from the
same user go to the same instance (so the user's shared prefix stays in one
prefix cache), and users are assigned to instances round-robin.  A
least-loaded router is also provided for comparison / ablation.
"""

from __future__ import annotations

import abc

from repro.workloads.trace import Request


class Router(abc.ABC):
    """Chooses an instance index for every request."""

    def __init__(self, num_instances: int) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        self.num_instances = num_instances

    @abc.abstractmethod
    def route(self, request: Request, queue_depths: list[int]) -> int:
        """Return the index of the instance that should serve ``request``."""


class UserIdRouter(Router):
    """Round-robin assignment of *users* to instances (the paper's routing)."""

    def __init__(self, num_instances: int) -> None:
        super().__init__(num_instances)
        self._assignments: dict[str, int] = {}
        self._next_instance = 0

    def route(self, request: Request, queue_depths: list[int]) -> int:
        user = request.user_id
        if user not in self._assignments:
            self._assignments[user] = self._next_instance
            self._next_instance = (self._next_instance + 1) % self.num_instances
        return self._assignments[user]

    @property
    def assignments(self) -> dict[str, int]:
        """User-to-instance mapping decided so far."""
        return dict(self._assignments)


class LeastLoadedRouter(Router):
    """Send every request to the instance with the shortest waiting queue."""

    def route(self, request: Request, queue_depths: list[int]) -> int:
        return min(range(self.num_instances), key=lambda index: queue_depths[index])
