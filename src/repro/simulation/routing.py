"""Request routing across engine instances.

For PrefillOnly and the non-parallel baselines, the paper launches one engine
instance per GPU and performs *user-id-based routing*: all requests from the
same user go to the same instance (so the user's shared prefix stays in one
prefix cache), and users are assigned to instances round-robin.  A
least-loaded router is also provided for comparison / ablation, and a
prefix-affinity router that consults the per-replica prefix trees directly is
provided for the fleet layer (:mod:`repro.cluster`).

Routers are sized for a fixed number of instances but can be resized by an
autoscaling fleet through :meth:`Router.resize`; routers that inspect instance
state additionally receive the live instance list through
:meth:`Router.observe_instances` whenever the replica set changes.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.workloads.trace import Request


class Router(abc.ABC):
    """Chooses an instance index for every request.

    Args:
        num_instances: Number of routable instances.  Kept current by the
            owner (a :class:`~repro.simulation.server.ServingSystem` never
            changes it; a :class:`~repro.cluster.Fleet` calls :meth:`resize`
            on every scale event).
    """

    #: Whether :meth:`route` reads ``queue_depths``.  Routers that ignore them
    #: (e.g. :class:`UserIdRouter`) set this False, letting the owning fleet
    #: skip the O(instances) depth collection on every submit.
    needs_queue_depths: bool = True

    #: Whether :meth:`route` reads live instance state captured through
    #: :meth:`observe_instances` (e.g. :class:`PrefixAffinityRouter` walking
    #: replica prefix trees).  Conservative default: True.  Routers whose
    #: decisions depend only on the request stream itself set this False —
    #: together with ``needs_queue_depths = False`` that makes routing a pure
    #: function of the arrival sequence, which is what lets
    #: :mod:`repro.simulation.sharded` pre-route arrivals and run shards in
    #: parallel worker processes.
    consults_instances: bool = True

    def __init__(self, num_instances: int) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        self.num_instances = num_instances

    @abc.abstractmethod
    def route(self, request: Request, queue_depths: list[int]) -> int:
        """Return the index of the instance that should serve ``request``.

        Args:
            request: The request to place.
            queue_depths: Current waiting-queue depth of every instance
                (``len(queue_depths) == num_instances``).
        """

    def resize(self, num_instances: int) -> None:
        """Adjust the router to a new instance count (fleet scale event).

        Subclasses that keep per-instance state (sticky assignments, bound
        instances) override this to drop state that points past the new count.
        """
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        self.num_instances = num_instances

    def observe_instances(self, instances: Sequence) -> None:
        """Hook called by a fleet when the replica set changes.

        ``instances`` are the live, routable engine instances in index order.
        The default implementation ignores them; routers that consult instance
        state (e.g. :class:`PrefixAffinityRouter`) keep a reference.
        """


class UserIdRouter(Router):
    """Round-robin assignment of *users* to instances (the paper's routing)."""

    needs_queue_depths = False
    consults_instances = False

    def __init__(self, num_instances: int) -> None:
        super().__init__(num_instances)
        self._assignments: dict[str, int] = {}
        self._next_instance = 0

    def route(self, request: Request, queue_depths: list[int]) -> int:
        """Send the request to its user's instance, assigning new users round-robin."""
        user = request.user_id
        if user not in self._assignments:
            self._assignments[user] = self._next_instance
            self._next_instance = (self._next_instance + 1) % self.num_instances
        return self._assignments[user]

    def resize(self, num_instances: int) -> None:
        """Keep in-range user assignments; users on removed instances reassign lazily."""
        super().resize(num_instances)
        self._assignments = {
            user: index for user, index in self._assignments.items()
            if index < num_instances
        }
        self._next_instance %= num_instances

    @property
    def assignments(self) -> dict[str, int]:
        """User-to-instance mapping decided so far."""
        return dict(self._assignments)


class LeastLoadedRouter(Router):
    """Send every request to the instance with the shortest waiting queue."""

    consults_instances = False

    def route(self, request: Request, queue_depths: list[int]) -> int:
        """Return the index with the smallest queue depth (lowest index on ties)."""
        return min(range(self.num_instances), key=lambda index: queue_depths[index])


class PrefixAffinityRouter(Router):
    """Route to the replica whose prefix tree already holds the request's prefix.

    For every routable instance the router asks that instance's KV-cache
    manager how many leading tokens of the request are currently cached (a
    read-only radix-tree walk that does not perturb LRU state), subtracts a
    queue-depth penalty so a hot cache cannot win against an overloaded
    replica, and picks the best score.  When no replica holds any of the
    prefix — the first request of a new user — it falls back to sticky
    round-robin user assignment, which seeds the prefix on one replica so
    later requests develop affinity.

    Args:
        num_instances: Number of routable instances.
        queue_penalty_tokens: Cached-token equivalent charged per queued
            request; higher values make the router behave more like
            :class:`LeastLoadedRouter`, ``0`` makes it follow caches blindly.
    """

    def __init__(self, num_instances: int, *, queue_penalty_tokens: float = 512.0) -> None:
        super().__init__(num_instances)
        if queue_penalty_tokens < 0:
            raise ValueError("queue_penalty_tokens must be non-negative")
        self.queue_penalty_tokens = queue_penalty_tokens
        self._instances: tuple = ()
        self._sticky: dict[str, int] = {}
        self._next_instance = 0

    def observe_instances(self, instances: Sequence) -> None:
        """Bind the live instance list (called by the fleet on scale events)."""
        self._instances = tuple(instances)

    def resize(self, num_instances: int) -> None:
        """Drop sticky assignments that point past the new instance count."""
        super().resize(num_instances)
        self._sticky = {
            user: index for user, index in self._sticky.items() if index < num_instances
        }
        self._next_instance %= num_instances

    def _sticky_route(self, user_id: str) -> int:
        index = self._sticky.get(user_id)
        if index is None:
            index = self._next_instance
            self._sticky[user_id] = index
            self._next_instance = (self._next_instance + 1) % self.num_instances
        return index

    def estimated_hits(self, request: Request) -> list[int]:
        """Per-instance estimate of the request's cached leading tokens."""
        hits: list[int] = []
        for instance in self._instances[: self.num_instances]:
            block_hashes = request.block_hashes(instance.spec.kv_block_size)
            hits.append(instance.kv.lookup(block_hashes))
        return hits

    def route(self, request: Request, queue_depths: list[int]) -> int:
        """Pick the instance with the best cache-affinity-minus-load score."""
        if not self._instances:
            # Never bound to a fleet (e.g. used standalone in a ServingSystem):
            # degrade gracefully to sticky user routing.
            return self._sticky_route(request.user_id)
        hits = self.estimated_hits(request)
        if not any(hits):
            index = self._sticky_route(request.user_id)
            return min(index, self.num_instances - 1)
        scores = [
            hit - self.queue_penalty_tokens * queue_depths[index]
            for index, hit in enumerate(hits)
        ]
        best = max(
            range(len(scores)),
            key=lambda index: (scores[index], -queue_depths[index], -index),
        )
        self._sticky[request.user_id] = best
        return best


#: Registry of router factories by CLI name.
ROUTER_FACTORIES = {
    "user-id": UserIdRouter,
    "least-loaded": LeastLoadedRouter,
    "prefix-affinity": PrefixAffinityRouter,
}


def make_router(name: str, num_instances: int) -> Router:
    """Construct a router by registry name (``user-id``, ``least-loaded``,
    ``prefix-affinity``)."""
    try:
        factory = ROUTER_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_FACTORIES))
        raise ValueError(f"unknown router {name!r}; known routers: {known}") from None
    return factory(num_instances)
