"""Latency / throughput / cache-hit summaries of simulation results.

The paper reports mean latency, P99 latency, request throughput, and prefix
cache hit behaviour.  :func:`summarize_finished` turns a list of
:class:`~repro.core.engine.FinishedRequest` records into exactly those numbers.
For fleet runs, :func:`summarize_fleet` adds the cluster-level view on top:
per-replica utilisation, cross-replica cache-hit variance, load shedding, and
scale events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import FinishedRequest


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics of one simulation run."""

    num_requests: int
    num_rejected: int
    mean_latency: float
    p50_latency: float
    p90_latency: float
    p99_latency: float
    max_latency: float
    mean_queueing_time: float
    mean_execution_time: float
    throughput_rps: float
    makespan: float
    cache_hit_rate: float
    token_hit_rate: float

    def as_dict(self) -> dict:
        """Plain-dict view for report tables."""
        return {
            "num_requests": self.num_requests,
            "num_rejected": self.num_rejected,
            "mean_latency_s": round(self.mean_latency, 3),
            "p50_latency_s": round(self.p50_latency, 3),
            "p90_latency_s": round(self.p90_latency, 3),
            "p99_latency_s": round(self.p99_latency, 3),
            "max_latency_s": round(self.max_latency, 3),
            "mean_queueing_s": round(self.mean_queueing_time, 3),
            "mean_execution_s": round(self.mean_execution_time, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "makespan_s": round(self.makespan, 3),
            "cache_hit_rate": round(self.cache_hit_rate, 3),
            "token_hit_rate": round(self.token_hit_rate, 3),
        }


def summarize_finished(finished: list[FinishedRequest],
                       rejected: list[FinishedRequest] | None = None) -> LatencySummary:
    """Summarise completion records into the paper's reporting metrics.

    Throughput is completed requests divided by the makespan (first arrival to
    last completion), matching how the paper derives requests-per-second from a
    trace replay.
    """
    rejected = rejected or []
    if not finished:
        return LatencySummary(
            num_requests=0,
            num_rejected=len(rejected),
            mean_latency=0.0,
            p50_latency=0.0,
            p90_latency=0.0,
            p99_latency=0.0,
            max_latency=0.0,
            mean_queueing_time=0.0,
            mean_execution_time=0.0,
            throughput_rps=0.0,
            makespan=0.0,
            cache_hit_rate=0.0,
            token_hit_rate=0.0,
        )
    latencies = [record.latency for record in finished]
    queueing = [record.queueing_time for record in finished]
    execution = [record.execution_time for record in finished]
    first_arrival = min(record.arrival_time for record in finished)
    last_finish = max(record.finish_time for record in finished)
    makespan = max(last_finish - first_arrival, 1e-12)
    total_tokens = sum(record.num_tokens for record in finished)
    hit_tokens = sum(record.cached_tokens for record in finished)
    return LatencySummary(
        num_requests=len(finished),
        num_rejected=len(rejected),
        mean_latency=float(np.mean(latencies)),
        p50_latency=percentile(latencies, 50),
        p90_latency=percentile(latencies, 90),
        p99_latency=percentile(latencies, 99),
        max_latency=float(np.max(latencies)),
        mean_queueing_time=float(np.mean(queueing)),
        mean_execution_time=float(np.mean(execution)),
        throughput_rps=len(finished) / makespan,
        makespan=makespan,
        cache_hit_rate=sum(1 for r in finished if r.had_cache_hit) / len(finished),
        token_hit_rate=hit_tokens / total_tokens if total_tokens else 0.0,
    )


@dataclass(frozen=True)
class TierSummary:
    """Per-tier hit and transfer accounting of one tiered run.

    Token counts classify every prefix token a request brought to execution:
    served from the GPU radix tree (free), streamed from the host tier
    (charged through the host link), streamed from the cluster-shared tier
    (charged through the cluster link), or recomputed (a miss everywhere).

    Attributes:
        tokens_total: All input tokens across all requests.
        tokens_hit_gpu: Tokens served from L1.
        tokens_hit_host: Tokens streamed from the host (L2) tier.
        tokens_hit_cluster: Tokens streamed from the cluster (L3) tier.
        promoted_blocks / demoted_blocks / prefetched_blocks / dropped_blocks:
            Block movement between tiers, summed over replicas.
        bytes_up / bytes_down: Transfer volume toward / away from the GPU.
        load_seconds: Transfer time charged to requests (fetch at execution).
        prefetch_seconds / demote_seconds: Background transfer time (not
            charged to any request; overlaps queueing / compute).
        cluster: ``ClusterStoreStats`` fields of the shared store (publishes,
            fetches, peer fetches, per-replica hits), or None without an L3.
    """

    tokens_total: int
    tokens_hit_gpu: int
    tokens_hit_host: int
    tokens_hit_cluster: int
    promoted_blocks: int
    demoted_blocks: int
    prefetched_blocks: int
    dropped_blocks: int
    bytes_up: int
    bytes_down: int
    load_seconds: float
    prefetch_seconds: float
    demote_seconds: float
    cluster: dict | None = None

    def _rate(self, tokens: int) -> float:
        return tokens / self.tokens_total if self.tokens_total else 0.0

    @property
    def gpu_hit_rate(self) -> float:
        return self._rate(self.tokens_hit_gpu)

    @property
    def host_hit_rate(self) -> float:
        return self._rate(self.tokens_hit_host)

    @property
    def cluster_hit_rate(self) -> float:
        return self._rate(self.tokens_hit_cluster)

    @property
    def tier_hit_rate(self) -> float:
        """Fraction of tokens served anywhere in the hierarchy."""
        return self._rate(
            self.tokens_hit_gpu + self.tokens_hit_host + self.tokens_hit_cluster
        )

    def as_dict(self) -> dict:
        """Scalar view for report tables."""
        return {
            "gpu_hit_rate": round(self.gpu_hit_rate, 3),
            "host_hit_rate": round(self.host_hit_rate, 3),
            "cluster_hit_rate": round(self.cluster_hit_rate, 3),
            "tier_hit_rate": round(self.tier_hit_rate, 3),
            "promoted_blocks": self.promoted_blocks,
            "demoted_blocks": self.demoted_blocks,
            "prefetched_blocks": self.prefetched_blocks,
            "dropped_blocks": self.dropped_blocks,
            "bytes_up": self.bytes_up,
            "bytes_down": self.bytes_down,
            "load_s": round(self.load_seconds, 4),
        }


def summarize_tiers(cache_stats: list, cluster_stats=None) -> TierSummary:
    """Aggregate per-replica tier counters into one :class:`TierSummary`.

    Args:
        cache_stats: One :class:`~repro.kvcache.manager.CacheStats` per
            replica (replicas without tier stats contribute only their token
            totals).
        cluster_stats: The shared store's
            :class:`~repro.kvcache.tiers.cluster_store.ClusterStoreStats`,
            or None when the fleet runs without an L3.
    """
    totals = {
        "promoted_blocks": 0, "demoted_blocks": 0, "prefetched_blocks": 0,
        "dropped_blocks": 0, "bytes_up": 0, "bytes_down": 0,
        "load_seconds": 0.0, "prefetch_seconds": 0.0, "demote_seconds": 0.0,
    }
    tokens_total = tokens_gpu = tokens_host = tokens_cluster = 0
    for stats in cache_stats:
        tokens_total += stats.tokens_total
        tokens_gpu += stats.tokens_hit
        tier = stats.tier_stats
        if tier is None:
            continue
        tokens_host += tier.get("tokens_hit_host", 0)
        tokens_cluster += tier.get("tokens_hit_cluster", 0)
        for key in totals:
            totals[key] += tier.get(key, 0)
    return TierSummary(
        tokens_total=tokens_total,
        tokens_hit_gpu=tokens_gpu,
        tokens_hit_host=tokens_host,
        tokens_hit_cluster=tokens_cluster,
        cluster=dict(cluster_stats.__dict__) if cluster_stats is not None else None,
        **totals,
    )


@dataclass(frozen=True)
class ResilienceSummary:
    """Fault / recovery accounting of one chaos run.

    Only produced when a fault schedule was actually injected, so summaries
    (and their report rows) of fault-free runs are unchanged.

    Attributes:
        num_faults: Fault events delivered and applied.
        num_faults_skipped: Delivered events that found nothing to act on
            (e.g. a crash targeting an already-crashed replica).
        num_crashes / num_recoveries: Applied replica kills and rebuilds.
        num_slow_events / num_brownouts / num_outages: Applied degradation
            windows (slow nodes, interconnect brownouts, L3 outages).
        mean_mttr_s: Mean crash-to-recover time over completed repairs
            (0 when no crash was ever repaired).
        num_retried: Requests evacuated from crashed replicas and re-routed.
        num_lost_in_flight: Requests whose partial forward pass died with a
            replica (a subset of the retried).
        lost_work_tokens: Tokens of in-flight compute discarded by crashes.
        lost_kv_tokens: Cached tokens (GPU radix tree + host store) dropped
            by crashes — only cluster-store-resident prefixes survive.
        num_unserved: Requests (arrivals or retries) that found zero active
            replicas and were dropped fleet-wide.
        warm_restored_blocks: Blocks staged from the cluster store into
            rebuilt replicas' host tiers on rejoin.
        warm_restore_hit_rate: Fraction of the rebuilt replicas' input tokens
            served from the host/cluster tiers instead of recomputed cold —
            the recovery value of the shared KV store.
        offered_rps / goodput_rps: Offered load vs completed throughput over
            the run's makespan.
        goodput_ratio: Completed / offered requests — SLO-agnostic
            availability under failure.
        fault_log: One dict row per delivered fault event, in time order.
        policy: Resilience-policy outcomes (deadline misses, hedge
            wins/waste, breaker transitions, degraded-time fraction) when a
            ``"resilience"`` block was active — ``None`` otherwise, keeping
            policy-free summaries (and their golden fingerprints) unchanged.
    """

    num_faults: int
    num_faults_skipped: int
    num_crashes: int
    num_recoveries: int
    num_slow_events: int
    num_brownouts: int
    num_outages: int
    mean_mttr_s: float
    num_retried: int
    num_lost_in_flight: int
    lost_work_tokens: int
    lost_kv_tokens: int
    num_unserved: int
    warm_restored_blocks: int
    warm_restore_hit_rate: float
    offered_rps: float
    goodput_rps: float
    goodput_ratio: float
    fault_log: tuple[dict, ...] = ()
    policy: dict | None = None

    def as_dict(self) -> dict:
        """Scalar view for report tables."""
        row = {
            "num_faults": self.num_faults,
            "num_crashes": self.num_crashes,
            "num_recoveries": self.num_recoveries,
            "mean_mttr_s": round(self.mean_mttr_s, 3),
            "num_retried": self.num_retried,
            "lost_work_tokens": self.lost_work_tokens,
            "lost_kv_tokens": self.lost_kv_tokens,
            "num_unserved": self.num_unserved,
            "warm_restored_blocks": self.warm_restored_blocks,
            "warm_restore_hit_rate": round(self.warm_restore_hit_rate, 3),
            "offered_rps": round(self.offered_rps, 3),
            "goodput_rps": round(self.goodput_rps, 3),
            "goodput_ratio": round(self.goodput_ratio, 3),
        }
        if self.policy is not None:
            row.update(self.policy)
        return row


def summarize_resilience(counters, *, fault_log: tuple[dict, ...] = (),
                         num_submitted: int = 0, num_finished: int = 0,
                         makespan: float = 0.0, warm_hit_tokens: int = 0,
                         warm_total_tokens: int = 0,
                         include_policy: bool = False) -> ResilienceSummary:
    """Freeze a fleet's fault counters into a :class:`ResilienceSummary`.

    Args:
        counters: The fleet's :class:`~repro.faults.ResilienceCounters`.
        fault_log: Delivered fault events, as dict rows in time order.
        num_submitted / num_finished: Offered and completed request counts.
        makespan: The run's makespan in seconds (0 yields zero rates — the
            all-crashed run that finishes nothing).
        warm_hit_tokens / warm_total_tokens: Tier-served and total input
            tokens on the replicas fault recovery rebuilt.
        include_policy: Freeze the resilience-*policy* outcome columns too
            (a run with an active ``"resilience"`` block); the default keeps
            policy-free summaries byte-identical to earlier builds.
    """
    policy = None
    if include_policy:
        policy = {
            "num_deadline_missed": counters.num_deadline_missed,
            "num_hedges": counters.num_hedges,
            "num_hedge_wins": counters.num_hedge_wins,
            "hedge_wasted_tokens": counters.hedge_wasted_tokens,
            "num_retry_exhausted": counters.num_retry_exhausted,
            "num_breaker_opens": counters.num_breaker_opens,
            "num_breaker_closes": counters.num_breaker_closes,
            "num_preemptions": counters.num_preemptions,
            "num_degrade_sheds": counters.num_degrade_sheds,
            "degraded_time_fraction": round(
                counters.degraded_seconds / makespan if makespan > 0 else 0.0, 4
            ),
        }
    return ResilienceSummary(
        num_faults=counters.num_faults_applied,
        num_faults_skipped=counters.num_faults_skipped,
        num_crashes=counters.num_crashes,
        num_recoveries=counters.num_recoveries,
        num_slow_events=counters.num_slow_events,
        num_brownouts=counters.num_brownouts,
        num_outages=counters.num_outages,
        mean_mttr_s=(
            float(np.mean(counters.mttr_samples)) if counters.mttr_samples else 0.0
        ),
        num_retried=counters.num_retried,
        num_lost_in_flight=counters.num_lost_in_flight,
        lost_work_tokens=counters.lost_work_tokens,
        lost_kv_tokens=counters.lost_kv_tokens,
        num_unserved=counters.num_unserved,
        warm_restored_blocks=counters.warm_restored_blocks,
        warm_restore_hit_rate=(
            warm_hit_tokens / warm_total_tokens if warm_total_tokens else 0.0
        ),
        offered_rps=num_submitted / makespan if makespan > 0 else 0.0,
        goodput_rps=num_finished / makespan if makespan > 0 else 0.0,
        goodput_ratio=num_finished / num_submitted if num_submitted else 0.0,
        fault_log=tuple(fault_log),
        policy=policy,
    )


@dataclass(frozen=True)
class FleetSummary:
    """Cluster-level statistics of one fleet simulation run.

    Attributes:
        num_replicas: Replicas receiving traffic when the run ended.
        peak_replicas: Largest routable replica count seen during the run.
        num_scale_ups / num_scale_downs: Applied autoscaler decisions.
        num_shed: Requests rejected by admission control.
        mean_utilization: Mean of per-replica busy-time utilisation.
        utilization_per_replica: Replica name -> utilisation in [0, 1].
        token_hit_rate_per_replica: Replica name -> prefix-cache token hit rate.
        cache_hit_variance: Population variance of the per-replica token hit
            rates (over replicas that served at least one request) — the
            paper's routing argument predicts this stays low under user-id
            routing because each user's prefix lives on exactly one replica.
        scale_events: ``ScaleEvent.as_dict()`` rows, in time order.
        offload: Aggregate CPU-offload-store counters (blocks stored / loaded
            / evicted across all replicas), or None when no replica ran an
            offload store — so default runs are unchanged.
        tiers: The run's :class:`TierSummary` when tiering was enabled,
            else None.
        resilience: The run's :class:`ResilienceSummary` when a fault
            schedule was injected, else None.
    """

    num_replicas: int
    peak_replicas: int
    num_scale_ups: int
    num_scale_downs: int
    num_shed: int
    mean_utilization: float
    utilization_per_replica: dict[str, float]
    token_hit_rate_per_replica: dict[str, float]
    cache_hit_variance: float
    scale_events: tuple[dict, ...] = ()
    offload: dict | None = None
    tiers: TierSummary | None = None
    resilience: ResilienceSummary | None = None

    def as_dict(self) -> dict:
        """Plain-dict view (scalar fields only) for report tables.

        Offload, tier, and resilience columns appear only when the run
        produced them, so reports for untouched configurations stay
        byte-identical.
        """
        row = {
            "num_replicas": self.num_replicas,
            "peak_replicas": self.peak_replicas,
            "num_scale_ups": self.num_scale_ups,
            "num_scale_downs": self.num_scale_downs,
            "num_shed": self.num_shed,
            "mean_utilization": round(self.mean_utilization, 3),
            "cache_hit_variance": round(self.cache_hit_variance, 5),
        }
        if self.offload is not None:
            row["offload_stored"] = self.offload["stored_blocks"]
            row["offload_loaded"] = self.offload["loaded_blocks"]
            row["offload_evicted"] = self.offload["evicted_blocks"]
        if self.tiers is not None:
            row["tier_hit_rate"] = round(self.tiers.tier_hit_rate, 3)
        if self.resilience is not None:
            row["num_crashes"] = self.resilience.num_crashes
            row["num_retried"] = self.resilience.num_retried
            row["goodput_ratio"] = round(self.resilience.goodput_ratio, 3)
        return row


def summarize_fleet(replica_reports: list[dict], *,
                    scale_events: tuple[dict, ...] = (),
                    num_scale_ups: int = 0, num_scale_downs: int = 0,
                    num_shed: int = 0, num_replicas: int = 0,
                    peak_replicas: int = 0,
                    tiers: TierSummary | None = None,
                    resilience: ResilienceSummary | None = None) -> FleetSummary:
    """Summarise per-replica report rows into a :class:`FleetSummary`.

    Args:
        replica_reports: Rows as produced by
            :meth:`repro.cluster.fleet.Fleet.replica_reports` (one per replica
            the fleet ever ran, including retired ones).  Rows carrying
            ``offload_stored`` / ``offload_loaded`` / ``offload_evicted``
            counters aggregate into the summary's ``offload`` view.
        scale_events: Scale-event dict rows in time order.
        num_scale_ups / num_scale_downs / num_shed: Fleet counters.
        num_replicas / peak_replicas: Final and peak routable replica counts.
        tiers: Optional tier accounting for the run.
        resilience: Optional fault/recovery accounting for the run.

    All aggregations are empty-safe: a run that finishes zero requests (an
    all-crashed or all-shed chaos run) summarises to clean zeros rather than
    raising on empty report lists.
    """
    utilization = {
        report["replica"]: float(report["utilization"]) for report in replica_reports
    }
    hit_rates = {
        report["replica"]: float(report["token_hit_rate"]) for report in replica_reports
    }
    serving_hit_rates = [
        float(report["token_hit_rate"])
        for report in replica_reports if report.get("finished", 0) > 0
    ]
    offload_rows = [r for r in replica_reports if "offload_stored" in r]
    offload = None
    if offload_rows:
        offload = {
            "stored_blocks": sum(r["offload_stored"] for r in offload_rows),
            "loaded_blocks": sum(r["offload_loaded"] for r in offload_rows),
            "evicted_blocks": sum(r["offload_evicted"] for r in offload_rows),
        }
    return FleetSummary(
        num_replicas=num_replicas,
        peak_replicas=peak_replicas,
        num_scale_ups=num_scale_ups,
        num_scale_downs=num_scale_downs,
        num_shed=num_shed,
        mean_utilization=(
            float(np.mean(list(utilization.values()))) if utilization else 0.0
        ),
        utilization_per_replica=utilization,
        token_hit_rate_per_replica=hit_rates,
        cache_hit_variance=(
            float(np.var(serving_hit_rates)) if serving_hit_rates else 0.0
        ),
        scale_events=tuple(scale_events),
        offload=offload,
        tiers=tiers,
        resilience=resilience,
    )


def latency_cdf(finished: list[FinishedRequest], *, num_points: int = 100) -> list[tuple[float, float]]:
    """Empirical CDF of request latency, as (latency, fraction ≤ latency) pairs.

    Used by the Figure 11 benchmark (latency CDF under different fairness λ).
    """
    if not finished:
        return []
    latencies = np.sort(np.asarray([record.latency for record in finished], dtype=np.float64))
    fractions = np.arange(1, len(latencies) + 1) / len(latencies)
    if len(latencies) <= num_points:
        return list(zip(latencies.tolist(), fractions.tolist()))
    indices = np.linspace(0, len(latencies) - 1, num_points).astype(int)
    return list(zip(latencies[indices].tolist(), fractions[indices].tolist()))
