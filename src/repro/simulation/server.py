"""A serving system: engine instances plus a router on top of one hardware setup.

The paper's deployment rule (§7.1, "Routing"): parallelisation-based engines
(TP / PP) occupy both GPUs of a setup with a single instance, while PrefillOnly
and the non-parallel baselines launch one instance per GPU and route requests
by user id.  :class:`ServingSystem` applies that rule automatically from the
engine spec and the cluster description.
"""

from __future__ import annotations

from repro.core.engine import EngineInstance, EngineSpec, FinishedRequest
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec, HardwareSetup
from repro.model.config import ModelConfig, get_model
from repro.simulation.routing import Router, UserIdRouter
from repro.workloads.trace import Request


class ServingSystem:
    """Router + one or more engine instances over a cluster.

    Args:
        spec: Engine flavour to deploy.
        model: Model to serve.
        cluster: GPUs available.
        max_input_length: MIL every instance is provisioned for (usually the
            workload's longest request).
        router: Routing policy; defaults to the paper's user-id router.
        engine_fast_paths: Build instances with the engine-level fast paths
            (heap-based prefix-cache eviction, incremental JCT-calibration
            lookups).  Results are identical; ``False`` restores the original
            scans for before/after benchmarks.
    """

    def __init__(self, spec: EngineSpec, model: ModelConfig, cluster: ClusterSpec, *,
                 max_input_length: int, router: Router | None = None,
                 engine_fast_paths: bool = True) -> None:
        if cluster.num_gpus % spec.gpus_per_instance != 0:
            raise ConfigurationError(
                f"engine {spec.name!r} needs {spec.gpus_per_instance} GPUs per instance, "
                f"which does not divide the cluster's {cluster.num_gpus} GPUs"
            )
        self.spec = spec
        self.model = model
        self.cluster = cluster
        num_instances = cluster.num_gpus // spec.gpus_per_instance
        self.instances: list[EngineInstance] = [
            EngineInstance(
                spec, model, cluster.gpu,
                interconnect=cluster.interconnect,
                max_input_length=max_input_length,
                name=f"{spec.name}-{index}",
                fast_paths=engine_fast_paths,
            )
            for index in range(num_instances)
        ]
        self.router: Router = router if router is not None else UserIdRouter(num_instances)

    @classmethod
    def for_setup(cls, spec: EngineSpec, setup: HardwareSetup, *,
                  max_input_length: int, router: Router | None = None,
                  engine_fast_paths: bool = True) -> "ServingSystem":
        """Build a serving system for one of the paper's hardware setups."""
        return cls(
            spec, get_model(setup.model_name), setup.cluster,
            max_input_length=max_input_length, router=router,
            engine_fast_paths=engine_fast_paths,
        )

    # ---------------------------------------------------------------- state

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def max_input_length(self) -> int:
        """MIL shared by every instance."""
        return self.instances[0].max_input_length

    def queue_depths(self) -> list[int]:
        return [instance.num_waiting for instance in self.instances]

    def is_idle(self) -> bool:
        return all(instance.is_idle() for instance in self.instances)

    # --------------------------------------------------------------- events

    def submit(self, request: Request, now: float) -> EngineInstance:
        """Route and submit one request; return the instance it landed on."""
        depths = self.queue_depths() if self.router.needs_queue_depths else []
        index = self.router.route(request, depths)
        instance = self.instances[index]
        instance.submit(request, now)
        return instance

    def next_event_time(self) -> float | None:
        """Earliest internal event across all instances."""
        times = [t for t in (instance.next_event_time() for instance in self.instances)
                 if t is not None]
        return min(times) if times else None

    def advance_to(self, now: float) -> list[FinishedRequest]:
        """Advance every instance to ``now``; return requests finished on the way."""
        finished: list[FinishedRequest] = []
        for instance in self.instances:
            finished.extend(instance.advance_to(now))
        return finished

    # -------------------------------------------------------------- results

    def finished_requests(self) -> list[FinishedRequest]:
        records: list[FinishedRequest] = []
        for instance in self.instances:
            records.extend(instance.finished_requests)
        return records

    def rejected_requests(self) -> list[FinishedRequest]:
        records: list[FinishedRequest] = []
        for instance in self.instances:
            records.extend(instance.rejected_requests)
        return records

    def cache_stats(self) -> list[dict]:
        """Per-instance prefix-cache statistics."""
        stats = []
        for instance in self.instances:
            entry = {"instance": instance.name}
            cache = instance.kv.stats()
            entry.update({
                "requests": cache.requests,
                "request_hit_rate": round(cache.request_hit_rate, 3),
                "token_hit_rate": round(cache.token_hit_rate, 3),
            })
            stats.append(entry)
        return stats
