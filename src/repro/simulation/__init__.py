"""Serving substrate: the discrete-event simulation of an online serving system.

The paper evaluates PrefillOnly as an online service: requests arrive as a
Poisson process, a router spreads users across engine instances, each instance
schedules and executes requests, and the evaluation reports latency percentiles
and throughput as functions of the offered queries per second.  This package
provides exactly those pieces:

* :mod:`repro.simulation.arrival`  — Poisson, burst, and uniform arrival
  processes;
* :mod:`repro.simulation.routing`  — user-id, least-loaded, and
  prefix-affinity routing policies;
* :mod:`repro.simulation.server`   — a serving system (router + instances);
* :mod:`repro.simulation.simulator` — the event loops (:func:`simulate` for a
  single serving system, :func:`simulate_fleet` for a
  :class:`~repro.cluster.fleet.Fleet` of replicas);
* :mod:`repro.simulation.metrics`  — latency / throughput / hit-rate summaries
  plus the fleet-level :class:`FleetSummary`.
"""

from repro.simulation.arrival import PoissonArrivalProcess, BurstArrivalProcess, UniformArrivalProcess
from repro.simulation.routing import (
    LeastLoadedRouter,
    PrefixAffinityRouter,
    Router,
    UserIdRouter,
    make_router,
)
from repro.simulation.metrics import (
    FleetSummary,
    LatencySummary,
    summarize_finished,
    summarize_fleet,
)
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import (
    FleetSimulationResult,
    SimulationResult,
    simulate,
    simulate_fleet,
)

__all__ = [
    "PoissonArrivalProcess",
    "BurstArrivalProcess",
    "UniformArrivalProcess",
    "Router",
    "UserIdRouter",
    "LeastLoadedRouter",
    "PrefixAffinityRouter",
    "make_router",
    "LatencySummary",
    "FleetSummary",
    "summarize_finished",
    "summarize_fleet",
    "ServingSystem",
    "SimulationResult",
    "FleetSimulationResult",
    "simulate",
    "simulate_fleet",
]
