"""Serving substrate: the discrete-event simulation of an online serving system.

The paper evaluates PrefillOnly as an online service: requests arrive as a
Poisson process, a router spreads users across engine instances, each instance
schedules and executes requests, and the evaluation reports latency percentiles
and throughput as functions of the offered queries per second.  This package
provides those pieces, plus the scenario machinery that goes beyond the
paper's evaluation grid:

* :mod:`repro.simulation.arrival`  — arrival processes: the paper's Poisson /
  burst / uniform, plus bursty MMPP, diurnal sinusoid, flash-crowd spikes,
  and think-time closed-loop clients, all constructible by name through
  :func:`make_arrival`;
* :mod:`repro.simulation.routing`  — user-id, least-loaded, and
  prefix-affinity routing policies;
* :mod:`repro.simulation.server`   — a serving system (router + instances);
* :mod:`repro.simulation.events`   — the heap-based
  :class:`~repro.simulation.events.EventQueue` behind the simulator's and the
  fleet's fast event loops;
* :mod:`repro.simulation.simulator` — the event loops (:func:`simulate` for a
  single serving system, :func:`simulate_fleet` for a
  :class:`~repro.cluster.fleet.Fleet` of replicas);
* :mod:`repro.simulation.scenario` — the scenario engine: JSON-config
  multi-tenant scenarios with per-tenant SLO reporting and bit-for-bit trace
  record/replay (``prefillonly scenario`` on the command line,
  ``docs/SCENARIOS.md`` for the cookbook);
* :mod:`repro.simulation.metrics`  — latency / throughput / hit-rate summaries
  plus the fleet-level :class:`FleetSummary`.
"""

from repro.simulation.arrival import (
    ARRIVAL_FACTORIES,
    ArrivalProcess,
    BurstArrivalProcess,
    ClosedLoopArrivalProcess,
    DiurnalArrivalProcess,
    FlashCrowdArrivalProcess,
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    UniformArrivalProcess,
    list_arrivals,
    make_arrival,
)
from repro.simulation.events import EventQueue
from repro.simulation.routing import (
    LeastLoadedRouter,
    PrefixAffinityRouter,
    Router,
    UserIdRouter,
    make_router,
)
from repro.simulation.metrics import (
    FleetSummary,
    LatencySummary,
    TierSummary,
    summarize_finished,
    summarize_fleet,
    summarize_tiers,
)
from repro.simulation.scenario import (
    ScenarioResult,
    ScenarioSpec,
    TenantReport,
    load_scenario,
    replay_scenario,
    run_scenario,
    scenario_from_dict,
)
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import (
    FleetSimulationResult,
    SimulationResult,
    simulate,
    simulate_fleet,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivalProcess",
    "BurstArrivalProcess",
    "UniformArrivalProcess",
    "MMPPArrivalProcess",
    "DiurnalArrivalProcess",
    "FlashCrowdArrivalProcess",
    "ClosedLoopArrivalProcess",
    "ARRIVAL_FACTORIES",
    "list_arrivals",
    "make_arrival",
    "EventQueue",
    "Router",
    "UserIdRouter",
    "LeastLoadedRouter",
    "PrefixAffinityRouter",
    "make_router",
    "LatencySummary",
    "FleetSummary",
    "TierSummary",
    "summarize_finished",
    "summarize_fleet",
    "summarize_tiers",
    "ServingSystem",
    "SimulationResult",
    "FleetSimulationResult",
    "simulate",
    "simulate_fleet",
    "ScenarioSpec",
    "ScenarioResult",
    "TenantReport",
    "scenario_from_dict",
    "load_scenario",
    "run_scenario",
    "replay_scenario",
]
