"""Serving substrate: the discrete-event simulation of an online serving system.

The paper evaluates PrefillOnly as an online service: requests arrive as a
Poisson process, a router spreads users across engine instances, each instance
schedules and executes requests, and the evaluation reports latency percentiles
and throughput as functions of the offered queries per second.  This package
provides exactly those pieces:

* :mod:`repro.simulation.arrival`  — Poisson and burst arrival processes;
* :mod:`repro.simulation.routing`  — user-id-based round-robin routing;
* :mod:`repro.simulation.server`   — a serving system (router + instances);
* :mod:`repro.simulation.simulator` — the event loop;
* :mod:`repro.simulation.metrics`  — latency / throughput / hit-rate summaries.
"""

from repro.simulation.arrival import PoissonArrivalProcess, BurstArrivalProcess, UniformArrivalProcess
from repro.simulation.routing import UserIdRouter, LeastLoadedRouter
from repro.simulation.metrics import LatencySummary, summarize_finished
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import SimulationResult, simulate

__all__ = [
    "PoissonArrivalProcess",
    "BurstArrivalProcess",
    "UniformArrivalProcess",
    "UserIdRouter",
    "LeastLoadedRouter",
    "LatencySummary",
    "summarize_finished",
    "ServingSystem",
    "SimulationResult",
    "simulate",
]
