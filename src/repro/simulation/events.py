"""A lazy-deletion event heap for the discrete-event loops.

The seed simulator found the next event by scanning every engine instance on
every iteration — ``min(instance.next_event_time() for instance in ...)`` —
which makes each event cost O(instances) even though an event only ever changes
the timeline of the one instance it touches.  :class:`EventQueue` replaces the
scan with a binary heap of ``(time, key)`` entries, one per event source:

* :meth:`update` records a source's current next-event time (pushing a heap
  entry when it has one);
* :meth:`peek` returns the earliest ``(time, key)`` in O(1) amortised;
* :meth:`pop_due` drains every source whose event is due at the given time.

Stale heap entries — left behind when a source's next event time changes —
are detected lazily at the top of the heap: an entry is live only if it still
matches the source's last recorded time.  Each source therefore has at most
one *live* entry, and the heap never needs random-access deletion.  The
driving loops (:func:`repro.simulation.simulator.simulate`,
:class:`repro.cluster.fleet.Fleet`) call :meth:`update` after every mutation
of a source (a submit, an advance, a scale event), which is exactly the set of
points where a source's timeline can change.
"""

from __future__ import annotations

import heapq

__all__ = ["TIME_EPSILON", "EventQueue"]

#: Tolerance used when comparing event times, matching the engine's internal
#: epsilon so a heap-driven loop fires the same events per iteration as a scan.
TIME_EPSILON = 1e-9


class EventQueue:
    """Min-heap of per-source next-event times with lazy deletion.

    Keys are small integers (instance indices / replica ids); values are the
    simulated times of each source's next internal event.  Ties break on the
    key, so equal-time events fire in source-index order — the same order the
    seed implementation's linear scans produced.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int]] = []
        self._times: dict[int, float | None] = {}

    def __len__(self) -> int:
        return sum(1 for time in self._times.values() if time is not None)

    def update(self, key: int, time: float | None) -> None:
        """Record that ``key``'s next event is at ``time`` (``None`` = no event)."""
        self._times[key] = time
        if time is not None:
            heapq.heappush(self._heap, (time, key))

    def discard(self, key: int) -> None:
        """Forget ``key`` entirely (a retired replica)."""
        self._times.pop(key, None)

    def peek(self) -> tuple[float, int] | None:
        """Earliest live ``(time, key)``, or ``None`` when no source has an event."""
        heap = self._heap
        while heap:
            time, key = heap[0]
            if self._times.get(key) == time:
                return time, key
            heapq.heappop(heap)
        return None

    def next_time(self) -> float | None:
        """Time of the earliest live entry, or ``None``."""
        entry = self.peek()
        return None if entry is None else entry[0]

    def pop_due(self, now: float, *, epsilon: float = 0.0) -> list[int]:
        """Remove and return every key whose event time is ≤ ``now + epsilon``.

        Popped keys have their recorded time cleared; the caller advances each
        source and then :meth:`update`\\ s it with its new next-event time.
        Keys are returned in event-time order (ties in key order).
        """
        # Kept as its own loop rather than delegating to pop_due_entries:
        # this is the fleet loop's per-event hot path, and the (time, key)
        # tuples the entries variant builds are pure overhead here.
        due: list[int] = []
        limit = now + epsilon
        heap = self._heap
        while heap:
            time, key = heap[0]
            if self._times.get(key) != time:
                heapq.heappop(heap)
                continue
            if time > limit:
                break
            heapq.heappop(heap)
            self._times[key] = None
            due.append(key)
        return due

    def pop_due_entries(self, now: float, *,
                        epsilon: float = 0.0) -> list[tuple[float, int]]:
        """Like :meth:`pop_due`, but return the ``(time, key)`` pairs.

        The times let a caller holding several queues merge their due lists
        back into the single-queue global order — since keys are globally
        unique, sorting merged entries by ``(time, key)`` reproduces exactly
        what one queue holding every source would have returned (the law
        :class:`repro.simulation.sharded.ShardedEventQueue` relies on).
        """
        due: list[tuple[float, int]] = []
        limit = now + epsilon
        heap = self._heap
        while heap:
            time, key = heap[0]
            if self._times.get(key) != time:
                heapq.heappop(heap)
                continue
            if time > limit:
                break
            heapq.heappop(heap)
            self._times[key] = None
            due.append((time, key))
        return due
