"""Request arrival processes.

The paper assumes Poisson arrivals and sweeps the rate to vary the offered
queries per second (§7.1).  It also determines each engine's base throughput by
sending the whole trace at once ("all requests coming at once"), which the
:class:`BurstArrivalProcess` reproduces.  A deterministic uniform process is
provided for tests that need exact spacing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import Request


class ArrivalProcess(abc.ABC):
    """Assigns arrival times to a list of requests."""

    @abc.abstractmethod
    def assign(self, requests: list[Request]) -> list[Request]:
        """Return the requests with ``arrival_time`` set, sorted by arrival time."""


def _sorted_copy(requests: list[Request], times: list[float],
                 order: np.ndarray | None = None) -> list[Request]:
    """Attach ``times`` to ``requests`` (optionally reordered) and sort by time."""
    if order is None:
        ordered = list(requests)
    else:
        ordered = [requests[i] for i in order]
    for request, time in zip(ordered, times):
        request.arrival_time = float(time)
    return sorted(ordered, key=lambda r: (r.arrival_time, r.request_id))


@dataclass(frozen=True)
class PoissonArrivalProcess(ArrivalProcess):
    """Poisson arrivals at ``rate`` requests per second.

    Attributes:
        rate: Mean arrival rate (queries per second).
        seed: RNG seed (controls both inter-arrival gaps and request order).
        shuffle: Randomise the request order before assigning times, so that
            one user's 50 requests are interleaved with other users' the way an
            online service would see them.
    """

    rate: float
    seed: int = 0
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise WorkloadError("arrival rate must be positive")

    def assign(self, requests: list[Request]) -> list[Request]:
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(requests)) if self.shuffle else None
        gaps = rng.exponential(1.0 / self.rate, size=len(requests))
        times = np.cumsum(gaps)
        return _sorted_copy(requests, list(times), order)


@dataclass(frozen=True)
class BurstArrivalProcess(ArrivalProcess):
    """Every request arrives at the same instant (used to measure base throughput)."""

    at_time: float = 0.0
    seed: int = 0
    shuffle: bool = True

    def assign(self, requests: list[Request]) -> list[Request]:
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(requests)) if self.shuffle else None
        times = [self.at_time] * len(requests)
        return _sorted_copy(requests, times, order)


@dataclass(frozen=True)
class UniformArrivalProcess(ArrivalProcess):
    """Deterministic arrivals spaced exactly ``1 / rate`` seconds apart."""

    rate: float
    seed: int = 0
    shuffle: bool = False

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise WorkloadError("arrival rate must be positive")

    def assign(self, requests: list[Request]) -> list[Request]:
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(requests)) if self.shuffle else None
        spacing = 1.0 / self.rate
        times = [spacing * (index + 1) for index in range(len(requests))]
        return _sorted_copy(requests, times, order)
