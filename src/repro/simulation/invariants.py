"""System-wide invariants every simulation run must satisfy.

The checks the scenario fuzzer (``tests/test_scenario_fuzz.py``) asserts over
every randomly generated config, and that any test can assert over a finished
run.  Each check raises :class:`~repro.errors.InvariantViolation` naming the
violated invariant, so a fuzz failure states *which* law broke, not just that
two numbers differed:

1. **request-conservation** — every offered request ends in exactly one
   terminal record: finished, rejected (engine capacity), or shed (admission
   control / fleet-wide crash).  Crash-evacuated requests that were re-routed
   still terminate exactly once.
2. **goodput-bound** — the fleet cannot finish more requests (or more tokens)
   than were offered.
3. **single-kv-residency** — per owning replica, a content hash lives in at
   most one tier: GPU (L1), host (L2), and the replica's own cluster-store
   (L3) entries are pairwise disjoint.  Peer-owned L3 entries may coexist
   with a local copy — that is the design (peer fetch), not a violation.
4. **tenant-consistency** — per-tenant finished/rejected counts sum to the
   fleet totals.
5. **reproducibility** — the same spec re-run with the same seed produces a
   bit-identical :func:`scenario_fingerprint` (asserted by the fuzz test via
   two independent runs).
"""

from __future__ import annotations

import dataclasses

from repro.errors import InvariantViolation
from repro.simulation.scenario import ScenarioResult

__all__ = [
    "check_request_conservation",
    "check_goodput_bound",
    "check_single_kv_residency",
    "check_tenant_consistency",
    "scenario_fingerprint",
    "check_scenario_invariants",
]


def _ids(records) -> list[int]:
    return [record.request_id for record in records]


def check_request_conservation(result, requests) -> None:
    """Invariant 1: offered == finished ∪ rejected, with no double-count.

    Args:
        result: A :class:`~repro.simulation.simulator.FleetSimulationResult`
            (``rejected`` already includes the admission-control sheds).
        requests: The offered request stream the simulation consumed.
    """
    offered = _ids(requests)
    offered_set = set(offered)
    if len(offered) != len(offered_set):
        raise InvariantViolation(
            "request-conservation",
            f"offered stream repeats request ids ({len(offered)} records, "
            f"{len(offered_set)} distinct)",
        )
    finished = _ids(result.finished)
    rejected = _ids(result.rejected)
    finished_set, rejected_set = set(finished), set(rejected)
    if len(finished) != len(finished_set):
        raise InvariantViolation(
            "request-conservation", "a request finished more than once"
        )
    if len(rejected) != len(rejected_set):
        raise InvariantViolation(
            "request-conservation", "a request was rejected more than once"
        )
    both = finished_set & rejected_set
    if both:
        raise InvariantViolation(
            "request-conservation",
            f"requests {sorted(both)[:5]} are both finished and rejected",
        )
    terminal = finished_set | rejected_set
    if terminal != offered_set:
        missing = sorted(offered_set - terminal)[:5]
        phantom = sorted(terminal - offered_set)[:5]
        raise InvariantViolation(
            "request-conservation",
            f"{len(offered_set - terminal)} offered requests never terminated "
            f"(e.g. {missing}) and {len(terminal - offered_set)} terminal "
            f"records were never offered (e.g. {phantom})",
        )


def check_goodput_bound(result, requests) -> None:
    """Invariant 2: finished work never exceeds offered work."""
    offered_count = len(requests)
    offered_tokens = sum(request.num_tokens for request in requests)
    finished_count = len(result.finished)
    finished_tokens = sum(record.num_tokens for record in result.finished)
    if finished_count > offered_count:
        raise InvariantViolation(
            "goodput-bound",
            f"finished {finished_count} requests but only {offered_count} "
            "were offered",
        )
    if finished_tokens > offered_tokens:
        raise InvariantViolation(
            "goodput-bound",
            f"finished {finished_tokens} tokens but only {offered_tokens} "
            "were offered",
        )


def check_single_kv_residency(fleet) -> None:
    """Invariant 3: per owner, a content hash lives in at most one tier."""
    cluster = getattr(fleet, "cluster_store", None)
    for engine in fleet.replicas:
        manager = engine.kv
        l1 = set(manager.resident_hashes())
        tiers = manager.tiers
        l2: set[int] = set()
        owned_l3: set[int] = set()
        if tiers is not None and tiers.host is not None:
            l2 = set(tiers.host.resident_hashes())
        if cluster is not None:
            owned_l3 = {
                content_hash for content_hash in cluster.resident_hashes()
                if cluster.owner_of(content_hash) == tiers.replica
            } if tiers is not None else set()
        for tier_a, tier_b, overlap in (
            ("gpu", "host", l1 & l2),
            ("gpu", "cluster", l1 & owned_l3),
            ("host", "cluster", l2 & owned_l3),
        ):
            if overlap:
                raise InvariantViolation(
                    "single-kv-residency",
                    f"replica {engine.name!r} holds hashes "
                    f"{sorted(overlap)[:3]} in both its {tier_a} and "
                    f"{tier_b} tiers",
                )


def check_tenant_consistency(result: ScenarioResult) -> None:
    """Invariant 4: per-tenant counts sum to the fleet totals."""
    tenant_finished = sum(report.summary.num_requests for report in result.tenants)
    tenant_rejected = sum(report.summary.num_rejected for report in result.tenants)
    fleet_finished = len(result.result.finished)
    fleet_rejected = len(result.result.rejected)
    if tenant_finished != fleet_finished:
        raise InvariantViolation(
            "tenant-consistency",
            f"tenant finished counts sum to {tenant_finished}, fleet "
            f"finished {fleet_finished}",
        )
    if tenant_rejected != fleet_rejected:
        raise InvariantViolation(
            "tenant-consistency",
            f"tenant rejected counts sum to {tenant_rejected}, fleet "
            f"rejected {fleet_rejected}",
        )


def scenario_fingerprint(result: ScenarioResult) -> dict:
    """Everything observable from one scenario run, JSON-serialisable.

    Floats are kept unrounded, so equality of two fingerprints (after a JSON
    round trip, which preserves them bit-for-bit) is bit-reproducibility —
    invariant 5 compares the fingerprints of two same-seed runs.
    """
    return {
        "summary": dataclasses.asdict(result.result.summary),
        "fleet": result.result.fleet.as_dict(),
        "tenants": [report.as_dict() for report in result.tenants],
        "num_events": result.result.num_events,
        "finished_ids": sorted(r.request_id for r in result.result.finished),
        "rejected_ids": sorted(r.request_id for r in result.result.rejected),
    }


def check_scenario_invariants(result: ScenarioResult, requests) -> None:
    """Run every per-run invariant (1-4) over one finished scenario.

    Invariant 5 (reproducibility) needs a second run of the same spec, so it
    is asserted by the caller comparing :func:`scenario_fingerprint` values.
    Residency (3) needs the live fleet — run the scenario with
    ``keep_fleet=True``; it is skipped when the result carries no fleet.
    """
    check_request_conservation(result.result, requests)
    check_goodput_bound(result.result, requests)
    check_tenant_consistency(result)
    if result.fleet is not None:
        check_single_kv_residency(result.fleet)
