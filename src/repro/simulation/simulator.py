"""The discrete-event simulation loop.

:func:`simulate` replays a list of requests (with arrival times already
assigned by an arrival process) against a :class:`~repro.simulation.server.ServingSystem`
and returns every completion record plus the aggregate summary.  The loop is a
classic two-source event merge: the next request arrival versus the earliest
internal engine event (a pipeline stage finishing), whichever comes first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.engine import FinishedRequest
from repro.errors import SimulationError
from repro.simulation.metrics import LatencySummary, summarize_finished
from repro.simulation.server import ServingSystem
from repro.workloads.trace import Request


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run."""

    engine_name: str
    finished: list[FinishedRequest]
    rejected: list[FinishedRequest]
    summary: LatencySummary
    cache_stats: list[dict] = field(default_factory=list)

    @property
    def num_finished(self) -> int:
        return len(self.finished)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)


def simulate(system: ServingSystem, requests: list[Request], *,
             max_simulated_seconds: float = 1e7,
             max_events: int = 10_000_000) -> SimulationResult:
    """Replay ``requests`` against ``system`` until everything drains.

    Args:
        system: The serving system under test.
        requests: Requests with ``arrival_time`` assigned, in any order.
        max_simulated_seconds: Safety limit on simulated time.
        max_events: Safety limit on processed events.

    Raises:
        SimulationError: if either safety limit is hit (which indicates a bug
            in an engine's event logic, not a legitimate overload).
    """
    pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    arrival_index = 0
    now = 0.0
    events = 0

    while True:
        next_arrival = (
            pending[arrival_index].arrival_time if arrival_index < len(pending) else math.inf
        )
        next_internal = system.next_event_time()
        next_internal = math.inf if next_internal is None else next_internal

        if math.isinf(next_arrival) and math.isinf(next_internal):
            break

        now = min(next_arrival, next_internal)
        if now > max_simulated_seconds:
            raise SimulationError(
                f"simulation exceeded {max_simulated_seconds} simulated seconds"
            )

        if next_arrival <= next_internal:
            request = pending[arrival_index]
            arrival_index += 1
            instance = system.submit(request, now)
            instance.advance_to(now)
        else:
            system.advance_to(now)

        events += 1
        if events > max_events:
            raise SimulationError(f"simulation exceeded {max_events} events")

    finished = system.finished_requests()
    rejected = system.rejected_requests()
    return SimulationResult(
        engine_name=system.spec.name,
        finished=finished,
        rejected=rejected,
        summary=summarize_finished(finished, rejected),
        cache_stats=system.cache_stats(),
    )
