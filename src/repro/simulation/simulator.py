"""The discrete-event simulation loop.

:func:`simulate` replays a list of requests (with arrival times already
assigned by an arrival process) against a :class:`~repro.simulation.server.ServingSystem`
and returns every completion record plus the aggregate summary.  The loop is a
classic two-source event merge: the next request arrival versus the earliest
internal engine event (a pipeline stage finishing), whichever comes first.

:func:`simulate_fleet` drives a :class:`~repro.cluster.fleet.Fleet` with the
same two-source merge, but the fleet advances each replica on its own clock
(only replicas whose next event is due move at all), and after every event the
fleet's autoscaler gets a chance to add or drain a replica.  With a single
replica and the same router, ``simulate_fleet`` reproduces :func:`simulate`
exactly — the equivalence the fleet tests pin down.

Both loops default to a heap-based fast path: instead of scanning every
instance for its next event time on every iteration (O(instances) per event),
an :class:`~repro.simulation.events.EventQueue` keeps one live heap entry per
instance and only the instance an event actually touched is re-examined.  Pass
``use_event_queue=False`` to run the original linear-scan loop — the two paths
produce identical results (a property the test suite pins), so the flag exists
for the before/after benchmark and as a cross-check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.engine import FinishedRequest
from repro.errors import SimulationError
from repro.obs import profiler as _profiler
from repro.obs.recorder import ObsData
from repro.simulation.events import EventQueue, TIME_EPSILON
from repro.simulation.metrics import (
    FleetSummary,
    LatencySummary,
    summarize_finished,
    summarize_fleet,
)
from repro.simulation.server import ServingSystem
from repro.workloads.trace import Request


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run.

    ``num_events`` counts the *processed* simulation events — one per request
    arrival plus one per instance advanced on an internal event — identically
    on the heap and linear-scan paths, so events-per-second is comparable
    across loops, fleets, and the perf harness.
    """

    engine_name: str
    finished: list[FinishedRequest]
    rejected: list[FinishedRequest]
    summary: LatencySummary
    cache_stats: list[dict] = field(default_factory=list)
    num_events: int = 0

    @property
    def num_finished(self) -> int:
        return len(self.finished)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)


def simulate(system: ServingSystem, requests: list[Request], *,
             max_simulated_seconds: float = 1e7,
             max_events: int = 10_000_000,
             use_event_queue: bool = True) -> SimulationResult:
    """Replay ``requests`` against ``system`` until everything drains.

    Args:
        system: The serving system under test.
        requests: Requests with ``arrival_time`` assigned, in any order.
        max_simulated_seconds: Safety limit on simulated time.
        max_events: Safety limit on processed events.
        use_event_queue: Use the heap-based event queue (default) instead of
            the linear scan; results are identical either way.

    Raises:
        SimulationError: if either safety limit is hit (which indicates a bug
            in an engine's event logic, not a legitimate overload).
    """
    pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    arrival_index = 0
    now = 0.0
    events = 0
    prof = _profiler.ACTIVE

    queue: EventQueue | None = None
    if use_event_queue:
        queue = EventQueue()
        instances = system.instances
        index_of = {id(instance): index for index, instance in enumerate(instances)}
        for index, instance in enumerate(instances):
            queue.update(index, instance.next_event_time())

    while True:
        next_arrival = (
            pending[arrival_index].arrival_time if arrival_index < len(pending) else math.inf
        )
        if queue is not None:
            next_internal = queue.next_time()
        else:
            next_internal = system.next_event_time()
        next_internal = math.inf if next_internal is None else next_internal

        if math.isinf(next_arrival) and math.isinf(next_internal):
            break

        now = min(next_arrival, next_internal)
        if now > max_simulated_seconds:
            raise SimulationError(
                f"simulation exceeded {max_simulated_seconds} simulated seconds"
            )

        if next_arrival <= next_internal:
            tick = perf_counter() if prof else 0.0
            request = pending[arrival_index]
            arrival_index += 1
            instance = system.submit(request, now)
            instance.advance_to(now)
            if queue is not None:
                queue.update(index_of[id(instance)], instance.next_event_time())
            events += 1
            if prof:
                prof.add("arrival", perf_counter() - tick)
        elif queue is not None:
            # The engine fires events within TIME_EPSILON of `now`, so drain
            # every instance in that window — exactly the set the linear scan's
            # whole-system advance would have moved.
            tick = perf_counter() if prof else 0.0
            due = queue.pop_due(now, epsilon=TIME_EPSILON)
            for key in due:
                instance = instances[key]
                instance.advance_to(now)
                queue.update(key, instance.next_event_time())
            # A finite next_internal means >= 1 source is due; the max() keeps
            # the max_events runaway guard armed even if event bookkeeping
            # desyncs and an iteration advances nothing.
            batch = max(len(due), 1)
            events += batch
            if prof:
                prof.add("advance", perf_counter() - tick, batch)
        else:
            # Count the instances with a due event before the whole-system
            # advance moves them — the same set the heap path pops, so both
            # paths report identical event counts.
            tick = perf_counter() if prof else 0.0
            batch = max(sum(
                1 for instance in system.instances
                if (next_time := instance.next_event_time()) is not None
                and next_time <= now + TIME_EPSILON
            ), 1)
            events += batch
            system.advance_to(now)
            if prof:
                prof.add("advance", perf_counter() - tick, batch)

        if events > max_events:
            raise SimulationError(f"simulation exceeded {max_events} events")

    finished = system.finished_requests()
    rejected = system.rejected_requests()
    return SimulationResult(
        engine_name=system.spec.name,
        finished=finished,
        rejected=rejected,
        summary=summarize_finished(finished, rejected),
        cache_stats=system.cache_stats(),
        num_events=events,
    )


@dataclass
class FleetSimulationResult:
    """Everything a benchmark needs from one fleet simulation run.

    ``rejected`` contains engine-level rejections *and* admission-control
    sheds; ``shed`` is the admission-control subset on its own.

    ``num_events`` counts processed events exactly like
    :class:`SimulationResult` — one per arrival plus one per replica advanced
    on an internal event, identically whether the fleet finds its due replicas
    with the event queue or a scan — so events-per-second is comparable
    between the single-system and fleet loops.
    """

    fleet_name: str
    finished: list[FinishedRequest]
    rejected: list[FinishedRequest]
    shed: list[FinishedRequest]
    summary: LatencySummary
    fleet: FleetSummary
    cache_stats: list[dict] = field(default_factory=list)
    num_events: int = 0
    #: Sharded-run metadata (mode, shard count, lookahead window, per-shard
    #: seeds) — ``None`` on unsharded runs.  Deliberately excluded from
    #: :func:`~repro.simulation.invariants.scenario_fingerprint`: a sharded
    #: run is byte-identical to the unsharded path *except* for this record
    #: of how it was executed.
    sharding: dict | None = None
    #: The run's frozen observability record, or ``None`` when the fleet ran
    #: with the null recorder.  Excluded from the scenario fingerprint by the
    #: same argument as ``sharding``: recording observes the run, it is not
    #: part of the result.
    obs: ObsData | None = None

    @property
    def num_finished(self) -> int:
        return len(self.finished)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)

    @property
    def num_shed(self) -> int:
        return len(self.shed)


def simulate_fleet(fleet, requests: list[Request], *,
                   max_simulated_seconds: float = 1e7,
                   max_events: int = 10_000_000,
                   faults=None,
                   shards: int = 1,
                   lookahead: float | None = None,
                   shard_workers: int | None = None,
                   shard_mode: str = "auto",
                   shard_seed: int = 0) -> FleetSimulationResult:
    """Replay ``requests`` against a :class:`~repro.cluster.fleet.Fleet`.

    The event merge mirrors :func:`simulate`: the earliest of the next arrival
    and the fleet's earliest internal event wins.  On an arrival the fleet
    admits, routes, and advances only the replica that received the request;
    on an internal event only replicas with due events advance (per-replica
    clocks).  After every event the fleet's autoscaler may scale.  Whether the
    fleet finds its due replicas with the event queue or a scan is the fleet's
    own ``use_event_queue`` constructor flag.

    With a fault schedule the merge gains a third source: the schedule's
    events are loaded into their own :class:`~repro.simulation.events.EventQueue`
    (keyed by schedule position, so equal-time faults fire in schedule order)
    and a due fault wins ties against arrivals and internal events — a crash
    at *t* removes the replica before the arrival at *t* routes.  Each
    delivered fault counts as one processed event, and the run's
    :class:`~repro.simulation.metrics.ResilienceSummary` lands in
    ``result.fleet.resilience``.  With ``faults`` absent or disabled the loop
    is untouched and results are byte-identical to a schedule-free run.

    Args:
        fleet: The fleet under test.
        requests: Requests with ``arrival_time`` assigned, in any order.
        max_simulated_seconds: Safety limit on simulated time.
        max_events: Safety limit on processed events.
        faults: Optional :class:`~repro.faults.FaultSchedule` of chaos events
            to inject (None or a disabled/empty schedule injects nothing).
        shards: Partition the fleet's replicas across this many shards (see
            :mod:`repro.simulation.sharded`).  ``1`` (the default) is the
            original unsharded path, untouched; any ``shards`` value produces
            byte-identical results.
        lookahead: Conservative cross-shard lookahead window in simulated
            seconds; ``None`` derives it from the modelled interconnect
            latency (:func:`~repro.simulation.sharded.derive_lookahead`).
        shard_workers: Worker processes for the decoupled parallel path.
            ``None`` uses one per shard up to the CPU count; ``<= 1`` runs the
            shard engines serially in-process (identical results).
        shard_mode: ``"auto"`` (parallel when the fleet is decoupled, else
            lockstep) or ``"lockstep"`` (always globally sequenced — required
            when the caller inspects the fleet object after the run).
        shard_seed: Base seed the per-shard RNG streams are derived from
            (:func:`~repro.perf.runner.derive_task_seeds`).

    Raises:
        SimulationError: if either safety limit is hit.
    """
    sharding_info = None
    if shards > 1:
        # Lazy import: `sharded` imports this module for the result types.
        from repro.simulation import sharded as _sharded

        plan = _sharded.ShardPlan(shards, base_seed=shard_seed)
        window = _sharded.derive_lookahead(fleet, lookahead)
        mode = _sharded.resolve_shard_mode(shard_mode, fleet, faults)
        if mode == "parallel":
            return _sharded.simulate_fleet_decoupled(
                fleet, requests, plan,
                lookahead=window,
                shard_workers=shard_workers,
                max_simulated_seconds=max_simulated_seconds,
                max_events=max_events,
            )
        fleet.shard_events(_sharded.ShardedEventQueue(plan))
        sharding_info = {
            "mode": "lockstep",
            "shards": shards,
            "workers": 1,
            "executed": "serial",
            "lookahead_s": window,
            "shard_seeds": list(plan.shard_seeds),
        }

    pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    arrival_index = 0
    now = 0.0
    events = 0
    prof = _profiler.ACTIVE
    obs = fleet.obs
    obs_sampling = obs.enabled and obs.metrics
    gauge_rows = fleet.obs_gauge_rows

    fault_events = ()
    fault_queue: EventQueue | None = None
    if faults is not None and faults.active:
        fault_events = faults.events
        fault_queue = EventQueue()
        for index, event in enumerate(fault_events):
            fault_queue.update(index, event.time)
        fleet.warm_restore_blocks = faults.warm_restore_blocks

    while True:
        next_arrival = (
            pending[arrival_index].arrival_time if arrival_index < len(pending) else math.inf
        )
        next_internal = fleet.next_event_time()
        next_internal = math.inf if next_internal is None else next_internal
        next_fault = fault_queue.next_time() if fault_queue is not None else None
        next_fault = math.inf if next_fault is None else next_fault
        next_policy = fleet.next_policy_time()
        next_policy = math.inf if next_policy is None else next_policy

        if (math.isinf(next_arrival) and math.isinf(next_internal)
                and math.isinf(next_fault) and math.isinf(next_policy)):
            break

        now = min(next_arrival, next_internal, next_fault, next_policy)
        if now > max_simulated_seconds:
            raise SimulationError(
                f"fleet simulation exceeded {max_simulated_seconds} simulated seconds"
            )

        if obs_sampling:
            # Before the event batch at `now`: a sample at boundary b <= now
            # reflects the state after all events strictly before b.
            tick = perf_counter() if prof else 0.0
            obs.maybe_sample(now, gauge_rows)
            if prof:
                prof.add("sample", perf_counter() - tick)

        if (next_fault <= next_arrival and next_fault <= next_internal
                and next_fault <= next_policy):
            tick = perf_counter() if prof else 0.0
            due = fault_queue.pop_due(now)
            for index in due:
                fleet.apply_fault(fault_events[index], now)
            batch = max(len(due), 1)
            events += batch
            if prof:
                prof.add("fault", perf_counter() - tick, batch)
        elif next_policy <= next_arrival and next_policy <= next_internal:
            # Policy timers beat arrivals and internal completions on ties:
            # a request whose deadline coincides with its own finish counts
            # as a deadline miss, deterministically.
            tick = perf_counter() if prof else 0.0
            fleet.apply_policy_timers(now)
            events += 1
            if prof:
                prof.add("policy", perf_counter() - tick)
        elif next_arrival <= next_internal:
            tick = perf_counter() if prof else 0.0
            request = pending[arrival_index]
            arrival_index += 1
            fleet.submit(request, now)
            events += 1
            if prof:
                prof.add("arrival", perf_counter() - tick)
        else:
            tick = perf_counter() if prof else 0.0
            fleet.advance_to(now)
            # max() keeps the max_events runaway guard armed even if a buggy
            # fleet reports a due event but advances no replica.
            batch = max(fleet.last_advance_count, 1)
            events += batch
            if prof:
                prof.add("advance", perf_counter() - tick, batch)
        tick = perf_counter() if prof else 0.0
        fleet.maybe_autoscale(now)
        if prof:
            prof.add("autoscale", perf_counter() - tick)

        if events > max_events:
            raise SimulationError(f"fleet simulation exceeded {max_events} events")

    finished = fleet.finished_requests()
    rejected = fleet.rejected_requests()
    summary = summarize_finished(finished, rejected)
    tier_summary = getattr(fleet, "tier_summary", lambda: None)()
    resilience = (
        fleet.resilience_summary(summary)
        if fault_queue is not None or fleet.policies is not None
        else None
    )
    return FleetSimulationResult(
        fleet_name=fleet.name,
        finished=finished,
        rejected=rejected,
        shed=fleet.shed_requests(),
        summary=summary,
        fleet=summarize_fleet(
            fleet.replica_reports(now),
            scale_events=tuple(event.as_dict() for event in fleet.scale_events),
            num_scale_ups=fleet.stats.num_scale_ups,
            num_scale_downs=fleet.stats.num_scale_downs,
            num_shed=fleet.num_shed,
            num_replicas=fleet.num_replicas,
            peak_replicas=fleet.stats.peak_replicas,
            tiers=tier_summary,
            resilience=resilience,
        ),
        cache_stats=fleet.cache_stats(),
        num_events=events,
        sharding=sharding_info,
        obs=obs.freeze(now) if obs.enabled else None,
    )
