"""Sharded parallel discrete-event simulation for 1000+ replica fleets.

:func:`repro.simulation.simulator.simulate_fleet` is one process walking one
:class:`~repro.simulation.events.EventQueue`.  This module partitions a
fleet's replicas across shards — each walking its own event queue — while
keeping the bit-reproducibility contract: ``shards=1`` and every ``shards=N``
run produce byte-identical :func:`~repro.simulation.invariants.scenario_fingerprint`
results (pinned by ``tests/test_sharded_identity.py``).

Two execution modes, picked per run:

**Lockstep** (always available).  The fleet's single event queue is swapped
for a :class:`ShardedEventQueue` — one :class:`EventQueue` per shard, keys
routed to their owning shard by :meth:`ShardPlan.owner`, due events merged
back into the global order by ``(time, key)``.  Because replica keys are
globally unique, the merged order equals what one queue holding every source
returns (the law ``tests/test_sharded_merge.py`` fuzzes), so the driving loop
— and therefore every feature riding on it: admission, autoscaling, KV tiers,
chaos schedules — is byte-identical by construction.  Fault deliveries land
in the owning shard's queue for the same reason: the fleet's ``update`` /
``discard`` calls for a replica always hit the shard that owns its key.
Lockstep is the conservative end of the lookahead spectrum: a zero-length
window, every cross-shard event globally sequenced.

**Decoupled** (parallel).  When nothing couples replicas mid-run — no
admission policy, no autoscaler, no KV tiers or L3 store, no active fault
schedule, and a router that neither reads queue depths nor replica state
(:attr:`~repro.simulation.routing.Router.consults_instances`) — routing is a
pure function of the arrival sequence.  The coordinator pre-routes every
arrival through the fleet's own router (same calls, same order, same
decisions as the unsharded loop), partitions replicas across shards, and each
shard replays its substream in its own :class:`ShardEngine` — optionally in a
worker process pool (:class:`~repro.perf.runner.ParallelRunner`, with its
serial in-process fallback).  Per-replica event trajectories are identical to
the unsharded loop because replicas in a decoupled fleet never interact;
results are merged back in replica-key order, which is exactly the fleet's
``_all_states()`` results order, so even float summaries (order-sensitive
``np.mean`` reductions) match bit-for-bit.  Between the start and end
barriers a decoupled shard may run arbitrarily far ahead — the conservative
lookahead window (:func:`derive_lookahead`, floored at the modelled
interconnect latency: no cross-shard effect can land sooner than one
link-latency after it is sent) is what would bound that freedom the moment a
coupled feature (L3 traffic, faults) re-enters; those runs fall back to
lockstep today.

Determinism contract (see ``docs/SHARDING.md``):

* per-shard seed streams come from
  :func:`~repro.perf.runner.derive_task_seeds` — a pure function of
  ``(base_seed, shard)``, independent of worker count and scheduling;
* cross-shard merge ties resolve by the fixed ``(time, key)`` sequence key;
* replica ``key % num_shards`` ownership is stable across crash/recover
  cycles, so chaos schedules replay bit-exactly on any shard count.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.hardware.interconnect import PCIE_GEN4
from repro.obs.logging import set_context
from repro.obs.recorder import (
    GLOBAL_KEY,
    NULL_RECORDER,
    TraceRecorder,
    merge_shard_payloads,
)
from repro.perf.runner import ParallelRunner, derive_task_seeds
from repro.simulation.events import EventQueue

__all__ = [
    "ShardPlan",
    "ShardedEventQueue",
    "ShardEngine",
    "derive_lookahead",
    "fleet_is_decoupled",
    "resolve_shard_mode",
    "simulate_fleet_decoupled",
]


@dataclass(frozen=True)
class ShardPlan:
    """How a fleet's replicas map onto shards, plus the per-shard seed streams.

    Ownership is ``key % num_shards`` over the fleet's replica keys.  Keys are
    assigned once per replica ever built (crash recovery builds a fresh
    instance under a fresh key), so ownership is a pure function of the key —
    a fault targeting a replica is always delivered to the shard that owns it,
    on every shard count, which is what keeps chaos schedules replayable.

    ``shard_seeds`` are derived with
    :func:`~repro.perf.runner.derive_task_seeds`: any stochastic component
    running inside shard *i* must draw from stream ``shard_seeds[i]`` so its
    randomness is independent of worker count and scheduling order.  (The
    simulation core itself is deterministic; chaos schedules pre-generate
    their randomness at build time.)
    """

    num_shards: int
    base_seed: int = 0
    shard_seeds: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        object.__setattr__(
            self, "shard_seeds",
            tuple(derive_task_seeds(self.base_seed, self.num_shards)),
        )

    def owner(self, key: int) -> int:
        """Shard that owns event-source ``key``."""
        return key % self.num_shards


class ShardedEventQueue:
    """N per-shard :class:`EventQueue`\\ s behind the single-queue interface.

    Drop-in for the fleet's event queue (``update`` / ``discard`` /
    ``next_time`` / ``pop_due`` — the full surface
    :class:`~repro.cluster.fleet.Fleet` uses): each key's entries live in its
    owning shard's queue, the global head is the minimum shard head by
    ``(time, key)``, and :meth:`pop_due` merges the per-shard due lists by
    ``(time, key)``.  Keys are globally unique, so the merge reproduces the
    exact drain order of one queue holding every source — the identity
    ``tests/test_sharded_merge.py`` pins under random event storms.
    """

    def __init__(self, plan: ShardPlan) -> None:
        self.plan = plan
        self._shards = [EventQueue() for _ in range(plan.num_shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def shard(self, shard_id: int) -> EventQueue:
        """The event queue of one shard (for inspection/tests)."""
        return self._shards[shard_id]

    def update(self, key: int, time: float | None) -> None:
        """Record ``key``'s next event time in its owning shard's queue."""
        self._shards[self.plan.owner(key)].update(key, time)

    def discard(self, key: int) -> None:
        """Forget ``key`` in its owning shard's queue."""
        self._shards[self.plan.owner(key)].discard(key)

    def peek(self) -> tuple[float, int] | None:
        """Globally earliest live ``(time, key)`` across every shard."""
        best: tuple[float, int] | None = None
        for shard in self._shards:
            head = shard.peek()
            if head is not None and (best is None or head < best):
                best = head
        return best

    def next_time(self) -> float | None:
        """Time of the globally earliest live entry, or ``None``."""
        head = self.peek()
        return None if head is None else head[0]

    def pop_due(self, now: float, *, epsilon: float = 0.0) -> list[int]:
        """Drain every shard's due events, merged into global order."""
        return [key for _, key in self.pop_due_entries(now, epsilon=epsilon)]

    def pop_due_entries(self, now: float, *,
                        epsilon: float = 0.0) -> list[tuple[float, int]]:
        """Per-shard due lists merged by the ``(time, key)`` sequence key."""
        per_shard = [
            shard.pop_due_entries(now, epsilon=epsilon) for shard in self._shards
        ]
        return list(heapq.merge(*per_shard))


def derive_lookahead(fleet, lookahead: float | None = None) -> float:
    """The conservative lookahead window, in simulated seconds.

    An explicit ``lookahead`` (scenario/CLI ``lookahead`` field) wins.
    Otherwise the window is derived from the modelled interconnect latency:
    the fastest link any cross-shard effect could travel — the L3 cluster
    store's link if the fleet has one, else the replicas' shard-to-shard
    interconnect, else PCIe gen4.  No cross-shard message can be delivered
    sooner than one link-latency after it is sent, so a shard holding no
    undelivered inputs may always run that far ahead safely.
    """
    if lookahead is not None:
        if lookahead <= 0:
            raise ConfigurationError("lookahead must be positive")
        return float(lookahead)
    latencies = []
    store = getattr(fleet, "cluster_store", None)
    if store is not None:
        latencies.append(store.link.latency)
    for _, _, spec in fleet.shard_manifest():
        if spec is not None and spec.interconnect is not None:
            latencies.append(spec.interconnect.latency)
    return min(latencies) if latencies else PCIE_GEN4.latency


def fleet_is_decoupled(fleet, faults) -> bool:
    """True when no feature couples replicas mid-run.

    Decoupled fleets are exactly the ones whose routing is a pure function of
    the arrival sequence, which is what lets the parallel path pre-route
    arrivals and run each shard to completion independently.
    """
    router = fleet.router
    return (
        fleet.admission is None
        and fleet.autoscaler is None
        and fleet.tier_config is None
        and fleet.cluster_store is None
        and (faults is None or not faults.active)
        and getattr(fleet, "policies", None) is None
        and not router.needs_queue_depths
        and not router.consults_instances
        and fleet.stats.num_submitted == 0
        and not fleet.scale_events
    )


def resolve_shard_mode(shard_mode: str, fleet, faults) -> str:
    """Pick ``"parallel"`` or ``"lockstep"`` for this run.

    ``"auto"`` runs decoupled fleets in parallel and everything else in
    lockstep; ``"lockstep"`` forces the globally-sequenced path (e.g. when the
    caller needs the fully-simulated fleet object afterwards).
    """
    if shard_mode not in ("auto", "lockstep"):
        raise ConfigurationError(
            f"unknown shard mode {shard_mode!r}; expected 'auto' or 'lockstep'"
        )
    if shard_mode == "lockstep":
        return "lockstep"
    return "parallel" if fleet_is_decoupled(fleet, faults) else "lockstep"


# --------------------------------------------------------------------------
# The decoupled parallel path.


@dataclass(frozen=True)
class _ShardTask:
    """Everything one shard needs to replay its substream in a worker process."""

    shard_id: int
    seed: int
    #: ``(key, instance name, ReplicaSpec)`` of the shard's replicas.
    replicas: tuple
    model: object
    max_input_length: int
    fast_paths: bool
    #: ``(key, Request)`` in global arrival order.
    arrivals: tuple
    max_simulated_seconds: float
    max_events: int
    #: :class:`~repro.obs.recorder.ObsConfig` when the run records
    #: observability, else ``None`` (the shard uses the null recorder).
    obs_config: object = None
    #: ``(tenant, slo_latency_s)`` pairs for the shard recorder's SLO counter.
    tenant_slos: tuple = ()


class ShardEngine:
    """One shard's event loop: the per-replica slice of the fleet loop.

    Rebuilds the shard's replicas (byte-identical construction to
    ``Fleet._build_replica`` on a decoupled fleet — same specs, same names,
    no tiers) and replays the pre-routed arrival substream with the same
    two-source merge as the unsharded loop: arrival versus earliest internal
    event, arrival winning ties, due replicas drained in ``(time, key)``
    order.  Each replica's call sequence — ``submit`` at its arrival times,
    ``advance_to`` at its own due times — is exactly what the unsharded loop
    produces, because decoupled replicas never react to each other's events.
    """

    def __init__(self, task: _ShardTask) -> None:
        from repro.core.engine import EngineInstance

        self.task = task
        self.instances = {}
        self.queue = EventQueue()
        if task.obs_config is not None and task.obs_config.enabled:
            self.obs = TraceRecorder(
                task.obs_config, tenant_slos=dict(task.tenant_slos),
            )
        else:
            self.obs = NULL_RECORDER
        for key, name, spec in task.replicas:
            instance = EngineInstance(
                spec.engine, task.model, spec.gpu,
                interconnect=spec.interconnect,
                max_input_length=task.max_input_length,
                name=name,
                fast_paths=task.fast_paths,
            )
            instance.obs = self.obs
            instance.obs_key = key
            self.obs.register_replica(key, name)
            self.instances[key] = instance
            self.queue.update(key, instance.next_event_time())

    def _gauge_rows(self) -> list:
        """This shard's slice of ``Fleet.obs_gauge_rows`` (replica-key order)."""
        return [
            ("queue_depth", (("replica", name),), self.instances[key].num_waiting)
            for key, name, _spec in self.task.replicas
        ]

    def run(self) -> dict:
        """Drain the shard; return the picklable per-replica payload."""
        task = self.task
        set_context(shard=task.shard_id)
        arrivals = task.arrivals
        arrival_index = 0
        now = 0.0
        events = 0
        obs = self.obs
        obs_sampling = obs.enabled and obs.metrics

        while True:
            next_arrival = (
                arrivals[arrival_index][1].arrival_time
                if arrival_index < len(arrivals) else math.inf
            )
            next_internal = self.queue.next_time()
            next_internal = math.inf if next_internal is None else next_internal

            if math.isinf(next_arrival) and math.isinf(next_internal):
                break

            now = min(next_arrival, next_internal)
            if now > task.max_simulated_seconds:
                raise SimulationError(
                    f"fleet simulation exceeded {task.max_simulated_seconds} "
                    "simulated seconds"
                )

            if obs_sampling:
                # Same discipline as the fleet loop: sample before the event
                # batch at `now`, over this shard's replicas only.
                obs.maybe_sample(now, self._gauge_rows)

            if next_arrival <= next_internal:
                key, request = arrivals[arrival_index]
                arrival_index += 1
                instance = self.instances[key]
                instance.submit(request, now)
                instance.advance_to(now)
                self.queue.update(key, instance.next_event_time())
                events += 1
            else:
                due = self.queue.pop_due(now)
                for key in due:
                    instance = self.instances[key]
                    instance.advance_to(now)
                    self.queue.update(key, instance.next_event_time())
                events += max(len(due), 1)

            if events > task.max_events:
                raise SimulationError(
                    f"fleet simulation exceeded {task.max_events} events"
                )

        obs.finalize(now)
        replicas = []
        for key, name, _spec in task.replicas:
            instance = self.instances[key]
            cache = instance.kv.stats()
            replicas.append({
                "key": key,
                "name": name,
                "finished": instance.finished_requests,
                "rejected": instance.rejected_requests,
                "busy_time": instance.busy_time,
                "cache_requests": cache.requests,
                "request_hit_rate": cache.request_hit_rate,
                "token_hit_rate": cache.token_hit_rate,
                "offload_stats": cache.offload_stats,
            })
        return {
            "shard_id": task.shard_id,
            "seed": task.seed,
            "events": events,
            "end_time": now,
            "replicas": replicas,
            "obs": obs.payload() if obs.enabled else None,
        }


def _run_shard(task: _ShardTask) -> dict:
    """Process-pool entry point: build and drain one shard."""
    return ShardEngine(task).run()


def simulate_fleet_decoupled(fleet, requests, plan: ShardPlan, *,
                             lookahead: float,
                             shard_workers: int | None = None,
                             max_simulated_seconds: float = 1e7,
                             max_events: int = 10_000_000):
    """Run a decoupled fleet sharded, optionally across worker processes.

    The caller (``simulate_fleet``) has already checked
    :func:`fleet_is_decoupled`.  The coordinator routes every arrival through
    the fleet's own router — identical calls in identical order to the
    unsharded loop, so identical decisions — then fans the per-shard
    substreams out and merges the payloads back in replica-key order.

    ``shard_workers=None`` uses one worker per shard up to the CPU count;
    ``<= 1`` runs the shard engines serially in-process (identical results —
    the property ``tests/test_sharded_identity.py`` pins).
    """
    import os

    from repro.simulation.metrics import summarize_finished, summarize_fleet
    from repro.simulation.simulator import FleetSimulationResult

    pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    manifest = fleet.shard_manifest()

    # Pre-route.  The router sees the same (request, depths=[]) calls in the
    # same order as the unsharded loop, so stateful routers (user-id
    # round-robin) make the same decisions.  The coordinator's recorder gets
    # the same submit/route events the unsharded loop emits, at the same
    # simulated times (the arrival times), in the same order — only the
    # wall-clock moment of recording differs, which the span format never
    # sees.
    obs = fleet.obs
    shard_arrivals: list[list] = [[] for _ in range(plan.num_shards)]
    keys = [entry[0] for entry in manifest]
    names = [entry[1] for entry in manifest]
    for request in pending:
        index = fleet.router.route(request, [])
        key = keys[index]
        shard_arrivals[plan.owner(key)].append((key, request))
        if obs.enabled:
            obs.emit(
                request.arrival_time, GLOBAL_KEY, "submit",
                request=request.request_id,
            )
            obs.emit(
                request.arrival_time, key, "route",
                request=request.request_id, replica=names[index],
            )
    fleet.stats.num_submitted += len(pending)
    fleet.stats.num_routed += len(pending)

    tasks = []
    for shard_id in range(plan.num_shards):
        replicas = tuple(
            entry for entry in manifest if plan.owner(entry[0]) == shard_id
        )
        if not replicas:
            continue
        tasks.append(_ShardTask(
            shard_id=shard_id,
            seed=plan.shard_seeds[shard_id],
            replicas=replicas,
            model=fleet.model,
            max_input_length=fleet.max_input_length,
            fast_paths=fleet.engine_fast_paths,
            arrivals=tuple(shard_arrivals[shard_id]),
            max_simulated_seconds=max_simulated_seconds,
            max_events=max_events,
            obs_config=obs.config if obs.enabled else None,
            tenant_slos=tuple(sorted(obs.tenant_slos.items())) if obs.enabled else (),
        ))

    if shard_workers is None:
        shard_workers = min(plan.num_shards, os.cpu_count() or 1)
    runner = ParallelRunner(max_workers=shard_workers)
    payloads = runner.map(_run_shard, tasks)

    # Merge in replica-key order — the fleet's `_all_states()` results order,
    # so concatenated lists (and the order-sensitive float reductions over
    # them) are bit-identical to the unsharded run.
    rows = sorted(
        (row for payload in payloads for row in payload["replicas"]),
        key=lambda row: row["key"],
    )
    finished = [record for row in rows for record in row["finished"]]
    rejected = [record for row in rows for record in row["rejected"]]
    events = sum(payload["events"] for payload in payloads)
    end_time = max((payload["end_time"] for payload in payloads), default=0.0)
    if events > max_events:
        raise SimulationError(f"fleet simulation exceeded {max_events} events")

    cache_stats = [
        {
            "instance": row["name"],
            "requests": row["cache_requests"],
            "request_hit_rate": round(row["request_hit_rate"], 3),
            "token_hit_rate": round(row["token_hit_rate"], 3),
        }
        for row in rows
    ]
    reports = []
    for row in rows:
        busy = row["busy_time"]
        report = {
            "replica": row["name"],
            "finished": len(row["finished"]),
            "busy_s": round(busy, 3),
            "active_s": round(end_time, 3),
            "utilization": min(busy / end_time, 1.0) if end_time > 0 else 0.0,
            "request_hit_rate": row["request_hit_rate"],
            "token_hit_rate": row["token_hit_rate"],
            "retired": False,
        }
        if row["offload_stats"] is not None:
            report["offload_stored"] = row["offload_stats"]["stored_blocks"]
            report["offload_loaded"] = row["offload_stats"]["loaded_blocks"]
            report["offload_evicted"] = row["offload_stats"]["evicted_blocks"]
        reports.append(report)

    summary = summarize_finished(finished, rejected)
    return FleetSimulationResult(
        fleet_name=fleet.name,
        finished=finished,
        rejected=rejected,
        shed=[],
        summary=summary,
        fleet=summarize_fleet(
            reports,
            scale_events=(),
            num_scale_ups=0,
            num_scale_downs=0,
            num_shed=0,
            num_replicas=fleet.num_replicas,
            peak_replicas=fleet.stats.peak_replicas,
            tiers=None,
            resilience=None,
        ),
        cache_stats=cache_stats,
        num_events=events,
        sharding={
            "mode": "parallel",
            "shards": plan.num_shards,
            "workers": shard_workers,
            "executed": runner.last_mode,
            "lookahead_s": lookahead,
            "shard_seeds": list(plan.shard_seeds),
        },
        obs=(
            merge_shard_payloads(
                obs, [p["obs"] for p in payloads if p.get("obs") is not None],
            )
            if obs.enabled else None
        ),
    )
