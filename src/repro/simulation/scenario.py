"""The workload scenario engine: config-driven multi-tenant simulations.

A *scenario* bundles everything one simulated serving deployment needs —
which tenants send traffic (workload + parameters + arrival process + SLO),
what serves it (engine, hardware setup, replica count, router, admission
control, autoscaling) — into one declarative :class:`ScenarioSpec` that can be
loaded from a JSON file, run, recorded to a ``repro-trace/v1`` JSONL file, and
replayed bit-for-bit.  The ``prefillonly scenario`` CLI subcommand is a thin
wrapper around this module; ``docs/SCENARIOS.md`` is the cookbook of worked
examples.

Config file shape (JSON)::

    {
      "name": "bursty-mix",
      "engine": "prefillonly",          // registered engine spec
      "setup": "h100",                  // registered hardware setup
      "replicas": 4,                    // omit for one replica per GPU
      "router": "user-id",              // user-id | least-loaded | prefix-affinity
      "max_queue_depth": 32,            // optional admission control
      "autoscale": {                    // optional reactive autoscaler
        "min_replicas": 1, "max_replicas": 8,
        "scale_up_rps_per_replica": 2.0,
        "window_seconds": 30.0, "cooldown_seconds": 60.0
      },
      "kv_tiers": {                     // optional tiered prefix cache
        "enabled": true,                // (see docs/KV_TIERS.md)
        "tiers": {"host": {"capacity_gib": 4.0},
                   "cluster": {"capacity_gib": 16.0}}
      },
      "faults": {                       // optional chaos schedule
        "enabled": true,                // (see docs/FAULTS.md)
        "events": [{"kind": "crash", "replica": 0,
                     "at": 60.0, "recover_at": 120.0}]
      },
      "seed": 0,
      "tenants": [
        {
          "name": "social",
          "workload": "post-recommendation",
          "workload_params": {"num_users": 6, "posts_per_user": 10},
          "weight": 1.0,
          "slo_latency_s": 2.0,
          "arrival": "mmpp",
          "arrival_params": {"base_rate": 2.0, "burst_rate": 12.0}
        }
      ]
    }

Determinism: every random choice is owned by an explicit seed — the workload
generators' (``workload_params.seed``, defaulting to the scenario seed), the
arrival processes' (``arrival_params.seed``, defaulting to the scenario seed
plus the tenant index plus one, so the default streams never collide), and
the mixer's subsampling (salted from the scenario seed) — so the same config
always produces the same request stream, and a recorded trace replays to the
exact same metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.registry import get_engine_spec
from repro.cluster import Fleet, QueueDepthAdmission, ReactiveAutoscaler
from repro.errors import ScenarioError
from repro.faults import FaultSchedule, fault_schedule_from_model
from repro.hardware.cluster import get_hardware_setup
from repro.kvcache.tiers import ShardStoreBus, TierConfig
from repro.kvcache.tiers.config import tier_config_from_model
from repro.obs.analysis import alert_rule_from_model
from repro.obs.logging import get_logger, set_context
from repro.obs.recorder import DEFAULT_LATENCY_BUCKETS, ObsConfig, TraceRecorder
from repro.perf.runner import ParallelRunner, resolve_runner
from repro.resilience.config import ResilienceConfig, resilience_from_model
from repro.simulation.arrival import make_arrival
from repro.spec.core import from_dict, to_dict
from repro.spec.models import ScenarioModel, TenantModel
from repro.simulation.metrics import LatencySummary, summarize_finished
from repro.simulation.routing import make_router
from repro.simulation.simulator import FleetSimulationResult, simulate_fleet
from repro.workloads.mixer import MixedTrace, TenantSpec, mix_tenants
from repro.workloads.trace import Request
from repro.workloads.tracefile import load_trace, save_trace

__all__ = [
    "ScenarioSpec",
    "TenantReport",
    "ScenarioResult",
    "scenario_from_dict",
    "scenario_from_model",
    "load_scenario",
    "build_mix",
    "run_scenario",
    "replay_scenario",
    "discover_scenarios",
    "run_scenario_suite",
]

_AUTOSCALE_KEYS = {
    "min_replicas", "max_replicas", "scale_up_rps_per_replica",
    "window_seconds", "cooldown_seconds",
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully described serving scenario (see the module docstring)."""

    name: str
    tenants: tuple[TenantSpec, ...]
    engine: str = "prefillonly"
    setup: str = "h100"
    replicas: int | None = None
    router: str = "user-id"
    max_queue_depth: int | None = None
    autoscale: dict | None = None
    seed: int = 0
    max_input_length: int | None = None
    #: Tiered prefix-cache configuration, parsed from the ``"kv_tiers"``
    #: config block (None or ``enabled: false`` runs without tiering, with
    #: results byte-identical to a config that omits the block entirely).
    kv_tiers: TierConfig | None = None
    #: Fault schedule, parsed from the ``"faults"`` config block (see
    #: ``docs/FAULTS.md``).  None or ``enabled: false`` injects nothing, with
    #: results byte-identical to a config that omits the block entirely.
    faults: FaultSchedule | None = None
    #: Shard count for the sharded simulation engine (see
    #: ``docs/SHARDING.md``).  1 runs the original unsharded loop; any value
    #: produces byte-identical results (pinned by the differential suite).
    shards: int = 1
    #: Explicit conservative lookahead window in simulated seconds; None
    #: derives it from the modelled interconnect latency.
    lookahead: float | None = None
    #: Observability configuration, parsed from the ``"observability"``
    #: config block (see ``docs/OBSERVABILITY.md``).  None or ``enabled:
    #: false`` records nothing, with results byte-identical to a config that
    #: omits the block entirely.
    observability: ObsConfig | None = None
    #: Resilience policies, parsed from the ``"resilience"`` config block
    #: (see ``docs/RESILIENCE.md``).  None, ``enabled: false``, or a block
    #: with no sub-policies changes nothing, with results byte-identical to a
    #: config that omits the block entirely.
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ScenarioError(f"scenario {self.name!r} has no tenants")
        if self.replicas is not None and self.replicas < 1:
            raise ScenarioError(f"scenario {self.name!r}: replicas must be >= 1")
        if self.shards < 1:
            raise ScenarioError(f"scenario {self.name!r}: shards must be >= 1")
        if self.lookahead is not None and self.lookahead <= 0:
            raise ScenarioError(
                f"scenario {self.name!r}: lookahead must be positive"
            )
        if self.autoscale is not None:
            unknown = set(self.autoscale) - _AUTOSCALE_KEYS
            if unknown:
                raise ScenarioError(
                    f"scenario {self.name!r}: unknown autoscale keys {sorted(unknown)}"
                )


def _tenant_from_model(model: TenantModel, *, index: int,
                       scenario_seed: int) -> TenantSpec:
    workload_params = dict(model.workload_params)
    workload_params.setdefault("seed", scenario_seed)
    arrival_params = dict(model.arrival_params)
    # Offset by index + 1 so no tenant's arrival stream shares a seed with
    # another tenant's, nor with the workload generators' default above.
    arrival_params.setdefault("seed", scenario_seed + index + 1)
    return TenantSpec(
        name=model.name,
        workload=model.workload,
        arrival=make_arrival(model.arrival, **arrival_params),
        workload_params=workload_params,
        weight=model.weight,
        slo_latency_s=model.slo_latency_s,
    )


def scenario_from_dict(config: dict) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a plain config dict.

    A thin wrapper over the declarative spec layer: the config parses into a
    :class:`~repro.spec.models.ScenarioModel` (types, defaults, ranges,
    unknown-key rejection with JSON paths, ``"version"`` handling), which
    :func:`scenario_from_model` converts into the runtime spec.

    Raises:
        ScenarioError: on unknown or missing keys (typos fail loudly rather
            than silently falling back to defaults).  Spec-layer failures are
            :class:`~repro.errors.ScenarioSpecError`, a subclass.
    """
    return scenario_from_model(from_dict(ScenarioModel, config))


def scenario_from_model(model: ScenarioModel) -> ScenarioSpec:
    """Convert a parsed :class:`~repro.spec.models.ScenarioModel` to a spec.

    The service half of the model/service split.  Everything the spec layer
    cannot know lives here: seed-defaulting for tenant workload and arrival
    streams, arrival-process construction, and compiling the nested
    ``kv_tiers`` / ``faults`` models into their runtime objects.
    """
    tenants = tuple(
        _tenant_from_model(entry, index=index, scenario_seed=model.seed)
        for index, entry in enumerate(model.tenants)
    )
    kv_tiers = None
    if model.kv_tiers is not None:
        kv_tiers = tier_config_from_model(model.kv_tiers)
    faults = None
    if model.faults is not None:
        faults = fault_schedule_from_model(
            model.faults, default_replicas=model.replicas
        )
    observability = None
    if model.observability is not None:
        obs_model = model.observability
        observability = ObsConfig(
            enabled=obs_model.enabled,
            spans=obs_model.spans,
            metrics=obs_model.metrics,
            sample_interval_s=obs_model.sample_interval_s,
            latency_buckets=(
                tuple(obs_model.latency_buckets) if obs_model.latency_buckets
                else DEFAULT_LATENCY_BUCKETS
            ),
            alerts=tuple(
                alert_rule_from_model(rule) for rule in obs_model.alerts
            ),
        )
    resilience = None
    if model.resilience is not None:
        compiled = resilience_from_model(model.resilience)
        if compiled.active:
            resilience = compiled
    return ScenarioSpec(
        name=model.name,
        tenants=tenants,
        engine=model.engine,
        setup=model.setup,
        replicas=model.replicas,
        router=model.router,
        max_queue_depth=model.max_queue_depth,
        autoscale=to_dict(model.autoscale) if model.autoscale is not None else None,
        seed=model.seed,
        max_input_length=model.max_input_length,
        kv_tiers=kv_tiers,
        faults=faults,
        shards=model.shards,
        lookahead=model.lookahead,
        observability=observability,
        resilience=resilience,
    )


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load a scenario config from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"scenario config not found: {path}")
    try:
        config = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid JSON ({exc})") from None
    if not isinstance(config, dict):
        raise ScenarioError(f"{path}: scenario config must be a JSON object")
    return scenario_from_dict(config)


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant slice of one scenario run."""

    name: str
    summary: LatencySummary
    slo_latency_s: float | None = None
    slo_attainment: float | None = None
    #: Crash-evacuated requests of this tenant that were re-routed; None on
    #: fault-free runs (the report column only appears under chaos).
    retried: int | None = None

    def as_dict(self) -> dict:
        """Row for the per-tenant report table."""
        row = {
            "tenant": self.name,
            "requests": self.summary.num_requests,
            "rejected": self.summary.num_rejected,
            "mean_latency_s": round(self.summary.mean_latency, 3),
            "p99_latency_s": round(self.summary.p99_latency, 3),
            "throughput_rps": round(self.summary.throughput_rps, 3),
            "slo_s": self.slo_latency_s if self.slo_latency_s is not None else "-",
            "slo_attainment": (
                round(self.slo_attainment, 3) if self.slo_attainment is not None else "-"
            ),
        }
        if self.retried is not None:
            row["retried"] = self.retried
        return row


@dataclass
class ScenarioResult:
    """Everything a scenario run produces.

    Attributes:
        spec: The scenario that ran.
        result: The fleet-level simulation result.
        tenants: Per-tenant reports, in the spec's tenant order.
        trace_path: Where the request stream was recorded, if it was.
        fleet: The live :class:`~repro.cluster.Fleet`, only when the run was
            asked to ``keep_fleet`` (the KV-residency invariant checks read
            it); None by default so suite results stay cheaply picklable
            across worker processes.
    """

    spec: ScenarioSpec
    result: FleetSimulationResult
    tenants: list[TenantReport] = field(default_factory=list)
    trace_path: Path | None = None
    fleet: Fleet | None = None


def build_mix(spec: ScenarioSpec) -> MixedTrace:
    """Generate the scenario's merged multi-tenant request stream."""
    return mix_tenants(spec.tenants, name=spec.name, seed=spec.seed)


def _build_fleet(spec: ScenarioSpec, max_input_length: int, *,
                 use_event_queue: bool, engine_fast_paths: bool) -> Fleet:
    admission = None
    if spec.max_queue_depth is not None:
        admission = QueueDepthAdmission(spec.max_queue_depth)
    autoscaler = None
    if spec.autoscale is not None:
        autoscaler = ReactiveAutoscaler(**spec.autoscale)
    recorder = None
    if spec.observability is not None and spec.observability.enabled:
        recorder = TraceRecorder(
            spec.observability,
            tenant_slos={
                tenant.name: tenant.slo_latency_s
                for tenant in spec.tenants
                if tenant.slo_latency_s is not None
            },
        )
    return Fleet.for_setup(
        get_engine_spec(spec.engine), get_hardware_setup(spec.setup),
        max_input_length=max_input_length,
        num_replicas=spec.replicas,
        router=make_router(spec.router, spec.replicas or 1),
        admission=admission,
        autoscaler=autoscaler,
        name=spec.name,
        use_event_queue=use_event_queue,
        engine_fast_paths=engine_fast_paths,
        tier_config=spec.kv_tiers,
        # Sharded tiered runs talk to the L3 store through the versioned,
        # latency-stamped message bus (transparent: results are identical).
        cluster_service=ShardStoreBus if spec.shards > 1 else None,
        recorder=recorder,
        policies=spec.resilience,
    )


def _tenant_reports(spec: ScenarioSpec, requests: list[Request],
                    result: FleetSimulationResult,
                    retried_ids: list[int] | None = None) -> list[TenantReport]:
    """Slice the fleet result per tenant in one pass over the records.

    Args:
        retried_ids: Request ids the fleet re-routed after crashes (one entry
            per retry).  None — the fault-free default — leaves the tenants'
            ``retried`` fields unset so existing report rows are unchanged.
    """
    tenant_of = {
        request.request_id: request.metadata.get("tenant") for request in requests
    }
    retried_by_tenant: dict[str, int] | None = None
    if retried_ids is not None:
        retried_by_tenant = {}
        for request_id in retried_ids:
            tenant = tenant_of.get(request_id)
            if tenant is not None:
                retried_by_tenant[tenant] = retried_by_tenant.get(tenant, 0) + 1
    finished: dict[str, list] = {tenant.name: [] for tenant in spec.tenants}
    rejected: dict[str, list] = {tenant.name: [] for tenant in spec.tenants}
    for record in result.finished:
        tenant = tenant_of.get(record.request_id)
        if tenant in finished:
            finished[tenant].append(record)
    for record in result.rejected:
        tenant = tenant_of.get(record.request_id)
        if tenant in rejected:
            rejected[tenant].append(record)
    reports = []
    for tenant in spec.tenants:
        summary = summarize_finished(finished[tenant.name], rejected[tenant.name])
        attainment = None
        if tenant.slo_latency_s is not None and finished[tenant.name]:
            within = sum(
                1 for record in finished[tenant.name]
                if record.latency <= tenant.slo_latency_s
            )
            attainment = within / len(finished[tenant.name])
        reports.append(TenantReport(
            name=tenant.name,
            summary=summary,
            slo_latency_s=tenant.slo_latency_s,
            slo_attainment=attainment,
            retried=(
                retried_by_tenant.get(tenant.name, 0)
                if retried_by_tenant is not None else None
            ),
        ))
    return reports


def run_scenario(spec: ScenarioSpec, *, record: str | Path | None = None,
                 requests: list[Request] | None = None,
                 use_event_queue: bool = True,
                 engine_fast_paths: bool = True,
                 keep_fleet: bool = False) -> ScenarioResult:
    """Run a scenario end to end.

    Args:
        spec: The scenario to run.
        record: Optional path; when given, the generated request stream (with
            its arrival times) is saved as a ``repro-trace/v1`` JSONL file
            before the simulation runs.
        requests: Pre-built request stream (used by :func:`replay_scenario`);
            skips workload generation and arrival assignment entirely.
        use_event_queue / engine_fast_paths: Fast-path switches, identical
            results either way (see :class:`repro.cluster.Fleet`).
        keep_fleet: Attach the simulated fleet to the result so callers (the
            invariant checks) can inspect end-of-run KV residency; off by
            default because a fleet does not pickle across suite workers.
    """
    set_context(seed=spec.seed)
    logger = get_logger("scenario")
    if requests is None:
        requests = build_mix(spec).requests
    if not requests:
        raise ScenarioError(f"scenario {spec.name!r} produced no requests")
    logger.info("running scenario %r: %d requests, %d replicas, %d shard(s)",
                spec.name, len(requests), spec.replicas or 0, spec.shards)
    trace_path = None
    if record is not None:
        trace_path = save_trace(
            record, requests, name=spec.name, seed=spec.seed,
            description={"tenants": [tenant.name for tenant in spec.tenants]},
        )
    max_input_length = spec.max_input_length
    if max_input_length is None:
        max_input_length = max(request.num_tokens for request in requests)
    fleet = _build_fleet(
        spec, max_input_length,
        use_event_queue=use_event_queue, engine_fast_paths=engine_fast_paths,
    )
    chaos = (spec.faults is not None and spec.faults.active) or (
        spec.resilience is not None
    )
    result = simulate_fleet(
        fleet, requests, faults=spec.faults,
        shards=spec.shards,
        lookahead=spec.lookahead,
        # Scenario runs keep the shard engines in-process: the suite runner
        # already parallelizes across scenarios, and `keep_fleet` callers
        # (the invariant checks) need the fully simulated fleet object,
        # which only the globally-sequenced lockstep mode produces.
        shard_workers=1,
        shard_mode="lockstep" if keep_fleet else "auto",
        shard_seed=spec.seed,
    )
    logger.info("scenario %r finished: %d completed, %d rejected, %d events",
                spec.name, result.summary.num_requests,
                result.summary.num_rejected, result.num_events)
    return ScenarioResult(
        spec=spec,
        result=result,
        tenants=_tenant_reports(
            spec, requests, result,
            retried_ids=fleet.retried_request_ids if chaos else None,
        ),
        trace_path=trace_path,
        fleet=fleet if keep_fleet else None,
    )


def discover_scenarios(directory: str | Path) -> list[Path]:
    """The scenario config files of a suite directory, in sorted order.

    Raises:
        ScenarioError: when the directory does not exist or holds no configs.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ScenarioError(f"scenario suite directory not found: {directory}")
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise ScenarioError(f"no scenario configs (*.json) under {directory}")
    return paths


def _suite_task(task: tuple) -> ScenarioResult:
    """Load and run one scenario config (module-level for the parallel runner)."""
    path, use_event_queue, engine_fast_paths = task
    spec = load_scenario(path)
    return run_scenario(
        spec, use_event_queue=use_event_queue, engine_fast_paths=engine_fast_paths,
    )


def run_scenario_suite(scenarios: str | Path | list[str | Path], *,
                       runner: ParallelRunner | None = None,
                       max_workers: int | None = None,
                       use_event_queue: bool = True,
                       engine_fast_paths: bool = True) -> list[ScenarioResult]:
    """Run a whole suite of scenario configs, optionally across processes.

    Args:
        scenarios: A directory of ``*.json`` configs (run in sorted order) or
            an explicit list of config paths (run in the given order).
        runner / max_workers: Optional parallel fan-out — each scenario is an
            independent simulation, and each worker re-derives the request
            stream from the config's explicit seeds, so parallel results are
            byte-identical to a serial run.
        use_event_queue / engine_fast_paths: Fast-path switches passed through
            to every :func:`run_scenario`.

    Returns:
        One :class:`ScenarioResult` per config, in config order.
    """
    if isinstance(scenarios, (str, Path)):
        paths = discover_scenarios(scenarios)
    else:
        paths = [Path(path) for path in scenarios]
        if not paths:
            raise ScenarioError("run_scenario_suite needs at least one scenario")
    active = resolve_runner(runner, max_workers)
    tasks = [(str(path), use_event_queue, engine_fast_paths) for path in paths]
    return active.map(_suite_task, tasks)


def replay_scenario(spec: ScenarioSpec, trace_path: str | Path, *,
                    use_event_queue: bool = True,
                    engine_fast_paths: bool = True) -> ScenarioResult:
    """Replay a recorded trace through the scenario's serving configuration.

    The trace supplies the exact request stream (ids, token segments, arrival
    times); the spec supplies the fleet.  Replaying a trace recorded from the
    same spec reproduces the original run's metrics exactly.
    """
    _, requests = load_trace(trace_path)
    return run_scenario(
        spec, requests=requests,
        use_event_queue=use_event_queue, engine_fast_paths=engine_fast_paths,
    )
