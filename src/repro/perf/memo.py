"""Process-wide switchboard for the analytic-model memoization layers.

Several hot analytic paths memoize their results:

* :class:`repro.model.latency.LatencyModel` keeps an LRU of prefill / decode
  timings keyed on the full argument tuple;
* :func:`repro.core.profile_run.run_profile` interns profile-run results per
  (model, GPU, MIL, execution knobs) — a 32-replica fleet runs the profile
  pass once instead of 32 times;
* :meth:`repro.core.jct.JCTEstimator.from_latency_model` interns fitted
  estimators per engine configuration;
* :class:`repro.workloads.trace.TokenSequence` interns block hash chains
  globally (see :class:`repro.kvcache.block.HashChainCache`), so shared
  prefixes are hashed once per trace instead of once per request.

Every memoized value is **bit-identical** to a fresh computation (the caches
store exactly what the uncached code path would have returned, keyed on every
input that affects the result), so memoization never changes simulation
results.  The global switch exists purely for measurement: the perf harness
(:mod:`repro.perf.harness`) times the pinned suite with memoization off and on
to report the speedup, and the test suite pins the on/off equivalence.

Set the ``REPRO_NO_MEMO=1`` environment variable to start a process with
memoization disabled, or call :func:`set_memo_enabled` at runtime (which also
clears every registered cache, so a disabled run never serves stale hits and
an enabled run starts cold).
"""

from __future__ import annotations

import os
from typing import Callable

__all__ = [
    "memo_enabled",
    "memo_epoch",
    "set_memo_enabled",
    "register_cache",
    "clear_all_caches",
]

_enabled: bool = os.environ.get("REPRO_NO_MEMO", "").lower() not in ("1", "true", "yes")

#: Clear-callbacks of every registered *module-level* cache.  Per-instance
#: caches (e.g. :class:`~repro.model.latency.LatencyModel`'s memos) must NOT
#: register here — a global registration would pin the instance forever;
#: they watch :func:`memo_epoch` instead and clear themselves lazily.
_cache_clearers: list[Callable[[], None]] = []

#: Bumped on every switch flip / global clear; epoch-watching caches treat a
#: change as "drop everything".
_epoch: int = 0


def memo_enabled() -> bool:
    """True when the memoization layers are active (the default)."""
    return _enabled


def memo_epoch() -> int:
    """Monotonic counter that advances whenever the caches must be dropped."""
    return _epoch


def set_memo_enabled(enabled: bool) -> None:
    """Enable or disable every memoization layer and clear all caches.

    Clearing on *every* transition keeps both directions honest: disabling
    cannot serve stale hits, and enabling starts from a cold cache exactly
    like a fresh process would.
    """
    global _enabled
    _enabled = bool(enabled)
    clear_all_caches()


def register_cache(clear: Callable[[], None]) -> None:
    """Register a module-level cache's clear-callback with the switchboard."""
    _cache_clearers.append(clear)


def clear_all_caches() -> None:
    """Empty every registered cache and invalidate the epoch-watching ones."""
    global _epoch
    _epoch += 1
    for clear in _cache_clearers:
        clear()
