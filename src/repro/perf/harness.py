"""The standing perf-regression harness.

``BENCH_<label>.json`` files at the repo root record the repo's performance
trajectory: every PR that claims a perf win (or might cost one) runs this
harness and commits the result, and CI replays it against the committed
baseline (``make perf``).  The harness times a **pinned suite** — the same
five cases, with the same seeds, at a named scale — and reports, per case,
wall-clock seconds, processed events, events per second, and the process's
peak RSS high-water mark:

* ``single-engine``  — a QPS sweep of the paper's engine on one serving system;
* ``fleet-4``        — a 4-replica fleet under bursty (MMPP) arrivals;
* ``fleet-tiered``   — the same fleet with the GPU -> host -> cluster tiered
  prefix cache enabled;
* ``fleet-chaos``    — the tiered fleet under a pinned fault schedule (a
  crash/recover cycle, a slow node, a brownout, an L3 outage), exercising
  the fault-injection and recovery paths;
* ``fleet-32-loop``  — a 32-replica, closed-loop-driven fleet with the fitted
  JCT scheduler (loop-bound: dominated by per-event bookkeeping and replica
  startup, the paths the profile-run / JCT-estimator memos accelerate);
* ``analytic``       — the analytic models alone (JCT profiling grids,
  estimator fits, decode-latency curves, the Table 2 MIL matrix), the paths
  the latency-model LRU accelerates.

Two cross-checks ride along, both hard failures (:class:`~repro.errors.PerfCheckError`)
rather than measurements:

* **parallel = serial**: the bench-sweep fan-out is run serially and with N
  workers and the two results must serialise to identical JSON bytes;
* **memo on = memo off**: the whole pinned suite is run with memoization
  disabled and enabled, and every case's result signature (raw, unrounded
  floats) must match exactly.

The harness runs from :func:`run_harness` (the ``prefillonly perf`` CLI
subcommand and ``scripts/perf_report.py`` wrap it).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.ablation import mil_ablation
from repro.analysis.mil import mil_table
from repro.analysis.sweep import compare_engines, qps_sweep, run_once
from repro.baselines.registry import all_engine_specs, get_engine_spec
from repro.cluster import Fleet
from repro.core.jct import JCTEstimator, JCTProfiler, jct_pearson_correlation
from repro.errors import ConfigurationError, PerfCheckError
from repro.faults import fault_schedule_from_dict
from repro.hardware.cluster import get_hardware_setup
from repro.kvcache.tiers import TierConfig
from repro.model.config import get_model
from repro.model.latency import LatencyModel
from repro.obs import profiler
from repro.perf import memo
from repro.perf.runner import ParallelRunner
from repro.simulation.arrival import make_arrival
from repro.simulation.routing import make_router
from repro.simulation.simulator import simulate_fleet
from repro.workloads.registry import get_workload

__all__ = [
    "SCALES",
    "PINNED_CASES",
    "CaseResult",
    "run_case",
    "run_suite",
    "measure_memoization",
    "measure_parallel",
    "run_harness",
    "format_harness_report",
    "bench_path",
]

#: Harness scales: ``tiny`` keeps the test suite fast, ``small`` is the CI /
#: default scale, ``paper`` uses the paper-sized workloads.
SCALES = ("tiny", "small", "paper")

#: Workload sizes per scale: (post-rec users, posts per user, credit users,
#: analytic MIL grid tokens, analytic granularity).
_SCALE_PARAMS = {
    "tiny": (3, 4, 4, 8_000, 2_000),
    "small": (8, 50, 10, 20_000, 250),
    "paper": (20, 50, 60, 61_000, 500),
}


def _check_scale(scale: str) -> tuple:
    try:
        return _SCALE_PARAMS[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown harness scale {scale!r}; expected one of {SCALES}"
        ) from None


@dataclass(frozen=True)
class CaseResult:
    """One timed case of the pinned suite.

    ``signature`` is a canonical JSON string of the case's raw (unrounded)
    result metrics — what the memo on/off and parallel/serial cross-checks
    compare byte for byte.  ``peak_rss_kib`` is the process high-water mark
    *after* the case ran (``ru_maxrss`` is monotonic, so attribute spikes to
    the first case whose value jumps).  ``phases`` is the hot-loop
    self-profiler's wall-clock breakdown (arrival / advance / fault /
    autoscale / sample) for cases that run the simulator loops; the analytic
    case, which never enters a loop, reports none.
    """

    name: str
    wall_s: float
    events: int
    peak_rss_kib: int
    signature: str
    phases: dict | None = None

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        result = {
            "name": self.name,
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "events_per_s": round(self.events_per_s, 1),
            "peak_rss_kib": self.peak_rss_kib,
        }
        if self.phases:
            result["phases"] = self.phases
        return result


def _signature(payload) -> str:
    """Canonical JSON of raw metrics — byte-identical iff the floats are."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _summary_payload(result) -> list:
    summary = result.summary
    return [
        summary.num_requests, summary.num_rejected,
        summary.mean_latency, summary.p99_latency,
        summary.throughput_rps, summary.cache_hit_rate,
        result.num_events,
    ]


# ------------------------------------------------------------- pinned cases


def _case_single_engine(scale: str) -> tuple[int, str]:
    users, posts, _, _, _ = _check_scale(scale)
    spec = get_engine_spec("prefillonly")
    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=users,
                         posts_per_user=posts, seed=0)
    events = 0
    payload = []
    for qps in (2.0, 8.0, 32.0):
        result = run_once(spec, setup, trace, qps=qps, seed=0)
        events += result.num_events
        payload.append(_summary_payload(result))
    return events, _signature(payload)


def _fleet_case(scale: str, *, replicas: int, arrival_name: str,
                arrival_params: dict, tier_config: TierConfig | None = None,
                fitted_jct: bool = False, faults=None) -> tuple[int, str]:
    users, posts, _, _, _ = _check_scale(scale)
    spec = get_engine_spec("prefillonly")
    if fitted_jct:
        spec = spec.with_overrides(use_fitted_jct=True)
    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=users,
                         posts_per_user=posts, seed=1)
    fleet = Fleet.for_setup(
        spec, setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=replicas,
        router=make_router("user-id", replicas),
        name=f"harness-{replicas}",
        tier_config=tier_config,
    )
    requests = make_arrival(arrival_name, **arrival_params).assign(list(trace.requests))
    result = simulate_fleet(fleet, requests, faults=faults)
    payload = _summary_payload(result)
    resilience = result.fleet.resilience
    if resilience is not None:
        payload.append([
            resilience.num_crashes, resilience.num_recoveries,
            resilience.num_retried, resilience.lost_work_tokens,
            resilience.lost_kv_tokens, resilience.warm_restored_blocks,
            resilience.warm_restore_hit_rate, resilience.goodput_ratio,
        ])
    return result.num_events, _signature(payload)


def _case_fleet_4(scale: str) -> tuple[int, str]:
    return _fleet_case(
        scale, replicas=4, arrival_name="mmpp",
        arrival_params={"base_rate": 4.0, "burst_rate": 40.0, "seed": 2},
    )


def _case_fleet_tiered(scale: str) -> tuple[int, str]:
    return _fleet_case(
        scale, replicas=4, arrival_name="mmpp",
        arrival_params={"base_rate": 4.0, "burst_rate": 40.0, "seed": 2},
        tier_config=TierConfig(enabled=True, host_gib=2.0, cluster_gib=8.0),
    )


def _case_fleet_chaos(scale: str) -> tuple[int, str]:
    """The tiered fleet under a pinned chaos schedule (determinism included).

    The schedule mixes every fault kind; the signature folds in the
    resilience counters, so the memo on/off and parallel/serial cross-checks
    also pin that fault handling never depends on cache state.
    """
    faults = fault_schedule_from_dict({
        "enabled": True,
        "warm_restore_blocks": 256,
        "events": [
            {"kind": "crash", "replica": 0, "at": 2.0, "recover_at": 7.0},
            {"kind": "slow", "replica": 2, "at": 1.0, "duration": 6.0,
             "multiplier": 2.5},
            {"kind": "brownout", "at": 3.0, "duration": 4.0, "multiplier": 4.0},
            {"kind": "outage", "at": 5.0, "duration": 2.0},
            {"kind": "crash", "replica": 0, "at": 10.0, "recover_at": 13.0},
        ],
    })
    return _fleet_case(
        scale, replicas=4, arrival_name="mmpp",
        arrival_params={"base_rate": 4.0, "burst_rate": 40.0, "seed": 2},
        tier_config=TierConfig(enabled=True, host_gib=2.0, cluster_gib=8.0),
        faults=faults,
    )


def _case_fleet_32_loop(scale: str) -> tuple[int, str]:
    return _fleet_case(
        scale, replicas=32, arrival_name="closed-loop",
        arrival_params={"num_clients": 64, "mean_think_seconds": 0.2,
                        "service_estimate_seconds": 0.3, "seed": 3},
        fitted_jct=True,
    )


def _case_fleet_1024_shard(scale: str) -> tuple[int, str]:
    """The "millions of users" fleet size: 1024 replicas, diurnal arrivals, sharded.

    Runs the decoupled sharded engine (:mod:`repro.simulation.sharded`) over a
    user-id-routed fleet — one user per replica so the whole fleet sees
    traffic.  Shard count and worker processes come from ``REPRO_SHARD_COUNT``
    (default 4) and ``REPRO_SHARD_WORKERS`` (default 1: shard engines run
    in-process, deterministic everywhere, and safe inside the harness's own
    worker pools).  On a multi-core machine, compare
    ``REPRO_SHARD_WORKERS=4`` against ``REPRO_SHARD_COUNT=1`` to measure the
    parallel speedup (see ``docs/SHARDING.md``); the result signature is
    identical on every shard/worker combination — the differential contract
    ``tests/test_sharded_identity.py`` pins — so the memo and parallel
    cross-checks hold regardless.

    ``tiny`` runs 128 replicas to keep the tier-1 suite fast; ``small`` and
    ``paper`` run the full 1024.
    """
    replicas = 128 if scale == "tiny" else 1024
    mean_rate = replicas / 4.0
    shards = int(os.environ.get("REPRO_SHARD_COUNT", "4"))
    workers = int(os.environ.get("REPRO_SHARD_WORKERS", "1"))
    spec = get_engine_spec("prefillonly")
    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=replicas,
                         posts_per_user=2, seed=5)
    fleet = Fleet.for_setup(
        spec, setup,
        max_input_length=trace.max_request_tokens,
        num_replicas=replicas,
        router=make_router("user-id", replicas),
        name=f"harness-{replicas}-shard",
    )
    requests = make_arrival(
        "diurnal", mean_rate=mean_rate, period_seconds=30.0, amplitude=0.6,
        seed=11,
    ).assign(list(trace.requests))
    result = simulate_fleet(
        fleet, requests, shards=shards, shard_workers=workers, shard_seed=5
    )
    return result.num_events, _signature(_summary_payload(result))


def _case_analytic(scale: str) -> tuple[int, str]:
    """The analytic models alone: JCT grids, estimator fits, decode curves, MIL.

    Mirrors how the figure/table benchmarks actually query the models — the
    same grids recur across figures (correlation plot, fitted scheduler,
    lambda sweep), which is exactly what the latency-model LRU exploits.
    """
    _, _, _, mil_tokens, granularity = _check_scale(scale)
    events = 0
    payload = []
    for setup_name in ("l4", "a100", "h100"):
        setup = get_hardware_setup(setup_name)
        model = get_model(setup.model_name)
        latency = LatencyModel(model, setup.cluster.gpu, setup.cluster.interconnect)
        # The correlation figure profiles the grid explicitly ...
        profile = JCTProfiler(latency).profile(mil_tokens, granularity=granularity)
        events += len(profile)
        payload.append(jct_pearson_correlation(profile))
        # ... and the fitted-JCT scheduler re-derives the estimator on every
        # engine construction (three per setup across the lambda sweep), the
        # startup path the estimator memo interns.
        for _ in range(3):
            estimator = JCTEstimator.from_latency_model(
                latency, mil_tokens, granularity=granularity
            )
            events += len(profile)
            payload.append([estimator.coef_uncached, estimator.coef_cached,
                            estimator.intercept])
        # Decode curves of the motivation figure (prefill-only vs generative):
        # a batch-size family per output length, and the figure plus its
        # summary table each query the full family.
        for _ in range(2):
            for output_tokens in (256, 1024):
                for batch_size in (1, 8, 32):
                    events += output_tokens
                    payload.append(latency.decode_time(
                        mil_tokens // 2, output_tokens, batch_size=batch_size
                    ))
    rows = mil_table(
        [get_engine_spec(name) for name in ("prefillonly", "paged-attention")],
        [get_hardware_setup(name) for name in ("a100", "h100")],
        get_model,
    )
    events += len(rows)
    payload.append(rows)
    ablation = mil_ablation(
        get_model("qwen-32b-fp8"), get_hardware_setup("a100").cluster.gpu,
        vanilla_spec=get_engine_spec("paged-attention"),
        chunked_spec=get_engine_spec("chunked-prefill"),
    )
    events += len(ablation)
    payload.append([[step.name, step.max_input_length] for step in ablation])
    return events, _signature(payload)


#: The pinned suite, in run order.  Names are stable — BENCH files and the
#: regression comparison key on them.
PINNED_CASES = {
    "single-engine": _case_single_engine,
    "fleet-4": _case_fleet_4,
    "fleet-tiered": _case_fleet_tiered,
    "fleet-chaos": _case_fleet_chaos,
    "fleet-32-loop": _case_fleet_32_loop,
    "fleet-1024-shard": _case_fleet_1024_shard,
    "analytic": _case_analytic,
}


# ---------------------------------------------------------------- execution


def run_case(name: str, scale: str = "small") -> CaseResult:
    """Time one pinned case."""
    try:
        case = PINNED_CASES[name]
    except KeyError:
        known = ", ".join(PINNED_CASES)
        raise ConfigurationError(f"unknown harness case {name!r}; known: {known}") from None
    profiler.activate()
    try:
        start = time.perf_counter()
        events, signature = case(scale)
        wall = time.perf_counter() - start
    finally:
        phases = profiler.deactivate()
    return CaseResult(
        name=name,
        wall_s=wall,
        events=events,
        peak_rss_kib=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        signature=signature,
        phases=phases.as_dict() if phases is not None else None,
    )


def run_suite(scale: str = "small") -> list[CaseResult]:
    """Time every pinned case, in pinned order."""
    _check_scale(scale)
    return [run_case(name, scale) for name in PINNED_CASES]


def measure_memoization(scale: str = "small", *, iterations: int = 2) -> dict:
    """Run the pinned suite memo-off then memo-on; assert identical results.

    Both modes run ``iterations`` times and report the fastest total
    (standard best-of-N timing; symmetric between the modes, and with the
    caches cleared on every mode switch, the off-mode iterations never cache
    anything while the on-mode repeats legitimately reap warm caches — which
    is exactly what memoization buys a long benchmarking session).  Returns
    the two wall-clock totals, the speedup, and the identity verdict.  The
    prior memo state is restored afterwards.

    Raises:
        PerfCheckError: if any case's result signature differs between the
            memoized and unmemoized runs — memoization must never change
            results.
    """
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    was_enabled = memo.memo_enabled()
    cold_runs: list[list[CaseResult]] = []
    warm_runs: list[list[CaseResult]] = []
    try:
        memo.set_memo_enabled(False)
        for _ in range(iterations):
            cold_runs.append(run_suite(scale))
        memo.set_memo_enabled(True)
        for _ in range(iterations):
            warm_runs.append(run_suite(scale))
    finally:
        memo.set_memo_enabled(was_enabled)
    reference = cold_runs[0]
    for run in cold_runs[1:] + warm_runs:
        for expected, case in zip(reference, run):
            if expected.signature != case.signature:
                raise PerfCheckError(
                    f"memoization changed the results of case {case.name!r}"
                )
    disabled_wall = min(sum(case.wall_s for case in run) for run in cold_runs)
    enabled_wall = min(sum(case.wall_s for case in run) for run in warm_runs)
    return {
        "iterations": iterations,
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(enabled_wall, 4),
        "speedup": round(disabled_wall / enabled_wall, 3) if enabled_wall > 0 else 0.0,
        "identical": True,
        "cases_disabled": [case.as_dict() for case in cold_runs[0]],
    }


def measure_parallel(scale: str = "small", *, workers: int = 4,
                     clamp_to_cores: bool = True) -> dict:
    """Time the bench-sweep fan-out serially and with ``workers`` processes.

    The fan-out is ``compare_engines`` over every registered engine and a
    four-point rate grid — the exact shape ``make bench-sweep`` runs.  The two
    results must serialise to identical JSON bytes.

    ``workers`` is clamped to the machine's core count by default: extra
    processes on a saturated machine only add overhead, and on a single-core
    box the runner degrades to its (identical-result) serial path.  Pass
    ``clamp_to_cores=False`` to force the multi-process path regardless (the
    correctness tests do).

    Raises:
        PerfCheckError: if the parallel sweep differs from the serial sweep.
    """
    if clamp_to_cores:
        workers = min(workers, os.cpu_count() or 1)
    users, posts, _, _, _ = _check_scale(scale)
    specs = all_engine_specs()
    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=users,
                         posts_per_user=posts, seed=0)
    qps_values = [2.0, 8.0, 16.0, 32.0]

    start = time.perf_counter()
    serial = compare_engines(specs, setup, trace, qps_values)
    serial_wall = time.perf_counter() - start

    runner = ParallelRunner(max_workers=workers)
    start = time.perf_counter()
    parallel = compare_engines(specs, setup, trace, qps_values, runner=runner)
    parallel_wall = time.perf_counter() - start

    serial_bytes = _signature(
        {name: [point.as_dict() for point in points] for name, points in serial.items()}
    )
    parallel_bytes = _signature(
        {name: [point.as_dict() for point in points] for name, points in parallel.items()}
    )
    if serial_bytes != parallel_bytes:
        raise PerfCheckError("parallel sweep differs from serial sweep")
    return {
        "workers": workers,
        "mode": runner.last_mode,
        "tasks": sum(1 for points in serial.values() for _ in points),
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall > 0 else 0.0,
        "identical": True,
    }


def bench_path(label: str, out_dir: str | Path = ".") -> Path:
    """Where ``run_harness`` writes the bench file for ``label``."""
    return Path(out_dir) / f"BENCH_{label}.json"


def run_harness(label: str, *, scale: str = "small", workers: int = 4,
                out_dir: str | Path = ".",
                memo_comparison: bool = True,
                parallel_check: bool = True,
                baseline: str | Path | None = None) -> dict:
    """Run the pinned suite plus cross-checks and write ``BENCH_<label>.json``.

    Returns the report dict (also written to disk).  The report carries no
    wall-clock timestamps — bench files diff cleanly — but does record the
    Python version and machine, since events/s is machine-relative.

    When ``baseline`` names an earlier ``BENCH_*.json``, the report gains a
    ``phase_deltas`` section — per shared case, each profiled phase's share
    of hot-loop wall clock versus the baseline's
    (:func:`repro.obs.analysis.diff_bench_phases`) — so an events/s
    regression flagged by ``scripts/perf_report.py compare`` names the phase
    that grew.
    """
    cases = run_suite(scale)
    report: dict = {
        "label": label,
        "scale": scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cases": [case.as_dict() for case in cases],
        "total_wall_s": round(sum(case.wall_s for case in cases), 4),
    }
    if memo_comparison:
        report["memoization"] = measure_memoization(scale)
    if parallel_check:
        report["parallel"] = measure_parallel(scale, workers=workers)
    if baseline is not None:
        from repro.obs.analysis import diff_bench_phases

        baseline_report = json.loads(
            Path(baseline).read_text(encoding="utf-8")
        )
        report["phase_deltas"] = {
            "baseline": baseline_report.get("label", str(baseline)),
            "cases": diff_bench_phases(report, baseline_report),
        }
    path = bench_path(label, out_dir)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    report["path"] = str(path)
    return report


def format_harness_report(report: dict) -> str:
    """Human-readable summary of a harness report (CLI output)."""
    from repro.analysis.reporting import format_table

    lines = [format_table(
        [{key: value for key, value in case.items() if key != "phases"}
         for case in report["cases"]],
        title=f"Perf harness: {report['label']} (scale={report['scale']})",
    )]
    phase_rows = [
        {"case": case["name"], "phase": phase, **stats}
        for case in report["cases"]
        for phase, stats in case.get("phases", {}).items()
    ]
    if phase_rows:
        lines.append(format_table(phase_rows, title="Hot-loop phase breakdown"))
    memoization = report.get("memoization")
    if memoization:
        lines.append(
            f"memoization: {memoization['disabled_wall_s']:.2f}s off -> "
            f"{memoization['enabled_wall_s']:.2f}s on "
            f"({memoization['speedup']:.2f}x, results identical)"
        )
    parallel = report.get("parallel")
    if parallel:
        lines.append(
            f"parallel sweep ({parallel['workers']} workers, "
            f"{parallel['tasks']} tasks): {parallel['serial_wall_s']:.2f}s serial -> "
            f"{parallel['parallel_wall_s']:.2f}s parallel "
            f"({parallel['speedup']:.2f}x, results identical)"
        )
    if "path" in report:
        lines.append(f"wrote {report['path']}")
    return "\n".join(lines)
