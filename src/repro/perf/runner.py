"""The parallel experiment runner.

Every figure, ablation, QPS sweep, and scenario in this repo decomposes into
*independent* simulation runs — one per offered rate, per engine, per ablation
variant, per scenario config — and each run is a pure function of its
arguments (every random choice is owned by an explicit seed).  That makes the
experiment layer embarrassingly parallel: :class:`ParallelRunner` fans those
runs across CPU cores with :class:`concurrent.futures.ProcessPoolExecutor`
and guarantees the results are **byte-identical** to a serial run:

* task functions are pure (no shared mutable state, no global RNG reads — a
  guard test pins this);
* results come back in task-submission order regardless of completion order
  (``Executor.map`` preserves ordering);
* a serial fallback (``max_workers <= 1``, ``serial=True``, the
  ``REPRO_SERIAL=1`` environment variable, or a pool that fails to start)
  executes the very same task functions in a plain loop.

Task functions must be picklable (defined at module top level); the wired-in
entry points (:func:`repro.analysis.sweep.qps_sweep`,
:func:`repro.analysis.ablation.mil_ablation`,
:func:`repro.simulation.scenario.run_scenario_suite`) all follow that shape.

The wired-in entry points embed every seed explicitly in each task's
arguments — that (plus purity) is what makes a 4-worker run reproduce a
serial run bit for bit.  For *new* task families that need many independent
streams from one base seed, :func:`derive_task_seeds` derives reproducible
per-task seeds with :class:`numpy.random.SeedSequence` spawning — the same
seeds regardless of worker count or scheduling order.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ParallelRunner", "SERIAL_RUNNER", "resolve_runner", "derive_task_seeds"]


def _env_forces_serial() -> bool:
    return os.environ.get("REPRO_SERIAL", "").lower() in ("1", "true", "yes")


def _pool_probe() -> bool:
    """Trivial warm-up task: forces worker spawn before any real task runs."""
    return True


class ParallelRunner:
    """Fans independent tasks across worker processes, in order, deterministically.

    Args:
        max_workers: Worker process count.  ``None`` uses ``os.cpu_count()``
            (capped at 8 — experiment fan-outs rarely profit beyond that);
            ``0`` or ``1`` runs serially in-process.
        serial: Force serial execution regardless of ``max_workers``.
        chunksize: Tasks handed to a worker per round trip (larger values
            amortise pickling for many small tasks).

    The runner is stateless between :meth:`map` calls and safe to reuse; each
    call stands up and tears down its own process pool.
    """

    def __init__(self, max_workers: int | None = None, *,
                 serial: bool = False, chunksize: int = 1) -> None:
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError("max_workers must be non-negative")
        if chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._serial = serial or max_workers <= 1 or _env_forces_serial()
        #: How the last :meth:`map` actually executed (``"serial"`` /
        #: ``"parallel"`` / ``"fallback"``), for reports and tests.
        self.last_mode: str = "serial" if self._serial else "parallel"

    @property
    def is_serial(self) -> bool:
        """True when tasks will run in-process."""
        return self._serial

    def map(self, fn: Callable, tasks: Sequence | Iterable) -> list:
        """Run ``fn`` over ``tasks`` and return the results in task order.

        The serial and parallel paths execute the identical function on the
        identical arguments, so their results are byte-identical; the parallel
        path merely spreads the work across processes.  If the process pool
        cannot be stood up (no fork / no semaphores in sandboxed environments)
        or its workers die (OOM kill), the runner falls back to the serial
        loop.  Exceptions raised *by a task function* are never treated as a
        pool failure — they propagate to the caller directly, exactly as the
        serial loop would raise them.
        """
        tasks = list(tasks)
        if self._serial or len(tasks) <= 1:
            self.last_mode = "serial"
            return [fn(task) for task in tasks]

        # Stand the pool up on a no-op probe first, so environment failures
        # (fork refused, semaphores unavailable) surface here — before any
        # real task runs — and are never confused with task exceptions.
        executor = None
        try:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.max_workers, len(tasks))
            )
            executor.submit(_pool_probe).result()
        except (OSError, PermissionError, concurrent.futures.process.BrokenProcessPool):
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            self.last_mode = "fallback"
            return [fn(task) for task in tasks]

        with executor:
            try:
                results = list(executor.map(fn, tasks, chunksize=self.chunksize))
            except concurrent.futures.process.BrokenProcessPool:
                # A worker died mid-run (e.g. OOM kill): degrade to the serial
                # loop, which produces the same results.  Any other exception
                # here was raised by a task and propagates to the caller.
                self.last_mode = "fallback"
                return [fn(task) for task in tasks]
        self.last_mode = "parallel"
        return results


#: Shared serial runner — the default for every wired-in entry point, so the
#: single-process behaviour (and its results) stay exactly as before.
SERIAL_RUNNER = ParallelRunner(max_workers=1)


def resolve_runner(runner: ParallelRunner | None,
                   max_workers: int | None) -> ParallelRunner:
    """Resolve the ``runner`` / ``max_workers`` convenience pair of an API.

    Passing an explicit ``runner`` wins; otherwise ``max_workers`` builds one
    (``None`` keeps the serial default).  Passing both is a configuration
    error — the caller's intent is ambiguous.
    """
    if runner is not None and max_workers is not None:
        raise ConfigurationError("pass either runner or max_workers, not both")
    if runner is not None:
        return runner
    if max_workers is None:
        return SERIAL_RUNNER
    return ParallelRunner(max_workers=max_workers)


def derive_task_seeds(base_seed: int, num_tasks: int) -> list[int]:
    """Derive ``num_tasks`` independent 32-bit seeds from one base seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the derived seeds are
    high-quality, collision-free, and a pure function of ``(base_seed, index)``
    — independent of worker count, scheduling order, and platform.
    """
    if num_tasks < 0:
        raise ConfigurationError("num_tasks must be non-negative")
    children = np.random.SeedSequence(base_seed).spawn(num_tasks)
    return [int(child.generate_state(1)[0]) for child in children]
