"""Experiment-layer performance subsystem.

PR 2 and PR 3 made the *inner* event loop fast; this package makes the
*experiment* layer fast:

* :mod:`repro.perf.runner` — a :class:`ParallelRunner` that fans independent
  simulation runs (sweep points, ablation variants, scenario configs) across
  CPU cores with a serial fallback, plus deterministic per-task seed
  derivation;
* :mod:`repro.perf.memo` — the process-wide memoization switchboard behind the
  analytic-model caches (LRU-cached latency model, memoized profile runs and
  JCT estimators, interned hash chains).  Memoization never changes results —
  every cached value is bit-identical to a fresh computation — so the switch
  exists purely for before/after measurement;
* :mod:`repro.perf.harness` — the standing perf-regression harness: a pinned
  suite of simulations plus an analytic-model case, timed and written to
  ``BENCH_<label>.json`` so the repo records its perf trajectory.

``repro.perf.harness`` is imported lazily (it pulls in the analysis layer,
which itself uses this package's runner).
"""

from repro.perf.memo import clear_all_caches, memo_enabled, set_memo_enabled
from repro.perf.runner import (
    ParallelRunner,
    derive_task_seeds,
    resolve_runner,
)

__all__ = [
    "ParallelRunner",
    "derive_task_seeds",
    "resolve_runner",
    "memo_enabled",
    "set_memo_enabled",
    "clear_all_caches",
]
