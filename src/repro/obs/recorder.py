"""The span tracer and time-series metrics recorder.

One :class:`TraceRecorder` observes one simulation run.  Every hook site in
the fleet, the engines, and the tier stores calls :meth:`TraceRecorder.emit`
unconditionally; when observability is disabled the fleet carries the
:data:`NULL_RECORDER` singleton instead, whose ``emit`` is a no-op — the
null-object pattern keeps the hook sites branch-free and the disabled path
behaviour-identical to a build without the subsystem.

Determinism model
-----------------

Span events are stored as ``(time, key, kind, attrs, seq)`` where ``key`` is
the replica's logical shard key (:data:`GLOBAL_KEY` for fleet-scoped events)
and ``seq`` is a per-``(key, kind)`` sequence number local to the recording
buffer.  The canonical export order is ``(time, key, kind_rank, seq)`` — the
same ``(time, key)`` discipline :class:`~repro.simulation.events.ShardedEventQueue`
merges shard heaps by.  Because every event kind has a single origin (submit
and route always come from the coordinator, start and finish always from the
owning replica's engine), events tied on ``(time, key, kind)`` never split
across shard buffers, so sorting merged per-shard buffers reproduces the
unsharded recording byte for byte.

Metric samples are taken at simulated-time boundaries ``k * interval``
(``k >= 0``).  :meth:`TraceRecorder.maybe_sample` is called at the top of
every simulator loop iteration, *before* the event batch at ``now`` is
processed, and records every boundary ``b <= now`` not yet recorded — so the
sample at ``b`` reflects the state after all events strictly before ``b``.
Per-replica gauges and the engine-emitted counters depend only on the owning
shard's events, which makes per-shard self-sampling merge exactly to the
unsharded series (see :func:`merge_shard_payloads`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import fsum

__all__ = [
    "GLOBAL_KEY",
    "KIND_ORDER",
    "DEFAULT_LATENCY_BUCKETS",
    "SNAPSHOT_ONLY_COUNTERS",
    "ObsConfig",
    "ObsData",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "merge_shard_payloads",
]

#: The ``key`` of fleet-scoped annotation events (faults, autoscale actions,
#: admission sheds) — sorts before every replica key.
GLOBAL_KEY = -1

#: Canonical rank of each span kind within one ``(time, key)`` slot.  The
#: order follows a request's lifecycle, so a submit/route/start/finish chain
#: landing on one timestamp still reads in causal order.
KIND_ORDER = {
    "submit": 0,
    "route": 1,
    "retry": 2,
    "prefetch": 3,
    "start": 4,
    "tier_hit": 5,
    "peer_fetch": 6,
    "promote": 7,
    "demote": 8,
    "warm_restore": 9,
    "finish": 10,
    "shed": 11,
    "fault": 12,
    "scale": 13,
    "deadline_miss": 14,
    "hedge": 15,
    "breaker": 16,
    "degrade": 17,
}

#: Default request-latency histogram bucket upper edges (seconds).  A value
#: equal to an edge falls in that edge's bucket (Prometheus ``le`` semantics).
DEFAULT_LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Counters kept out of the time series and reported only in the end-of-run
#: snapshot: they are bumped by the routing coordinator, which in decoupled
#: parallel shard mode pre-routes the whole stream before simulated time
#: starts — a trajectory for them would be mode-dependent, so none is kept.
#: (Every other fleet-scoped counter — sheds, retries, faults, scale events —
#: can only occur in configurations the decoupled mode refuses, so their
#: trajectories are mode-independent.)
SNAPSHOT_ONLY_COUNTERS = frozenset({"submitted_total", "routed_total"})


@dataclass(frozen=True)
class ObsConfig:
    """Runtime observability configuration (see the ``"observability"``
    scenario block in ``docs/SPEC.md``)."""

    enabled: bool = False
    spans: bool = True
    metrics: bool = True
    sample_interval_s: float = 1.0
    latency_buckets: tuple = DEFAULT_LATENCY_BUCKETS
    #: Burn-rate alert rules (:class:`repro.obs.analysis.AlertRule`) for the
    #: post-hoc ``prefillonly obs alerts`` evaluation.  The recorder itself
    #: never reads them — alerting is a pure read-side analysis, so carrying
    #: rules here cannot perturb a recording.
    alerts: tuple = ()


@dataclass(frozen=True)
class ObsData:
    """One run's frozen observability record, in canonical order.

    Attributes:
        config: The configuration the run recorded under.
        events: Span events as ``(time, key, kind, attrs, seq)`` tuples in
            canonical ``(time, key, kind_rank, seq)`` order.
        samples: Metric samples as ``(time, name, labels, value)`` tuples in
            ``(time, name, labels)`` order; ``labels`` is a sorted tuple of
            ``(label, value)`` pairs.
        counters: End-of-run counter snapshot as ``((name, labels), value)``
            pairs, sorted.
        hist_buckets / hist_counts / hist_sum / hist_count: The request
            latency histogram — bucket upper edges, per-bucket counts (one
            extra overflow bucket), the sum, and the observation count.
        replicas: ``(key, name)`` pairs of every replica that existed, sorted
            by key — the Chrome exporter's track list.
        end_time: The run's final simulated time.
        num_boundaries: Sample boundaries recorded (``k = 0 .. n-1``).
    """

    config: ObsConfig
    events: tuple = ()
    samples: tuple = ()
    counters: tuple = ()
    hist_buckets: tuple = DEFAULT_LATENCY_BUCKETS
    hist_counts: tuple = ()
    hist_sum: float = 0.0
    hist_count: int = 0
    replicas: tuple = ()
    end_time: float = 0.0
    num_boundaries: int = 0


def _event_sort_key(event):
    time, key, kind, _, seq = event
    return (time, key, KIND_ORDER.get(kind, len(KIND_ORDER)), seq)


def _sample_sort_key(sample):
    return (sample[0], sample[1], sample[2])


class NullRecorder:
    """The disabled-path recorder: every hook is a no-op.

    Hook sites never branch on whether observability is on — they call these
    methods unconditionally, and this object makes the calls free enough that
    the disabled path stays within the perf gate while remaining
    byte-identical in results.
    """

    enabled = False
    spans = False
    metrics = False
    now = 0.0

    def register_replica(self, key, name):
        pass

    def emit(self, time, key, kind, **attrs):
        pass

    def maybe_sample(self, now, gauges=None):
        pass

    def finalize(self, end_time):
        pass


#: The shared no-op recorder every fleet and engine defaults to.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Records one run's spans and metrics (see the module docstring).

    Args:
        config: The :class:`ObsConfig` to record under (``enabled`` is
            implied true — construct the recorder only for enabled runs).
        tenant_slos: Tenant name -> latency SLO (seconds) for the
            ``tenant_slo_ok_total`` attainment counter; tenants without an
            SLO only get ``tenant_finished_total``.
    """

    enabled = True

    def __init__(self, config: ObsConfig | None = None, *,
                 tenant_slos: dict | None = None):
        self.config = config if config is not None else ObsConfig(enabled=True)
        self.spans = self.config.spans
        self.metrics = self.config.metrics
        self.tenant_slos = dict(tenant_slos or {})
        #: Last simulated time a hook site reported; demotion events from
        #: un-timestamped eviction cascades borrow it (see
        #: ``repro.kvcache.tiers.store``).
        self.now = 0.0
        self.replica_names: dict[int, str] = {}
        self._events: list = []
        self._seq: dict = {}
        self._counters: dict = {}
        self._samples: list = []
        self._sample_k = 0
        self._hist_counts = [0] * (len(self.config.latency_buckets) + 1)
        #: Raw latency observations — the histogram sum is computed with
        #: ``math.fsum`` at freeze/merge time, which is exactly rounded and
        #: therefore independent of observation order, so sharded merges
        #: reproduce the unsharded sum bit for bit.
        self._latencies: list = []
        self._end_time = 0.0

    # ------------------------------------------------------------- recording

    def register_replica(self, key: int, name: str) -> None:
        """Name a replica key (Chrome track titles, counter labels)."""
        self.replica_names[key] = name

    def emit(self, time: float, key: int, kind: str, **attrs) -> None:
        """Record one span event and update its derived counters."""
        if time > self._end_time:
            self._end_time = time
        if self.spans:
            slot = (key, kind)
            seq = self._seq.get(slot, 0)
            self._seq[slot] = seq + 1
            self._events.append((time, key, kind, attrs, seq))
        if self.metrics:
            self._count(key, kind, attrs)

    def _inc(self, name: str, labels: tuple, amount) -> None:
        slot = (name, labels)
        self._counters[slot] = self._counters.get(slot, 0) + amount

    def _replica_label(self, key: int) -> tuple:
        return (("replica", self.replica_names.get(key, str(key))),)

    def _count(self, key: int, kind: str, attrs: dict) -> None:
        if kind == "finish":
            self._inc("finished_total", self._replica_label(key), 1)
            latency = attrs.get("latency_s", 0.0)
            tenant = attrs.get("tenant")
            if tenant is not None:
                self._inc("tenant_finished_total", (("tenant", tenant),), 1)
                slo = self.tenant_slos.get(tenant)
                if slo is not None:
                    # Increment by 0 on a miss so the counter exists from the
                    # first finish — an all-missed tenant reports attainment
                    # 0.0, not the no-SLO dash.
                    self._inc(
                        "tenant_slo_ok_total", (("tenant", tenant),),
                        1 if latency <= slo else 0,
                    )
            self._observe(latency)
        elif kind == "submit":
            self._inc("submitted_total", (), 1)
        elif kind == "route":
            self._inc("routed_total", self._replica_label(key), 1)
        elif kind == "shed":
            self._inc("shed_total", (), 1)
        elif kind == "retry":
            self._inc("retried_total", (), 1)
        elif kind == "fault":
            self._inc("faults_total", (("kind", attrs.get("fault", "unknown")),), 1)
        elif kind == "scale":
            self._inc(
                "scale_events_total",
                (("direction", attrs.get("direction", "unknown")),), 1,
            )
        elif kind == "tier_hit":
            host = attrs.get("host_tokens", 0)
            cluster = attrs.get("cluster_tokens", 0)
            if host:
                self._inc("tier_host_tokens_total", (), host)
            if cluster:
                self._inc("tier_cluster_tokens_total", (), cluster)
        elif kind == "promote":
            self._inc("tier_promoted_blocks_total", (), attrs.get("blocks", 1))
        elif kind == "demote":
            self._inc("tier_demoted_blocks_total", (), attrs.get("blocks", 1))
        elif kind == "prefetch":
            self._inc("tier_prefetched_blocks_total", (), attrs.get("blocks", 1))
        elif kind == "peer_fetch":
            self._inc("tier_peer_fetches_total", (), attrs.get("blocks", 1))
        elif kind == "warm_restore":
            self._inc("tier_warm_restored_blocks_total", (), attrs.get("blocks", 1))
        elif kind == "deadline_miss":
            self._inc("deadline_missed_total", (), 1)
        elif kind == "hedge":
            self._inc("hedges_total", (), 1)
        elif kind == "breaker":
            self._inc(
                "breaker_transitions_total",
                (("to", str(attrs.get("to", "unknown"))),), 1,
            )
        elif kind == "degrade":
            self._inc(
                "degrade_transitions_total",
                (("tier", str(attrs.get("to", "unknown"))),), 1,
            )

    def _observe(self, value: float) -> None:
        for index, edge in enumerate(self.config.latency_buckets):
            if value <= edge:
                self._hist_counts[index] += 1
                break
        else:
            self._hist_counts[-1] += 1
        self._latencies.append(value)

    # -------------------------------------------------------------- sampling

    def maybe_sample(self, now: float, gauges=None) -> None:
        """Record every unrecorded sample boundary ``<= now``.

        Call at the top of a simulator loop iteration, *before* processing
        the event batch at ``now``; ``gauges`` is a zero-argument callable
        returning ``(name, labels, value)`` rows, invoked once per boundary
        actually crossed.
        """
        if not self.metrics:
            return
        if now > self._end_time:
            self._end_time = now
        interval = self.config.sample_interval_s
        boundary = self._sample_k * interval
        while boundary <= now:
            self._record_boundary(boundary, gauges)
            self._sample_k += 1
            boundary = self._sample_k * interval

    def _record_boundary(self, boundary: float, gauges) -> None:
        if gauges is not None:
            for name, labels, value in gauges():
                self._samples.append((boundary, name, labels, value))
        for (name, labels), value in self._counters.items():
            if name not in SNAPSHOT_ONLY_COUNTERS:
                self._samples.append((boundary, name, labels, value))

    def finalize(self, end_time: float) -> None:
        """Close the run at ``end_time``, sampling any remaining boundary.

        A no-op when the loop already crossed every boundary; needed for
        zero-event runs (the ``k = 0`` boundary) and runs whose stream ends
        between boundaries.
        """
        if end_time > self._end_time:
            self._end_time = end_time
        self.maybe_sample(end_time)

    # --------------------------------------------------------------- results

    def freeze(self, end_time: float | None = None) -> ObsData:
        """Finalize and return the run's canonical :class:`ObsData`."""
        if end_time is not None:
            self.finalize(end_time)
        return ObsData(
            config=self.config,
            events=tuple(sorted(self._events, key=_event_sort_key)),
            samples=tuple(sorted(self._samples, key=_sample_sort_key)),
            counters=tuple(sorted(self._counters.items())),
            hist_buckets=tuple(self.config.latency_buckets),
            hist_counts=tuple(self._hist_counts),
            hist_sum=fsum(self._latencies),
            hist_count=len(self._latencies),
            replicas=tuple(sorted(self.replica_names.items())),
            end_time=self._end_time,
            num_boundaries=self._sample_k,
        )

    def payload(self) -> dict:
        """Picklable per-shard recording, merged by :func:`merge_shard_payloads`."""
        return {
            "events": list(self._events),
            "samples": list(self._samples),
            "counters": list(self._counters.items()),
            "hist_counts": list(self._hist_counts),
            "latencies": list(self._latencies),
            "replicas": sorted(self.replica_names.items()),
            "boundaries": self._sample_k,
            "end_time": self._end_time,
        }


def merge_shard_payloads(coordinator: TraceRecorder, payloads: list,
                         idle_replicas: list | None = None) -> ObsData:
    """Merge decoupled per-shard recordings into one canonical :class:`ObsData`.

    ``coordinator`` recorded the routing pre-pass (submit/route events plus
    their snapshot counters) and knows every replica's name; ``payloads`` are
    the shard recorders' :meth:`TraceRecorder.payload` dicts; ``idle_replicas``
    names the replicas of shards that received no arrivals and were never run.

    The merge reconstructs exactly what one global recorder would have
    produced:

    * events: concatenated and sorted into canonical order (single-origin
      kinds make the sort total — see the module docstring);
    * samples: each shard self-sampled up to its own last event, so shorter
      shards are *padded* up to the global last boundary with the shard's
      *final* state — end-of-run counter values and zero queue depth (a
      drained shard's state is frozen, and the pad must cover events landing
      between the shard's last boundary and its end time, which no shard
      sample reflects).  Idle replicas contribute all-zero queue-depth
      series, and same-``(time, name, labels)`` rows from different shards
      (per-tenant counters) are summed;
    * counters and the latency histogram: summed across the coordinator and
      every shard (the sum via ``math.fsum``, whose exact rounding makes the
      result independent of which shard observed which latency).
    """
    config = coordinator.config
    interval = config.sample_interval_s
    events = list(coordinator._events)
    counters: dict = dict(coordinator._counters)
    hist_counts = list(coordinator._hist_counts)
    latencies = list(coordinator._latencies)
    end_time = coordinator._end_time
    num_boundaries = coordinator._sample_k
    for payload in payloads:
        events.extend(tuple(event) for event in payload["events"])
        num_boundaries = max(num_boundaries, payload["boundaries"])
        end_time = max(end_time, payload["end_time"])
        for (name, labels), value in payload["counters"]:
            slot = (name, tuple(labels))
            counters[slot] = counters.get(slot, 0) + value
        for index, count in enumerate(payload["hist_counts"]):
            hist_counts[index] += count
        latencies.extend(payload["latencies"])

    merged_samples: dict = {}

    def add_sample(time, name, labels, value):
        slot = (time, name, labels)
        merged_samples[slot] = merged_samples.get(slot, 0) + value

    if config.metrics:
        for payload in payloads:
            for time, name, labels, value in payload["samples"]:
                add_sample(time, name, tuple(labels), value)
            # Pad the shard's series to the global boundary count with its
            # final state: counters at their end-of-run values, queue depths
            # at zero (the shard only stops once every queue has drained).
            pad: dict = {
                ("queue_depth", (("replica", name),)): 0
                for _key, name in payload["replicas"]
            }
            for (name, labels), value in payload["counters"]:
                if name not in SNAPSHOT_ONLY_COUNTERS:
                    pad[(name, tuple(labels))] = value
            for k in range(payload["boundaries"], num_boundaries):
                boundary = k * interval
                for (name, labels), value in pad.items():
                    add_sample(boundary, name, labels, value)
        for key, name in (idle_replicas or []):
            for k in range(num_boundaries):
                add_sample(k * interval, "queue_depth", (("replica", name),), 0)

    samples = [
        (time, name, labels, value)
        for (time, name, labels), value in merged_samples.items()
    ]
    return ObsData(
        config=config,
        events=tuple(sorted(events, key=_event_sort_key)),
        samples=tuple(sorted(samples, key=_sample_sort_key)),
        counters=tuple(sorted(counters.items())),
        hist_buckets=tuple(config.latency_buckets),
        hist_counts=tuple(hist_counts),
        hist_sum=fsum(latencies),
        hist_count=len(latencies),
        replicas=tuple(sorted(coordinator.replica_names.items())),
        end_time=end_time,
        num_boundaries=num_boundaries,
    )
