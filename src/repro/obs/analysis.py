"""Post-hoc trace analytics: critical paths, run diffs, and burn-rate alerts.

Everything in this module is a pure function of an already-recorded
:class:`~repro.obs.recorder.ObsData` (or of two of them) — the analysis layer
never touches a live simulation, so every PR-8 byte-identity and cross-shard
reproducibility contract is preserved by construction.  Three capabilities:

* **Critical-path decomposition** (:func:`decompose_requests`,
  :func:`critical_path_report`) — each finished request's lifecycle is
  rebuilt from its ``repro-spans/v1`` span chain and partitioned into
  disjoint phases (queue wait, retry backoff, tier fetch, prefill service,
  and work lost to crashed or hedged copies) whose durations provably sum to
  the request's end-to-end latency: the phases are labelled gaps between
  consecutive span timestamps, so the sum telescopes to ``finish - submit``
  up to float rounding (pinned by a hypothesis property).
* **Run-diff forensics** (:func:`diff_runs`) — two recordings are decomposed
  and their latency/throughput difference is attributed to phases, replicas,
  and span kinds, ranked by contribution; identical recordings produce an
  all-zero diff (pinned by a test).  :func:`diff_bench_phases` is the
  wall-clock counterpart over two ``BENCH_*.json`` reports, which is how a
  CI perf regression names the regressed hot-loop phase
  (see ``docs/PERFORMANCE.md``).
* **SLO error budgets & burn-rate alerts** (:func:`evaluate_alerts`) —
  multi-window burn-rate rules (Google SRE style: the alert fires only while
  *both* a long and a short window burn the error budget faster than the
  threshold) evaluated at the recorder's sample boundaries in simulated
  time, emitting deterministic firing/resolved events exported as
  ``repro-alerts/v1`` (see :func:`repro.obs.exporters.export_alerts`).

The ``prefillonly obs critical-path | diff | alerts | exemplars`` CLI family
surfaces all three; ``docs/OBSERVABILITY.md`` ("Analyzing traces") has worked
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import fsum

from repro.errors import ObsError
from repro.obs.recorder import ObsData

__all__ = [
    "PHASES",
    "DEFAULT_ALERT_RULES",
    "RequestBreakdown",
    "CriticalPathReport",
    "RunDiff",
    "AlertRule",
    "AlertEvent",
    "AlertReport",
    "alert_rule_from_model",
    "decompose_requests",
    "critical_path_report",
    "top_exemplars",
    "diff_runs",
    "diff_bench_phases",
    "evaluate_alerts",
]

#: The disjoint phases a finished request's end-to-end latency decomposes
#: into, in lifecycle order.  ``tier_fetch`` + ``prefill`` together are the
#: winning copy's service window; ``lost_service`` is time only non-winning
#: copies (crashed originals, hedge losers) were running.
PHASES = ("queue", "retry_wait", "tier_fetch", "prefill", "lost_service")

#: Span kinds that mark per-request lifecycle progress (everything else is a
#: fleet/tier annotation the per-request walk ignores).
_LIFECYCLE_KINDS = frozenset({
    "submit", "route", "retry", "start", "hedge", "finish", "shed",
    "deadline_miss",
})


@dataclass(frozen=True)
class RequestBreakdown:
    """One finished request's phase decomposition.

    ``phases`` maps every name in :data:`PHASES` to non-negative seconds;
    ``fsum`` of the values equals ``e2e_s`` (= ``finish_time -
    submit_time``) up to float rounding — the invariant the hypothesis
    property in ``tests/test_obs_analysis.py`` pins over fuzzed scenarios.
    """

    request_id: object
    tenant: str | None
    replica: str
    submit_time: float
    finish_time: float
    phases: dict
    num_retries: int = 0
    num_hedges: int = 0

    @property
    def e2e_s(self) -> float:
        return self.finish_time - self.submit_time


@dataclass(frozen=True)
class CriticalPathReport:
    """Fleet/tenant/replica phase aggregation of one recording.

    Attributes:
        requests: Per-request breakdowns, in finish order.
        num_shed / num_deadline_missed: Requests that never finished (shed by
            admission or fleet-wide crash handling, or cancelled past their
            deadline) — accounted separately, since only finished requests
            have an end-to-end latency to decompose.
        end_time: The recording's final simulated time (throughput divisor).
    """

    requests: tuple
    num_shed: int
    num_deadline_missed: int
    end_time: float

    def phase_totals(self) -> dict:
        """Phase -> ``fsum`` of that phase over every finished request."""
        return {
            phase: fsum(request.phases[phase] for request in self.requests)
            for phase in PHASES
        }

    def phase_means(self) -> dict:
        """Phase -> mean seconds per finished request (zeros when empty)."""
        count = len(self.requests)
        totals = self.phase_totals()
        return {
            phase: (totals[phase] / count if count else 0.0)
            for phase in PHASES
        }

    def mean_e2e_s(self) -> float:
        if not self.requests:
            return 0.0
        return fsum(r.e2e_s for r in self.requests) / len(self.requests)

    def p99_e2e_s(self) -> float:
        if not self.requests:
            return 0.0
        latencies = sorted(r.e2e_s for r in self.requests)
        return latencies[min(len(latencies) - 1,
                             int(0.99 * (len(latencies) - 1)))]

    def throughput_rps(self) -> float:
        if self.end_time <= 0:
            return 0.0
        return len(self.requests) / self.end_time

    def by_tenant(self) -> dict:
        """Tenant -> (count, phase means) over that tenant's requests."""
        return _grouped(self.requests, lambda r: r.tenant or "-")

    def by_replica(self) -> dict:
        """Serving replica -> (count, phase means) over its requests."""
        return _grouped(self.requests, lambda r: r.replica)


def _grouped(requests, key) -> dict:
    groups: dict = {}
    for request in requests:
        groups.setdefault(key(request), []).append(request)
    return {
        name: (
            len(members),
            {
                phase: fsum(m.phases[phase] for m in members) / len(members)
                for phase in PHASES
            },
        )
        for name, members in sorted(groups.items())
    }


def decompose_requests(data: ObsData) -> CriticalPathReport:
    """Rebuild every request's lifecycle and decompose it into phases.

    The walk is a per-request state machine over the request's span events
    in canonical order.  Each gap between consecutive event timestamps gets
    exactly one label, so the labelled gaps partition ``[submit, finish]``:

    * ``service`` — from the winning copy's (the one that emitted ``finish``)
      last ``start`` to ``finish``; split into ``tier_fetch`` (the
      ``tier_hit`` load time sharing the start's ``(time, key)`` slot, which
      the engine charges into stage 0) and ``prefill`` (the rest);
    * ``lost_service`` — a non-winning copy (crashed original, hedge loser)
      was running;
    * ``retry_wait`` — after a crash evacuation (``retry``), before the
      replacement copy starts (covers the retry policy's backoff);
    * ``queue`` — nothing was running and no retry was pending.

    Requests without a ``finish`` are tallied as shed or deadline-missed.
    """
    per_request: dict = {}
    tier_loads: dict = {}
    order: list = []
    for event in data.events:
        time, key, kind, attrs, _seq = event
        if kind == "tier_hit":
            slot = (time, key)
            tier_loads[slot] = tier_loads.get(slot, 0.0) + attrs.get("load_s", 0.0)
            continue
        if kind not in _LIFECYCLE_KINDS:
            continue
        request_id = attrs.get("request")
        if request_id is None:
            continue
        if request_id not in per_request:
            per_request[request_id] = []
            order.append(request_id)
        per_request[request_id].append(event)

    breakdowns: list = []
    num_shed = 0
    num_deadline_missed = 0
    for request_id in order:
        events = per_request[request_id]
        outcome = _decompose_one(request_id, events, tier_loads, data)
        if outcome == "shed":
            num_shed += 1
        elif outcome == "deadline_miss":
            num_deadline_missed += 1
        elif outcome is not None:
            breakdowns.append(outcome)
    breakdowns.sort(key=lambda r: (r.finish_time, str(r.request_id)))
    return CriticalPathReport(
        requests=tuple(breakdowns),
        num_shed=num_shed,
        num_deadline_missed=num_deadline_missed,
        end_time=data.end_time,
    )


def _decompose_one(request_id, events, tier_loads, data: ObsData):
    """One request's breakdown, or ``"shed"`` / ``"deadline_miss"`` / None."""
    replica_names = dict(data.replicas)
    submit_time = None
    finish = None
    num_retries = 0
    num_hedges = 0
    for time, key, kind, attrs, _seq in events:
        if kind == "submit" and submit_time is None:
            submit_time = time
        elif kind == "retry":
            num_retries += 1
        elif kind == "hedge":
            num_hedges += 1
        elif kind == "finish" and finish is None:
            finish = (time, key, attrs)
    if finish is None:
        kinds = {event[2] for event in events}
        if "deadline_miss" in kinds:
            return "deadline_miss"
        if "shed" in kinds:
            return "shed"
        return None
    if submit_time is None:
        # A finish with no recorded submit (a truncated spans file); there is
        # no end-to-end interval to decompose.
        return None
    finish_time, win_key, finish_attrs = finish

    # The winning copy's service window: its last start at or before finish.
    winning_start = None
    for time, key, kind, _attrs, _seq in events:
        if kind == "start" and key == win_key and time <= finish_time:
            winning_start = time
    if winning_start is None:
        winning_start = finish_time  # defensive: no start recorded

    # Walk the gaps between consecutive event times, labelling each one.
    phases = {phase: [] for phase in PHASES}
    running = False      # a (non-winning-window) copy is in service
    retry_pending = False  # crash-evacuated, replacement not yet started
    previous = submit_time
    for time, key, kind, _attrs, _seq in events:
        time = min(time, finish_time)
        if time > previous:
            if previous >= winning_start:
                phases["prefill"].append(time - previous)
            elif running:
                phases["lost_service"].append(time - previous)
            elif retry_pending:
                phases["retry_wait"].append(time - previous)
            else:
                phases["queue"].append(time - previous)
            previous = time
        if kind == "start":
            running = True
            retry_pending = False
        elif kind == "retry":
            running = False
            retry_pending = True

    totals = {phase: fsum(values) for phase, values in phases.items()}
    # Split the winning service window: the tier load sharing the start's
    # (time, key) slot was charged into stage 0 by the engine, so it is a
    # sub-interval of service — carve it out of prefill, clipped.
    service = totals["prefill"]
    tier = min(tier_loads.get((winning_start, win_key), 0.0), service)
    totals["tier_fetch"] = tier
    totals["prefill"] = service - tier
    return RequestBreakdown(
        request_id=request_id,
        tenant=finish_attrs.get("tenant"),
        replica=replica_names.get(win_key, str(win_key)),
        submit_time=submit_time,
        finish_time=finish_time,
        phases=totals,
        num_retries=num_retries,
        num_hedges=num_hedges,
    )


def critical_path_report(data: ObsData) -> CriticalPathReport:
    """Alias of :func:`decompose_requests` (the CLI's entry point)."""
    return decompose_requests(data)


def top_exemplars(report: CriticalPathReport, k: int = 5) -> tuple:
    """The ``k`` slowest finished requests — the exemplar traces to eyeball.

    Ties break on request id, so the selection is deterministic.
    """
    ranked = sorted(report.requests,
                    key=lambda r: (-r.e2e_s, str(r.request_id)))
    return tuple(ranked[:max(k, 0)])


# ------------------------------------------------------------------ run diff


@dataclass(frozen=True)
class RunDiff:
    """What changed between recording ``a`` and recording ``b``.

    Rows are ``dict``s ready for :func:`repro.analysis.reporting.format_table`;
    ``phases`` and ``replicas`` are ranked by absolute delta (largest first),
    so the first row names the dominant mover.  ``is_zero`` is True iff every
    tracked quantity is exactly equal — the contract for two same-seed
    recordings.
    """

    headline: tuple
    phases: tuple
    replicas: tuple
    kinds: tuple
    is_zero: bool


def diff_runs(a: ObsData, b: ObsData) -> RunDiff:
    """Attribute the latency/throughput delta between two recordings.

    ``a`` is the baseline, ``b`` the candidate; positive deltas mean ``b``
    is larger.  Phase attribution compares mean seconds-per-finished-request
    contributions, replica attribution compares per-replica finish counts
    and mean service (tier fetch + prefill) time, and span-kind attribution
    compares raw event counts.
    """
    path_a = decompose_requests(a)
    path_b = decompose_requests(b)

    headline = []
    for name, value_a, value_b in [
        ("finished", len(path_a.requests), len(path_b.requests)),
        ("shed", path_a.num_shed, path_b.num_shed),
        ("deadline_missed", path_a.num_deadline_missed,
         path_b.num_deadline_missed),
        ("mean_e2e_s", path_a.mean_e2e_s(), path_b.mean_e2e_s()),
        ("p99_e2e_s", path_a.p99_e2e_s(), path_b.p99_e2e_s()),
        ("throughput_rps", path_a.throughput_rps(), path_b.throughput_rps()),
        ("end_time_s", a.end_time, b.end_time),
    ]:
        headline.append({
            "metric": name, "baseline": value_a, "candidate": value_b,
            "delta": value_b - value_a,
        })

    means_a = path_a.phase_means()
    means_b = path_b.phase_means()
    phase_rows = [
        {
            "phase": phase,
            "baseline_mean_s": means_a[phase],
            "candidate_mean_s": means_b[phase],
            "delta_s": means_b[phase] - means_a[phase],
        }
        for phase in PHASES
    ]
    phase_rows.sort(key=lambda row: (-abs(row["delta_s"]), row["phase"]))

    replicas_a = path_a.by_replica()
    replicas_b = path_b.by_replica()
    replica_rows = []
    for name in sorted(set(replicas_a) | set(replicas_b)):
        count_a, phases_a = replicas_a.get(name, (0, None))
        count_b, phases_b = replicas_b.get(name, (0, None))
        service_a = (phases_a["tier_fetch"] + phases_a["prefill"]
                     if phases_a else 0.0)
        service_b = (phases_b["tier_fetch"] + phases_b["prefill"]
                     if phases_b else 0.0)
        replica_rows.append({
            "replica": name,
            "finished_delta": count_b - count_a,
            "baseline_mean_service_s": service_a,
            "candidate_mean_service_s": service_b,
            "delta_service_s": service_b - service_a,
        })
    replica_rows.sort(
        key=lambda row: (-abs(row["delta_service_s"]),
                         -abs(row["finished_delta"]), row["replica"])
    )

    def kind_counts(data: ObsData) -> dict:
        counts: dict = {}
        for _time, _key, kind, _attrs, _seq in data.events:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    counts_a = kind_counts(a)
    counts_b = kind_counts(b)
    kind_rows = [
        {
            "kind": kind,
            "baseline": counts_a.get(kind, 0),
            "candidate": counts_b.get(kind, 0),
            "delta": counts_b.get(kind, 0) - counts_a.get(kind, 0),
        }
        for kind in sorted(set(counts_a) | set(counts_b))
    ]

    is_zero = (
        all(row["delta"] == 0 for row in headline)
        and all(row["delta_s"] == 0 for row in phase_rows)
        and all(row["delta_service_s"] == 0 and row["finished_delta"] == 0
                for row in replica_rows)
        and all(row["delta"] == 0 for row in kind_rows)
    )
    return RunDiff(
        headline=tuple(headline),
        phases=tuple(phase_rows),
        replicas=tuple(replica_rows),
        kinds=tuple(kind_rows),
        is_zero=is_zero,
    )


def diff_bench_phases(report: dict, baseline: dict) -> dict:
    """Per-case hot-loop phase deltas between two ``BENCH_*.json`` reports.

    For every case both reports share, each profiled phase's *share* of the
    case's total profiled wall clock is compared — shares, not raw seconds,
    so the attribution is machine-speed-invariant (the same reasoning as
    ``perf_report.py compare --normalize``).  Returns::

        {case: {"phases": {phase: {"baseline_share", "share", "delta_share"}},
                "top_regressed": <phase with the largest share gain, or None>}}

    which :func:`repro.perf.harness.run_harness` embeds as the bench file's
    ``phase_deltas`` section so a CI events/s regression names the phase
    that grew.
    """
    def case_phases(bench: dict) -> dict:
        return {
            case["name"]: case.get("phases") or {}
            for case in bench.get("cases", [])
        }

    def shares(phases: dict) -> dict:
        total = sum(stats.get("wall_s", 0.0) for stats in phases.values())
        if total <= 0:
            return {}
        return {
            phase: stats.get("wall_s", 0.0) / total
            for phase, stats in phases.items()
        }

    new_cases = case_phases(report)
    base_cases = case_phases(baseline)
    deltas: dict = {}
    for name in new_cases:
        if name not in base_cases:
            continue
        new_shares = shares(new_cases[name])
        base_shares = shares(base_cases[name])
        if not new_shares or not base_shares:
            continue
        rows = {}
        for phase in sorted(set(new_shares) | set(base_shares)):
            base_share = base_shares.get(phase, 0.0)
            new_share = new_shares.get(phase, 0.0)
            rows[phase] = {
                "baseline_share": round(base_share, 4),
                "share": round(new_share, 4),
                "delta_share": round(new_share - base_share, 4),
            }
        regressed = [
            (stats["delta_share"], phase) for phase, stats in rows.items()
            if stats["delta_share"] > 0
        ]
        deltas[name] = {
            "phases": rows,
            "top_regressed": max(regressed)[1] if regressed else None,
        }
    return deltas


# ---------------------------------------------------------- burn-rate alerts


@dataclass(frozen=True)
class AlertRule:
    """One multi-window burn-rate rule (see ``docs/OBSERVABILITY.md``).

    The error budget is ``1 - objective``; the windowed burn rate is the
    window's SLO-miss ratio divided by the budget (burn 1.0 consumes exactly
    the budget over the SLO period).  The rule fires while *both* windows
    burn at ``burn_rate`` or faster — the long window keeps the alert from
    flapping, the short window lets it resolve promptly.
    """

    name: str
    objective: float = 0.99
    long_window_s: float = 30.0
    short_window_s: float = 6.0
    burn_rate: float = 6.0
    severity: str = "page"
    tenant: str | None = None


#: The rules ``prefillonly obs alerts`` evaluates when the scenario's
#: ``"observability"`` block configures none — a fast/slow pair sized for
#: cookbook-scale runs (tens of simulated seconds, not SRE hours).
DEFAULT_ALERT_RULES = (
    AlertRule(name="fast-burn", objective=0.99, long_window_s=10.0,
              short_window_s=2.0, burn_rate=14.4, severity="page"),
    AlertRule(name="slow-burn", objective=0.99, long_window_s=30.0,
              short_window_s=6.0, burn_rate=6.0, severity="ticket"),
)


def alert_rule_from_model(model) -> AlertRule:
    """Compile one spec-layer :class:`~repro.spec.models.AlertRuleSpec`."""
    return AlertRule(
        name=model.name,
        objective=model.objective,
        long_window_s=model.long_window_s,
        short_window_s=model.short_window_s,
        burn_rate=model.burn_rate,
        severity=model.severity,
        tenant=model.tenant,
    )


@dataclass(frozen=True)
class AlertEvent:
    """One deterministic alert transition at a sample boundary."""

    time: float
    rule: str
    tenant: str
    state: str  # "firing" | "resolved"
    severity: str
    burn_long: float
    burn_short: float


@dataclass(frozen=True)
class AlertReport:
    """The alert evaluation of one recording (``repro-alerts/v1`` payload).

    Attributes:
        rules: The rules evaluated, in evaluation order.
        events: Firing/resolved transitions in ``(time, rule, tenant)`` order.
        budgets: Per ``(rule, tenant)`` end-of-run budget rows: finished
            count, SLO misses, whole-run error ratio, and the fraction of the
            error budget consumed.
        interval_s: The boundary spacing the rules were evaluated on.
        end_time: The recording's final simulated time.
    """

    rules: tuple
    events: tuple
    budgets: tuple
    interval_s: float
    end_time: float

    def firing_at_end(self) -> tuple:
        """The ``(rule, tenant)`` pairs still firing at end of run."""
        state: dict = {}
        for event in self.events:
            state[(event.rule, event.tenant)] = event.state
        return tuple(sorted(
            pair for pair, last in state.items() if last == "firing"
        ))


def evaluate_alerts(data: ObsData, rules=DEFAULT_ALERT_RULES, *,
                    slos: dict | None = None,
                    interval_s: float | None = None) -> AlertReport:
    """Evaluate burn-rate rules over a recording, in simulated time.

    Args:
        data: The recording (a live run's ``ObsData`` or a parsed spans
            file — only ``finish`` events and ``end_time`` are read).
        rules: The :class:`AlertRule` list; a rule with ``tenant=None``
            applies to every tenant in ``slos``.
        slos: Tenant name -> latency SLO seconds (a finish is an SLO miss
            when ``latency_s`` exceeds it).  Tenants without an SLO are
            never evaluated.
        interval_s: Boundary spacing; defaults to the recording's
            ``sample_interval_s`` — the same ``k * interval`` grid the
            metric sampler uses, with each boundary reflecting finishes
            strictly before it.

    Raises:
        ObsError: if a rule names a tenant that has no SLO to evaluate.
    """
    slos = dict(slos or {})
    interval = interval_s if interval_s is not None else data.config.sample_interval_s
    if interval <= 0:
        raise ObsError(f"alert evaluation interval must be positive, got {interval!r}")

    finishes: dict = {}
    for time, _key, kind, attrs, _seq in data.events:
        if kind != "finish":
            continue
        tenant = attrs.get("tenant")
        if tenant is None or tenant not in slos:
            continue
        miss = attrs.get("latency_s", 0.0) > slos[tenant]
        finishes.setdefault(tenant, []).append((time, miss))

    pairs: list = []
    for rule in rules:
        if rule.tenant is not None:
            if rule.tenant not in slos:
                raise ObsError(
                    f"alert rule {rule.name!r} names tenant {rule.tenant!r}, "
                    f"which has no SLO in this scenario"
                )
            pairs.append((rule, rule.tenant))
        else:
            pairs.extend((rule, tenant) for tenant in sorted(slos))

    def burn(tenant: str, boundary: float, window: float,
             budget: float) -> float:
        total = misses = 0
        for time, miss in finishes.get(tenant, ()):
            if boundary - window <= time < boundary:
                total += 1
                misses += miss
        if total == 0:
            return 0.0
        return (misses / total) / budget

    events: list = []
    firing: dict = {}
    num_boundaries = int(data.end_time / interval) + 1
    for k in range(num_boundaries):
        boundary = k * interval
        for rule, tenant in pairs:
            budget = 1.0 - rule.objective
            burn_long = burn(tenant, boundary, rule.long_window_s, budget)
            burn_short = burn(tenant, boundary, rule.short_window_s, budget)
            now_firing = (burn_long >= rule.burn_rate
                          and burn_short >= rule.burn_rate)
            was_firing = firing.get((rule.name, tenant), False)
            if now_firing != was_firing:
                firing[(rule.name, tenant)] = now_firing
                events.append(AlertEvent(
                    time=boundary,
                    rule=rule.name,
                    tenant=tenant,
                    state="firing" if now_firing else "resolved",
                    severity=rule.severity,
                    burn_long=burn_long,
                    burn_short=burn_short,
                ))

    budgets = []
    for rule, tenant in pairs:
        rows = finishes.get(tenant, ())
        total = len(rows)
        misses = sum(miss for _time, miss in rows)
        error_ratio = misses / total if total else 0.0
        budget = 1.0 - rule.objective
        budgets.append({
            "rule": rule.name,
            "tenant": tenant,
            "finished": total,
            "slo_misses": misses,
            "error_ratio": error_ratio,
            "budget_consumed": error_ratio / budget if budget > 0 else 0.0,
        })
    events.sort(key=lambda e: (e.time, e.rule, e.tenant))
    return AlertReport(
        rules=tuple(rules),
        events=tuple(events),
        budgets=tuple(budgets),
        interval_s=interval,
        end_time=data.end_time,
    )
