"""Deterministic tracing & telemetry for the simulated fleet.

``repro.obs`` is the observability layer of the reproduction: per-request
lifecycle spans recorded in *simulated time*, time-series metrics sampled on
a configurable simulated-time interval, exporters (``repro-spans/v1`` JSONL,
Chrome trace-event JSON, Prometheus text), and a wall-clock self-profiler
for the simulator hot loop.  See ``docs/OBSERVABILITY.md``.

The hard contract mirrors the rest of the system: with observability
disabled (the default), simulation results are byte-identical to a build
without the subsystem; with it enabled, simulation results are *unchanged*
and the exports themselves are bit-reproducible across repeat runs, shard
counts, and worker pools.
"""

from repro.obs.recorder import (
    GLOBAL_KEY,
    DEFAULT_LATENCY_BUCKETS,
    ObsConfig,
    ObsData,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    merge_shard_payloads,
)
from repro.obs.exporters import (
    SPANS_FORMAT,
    ALERTS_FORMAT,
    export_spans,
    parse_spans,
    export_alerts,
    export_chrome_trace,
    export_prometheus,
    format_obs_summary,
    format_slo_report,
)
from repro.obs.analysis import (
    PHASES,
    DEFAULT_ALERT_RULES,
    AlertEvent,
    AlertReport,
    AlertRule,
    CriticalPathReport,
    RequestBreakdown,
    RunDiff,
    alert_rule_from_model,
    critical_path_report,
    decompose_requests,
    diff_bench_phases,
    diff_runs,
    evaluate_alerts,
    top_exemplars,
)

__all__ = [
    "GLOBAL_KEY",
    "DEFAULT_LATENCY_BUCKETS",
    "ObsConfig",
    "ObsData",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
    "merge_shard_payloads",
    "SPANS_FORMAT",
    "ALERTS_FORMAT",
    "export_spans",
    "parse_spans",
    "export_alerts",
    "export_chrome_trace",
    "export_prometheus",
    "format_obs_summary",
    "format_slo_report",
    "PHASES",
    "DEFAULT_ALERT_RULES",
    "AlertEvent",
    "AlertReport",
    "AlertRule",
    "CriticalPathReport",
    "RequestBreakdown",
    "RunDiff",
    "alert_rule_from_model",
    "critical_path_report",
    "decompose_requests",
    "diff_bench_phases",
    "diff_runs",
    "evaluate_alerts",
    "top_exemplars",
]
