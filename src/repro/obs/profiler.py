"""Wall-clock self-profiler for the simulator hot loop.

Attributes the *real* (wall-clock) time of a simulation run to the engine's
phases — arrival dispatch, internal-event advance, fault delivery, autoscale
checks, metric sampling — so ``BENCH_*.json`` can say where the events/s
budget actually goes (the phase breakdown the ROADMAP's vectorization item
needs as its baseline).

The profiler is a module global: :func:`activate` installs a fresh
:class:`PhaseProfiler`, the simulator loops read :data:`ACTIVE` once per run
and, only when it is set, bracket each phase with ``perf_counter`` — the
common disabled path costs one module-attribute read per simulation call.
Wall-clock attribution never touches simulated time, so profiling cannot
perturb results (the same measurement-never-perturbs contract as the span
recorder, here for real time instead of simulated time).
"""

from __future__ import annotations

__all__ = ["PhaseProfiler", "ACTIVE", "activate", "deactivate"]


class PhaseProfiler:
    """Accumulates wall-clock seconds and event counts per engine phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.events: dict[str, int] = {}

    def add(self, phase: str, seconds: float, events: int = 1) -> None:
        """Charge ``seconds`` of wall clock (and ``events`` events) to a phase."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.events[phase] = self.events.get(phase, 0) + events

    def as_dict(self) -> dict:
        """Phase breakdown for ``BENCH_*.json``: seconds, events, events/s."""
        breakdown = {}
        for phase in sorted(self.seconds):
            seconds = self.seconds[phase]
            events = self.events.get(phase, 0)
            breakdown[phase] = {
                "wall_s": round(seconds, 4),
                "events": events,
                "events_per_s": round(events / seconds, 1) if seconds > 0 else 0.0,
            }
        return breakdown


#: The installed profiler, or None (the default — loops skip all timing).
ACTIVE: PhaseProfiler | None = None


def activate() -> PhaseProfiler:
    """Install and return a fresh profiler (replacing any active one)."""
    global ACTIVE
    ACTIVE = PhaseProfiler()
    return ACTIVE


def deactivate() -> PhaseProfiler | None:
    """Remove the active profiler and return it (None if none was active)."""
    global ACTIVE
    profiler, ACTIVE = ACTIVE, None
    return profiler
