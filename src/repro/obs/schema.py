"""A minimal JSON-Schema-subset validator for the checked-in trace schemas.

The container deliberately carries no third-party ``jsonschema`` package, so
this module implements exactly the subset the checked-in schemas use:
``type`` (scalar or union), ``enum``, ``const``, ``properties`` /
``required`` / ``additionalProperties``, ``items``, ``minimum``, and
``oneOf``.  Anything else in a schema fails loudly rather than silently
passing.

Used by ``scripts/obs_check.py`` (the CI ``obs`` job) and the exporter tests
to validate ``prefillonly obs export --format chrome`` output against
``schemas/chrome-trace.schema.json``.
"""

from __future__ import annotations

from repro.errors import TraceSchemaError

__all__ = ["validate_json"]

#: Schema keywords this validator understands; unknown *constraint* keywords
#: in a schema raise instead of being ignored.
_KNOWN_KEYWORDS = {
    "$schema", "$id", "title", "description",
    "type", "enum", "const", "properties", "required",
    "additionalProperties", "items", "minimum", "oneOf",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected: str, path: str) -> None:
    python_type = _TYPES.get(expected)
    if python_type is None:
        raise TraceSchemaError(f"schema uses unknown type {expected!r}", path=path)
    if isinstance(value, bool) and expected in ("integer", "number"):
        raise TraceSchemaError(f"expected {expected}, got boolean", path=path)
    if not isinstance(value, python_type):
        raise TraceSchemaError(
            f"expected {expected}, got {type(value).__name__}", path=path
        )


def validate_json(value, schema: dict, *, path: str = "") -> None:
    """Validate ``value`` against the schema subset; raise on the first failure.

    Raises:
        TraceSchemaError: naming the JSON path of the first violation, or a
            schema keyword outside the supported subset.
    """
    if not isinstance(schema, dict):
        raise TraceSchemaError("schema node must be an object", path=path)
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        raise TraceSchemaError(
            f"schema uses unsupported keywords {sorted(unknown)}", path=path
        )
    if "oneOf" in schema:
        errors = []
        for index, option in enumerate(schema["oneOf"]):
            try:
                validate_json(value, option, path=path)
                return
            except TraceSchemaError as exc:
                errors.append(f"option {index}: {exc}")
        raise TraceSchemaError(
            "matched none of oneOf (" + "; ".join(errors) + ")", path=path
        )
    expected = schema.get("type")
    if expected is not None:
        if isinstance(expected, list):
            if not any(_matches_type(value, entry) for entry in expected):
                raise TraceSchemaError(
                    f"expected one of {expected}, got {type(value).__name__}",
                    path=path,
                )
        else:
            _check_type(value, expected, path)
    if "const" in schema and value != schema["const"]:
        raise TraceSchemaError(
            f"expected constant {schema['const']!r}, got {value!r}", path=path
        )
    if "enum" in schema and value not in schema["enum"]:
        raise TraceSchemaError(
            f"{value!r} is not one of {schema['enum']}", path=path
        )
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        raise TraceSchemaError(
            f"{value!r} is below the minimum {schema['minimum']}", path=path
        )
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise TraceSchemaError(f"missing required key {key!r}", path=path)
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            child_path = f"{path}.{key}" if path else key
            if key in properties:
                validate_json(item, properties[key], path=child_path)
            elif additional is False:
                raise TraceSchemaError(f"unexpected key {key!r}", path=path)
            elif isinstance(additional, dict):
                validate_json(item, additional, path=child_path)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate_json(item, schema["items"], path=f"{path}[{index}]")


def _matches_type(value, expected: str) -> bool:
    try:
        _check_type(value, expected, "")
        return True
    except TraceSchemaError as exc:
        if "unknown type" in str(exc):
            raise
        return False
