"""Exporters for one run's :class:`~repro.obs.recorder.ObsData`.

Three formats, all bit-reproducible (same run, same bytes):

* ``repro-spans/v1`` — a versioned JSONL span format: one header line, then
  one canonical-order event per line.  :func:`parse_spans` round-trips —
  re-exporting a parsed file reproduces it byte for byte.
* Chrome trace-event JSON — loads in ``chrome://tracing`` and Perfetto.
  Replicas appear as processes (tracks): service time as complete (``X``)
  slices, queue wait as async (``b``/``e``) spans keyed by request id, and
  sheds / retries / faults / autoscale / tier traffic as instant events.
* Prometheus text exposition — the end-of-run counter snapshot, the request
  latency histogram (``le`` bucket semantics), and the final queue-depth
  gauges, all under the ``repro_`` metric prefix.

Schema: ``schemas/chrome-trace.schema.json`` pins the Chrome export's shape;
``scripts/obs_check.py`` validates every exported trace against it in CI.
"""

from __future__ import annotations

import json

from repro.errors import ObsError
from repro.obs.recorder import GLOBAL_KEY, ObsData

__all__ = [
    "SPANS_FORMAT",
    "ALERTS_FORMAT",
    "export_spans",
    "parse_spans",
    "export_alerts",
    "export_chrome_trace",
    "export_prometheus",
    "format_obs_summary",
    "format_slo_report",
]

#: Version tag of the JSONL span format (the header line's ``"format"``).
SPANS_FORMAT = "repro-spans/v1"

#: Version tag of the JSONL alert-event format (the header line's ``"format"``).
#: Schema: ``schemas/repro-alerts.schema.json``; validated by
#: ``scripts/obs_check.py`` in CI.
ALERTS_FORMAT = "repro-alerts/v1"


def _dumps(payload) -> str:
    """Canonical JSON: sorted keys, no whitespace — byte-stable."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ------------------------------------------------------------ repro-spans/v1


def export_spans(data: ObsData) -> str:
    """Serialise the span events as ``repro-spans/v1`` JSONL."""
    lines = [_dumps({
        "format": SPANS_FORMAT,
        "end_time": data.end_time,
        "num_events": len(data.events),
        "replicas": [[key, name] for key, name in data.replicas],
    })]
    for time, key, kind, attrs, seq in data.events:
        lines.append(_dumps({
            "time": time, "key": key, "kind": kind, "seq": seq,
            "attrs": attrs,
        }))
    return "\n".join(lines) + "\n"


def parse_spans(text: str) -> ObsData:
    """Parse a ``repro-spans/v1`` document back into an :class:`ObsData`.

    Only the span-relevant fields are populated (events, replicas,
    ``end_time``); re-exporting the result reproduces the input byte for
    byte.

    Raises:
        ObsError: on a missing or mismatched header, or a malformed line.
    """
    lines = [line for line in text.splitlines() if line]
    if not lines:
        raise ObsError("empty spans document")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ObsError(f"spans header is not valid JSON ({exc})") from None
    if not isinstance(header, dict) or header.get("format") != SPANS_FORMAT:
        raise ObsError(
            f"expected a {SPANS_FORMAT!r} header, got {lines[0][:80]!r}"
        )
    events = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            row = json.loads(line)
            events.append((
                row["time"], row["key"], row["kind"], row["attrs"], row["seq"],
            ))
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            raise ObsError(f"spans line {number} is malformed ({exc})") from None
    if len(events) != header.get("num_events"):
        raise ObsError(
            f"header promises {header.get('num_events')} events, "
            f"found {len(events)}"
        )
    from repro.obs.recorder import ObsConfig

    return ObsData(
        config=ObsConfig(enabled=True),
        events=tuple(events),
        replicas=tuple(
            (key, name) for key, name in header.get("replicas", [])
        ),
        end_time=header.get("end_time", 0.0),
    )


# ------------------------------------------------------------ repro-alerts/v1


def export_alerts(report) -> str:
    """Serialise an :class:`~repro.obs.analysis.AlertReport` as JSONL.

    ``repro-alerts/v1``: one header line (format tag, evaluation interval,
    the rules evaluated, end-of-run budget rows), then one firing/resolved
    transition per line in ``(time, rule, tenant)`` order.  Canonical JSON
    throughout, so the export is bit-reproducible.
    """
    lines = [_dumps({
        "format": ALERTS_FORMAT,
        "end_time": report.end_time,
        "interval_s": report.interval_s,
        "num_events": len(report.events),
        "rules": [
            {
                "name": rule.name,
                "objective": rule.objective,
                "long_window_s": rule.long_window_s,
                "short_window_s": rule.short_window_s,
                "burn_rate": rule.burn_rate,
                "severity": rule.severity,
                "tenant": rule.tenant,
            }
            for rule in report.rules
        ],
        "budgets": list(report.budgets),
    })]
    for event in report.events:
        lines.append(_dumps({
            "time": event.time,
            "rule": event.rule,
            "tenant": event.tenant,
            "state": event.state,
            "severity": event.severity,
            "burn_long": round(event.burn_long, 6),
            "burn_short": round(event.burn_short, 6),
        }))
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------- Chrome traces

#: Span kinds rendered as instant events on their replica's (or the fleet's)
#: track, with their display names.
_INSTANT_KINDS = {
    "shed": "shed",
    "retry": "retry",
    "fault": "fault",
    "scale": "autoscale",
    "tier_hit": "tier hit",
    "peer_fetch": "peer fetch",
    "promote": "promote",
    "demote": "demote",
    "prefetch": "prefetch",
    "warm_restore": "warm restore",
}


def _pid(key: int) -> int:
    """Track (process) id of a replica key; the fleet track is pid 0."""
    return key + 1


def _us(time: float) -> float:
    """Simulated seconds -> trace microseconds."""
    return time * 1e6


def export_chrome_trace(data: ObsData) -> str:
    """Serialise the run as Chrome trace-event JSON (Perfetto-loadable)."""
    trace_events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": _pid(GLOBAL_KEY), "tid": 0,
        "args": {"name": "fleet"},
    }]
    for key, name in data.replicas:
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": _pid(key), "tid": 0,
            "args": {"name": f"replica {name}"},
        })
    submits: dict = {}
    starts: dict = {}
    for time, key, kind, attrs, seq in data.events:
        request = attrs.get("request")
        if kind == "submit":
            submits[request] = (time, key)
        elif kind == "start":
            starts[request] = (time, key)
            submitted = submits.pop(request, None)
            if submitted is not None:
                # The submit event lives on the fleet track (GLOBAL_KEY); the
                # async queue span must begin and end on the same pid to pair
                # up, so both halves go on the serving replica's track.
                submit_time, _submit_key = submitted
                trace_events.append({
                    "name": "queue", "cat": "request", "ph": "b",
                    "id": request, "pid": _pid(key), "tid": 0,
                    "ts": _us(submit_time), "args": {},
                })
                trace_events.append({
                    "name": "queue", "cat": "request", "ph": "e",
                    "id": request, "pid": _pid(key), "tid": 0,
                    "ts": _us(time), "args": {},
                })
        elif kind == "finish":
            started = starts.pop(request, None)
            if started is not None:
                start_time, start_key = started
                trace_events.append({
                    "name": "service", "cat": "request", "ph": "X",
                    "pid": _pid(start_key), "tid": 0,
                    "ts": _us(start_time),
                    "dur": _us(time - start_time),
                    "args": {
                        key_: value for key_, value in sorted(attrs.items())
                    },
                })
        elif kind in _INSTANT_KINDS:
            trace_events.append({
                "name": _INSTANT_KINDS[kind], "cat": kind, "ph": "i",
                "pid": _pid(key), "tid": 0, "ts": _us(time),
                "s": "g" if key == GLOBAL_KEY else "p",
                "args": {
                    key_: value for key_, value in sorted(attrs.items())
                },
            })
    return _dumps({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-chrome-trace/v1"},
    }) + "\n"


# ---------------------------------------------------------------- Prometheus

_HELP = {
    "submitted_total": "Requests offered to the fleet.",
    "routed_total": "Requests dispatched, by chosen replica.",
    "finished_total": "Requests completed, by serving replica.",
    "shed_total": "Requests shed by admission control.",
    "retried_total": "Crash-evacuated requests re-routed.",
    "tenant_finished_total": "Requests completed, by tenant.",
    "tenant_slo_ok_total": "Completed requests within the tenant's SLO.",
    "faults_total": "Fault events applied, by kind.",
    "scale_events_total": "Autoscaler actions applied, by direction.",
    "tier_host_tokens_total": "Prefix tokens streamed from the host (L2) tier.",
    "tier_cluster_tokens_total": "Prefix tokens streamed from the cluster (L3) tier.",
    "tier_promoted_blocks_total": "Blocks promoted into GPU memory.",
    "tier_demoted_blocks_total": "Blocks demoted down the tier hierarchy.",
    "tier_prefetched_blocks_total": "Blocks prefetched on router hints.",
    "tier_peer_fetches_total": "Cluster-store blocks fetched from a peer owner.",
    "tier_warm_restored_blocks_total": "Blocks warm-restored into rebuilt replicas.",
}


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _labels(labels: tuple) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + body + "}"


def export_prometheus(data: ObsData) -> str:
    """Serialise the end-of-run metric snapshot as Prometheus text."""
    lines: list[str] = []
    by_name: dict = {}
    for (name, labels), value in data.counters:
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        lines.append(f"# HELP repro_{name} {_HELP.get(name, name)}")
        lines.append(f"# TYPE repro_{name} counter")
        for labels, value in sorted(by_name[name]):
            lines.append(f"repro_{name}{_labels(labels)} {_number(value)}")
    gauges: dict = {}
    for time, name, labels, value in data.samples:
        if name == "queue_depth":
            gauges[labels] = value
    if gauges:
        lines.append("# HELP repro_queue_depth Final sampled per-replica queue depth.")
        lines.append("# TYPE repro_queue_depth gauge")
        for labels, value in sorted(gauges.items()):
            lines.append(f"repro_queue_depth{_labels(labels)} {_number(value)}")
    if data.hist_count or data.hist_counts:
        lines.append(
            "# HELP repro_request_latency_seconds Request latency (simulated seconds)."
        )
        lines.append("# TYPE repro_request_latency_seconds histogram")
        cumulative = 0
        for edge, count in zip(data.hist_buckets, data.hist_counts):
            cumulative += count
            lines.append(
                f'repro_request_latency_seconds_bucket{{le="{_number(float(edge))}"}} '
                f"{cumulative}"
            )
        cumulative += data.hist_counts[-1] if data.hist_counts else 0
        lines.append(
            f'repro_request_latency_seconds_bucket{{le="+Inf"}} {cumulative}'
        )
        lines.append(
            f"repro_request_latency_seconds_sum {_number(float(data.hist_sum))}"
        )
        lines.append(f"repro_request_latency_seconds_count {data.hist_count}")
    return "\n".join(lines) + "\n"


# -------------------------------------------------------------- CLI reports


def format_obs_summary(data: ObsData) -> str:
    """Human-readable overview of one run's recording (CLI output)."""
    from repro.analysis.reporting import format_table

    kinds: dict = {}
    for _, _, kind, _, _ in data.events:
        kinds[kind] = kinds.get(kind, 0) + 1
    sections = [
        f"spans: {len(data.events)} events, {len(data.replicas)} replicas, "
        f"end_time={data.end_time:.3f}s",
        f"metrics: {len(data.samples)} samples over {data.num_boundaries} "
        f"boundaries (interval={data.config.sample_interval_s:g}s)",
    ]
    if kinds:
        sections.append(format_table(
            [{"kind": kind, "events": count} for kind, count in sorted(kinds.items())],
            title="Span events by kind",
        ))
    if data.counters:
        sections.append(format_table(
            [
                {
                    "counter": name,
                    "labels": _labels(labels) or "-",
                    "value": value,
                }
                for (name, labels), value in data.counters
            ],
            title="Counter snapshot",
        ))
    return "\n\n".join(sections)


def format_slo_report(data: ObsData) -> str:
    """Per-tenant SLO attainment from the counter snapshot (CLI output)."""
    from repro.analysis.reporting import format_table

    finished: dict = {}
    ok: dict = {}
    for (name, labels), value in data.counters:
        if name == "tenant_finished_total":
            finished[dict(labels)["tenant"]] = value
        elif name == "tenant_slo_ok_total":
            ok[dict(labels)["tenant"]] = value
    if not finished:
        return "no per-tenant completions recorded"
    rows = []
    for tenant in sorted(finished):
        within = ok.get(tenant)
        rows.append({
            "tenant": tenant,
            "finished": finished[tenant],
            "slo_ok": within if within is not None else "-",
            "attainment": (
                round(within / finished[tenant], 3)
                if within is not None and finished[tenant] else "-"
            ),
        })
    return format_table(rows, title="Per-tenant SLO attainment")
