"""Structured stdlib logging for the CLI and scripts.

One root logger (``repro``), one line format, and two context fields every
record carries: the scenario seed and the shard id, injected by a logging
filter from a module-level context the scenario runner and the shard engines
update as they run.  ``prefillonly --log-level`` and the scripts'
``--log-level`` flags call :func:`configure`; library code only ever calls
:func:`get_logger` and logs — no handler is installed unless configured, so
embedding applications keep full control.
"""

from __future__ import annotations

import logging

__all__ = ["configure", "get_logger", "set_context", "LOG_LEVELS"]

#: The ``--log-level`` choices, mapped onto the stdlib levels.
LOG_LEVELS = ("debug", "info", "warning", "error")

_FORMAT = (
    "%(levelname)s %(name)s [seed=%(scenario_seed)s shard=%(shard_id)s] %(message)s"
)

_context = {"seed": "-", "shard": "-"}


class _ContextFilter(logging.Filter):
    """Injects the scenario seed and shard id into every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.scenario_seed = _context["seed"]
        record.shard_id = _context["shard"]
        return True


def set_context(*, seed=None, shard=None) -> None:
    """Update the logging context; None leaves a field unchanged."""
    if seed is not None:
        _context["seed"] = seed
    if shard is not None:
        _context["shard"] = shard


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` hierarchy."""
    return logging.getLogger(f"repro.{name}" if not name.startswith("repro") else name)


def configure(level: str = "warning") -> None:
    """Install the CLI handler on the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previous handler instead of
    stacking duplicates.
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
        )
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.addFilter(_ContextFilter())
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
