"""Per-layer structural description of a transformer forward pass.

The hybrid-prefilling planner (``repro.core.hybrid_prefill``) and the
computation-graph executor (``repro.execution``) both need to know, for every
layer in the model, whether the layer is an attention layer (must see the whole
sequence at once, produces KV cache) or a position-wise layer (linear / norm /
activation; can be evaluated chunk-by-chunk).  This module builds that layer
stack from a :class:`~repro.model.config.ModelConfig` and also produces the
MLP tensor-size report behind Figure 4 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.model.config import ModelConfig


class LayerKind(enum.Enum):
    """Classification of layers used by the hybrid-prefilling planner."""

    EMBEDDING = "embedding"
    NORM = "norm"
    ATTENTION = "attention"
    MLP = "mlp"
    LM_HEAD = "lm_head"

    @property
    def is_positionwise(self) -> bool:
        """True if the layer maps each token independently (chunkable)."""
        return self is not LayerKind.ATTENTION


@dataclass(frozen=True)
class LayerSpec:
    """One entry in the flattened layer stack of a transformer.

    Attributes:
        index: Position in the stack (0-based).
        kind: What kind of layer this is.
        block_index: Which transformer block the layer belongs to (-1 for
            embedding / final norm / LM head).
        input_width: Per-token input width in elements.
        output_width: Per-token output width in elements.
        peak_intermediate_width: Largest per-token intermediate tensor the layer
            materialises while computing (0 if the layer streams its output).
    """

    index: int
    kind: LayerKind
    block_index: int
    input_width: int
    output_width: int
    peak_intermediate_width: int = 0

    @property
    def is_chunkable(self) -> bool:
        """True if hybrid prefilling may evaluate this layer chunk-by-chunk."""
        return self.kind.is_positionwise


def build_layer_stack(model: ModelConfig, *, include_lm_head: bool = True) -> list[LayerSpec]:
    """Flatten a model into an ordered list of :class:`LayerSpec`.

    The stack is: embedding, then for each block (input norm, attention,
    post-attention norm, MLP), then the final norm and optionally the LM head.
    """
    stack: list[LayerSpec] = []
    index = 0

    def push(kind: LayerKind, block_index: int, input_width: int, output_width: int,
             peak_intermediate_width: int = 0) -> None:
        nonlocal index
        stack.append(
            LayerSpec(
                index=index,
                kind=kind,
                block_index=block_index,
                input_width=input_width,
                output_width=output_width,
                peak_intermediate_width=peak_intermediate_width,
            )
        )
        index += 1

    hidden = model.hidden_size
    push(LayerKind.EMBEDDING, -1, 1, hidden)

    for block in range(model.num_layers):
        push(LayerKind.NORM, block, hidden, hidden)
        # Attention materialises Q (q_dim), K and V (kv_dim each) plus the output.
        push(
            LayerKind.ATTENTION,
            block,
            hidden,
            hidden,
            peak_intermediate_width=model.q_dim + 2 * model.kv_dim,
        )
        push(LayerKind.NORM, block, hidden, hidden)
        # SwiGLU MLP materialises the fused gate+up tensor (2*intermediate) and
        # then the elementwise product (intermediate) before the down projection.
        push(
            LayerKind.MLP,
            block,
            hidden,
            hidden,
            peak_intermediate_width=model.mlp_intermediate_elements_per_token,
        )

    push(LayerKind.NORM, -1, hidden, hidden)
    if include_lm_head:
        push(LayerKind.LM_HEAD, -1, hidden, model.vocab_size)
    return stack


@dataclass(frozen=True)
class MLPTensorReport:
    """Figure 4 of the paper: per-token tensor sizes inside one MLP block.

    All sizes are in elements per token; ``*_vs_one_layer_kv`` expresses the
    paper's "14x larger than one-layer KV" comparison.
    """

    input_elements: int
    gate_up_elements: int
    down_input_elements: int
    output_elements: int
    one_layer_kv_elements: int
    gate_up_vs_one_layer_kv: float
    down_input_vs_one_layer_kv: float

    def rows(self, num_tokens: int, bytes_per_element: float) -> list[dict]:
        """Materialise the report for a concrete sequence length (for benches)."""
        def row(name: str, elements: int) -> dict:
            return {
                "tensor": name,
                "per_token_elements": elements,
                "total_elements": elements * num_tokens,
                "total_gib": elements * num_tokens * bytes_per_element / (1 << 30),
                "vs_one_layer_kv": elements / self.one_layer_kv_elements,
            }

        return [
            row("input", self.input_elements),
            row("intermediate_1 (gate+up)", self.gate_up_elements),
            row("intermediate_2 (after SwiGLU)", self.down_input_elements),
            row("output", self.output_elements),
        ]


def mlp_tensor_report(model: ModelConfig) -> MLPTensorReport:
    """Compute the per-token MLP tensor sizes of Figure 4 for ``model``."""
    one_layer_kv = 2 * model.kv_dim
    gate_up = 2 * model.intermediate_size
    return MLPTensorReport(
        input_elements=model.hidden_size,
        gate_up_elements=gate_up,
        down_input_elements=model.intermediate_size,
        output_elements=model.hidden_size,
        one_layer_kv_elements=one_layer_kv,
        gate_up_vs_one_layer_kv=gate_up / one_layer_kv,
        down_input_vs_one_layer_kv=model.intermediate_size / one_layer_kv,
    )
