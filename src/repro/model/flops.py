"""Analytical FLOP counts for prefilling and decoding.

The latency model (``repro.model.latency``) converts these FLOP counts into
seconds using the GPU's sustained throughput.  The split between the dense
(linear-layer) term and the attention (sequence-length-quadratic) term matters
because chunked prefilling and tensor parallelism affect the two terms
differently.

The per-token coefficients (dense FLOPs per token, attention FLOPs per
token-of-context per layer) are precomputed once at construction: they are
pure functions of the architecture, and the per-call arithmetic keeps the
seed implementation's exact operation order, so every breakdown is
bit-identical to computing the coefficients inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig


@dataclass(frozen=True)
class FlopsBreakdown:
    """FLOPs of one forward pass split into dense and attention terms."""

    dense_flops: float
    attention_flops: float

    @property
    def total(self) -> float:
        return self.dense_flops + self.attention_flops


class FlopsModel:
    """Compute FLOPs for prefill and decode passes of a model.

    The dense term uses the standard ``2 * parameters * tokens`` estimate for
    matmul-dominated transformer layers.  The attention term counts the
    query-key and probability-value matmuls, which scale with
    ``new_tokens * total_context``.
    """

    def __init__(self, model: ModelConfig) -> None:
        self._model = model
        # Precomputed per-token coefficients (hot-path memoization).  The
        # groupings mirror the seed's evaluation order exactly:
        #   dense      = (2.0 * num_parameters) * tokens
        #   per_layer  = (4.0 * num_attention_heads) * head_dim
        #   decode attention = (num_layers * per_layer) * context
        self._dense_per_token = 2.0 * model.num_parameters
        self._attention_per_layer = 4.0 * model.num_attention_heads * model.head_dim
        self._decode_attention_per_context = (
            model.num_layers * self._attention_per_layer
        )
        self._num_layers = model.num_layers

    @property
    def model(self) -> ModelConfig:
        return self._model

    def prefill(self, num_new_tokens: int, *, num_cached_tokens: int = 0) -> FlopsBreakdown:
        """FLOPs to prefill ``num_new_tokens`` on top of ``num_cached_tokens``.

        When a prefix of the request already has its KV cache resident (prefix
        cache hit), only the new tokens go through the dense layers, and the
        attention term covers new tokens attending over the full context
        (cached + new), which is exactly what a paged-attention kernel computes.
        """
        if num_new_tokens < 0 or num_cached_tokens < 0:
            raise ValueError("token counts must be non-negative")
        dense = self._dense_per_token * num_new_tokens
        # Q@K^T and P@V: 2 matmuls, each 2 * heads * head_dim * new * context,
        # per layer.  Causal masking halves the average context length for the
        # new tokens attending to each other; we fold that in for the new-new
        # part and keep the full term for new-cached attention.
        per_layer = self._attention_per_layer
        new_new = per_layer * num_new_tokens * max(num_new_tokens, 1) / 2.0
        new_cached = per_layer * num_new_tokens * num_cached_tokens
        attention = self._num_layers * (new_new + new_cached)
        return FlopsBreakdown(dense_flops=dense, attention_flops=attention)

    def decode_step(self, context_length: int) -> FlopsBreakdown:
        """FLOPs to decode one token with ``context_length`` tokens of context."""
        if context_length < 0:
            raise ValueError("context_length must be non-negative")
        dense = self._dense_per_token
        attention = self._decode_attention_per_context * context_length
        return FlopsBreakdown(dense_flops=dense, attention_flops=attention)

    def decode_sequence(self, prompt_length: int, num_output_tokens: int) -> FlopsBreakdown:
        """Aggregate FLOPs to decode ``num_output_tokens`` after a prompt."""
        dense = 0.0
        attention = 0.0
        for i in range(num_output_tokens):
            step = self.decode_step(prompt_length + i)
            dense += step.dense_flops
            attention += step.attention_flops
        return FlopsBreakdown(dense_flops=dense, attention_flops=attention)
