"""Analytical GPU memory model of a transformer forward pass.

This module answers the questions that drive the paper's capacity results
(Table 2, Figure 3, Figure 10): how many bytes do the weights, the KV cache,
and the transient activation tensors occupy, under each of the prefill
execution modes the paper compares?

Execution modes
---------------

* ``FULL``     — vanilla prefilling (vLLM/PagedAttention baseline): the whole
  sequence flows through every layer at once, so the MLP intermediate tensors
  are materialised for every token simultaneously, and the KV cache of every
  layer is retained.
* ``CHUNKED``  — chunked prefilling (Sarathi-style baseline): the sequence is
  split into chunks which each flow through the *entire* model, so activation
  peaks are bounded by the chunk size but the KV cache of all layers of all
  previous chunks must stay resident between chunks.
* ``HYBRID``   — the paper's hybrid prefilling: position-wise (linear) layers
  run chunk-by-chunk while attention runs over the whole sequence, so the
  request finishes in a single forward pass; only one layer's KV plus the
  residual stream needs to be resident, and the KV cache may be discarded or
  offloaded afterwards.

All results are plain byte counts; converting capacity into a maximum input
length is the job of :mod:`repro.analysis.mil`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.model.config import ModelConfig
from repro.model.layers import LayerKind, build_layer_stack


class PrefillMode(enum.Enum):
    """How the forward pass of a prefill is executed."""

    FULL = "full"
    CHUNKED = "chunked"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class ActivationProfile:
    """Per-token transient activation costs of one transformer block.

    Attributes:
        residual_bytes: Residual-stream tensor (input and output of each block).
        qkv_bytes: Q, K, V projections of one attention layer.
        mlp_peak_bytes: Largest MLP intermediate tensor (gate+up fused) plus the
            post-activation tensor that coexists with it.
        attention_output_bytes: Attention output before the residual add.
    """

    residual_bytes: float
    qkv_bytes: float
    mlp_peak_bytes: float
    attention_output_bytes: float

    @property
    def block_peak_bytes(self) -> float:
        """Per-token peak transient bytes while one block is executing."""
        # The residual stream (input + output copies), and either the attention
        # working set or the MLP working set, whichever is larger.
        attn_working = self.qkv_bytes + self.attention_output_bytes
        return 2 * self.residual_bytes + max(attn_working, self.mlp_peak_bytes)


@dataclass(frozen=True)
class MemoryBreakdown:
    """Peak-memory breakdown of prefilling one request on one GPU shard."""

    weight_bytes: float
    kv_cache_bytes: float
    activation_bytes: float
    workspace_bytes: float

    @property
    def total(self) -> float:
        return self.weight_bytes + self.kv_cache_bytes + self.activation_bytes + self.workspace_bytes


class MemoryModel:
    """Analytical memory model for one :class:`ModelConfig`.

    Args:
        model: Architecture to model.
        workspace_fraction: Fraction of weight bytes reserved for framework
            workspace (cuBLAS workspaces, CUDA graphs, tokenizer buffers, ...).
            Calibrated so that the Table-2 maximum-input-length ordering and
            rough ratios reproduce; it is the single fudge factor of the model.
    """

    def __init__(self, model: ModelConfig, *, workspace_fraction: float = 0.04) -> None:
        self._model = model
        self._workspace_fraction = workspace_fraction

    @property
    def model(self) -> ModelConfig:
        return self._model

    # -------------------------------------------------------------- weights

    def weight_bytes(self, *, tensor_parallel: int = 1, pipeline_parallel: int = 1) -> float:
        """Weight bytes resident on one GPU under the given parallelism."""
        shards = tensor_parallel * pipeline_parallel
        if shards < 1:
            raise ValueError("parallel degrees must be >= 1")
        return self._model.weight_bytes / shards

    def workspace_bytes(self) -> float:
        """Framework workspace reserved on each GPU."""
        return self._model.weight_bytes * self._workspace_fraction

    # ------------------------------------------------------------- KV cache

    def kv_cache_bytes(self, num_tokens: int, *, num_layers: int | None = None,
                       tensor_parallel: int = 1) -> float:
        """KV-cache bytes for ``num_tokens`` across ``num_layers`` layers.

        Tensor parallelism shards the KV heads across GPUs, so the per-GPU KV
        footprint divides by the TP degree.  Pipeline parallelism is expressed
        by passing the per-stage layer count via ``num_layers``.
        """
        layers = self._model.num_layers if num_layers is None else num_layers
        per_token = 2 * self._model.kv_dim * self._model.kv_bytes_per_element * layers
        return num_tokens * per_token / tensor_parallel

    def kv_cache_bytes_one_layer(self, num_tokens: int, *, tensor_parallel: int = 1) -> float:
        """KV-cache bytes of a single layer (what hybrid prefilling keeps live)."""
        return self.kv_cache_bytes(num_tokens, num_layers=1, tensor_parallel=tensor_parallel)

    # ----------------------------------------------------------- activations

    def activation_profile(self, *, tensor_parallel: int = 1) -> ActivationProfile:
        """Per-token activation profile, optionally sharded by tensor parallelism."""
        model = self._model
        act = model.activation_bytes_per_element
        return ActivationProfile(
            residual_bytes=model.hidden_size * act,
            qkv_bytes=(model.q_dim + 2 * model.kv_dim) * act / tensor_parallel,
            mlp_peak_bytes=(2 * model.intermediate_size + model.intermediate_size)
            * act / tensor_parallel,
            attention_output_bytes=model.q_dim * act / tensor_parallel,
        )

    def activation_peak_bytes(self, num_tokens: int, *, mode: PrefillMode,
                              chunk_tokens: int = 2048, tensor_parallel: int = 1) -> float:
        """Peak transient activation bytes while prefilling ``num_tokens``.

        ``FULL`` materialises the per-block working set for every token at
        once.  ``CHUNKED`` bounds everything by the chunk size.  ``HYBRID``
        bounds the position-wise working set by the chunk size but keeps the
        whole-sequence residual stream and one layer's Q/K/V live for the
        un-chunked attention.
        """
        profile = self.activation_profile(tensor_parallel=tensor_parallel)
        if mode is PrefillMode.FULL:
            return num_tokens * profile.block_peak_bytes
        if mode is PrefillMode.CHUNKED:
            tokens = min(num_tokens, chunk_tokens)
            return tokens * profile.block_peak_bytes
        if mode is PrefillMode.HYBRID:
            chunked_part = min(num_tokens, chunk_tokens) * profile.mlp_peak_bytes
            # Whole-sequence tensors that hybrid prefilling cannot chunk: the
            # residual stream (in/out), one layer's Q/K/V for attention, and the
            # attention output.
            resident_per_token = (
                2 * profile.residual_bytes
                + profile.qkv_bytes
                + profile.attention_output_bytes
            )
            return num_tokens * resident_per_token + chunked_part
        raise ValueError(f"unknown prefill mode: {mode!r}")

    # ------------------------------------------------------------- breakdown

    def prefill_breakdown(self, num_tokens: int, *, mode: PrefillMode,
                          chunk_tokens: int = 2048,
                          retain_kv_layers: int | None = None,
                          tensor_parallel: int = 1,
                          pipeline_parallel: int = 1) -> MemoryBreakdown:
        """Peak per-GPU memory breakdown of prefilling one request.

        Args:
            num_tokens: Request length in tokens.
            mode: Prefill execution mode.
            chunk_tokens: Chunk size for ``CHUNKED`` / ``HYBRID`` modes.
            retain_kv_layers: How many layers of KV cache are retained during
                the pass.  ``None`` means all layers assigned to this GPU (the
                baseline behaviour); hybrid prefilling passes ``1``.
            tensor_parallel / pipeline_parallel: Parallel degrees.
        """
        stage_layers = self._model.num_layers // pipeline_parallel
        if retain_kv_layers is None:
            kv_layers = stage_layers
        else:
            kv_layers = min(retain_kv_layers, stage_layers)
        kv = self.kv_cache_bytes(num_tokens, num_layers=kv_layers, tensor_parallel=tensor_parallel)
        activation = self.activation_peak_bytes(
            num_tokens, mode=mode, chunk_tokens=chunk_tokens, tensor_parallel=tensor_parallel
        )
        return MemoryBreakdown(
            weight_bytes=self.weight_bytes(
                tensor_parallel=tensor_parallel, pipeline_parallel=pipeline_parallel
            ),
            kv_cache_bytes=kv,
            activation_bytes=activation,
            workspace_bytes=self.workspace_bytes(),
        )

    # ------------------------------------------------------ memory timelines

    def prefill_memory_trace(self, num_tokens: int, *, mode: PrefillMode,
                             chunk_tokens: int = 2048,
                             retain_kv_layers: int | None = None) -> list[tuple[float, float]]:
        """Analytic GPU-memory-over-time trace of one prefill (Figure 3).

        Returns a list of ``(progress, bytes)`` samples where ``progress`` runs
        from 0 to 1 over the forward pass.  The trace walks the layer stack and
        records, for every layer, the resident bytes while that layer executes:
        weights + accumulated KV cache + the layer's transient activations.
        """
        stack = build_layer_stack(self._model, include_lm_head=False)
        profile = self.activation_profile()
        weights = self.weight_bytes() + self.workspace_bytes()
        kv_per_layer = self.kv_cache_bytes_one_layer(num_tokens)
        retain = self._model.num_layers if retain_kv_layers is None else retain_kv_layers

        if mode is PrefillMode.FULL:
            active_tokens = num_tokens
        else:
            active_tokens = min(num_tokens, chunk_tokens)

        samples: list[tuple[float, float]] = []
        kv_resident = 0.0
        residual = num_tokens * 2 * profile.residual_bytes
        total_layers = len(stack)
        for spec in stack:
            if spec.kind is LayerKind.ATTENTION:
                kv_resident = min(kv_resident + kv_per_layer, retain * kv_per_layer)
                # Attention always sees the whole sequence (it is never chunked).
                transient = num_tokens * (profile.qkv_bytes + profile.attention_output_bytes)
            elif spec.kind is LayerKind.MLP:
                tokens = num_tokens if mode is PrefillMode.FULL else active_tokens
                transient = tokens * profile.mlp_peak_bytes
            else:
                transient = 0.0
            resident = weights + kv_resident + residual + transient
            samples.append((spec.index / max(total_layers - 1, 1), resident))
        return samples

    def peak_from_trace(self, trace: list[tuple[float, float]]) -> float:
        """Peak bytes of a memory trace produced by :meth:`prefill_memory_trace`."""
        return max(point for _, point in trace) if trace else 0.0
