"""Analytical latency model for prefill and decode on a given GPU.

The latency model converts the FLOP counts of :mod:`repro.model.flops` into
seconds on a :class:`~repro.hardware.gpu.GPUSpec`, applying the execution-mode
specific effects the paper describes:

* chunked prefilling lowers attention-kernel efficiency (the paper measures a
  14% end-to-end slowdown when chunking a 20,000-token input into 512-token
  chunks);
* tensor parallelism divides the compute across GPUs but adds two all-reduces
  per layer over the interconnect;
* pipeline parallelism leaves single-request latency essentially unchanged
  (stages run sequentially for one request) but lets two requests overlap,
  which the serving simulator models with per-stage resources;
* hybrid prefilling adds only a small per-chunk launch overhead, preserving the
  attention kernel's efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import Interconnect, allreduce_time
from repro.model.config import ModelConfig
from repro.model.flops import FlopsModel
from repro.model.memory import PrefillMode
from repro.perf import memo


#: Fraction of throughput lost by the attention kernel when the prefill is cut
#: into chunks, at the reference point measured in the paper (20,000-token input
#: with 512-token chunks -> 14% end-to-end slowdown).
CHUNKED_ATTENTION_PENALTY_REFERENCE = 0.14
CHUNKED_REFERENCE_INPUT = 20_000
CHUNKED_REFERENCE_CHUNK = 512

#: Per-chunk kernel launch overhead of hybrid prefilling (seconds).  Hybrid
#: prefilling only re-launches the position-wise layers, so this is small.
HYBRID_PER_CHUNK_OVERHEAD = 40e-6

#: Entries kept per latency-model memo before it is cleared and restarted.
#: Generous: a whole JCT profiling grid at 1,000-token granularity over a
#: 131k MIL is ~8,700 distinct keys.
LATENCY_MEMO_MAX_ENTRIES = 65_536


@dataclass(frozen=True)
class PrefillTiming:
    """Latency breakdown of one prefill forward pass."""

    compute_time: float
    communication_time: float
    overhead_time: float

    @property
    def total(self) -> float:
        return self.compute_time + self.communication_time + self.overhead_time


def chunked_prefill_penalty(num_tokens: int, chunk_tokens: int) -> float:
    """Relative slowdown of chunked prefilling versus one-shot prefilling.

    Scales the paper's reference measurement with the number of chunks: cutting
    the input into more chunks loses more attention-kernel efficiency, saturating
    well below a 2x slowdown.
    """
    if chunk_tokens <= 0:
        raise ValueError("chunk_tokens must be positive")
    if num_tokens <= chunk_tokens:
        return 0.0
    num_chunks = math.ceil(num_tokens / chunk_tokens)
    reference_chunks = math.ceil(CHUNKED_REFERENCE_INPUT / CHUNKED_REFERENCE_CHUNK)
    scale = math.log2(1 + num_chunks) / math.log2(1 + reference_chunks)
    return min(0.6, CHUNKED_ATTENTION_PENALTY_REFERENCE * scale)


class LatencyModel:
    """Latency of prefill / decode passes of ``model`` on ``gpu``.

    Timings are memoized per instance, keyed on the *full* argument tuple of
    each query (token counts, execution mode, chunk size, parallel degrees),
    so a cached timing is bit-identical to a fresh computation — the cache
    stores exactly what the computation returned.  Schedulers, JCT profilers,
    and engines query the same few (new, cached, mode) buckets over and over
    during a simulation; the memo turns those repeats into dictionary hits.
    The :mod:`repro.perf.memo` switchboard disables the memo globally for
    before/after measurement.

    Args:
        model: Transformer architecture.
        gpu: Device the forward pass runs on (one shard for parallel setups).
        interconnect: Link used when ``tensor_parallel > 1``.
    """

    def __init__(self, model: ModelConfig, gpu: GPUSpec,
                 interconnect: Interconnect | None = None) -> None:
        self._model = model
        self._gpu = gpu
        self._interconnect = interconnect
        self._flops = FlopsModel(model)
        self._prefill_memo: dict[tuple, PrefillTiming] = {}
        self._decode_memo: dict[tuple, float] = {}
        self._memo_epoch = memo.memo_epoch()

    def _memo_ready(self) -> bool:
        """True when the memos may be consulted (dropping them on epoch change)."""
        if not memo.memo_enabled():
            return False
        epoch = memo.memo_epoch()
        if epoch != self._memo_epoch:
            self._prefill_memo.clear()
            self._decode_memo.clear()
            self._memo_epoch = epoch
        return True

    def memo_sizes(self) -> tuple[int, int]:
        """Current (prefill, decode) memo entry counts (for tests / reports)."""
        return len(self._prefill_memo), len(self._decode_memo)

    @property
    def model(self) -> ModelConfig:
        return self._model

    @property
    def gpu(self) -> GPUSpec:
        return self._gpu

    @property
    def interconnect(self) -> Interconnect | None:
        return self._interconnect

    # ------------------------------------------------------------- prefill

    def prefill_time(self, num_new_tokens: int, *, num_cached_tokens: int = 0,
                     mode: PrefillMode = PrefillMode.FULL,
                     chunk_tokens: int = 2048,
                     tensor_parallel: int = 1,
                     pipeline_parallel: int = 1) -> PrefillTiming:
        """Latency of prefilling ``num_new_tokens`` (given a cached prefix).

        For pipeline parallelism this returns the *latency* of the request
        (stages execute one after the other for a single request); the serving
        simulator divides the work across per-stage resources to capture the
        throughput benefit and the bubbles.

        Memoized on the full argument tuple; a hit returns the exact
        :class:`PrefillTiming` (frozen) a fresh computation would produce.
        """
        if self._memo_ready():
            key = (num_new_tokens, num_cached_tokens, mode, chunk_tokens,
                   tensor_parallel, pipeline_parallel)
            cached = self._prefill_memo.get(key)
            if cached is None:
                cached = self._prefill_time_uncached(
                    num_new_tokens, num_cached_tokens, mode, chunk_tokens,
                    tensor_parallel, pipeline_parallel,
                )
                if len(self._prefill_memo) >= LATENCY_MEMO_MAX_ENTRIES:
                    self._prefill_memo.clear()
                self._prefill_memo[key] = cached
            return cached
        return self._prefill_time_uncached(
            num_new_tokens, num_cached_tokens, mode, chunk_tokens,
            tensor_parallel, pipeline_parallel,
        )

    def _prefill_time_uncached(self, num_new_tokens: int, num_cached_tokens: int,
                               mode: PrefillMode, chunk_tokens: int,
                               tensor_parallel: int,
                               pipeline_parallel: int) -> PrefillTiming:
        if num_new_tokens <= 0:
            return PrefillTiming(0.0, 0.0, self._gpu.kernel_launch_overhead)
        breakdown = self._flops.prefill(num_new_tokens, num_cached_tokens=num_cached_tokens)
        sustained = self._gpu.sustained_flops(self._model.weight_bytes_per_param)
        compute = breakdown.total / (sustained * tensor_parallel)

        if mode is PrefillMode.CHUNKED:
            compute *= 1.0 + chunked_prefill_penalty(num_new_tokens, chunk_tokens)

        overhead = self._gpu.kernel_launch_overhead * pipeline_parallel
        if mode is PrefillMode.HYBRID:
            num_chunks = math.ceil(num_new_tokens / max(chunk_tokens, 1))
            overhead += num_chunks * HYBRID_PER_CHUNK_OVERHEAD

        communication = 0.0
        if tensor_parallel > 1:
            if self._interconnect is None:
                raise ValueError("tensor parallelism requires an interconnect")
            message = (
                num_new_tokens
                * self._model.hidden_size
                * self._model.activation_bytes_per_element
            )
            per_layer = 2 * allreduce_time(message, tensor_parallel, self._interconnect)
            communication += self._model.num_layers * per_layer
        if pipeline_parallel > 1:
            if self._interconnect is None:
                raise ValueError("pipeline parallelism requires an interconnect")
            message = (
                num_new_tokens
                * self._model.hidden_size
                * self._model.activation_bytes_per_element
            )
            communication += (pipeline_parallel - 1) * (
                message / self._interconnect.bandwidth + self._interconnect.latency
            )

        return PrefillTiming(
            compute_time=compute,
            communication_time=communication,
            overhead_time=overhead,
        )

    # -------------------------------------------------------------- decode

    def decode_time(self, prompt_length: int, num_output_tokens: int, *,
                    batch_size: int = 32) -> float:
        """Aggregate time to decode ``num_output_tokens`` under continuous batching.

        Each decode step is the max of the memory-bound term (streaming the
        weights once per batch, amortised over ``batch_size`` requests) and the
        compute term for this request's share.  This is only used by the
        motivation benchmark (prefill-only latency vs. generative latency).

        Memoized on ``(prompt_length, num_output_tokens, batch_size)`` — the
        per-token loop makes this the most expensive analytic query.
        """
        if self._memo_ready():
            key = (prompt_length, num_output_tokens, batch_size)
            cached = self._decode_memo.get(key)
            if cached is None:
                cached = self._decode_time_uncached(
                    prompt_length, num_output_tokens, batch_size
                )
                if len(self._decode_memo) >= LATENCY_MEMO_MAX_ENTRIES:
                    self._decode_memo.clear()
                self._decode_memo[key] = cached
            return cached
        return self._decode_time_uncached(prompt_length, num_output_tokens, batch_size)

    def _decode_time_uncached(self, prompt_length: int, num_output_tokens: int,
                              batch_size: int) -> float:
        if num_output_tokens <= 0:
            return 0.0
        weight_stream = self._model.weight_bytes / self._gpu.memory_bandwidth / max(batch_size, 1)
        total = 0.0
        sustained = self._gpu.sustained_flops(self._model.weight_bytes_per_param)
        for i in range(num_output_tokens):
            step_flops = self._flops.decode_step(prompt_length + i).total
            kv_stream = (
                self._model.kv_bytes_per_token * (prompt_length + i) / self._gpu.memory_bandwidth
            )
            total += max(weight_stream + kv_stream, step_flops / sustained)
        return total

    def request_time(self, prompt_length: int, num_output_tokens: int, *,
                     batch_size: int = 32) -> float:
        """End-to-end time of a generative request (prefill + decode)."""
        prefill = self.prefill_time(prompt_length).total
        if num_output_tokens <= 1:
            return prefill
        return prefill + self.decode_time(prompt_length, num_output_tokens - 1, batch_size=batch_size)
