"""Transformer architecture configurations.

A :class:`ModelConfig` carries the architecture hyper-parameters that determine
every quantity the serving engine cares about: parameter count (and therefore
weight bytes and dense FLOPs), KV-cache bytes per token, and the sizes of the
intermediate tensors allocated by the MLP blocks (the memory spikes in Figure 3
and Figure 4 of the paper).

The three registered models correspond to Table 3 of the paper:

* ``llama-3.1-8b`` — low-end GPU scenario (NVIDIA L4), bfloat16 weights.
* ``qwen-32b-fp8`` — middle-end GPU scenario (NVIDIA A100 40GB), FP8 weights.
* ``llama-3.3-70b-fp8`` — high-end GPU scenario (NVIDIA H100 80GB), FP8 weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of a decoder-only transformer.

    Attributes:
        name: Registry key, e.g. ``"llama-3.1-8b"``.
        display_name: Human-readable model identifier (matches the paper's Table 3).
        num_layers: Number of transformer blocks.
        hidden_size: Residual-stream width.
        num_attention_heads: Query heads.
        num_kv_heads: Key/value heads (grouped-query attention).
        head_dim: Per-head dimension.
        intermediate_size: MLP up/gate projection width (SwiGLU).
        vocab_size: Vocabulary size (embedding / LM-head rows).
        weight_bytes_per_param: Bytes per weight element (2 for bf16, 1 for FP8).
        kv_bytes_per_element: Bytes per KV-cache element.
        activation_bytes_per_element: Bytes per activation element during compute.
        max_position_embeddings: Architectural context limit.
    """

    name: str
    display_name: str
    num_layers: int
    hidden_size: int
    num_attention_heads: int
    num_kv_heads: int
    head_dim: int
    intermediate_size: int
    vocab_size: int
    weight_bytes_per_param: float = 2.0
    kv_bytes_per_element: float = 2.0
    activation_bytes_per_element: float = 2.0
    max_position_embeddings: int = 131_072

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_size <= 0:
            raise ConfigurationError(f"model {self.name!r} has non-positive dimensions")
        if self.num_attention_heads % self.num_kv_heads != 0:
            raise ConfigurationError(
                f"model {self.name!r}: attention heads ({self.num_attention_heads}) must be a "
                f"multiple of KV heads ({self.num_kv_heads})"
            )
        if self.num_attention_heads * self.head_dim != self.hidden_size:
            # Some models use head_dim != hidden/heads; allow it but it must be intentional.
            pass

    # ------------------------------------------------------------------ sizes
    #
    # Derived sizes are ``cached_property``: they are pure functions of the
    # frozen fields, computed once per config instead of on every access.
    # The latency / FLOPs models read them per forward pass, so the caching
    # is on a hot analytic path (and trivially bit-identical).

    @cached_property
    def q_dim(self) -> int:
        """Total query projection width."""
        return self.num_attention_heads * self.head_dim

    @cached_property
    def kv_dim(self) -> int:
        """Total key (or value) projection width."""
        return self.num_kv_heads * self.head_dim

    @cached_property
    def num_parameters(self) -> int:
        """Approximate total parameter count derived from the architecture."""
        embed = self.vocab_size * self.hidden_size
        attn = self.num_layers * (
            self.hidden_size * self.q_dim            # Wq
            + 2 * self.hidden_size * self.kv_dim     # Wk, Wv
            + self.q_dim * self.hidden_size          # Wo
        )
        mlp = self.num_layers * 3 * self.hidden_size * self.intermediate_size  # gate, up, down
        norms = self.num_layers * 2 * self.hidden_size + self.hidden_size
        lm_head = self.vocab_size * self.hidden_size
        return embed + attn + mlp + norms + lm_head

    @cached_property
    def weight_bytes(self) -> int:
        """Total bytes occupied by the model weights."""
        return int(self.num_parameters * self.weight_bytes_per_param)

    @cached_property
    def kv_bytes_per_token_per_layer(self) -> int:
        """KV-cache bytes contributed by one token in one layer (K and V)."""
        return int(2 * self.kv_dim * self.kv_bytes_per_element)

    @cached_property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes contributed by one token across all layers."""
        return self.num_layers * self.kv_bytes_per_token_per_layer

    @cached_property
    def hidden_bytes_per_token(self) -> int:
        """Bytes of one residual-stream vector for one token."""
        return int(self.hidden_size * self.activation_bytes_per_element)

    @cached_property
    def mlp_intermediate_elements_per_token(self) -> int:
        """Elements of the fused gate+up MLP intermediate tensor per token.

        For SwiGLU MLPs this is ``2 * intermediate_size`` (the paper's Figure 4:
        28,672 elements per token for Llama-3.1-8B, 14x the one-layer KV cache).
        """
        return 2 * self.intermediate_size

    def describe(self) -> dict:
        """Return a plain-dict summary used by reports and the CLI."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "num_layers": self.num_layers,
            "hidden_size": self.hidden_size,
            "num_attention_heads": self.num_attention_heads,
            "num_kv_heads": self.num_kv_heads,
            "head_dim": self.head_dim,
            "intermediate_size": self.intermediate_size,
            "parameters_billions": round(self.num_parameters / 1e9, 2),
            "weight_gib": round(self.weight_bytes / (1 << 30), 2),
            "kv_bytes_per_token": self.kv_bytes_per_token,
        }


LLAMA_3_1_8B = ModelConfig(
    name="llama-3.1-8b",
    display_name="meta-llama/Llama-3.1-8B",
    num_layers=32,
    hidden_size=4096,
    num_attention_heads=32,
    num_kv_heads=8,
    head_dim=128,
    intermediate_size=14336,
    vocab_size=128_256,
    weight_bytes_per_param=2.0,
    kv_bytes_per_element=2.0,
    activation_bytes_per_element=2.0,
)

QWEN_32B_FP8 = ModelConfig(
    name="qwen-32b-fp8",
    display_name="RedHatAI/DeepSeek-R1-Distill-Qwen-32B-FP8-dynamic",
    num_layers=64,
    hidden_size=5120,
    num_attention_heads=40,
    num_kv_heads=8,
    head_dim=128,
    intermediate_size=27648,
    vocab_size=152_064,
    weight_bytes_per_param=1.0,
    kv_bytes_per_element=2.0,
    activation_bytes_per_element=2.0,
)

LLAMA_3_3_70B_FP8 = ModelConfig(
    name="llama-3.3-70b-fp8",
    display_name="Infermatic/Llama-3.3-70B-Instruct-FP8-Dynamic",
    num_layers=80,
    hidden_size=8192,
    num_attention_heads=64,
    num_kv_heads=8,
    head_dim=128,
    intermediate_size=28672,
    vocab_size=128_256,
    weight_bytes_per_param=1.0,
    kv_bytes_per_element=1.0,
    activation_bytes_per_element=2.0,
)

MODEL_REGISTRY: dict[str, ModelConfig] = {
    model.name: model
    for model in (LLAMA_3_1_8B, QWEN_32B_FP8, LLAMA_3_3_70B_FP8)
}


def get_model(name: str) -> ModelConfig:
    """Look up a registered model by name.

    Raises:
        ConfigurationError: if the name is not registered.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise ConfigurationError(f"unknown model {name!r}; known models: {known}") from None


def list_models() -> list[str]:
    """Return the registered model names in sorted order."""
    return sorted(MODEL_REGISTRY)
