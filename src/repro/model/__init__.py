"""Model substrate: transformer architecture descriptions and analytical cost models.

This package replaces the real LLM checkpoints used by the paper (Llama-3.1-8B,
DeepSeek-R1-Distill-Qwen-32B-FP8, Llama-3.3-70B-Instruct-FP8) with architecture
records carrying the published hyper-parameters.  Everything the serving engine
needs — weight bytes, KV-cache bytes per token, activation bytes per token,
prefill/decode FLOPs, and latency on a given GPU — is derived analytically from
those hyper-parameters.
"""

from repro.model.config import (
    ModelConfig,
    MODEL_REGISTRY,
    get_model,
    list_models,
    LLAMA_3_1_8B,
    QWEN_32B_FP8,
    LLAMA_3_3_70B_FP8,
)
from repro.model.layers import LayerKind, LayerSpec, MLPTensorReport, build_layer_stack, mlp_tensor_report
from repro.model.flops import FlopsModel
from repro.model.memory import MemoryModel, ActivationProfile
from repro.model.latency import LatencyModel

__all__ = [
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
    "LLAMA_3_1_8B",
    "QWEN_32B_FP8",
    "LLAMA_3_3_70B_FP8",
    "LayerKind",
    "LayerSpec",
    "MLPTensorReport",
    "build_layer_stack",
    "mlp_tensor_report",
    "FlopsModel",
    "MemoryModel",
    "ActivationProfile",
    "LatencyModel",
]
