"""CPU offload store for KV caches.

The paper's default configuration *discards* suffix KV caches, but §9 notes the
alternative of offloading them to CPU memory (LMCache-style).  This module
provides that alternative so the engine can be configured either way and so the
ablation benchmarks can compare the two.

The store is a flat LRU keyed by block content hash, with a byte budget and a
modelled PCIe transfer cost so the serving simulator can charge load/save time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.hardware.interconnect import Interconnect, PCIE_GEN4


@dataclass(frozen=True)
class OffloadStats:
    """Cumulative counters of the offload store."""

    stored_blocks: int
    loaded_blocks: int
    evicted_blocks: int
    current_blocks: int
    current_bytes: int


class CPUOffloadStore:
    """LRU store of KV blocks in host memory.

    Args:
        capacity_bytes: Host-memory budget for offloaded KV blocks.
        block_bytes: Size of one KV block in bytes.
        link: Host-device link used to charge transfer time.
    """

    def __init__(self, capacity_bytes: int, block_bytes: int,
                 link: Interconnect = PCIE_GEN4) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self._capacity_bytes = capacity_bytes
        self._block_bytes = block_bytes
        self._link = link
        self._blocks: OrderedDict[int, int] = OrderedDict()
        self._stored = 0
        self._loaded = 0
        self._evicted = 0
        #: Optional hook fired with each evicted content hash.  The tiered
        #: prefix store uses it to demote host evictions into the
        #: cluster-shared tier instead of dropping them.
        self.on_evict: Callable[[int], None] | None = None
        #: Transfer-cost multiplier applied to every modelled transfer time.
        #: 1.0 (the default) is a bit-exact no-op; the fault subsystem raises
        #: it during interconnect brownouts.
        self.cost_multiplier: float = 1.0

    @property
    def capacity_blocks(self) -> int:
        """How many blocks fit in the host budget."""
        return self._capacity_bytes // self._block_bytes

    @property
    def num_blocks(self) -> int:
        """Blocks currently stored."""
        return len(self._blocks)

    @property
    def stats(self) -> OffloadStats:
        return OffloadStats(
            stored_blocks=self._stored,
            loaded_blocks=self._loaded,
            evicted_blocks=self._evicted,
            current_blocks=len(self._blocks),
            current_bytes=len(self._blocks) * self._block_bytes,
        )

    def __contains__(self, content_hash: int) -> bool:
        return content_hash in self._blocks

    # ------------------------------------------------------------------ I/O

    def store(self, block_hashes: Sequence[int]) -> float:
        """Offload blocks to host memory; return the modelled transfer time.

        Already-present blocks are refreshed (moved to MRU) at no cost.
        """
        transferred = 0
        for content_hash in block_hashes:
            if content_hash in self._blocks:
                self._blocks.move_to_end(content_hash)
                continue
            while len(self._blocks) >= max(self.capacity_blocks, 0) and self._blocks:
                victim, _ = self._blocks.popitem(last=False)
                self._evicted += 1
                if self.on_evict is not None:
                    self.on_evict(victim)
            if self.capacity_blocks == 0:
                break
            self._blocks[content_hash] = self._block_bytes
            self._stored += 1
            transferred += 1
        return self._transfer_time(transferred)

    def load(self, block_hashes: Sequence[int]) -> tuple[int, float]:
        """Bring the longest stored prefix back; return (blocks loaded, time)."""
        loaded = 0
        for content_hash in block_hashes:
            if content_hash not in self._blocks:
                break
            self._blocks.move_to_end(content_hash)
            loaded += 1
        self._loaded += loaded
        return loaded, self._transfer_time(loaded)

    def match_length(self, block_hashes: Sequence[int]) -> int:
        """Length (in blocks) of the stored prefix of ``block_hashes``."""
        count = 0
        for content_hash in block_hashes:
            if content_hash not in self._blocks:
                break
            count += 1
        return count

    def discard(self, content_hash: int) -> bool:
        """Drop one stored block (no eviction hook); return whether it existed.

        Used by the tiered store when a block is promoted into the GPU tier,
        so it is never resident in two tiers at once.
        """
        return self._blocks.pop(content_hash, None) is not None

    def resident_hashes(self) -> list[int]:
        """Stored content hashes in LRU order (oldest first)."""
        return list(self._blocks)

    def transfer_time(self, num_blocks: int) -> float:
        """Modelled seconds to move ``num_blocks`` over the store's link."""
        return self._transfer_time(num_blocks)

    def _transfer_time(self, num_blocks: int) -> float:
        if num_blocks == 0:
            return 0.0
        seconds = num_blocks * self._block_bytes / self._link.bandwidth + self._link.latency
        return seconds * self.cost_multiplier

    def clear(self) -> None:
        """Drop everything stored."""
        self._blocks.clear()
