"""Paged KV-cache block allocator.

A fixed pool of physical blocks is handed out to requests (scratch allocations
during execution) and to the prefix cache (cached blocks that survive between
requests).  The allocator itself is policy-free: eviction decisions are made by
the prefix cache / manager, which then return blocks here.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.kvcache.block import Block, BlockId


class BlockAllocator:
    """Fixed-capacity allocator of KV-cache blocks.

    Args:
        num_blocks: Total number of physical blocks in the pool.
        block_size: Tokens per block (carried for reporting convenience).
    """

    def __init__(self, num_blocks: int, block_size: int) -> None:
        if num_blocks < 0:
            raise AllocationError("num_blocks must be non-negative")
        if block_size <= 0:
            raise AllocationError("block_size must be positive")
        self._num_blocks = num_blocks
        self._block_size = block_size
        self._free_ids: list[BlockId] = list(range(num_blocks - 1, -1, -1))
        self._allocated: dict[BlockId, Block] = {}

    # ---------------------------------------------------------------- state

    @property
    def num_blocks(self) -> int:
        """Total pool size in blocks."""
        return self._num_blocks

    @property
    def block_size(self) -> int:
        """Tokens per block."""
        return self._block_size

    @property
    def num_free_blocks(self) -> int:
        """Blocks currently available for allocation."""
        return len(self._free_ids)

    @property
    def num_allocated_blocks(self) -> int:
        """Blocks currently handed out."""
        return len(self._allocated)

    @property
    def capacity_tokens(self) -> int:
        """Total pool size in tokens."""
        return self._num_blocks * self._block_size

    def get(self, block_id: BlockId) -> Block:
        """Return an allocated block by id."""
        try:
            return self._allocated[block_id]
        except KeyError:
            raise AllocationError(f"block {block_id} is not allocated") from None

    # ------------------------------------------------------------ allocation

    def allocate(self, *, content_hash: int | None = None, num_tokens: int = 0,
                 now: float = 0.0) -> Block:
        """Allocate one block, failing if the pool is exhausted.

        Raises:
            AllocationError: if no free block is available.
        """
        if not self._free_ids:
            raise AllocationError(
                f"KV cache exhausted: all {self._num_blocks} blocks are allocated"
            )
        block_id = self._free_ids.pop()
        block = Block(
            block_id=block_id,
            content_hash=content_hash,
            num_tokens=num_tokens,
            last_access=now,
        )
        self._allocated[block_id] = block
        return block

    def allocate_many(self, count: int, *, now: float = 0.0) -> list[Block]:
        """Allocate ``count`` scratch blocks, failing atomically.

        Either all blocks are allocated or none are.
        """
        if count < 0:
            raise AllocationError("cannot allocate a negative number of blocks")
        if count > self.num_free_blocks:
            raise AllocationError(
                f"requested {count} blocks but only {self.num_free_blocks} are free"
            )
        return [self.allocate(now=now) for _ in range(count)]

    def free(self, block: Block | BlockId) -> None:
        """Return a block to the pool.

        Raises:
            AllocationError: if the block is not currently allocated or is
                still pinned by a running request.
        """
        block_id = block.block_id if isinstance(block, Block) else block
        stored = self._allocated.get(block_id)
        if stored is None:
            raise AllocationError(f"block {block_id} is not allocated")
        if stored.is_pinned:
            raise AllocationError(f"block {block_id} is still pinned (ref={stored.ref_count})")
        del self._allocated[block_id]
        self._free_ids.append(block_id)

    def free_many(self, blocks: list[Block]) -> None:
        """Return several blocks to the pool."""
        for block in blocks:
            self.free(block)

    def reset(self) -> None:
        """Drop every allocation and return the pool to its initial state."""
        self._allocated.clear()
        self._free_ids = list(range(self._num_blocks - 1, -1, -1))
