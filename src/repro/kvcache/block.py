"""KV-cache blocks and content hashing.

The KV cache is managed at the granularity of fixed-size blocks of tokens
(pages).  A block is identified for *allocation* purposes by a :class:`BlockId`
and for *prefix matching* purposes by a content hash that chains the hash of
the previous block with the tokens stored in this block — the same scheme
vLLM's automatic prefix caching uses, which guarantees that two requests map to
the same cached block only if they agree on the entire prefix up to and
including that block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.perf import memo

BlockId = int

#: Hash value used for the empty prefix (the root of every hash chain).
ROOT_HASH = 0


def hash_chain(parent_hash: int, content: tuple) -> int:
    """Chain ``content`` onto ``parent_hash`` to produce a block content hash."""
    return hash((parent_hash, content))


class HashChainCache:
    """Interned hash chains: ``(parent_hash, content) -> chained hash``.

    Two requests that share a prefix walk the identical ``(parent, content)``
    pairs block by block; without interning, every request re-hashes the
    shared blocks from scratch.  The cache stores exactly
    ``hash((parent_hash, content))`` under the key ``(parent_hash, content)``,
    so an interned chain is bit-identical to :func:`hash_chain` — a property
    the test suite pins — and, because block content is tuples of ints (whose
    hashes do not depend on ``PYTHONHASHSEED``), the values are stable across
    worker processes of the parallel runner.

    A filled cache is cleared wholesale rather than evicted entry-by-entry:
    correctness never depends on residency, only speed does.
    """

    __slots__ = ("_entries", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int = 1 << 20) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self._entries: dict[tuple[int, tuple], int] = {}
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def chain(self, parent_hash: int, content: tuple) -> int:
        """Interned equivalent of :func:`hash_chain`."""
        key = (parent_hash, content)
        value = self._entries.get(key)
        if value is None:
            value = hash(key)
            if len(self._entries) >= self.maxsize:
                self._entries.clear()
            self._entries[key] = value
            self.misses += 1
        else:
            self.hits += 1
        return value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide interning cache used by
#: :meth:`repro.workloads.trace.TokenSequence.block_hashes`, wired into the
#: :mod:`repro.perf.memo` switchboard so disabling memoization clears it.
GLOBAL_HASH_CHAIN_CACHE = HashChainCache()
memo.register_cache(GLOBAL_HASH_CHAIN_CACHE.clear)


def hash_token_blocks(tokens: Sequence[int], block_size: int) -> list[int]:
    """Split ``tokens`` into full blocks and return the chained content hashes.

    Only *full* blocks are hashed (a trailing partial block cannot be shared
    with another request, so it never enters the prefix cache).
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    hashes: list[int] = []
    parent = ROOT_HASH
    for start in range(0, len(tokens) - block_size + 1, block_size):
        content = tuple(tokens[start:start + block_size])
        parent = hash_chain(parent, content)
        hashes.append(parent)
    return hashes


@dataclass
class Block:
    """One physical KV-cache block (page).

    Attributes:
        block_id: Physical block identifier assigned by the allocator.
        content_hash: Chained content hash if the block holds cached prefix
            data, ``None`` for scratch blocks reserved during execution.
        num_tokens: Number of tokens stored in the block.
        ref_count: Number of in-flight requests currently pinning the block.
        last_access: Logical timestamp of the most recent use (for LRU).
    """

    block_id: BlockId
    content_hash: int | None = None
    num_tokens: int = 0
    ref_count: int = 0
    last_access: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def is_pinned(self) -> bool:
        """True while at least one running request still needs this block."""
        return self.ref_count > 0

    def touch(self, now: float) -> None:
        """Record an access for LRU bookkeeping."""
        if now >= self.last_access:
            self.last_access = now

    def pin(self) -> None:
        self.ref_count += 1

    def unpin(self) -> None:
        if self.ref_count <= 0:
            raise ValueError(f"block {self.block_id} unpinned more times than pinned")
        self.ref_count -= 1


def count_full_blocks(num_tokens: int, block_size: int) -> int:
    """Number of completely filled blocks needed to store ``num_tokens``."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return num_tokens // block_size


def count_blocks(num_tokens: int, block_size: int) -> int:
    """Number of blocks (including a trailing partial one) for ``num_tokens``."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return -(-num_tokens // block_size)


def iter_block_slices(num_tokens: int, block_size: int) -> Iterable[tuple[int, int]]:
    """Yield ``(start, end)`` token ranges for each block of a request."""
    for start in range(0, num_tokens, block_size):
        yield start, min(start + block_size, num_tokens)
