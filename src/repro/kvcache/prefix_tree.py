"""Radix-tree prefix cache over chained block hashes.

Cached KV blocks are organised as a tree: a node's children are the blocks that
can follow it, keyed by their chained content hash.  Because the content hash
of block *i* already incorporates the hashes of blocks 0..i-1 (see
``repro.kvcache.block.hash_chain``), looking up a request's block-hash list is
a walk from the root that stops at the first miss — exactly the prefix-match
semantics of vLLM's automatic prefix caching.

Eviction is LRU over *leaf* nodes that are not pinned by a running request
(evicting an interior node would orphan its descendants' hash chains).

Victim selection uses a lazy min-heap of ``(last_access, creation_seq, node)``
candidates rather than scanning every node per eviction: an entry is pushed
when a node is created and when it becomes a leaf again after a child is
evicted, and entries are validated when popped — dead and interior nodes are
dropped, a node whose timestamp moved since its entry was pushed is re-keyed
in place (lazy decrease-key, so cache touches stay O(1)), and pinned
candidates are pushed back once the eviction pass ends.  The creation-sequence
tie-break reproduces the iteration order the original full scan used, so the
heap evicts the exact same victims in the exact same order; construct with
``use_eviction_heap=False`` to get the original O(tree) scan for comparison.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import AllocationError
from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.block import Block


@dataclass
class _TreeNode:
    """One cached block inside the radix tree."""

    content_hash: int
    block: Block
    parent: "_TreeNode | None"
    children: dict[int, "_TreeNode"] = field(default_factory=dict)
    seq: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass(frozen=True)
class PrefixMatch:
    """Result of looking up a request's block hashes in the prefix cache.

    Attributes:
        num_blocks: Number of leading blocks found in the cache.
        num_tokens: The same count expressed in tokens.
        blocks: The matched blocks, in prefix order.
    """

    num_blocks: int
    num_tokens: int
    blocks: tuple[Block, ...]


class RadixPrefixCache:
    """LRU radix-tree prefix cache backed by a :class:`BlockAllocator`.

    The cache owns the blocks it stores: inserting allocates from the shared
    allocator (possibly after evicting), and evicting frees back to it.

    Args:
        allocator: Shared physical block pool.
        use_eviction_heap: Select eviction victims with the lazy LRU heap
            (default) instead of a full-tree scan per eviction.  The victim
            order is identical; the flag exists for before/after benchmarks.
    """

    def __init__(self, allocator: BlockAllocator, *, use_eviction_heap: bool = True) -> None:
        self._allocator = allocator
        self._nodes: dict[int, _TreeNode] = {}
        self._roots: dict[int, _TreeNode] = {}
        self._lru_heap: list[tuple[float, int, _TreeNode]] | None = (
            [] if use_eviction_heap else None
        )
        self._node_seq = 0
        self._version = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        #: Optional hook fired as ``on_evict(content_hash, num_tokens)`` for
        #: every evicted block.  Purely observational — victim selection and
        #: eviction order are identical with or without it; the tiered prefix
        #: store uses it to demote GPU evictions into the host tier.
        self.on_evict = None

    def _note_candidate(self, node: _TreeNode) -> None:
        """Push a fresh LRU-heap entry for ``node`` at its current timestamp."""
        if self._lru_heap is not None:
            heapq.heappush(self._lru_heap, (node.block.last_access, node.seq, node))

    # ---------------------------------------------------------------- state

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every insertion or eviction.

        The scheduler uses this to know when cached JCT calibrations are stale.
        """
        return self._version

    @property
    def num_cached_blocks(self) -> int:
        """Number of blocks currently held by the cache."""
        return len(self._nodes)

    @property
    def num_cached_tokens(self) -> int:
        """Number of tokens currently held by the cache."""
        return sum(node.block.num_tokens for node in self._nodes.values())

    @property
    def stats(self) -> dict:
        """Cumulative hit/miss/insert/evict counters."""
        return {
            "block_hits": self._hits,
            "block_misses": self._misses,
            "insertions": self._insertions,
            "evictions": self._evictions,
        }

    def __contains__(self, content_hash: int) -> bool:
        return content_hash in self._nodes

    # ---------------------------------------------------------------- lookup

    def match(self, block_hashes: Sequence[int], *, now: float = 0.0,
              touch: bool = True) -> PrefixMatch:
        """Find the longest cached prefix of ``block_hashes``.

        Args:
            block_hashes: Chained content hashes of the request's full blocks.
            now: Logical time used to refresh LRU timestamps.
            touch: If False, the lookup does not update LRU state (used by the
                scheduler's JCT calibration, which must not perturb eviction
                order merely by inspecting the queue).
        """
        matched: list[Block] = []
        tokens = 0
        for content_hash in block_hashes:
            node = self._nodes.get(content_hash)
            if node is None:
                self._misses += 1
                break
            if touch:
                node.block.touch(now)
            matched.append(node.block)
            tokens += node.block.num_tokens
            self._hits += 1
        return PrefixMatch(num_blocks=len(matched), num_tokens=tokens, blocks=tuple(matched))

    def match_length(self, block_hashes: Sequence[int]) -> int:
        """Return only the number of cached leading blocks (no LRU update)."""
        count = 0
        for content_hash in block_hashes:
            if content_hash not in self._nodes:
                break
            count += 1
        return count

    def resident_hashes(self) -> list[int]:
        """Every cached content hash, parents before children.

        Because only leaves are ever evicted, the resident set is
        prefix-closed per chain and the node dict's insertion order always
        lists a block's ancestors before the block itself — so feeding this
        list to a flat prefix store (e.g. the cluster tier on scale-down
        drain) preserves matchability of every cached prefix.
        """
        return list(self._nodes)

    # ------------------------------------------------------------- insertion

    def insert(self, block_hashes: Sequence[int], *, block_size: int, now: float = 0.0,
               max_new_blocks: int | None = None, allow_eviction: bool = True) -> int:
        """Insert the blocks of a finished request into the cache.

        Blocks already present are refreshed; missing blocks are allocated from
        the shared pool, evicting LRU leaves when ``allow_eviction`` is True.
        Insertion stops early (suffix discarding) when the pool cannot supply a
        block, or when ``max_new_blocks`` new blocks have been added.

        Returns:
            The number of blocks of the request now resident in the cache
            (matched + newly inserted), i.e. the cached prefix length in blocks.
        """
        parent: _TreeNode | None = None
        resident = 0
        new_blocks = 0
        # Pin the insert path so that evictions triggered by this very insert
        # cannot remove the request's own ancestors (which would break the
        # chained-hash prefix property).
        path: list[Block] = []
        try:
            for content_hash in block_hashes:
                node = self._nodes.get(content_hash)
                if node is not None:
                    node.block.touch(now)
                    node.block.pin()
                    path.append(node.block)
                    parent = node
                    resident += 1
                    continue
                if max_new_blocks is not None and new_blocks >= max_new_blocks:
                    break
                block = self._allocate_block(
                    content_hash, block_size, now, allow_eviction=allow_eviction
                )
                if block is None:
                    break
                node = _TreeNode(
                    content_hash=content_hash, block=block, parent=parent,
                    seq=self._node_seq,
                )
                self._node_seq += 1
                if parent is None:
                    self._roots[content_hash] = node
                else:
                    parent.children[content_hash] = node
                self._nodes[content_hash] = node
                self._note_candidate(node)
                node.block.pin()
                path.append(node.block)
                parent = node
                resident += 1
                new_blocks += 1
                self._insertions += 1
                self._version += 1
        finally:
            for block in path:
                block.unpin()
        return resident

    def _allocate_block(self, content_hash: int, block_size: int, now: float, *,
                        allow_eviction: bool) -> Block | None:
        """Allocate one block, evicting LRU leaves if necessary and allowed."""
        while True:
            try:
                return self._allocator.allocate(
                    content_hash=content_hash, num_tokens=block_size, now=now
                )
            except AllocationError:
                if not allow_eviction or not self.evict_blocks(1):
                    return None

    # -------------------------------------------------------------- eviction

    def _evictable_leaves(self) -> Iterator[_TreeNode]:
        """Yield unpinned leaf nodes (the only legal eviction victims)."""
        for node in self._nodes.values():
            if node.is_leaf and not node.block.is_pinned:
                yield node

    @property
    def num_evictable_blocks(self) -> int:
        """Number of blocks that could be reclaimed right now.

        This counts the whole unpinned subtree mass, not just current leaves,
        because evicting a leaf exposes its parent as the next victim.
        """
        return sum(1 for node in self._nodes.values() if not node.block.is_pinned)

    def evict_blocks(self, count: int) -> int:
        """Evict up to ``count`` blocks in LRU order; return how many were evicted."""
        if self._lru_heap is not None:
            return self._evict_from_heap(count)
        evicted = 0
        while evicted < count:
            victim = min(
                self._evictable_leaves(),
                key=lambda node: node.block.last_access,
                default=None,
            )
            if victim is None:
                break
            self._remove_node(victim)
            evicted += 1
        return evicted

    def _evict_from_heap(self, count: int) -> int:
        """Heap-based victim selection (same LRU order as the full scan).

        Every evictable node has at least one heap entry — pushed at its
        creation and whenever it becomes a leaf again — whose key never
        *overestimates* the node's recency (``touch`` only moves timestamps
        forward).  Popping therefore surfaces candidates in optimistic order:
        a dead or interior node is dropped, a node whose timestamp moved since
        the entry was pushed is re-keyed at its current ``last_access`` (lazy
        decrease-key, paid only when evictions actually happen rather than on
        every cache touch), and a pinned candidate is parked and re-pushed
        after the pass.  The first entry that survives validation is the true
        ``(last_access, seq)`` minimum over evictable leaves — the exact node
        ``min`` over the full scan would have picked.
        """
        heap = self._lru_heap
        pinned: list[tuple[float, int, _TreeNode]] = []
        evicted = 0
        while evicted < count and heap:
            entry = heapq.heappop(heap)
            last_access, _, node = entry
            if self._nodes.get(node.content_hash) is not node or not node.is_leaf:
                continue
            if node.block.last_access != last_access:
                heapq.heappush(heap, (node.block.last_access, node.seq, node))
                continue
            if node.block.is_pinned:
                pinned.append(entry)
                continue
            self._remove_node(node)
            evicted += 1
        for entry in pinned:
            heapq.heappush(heap, entry)
        return evicted

    def _remove_node(self, node: _TreeNode) -> None:
        if node.parent is None:
            self._roots.pop(node.content_hash, None)
        else:
            node.parent.children.pop(node.content_hash, None)
            if node.parent.is_leaf:
                # The parent just became evictable; give it a live heap entry.
                self._note_candidate(node.parent)
        del self._nodes[node.content_hash]
        self._allocator.free(node.block)
        self._evictions += 1
        self._version += 1
        if self.on_evict is not None:
            self.on_evict(node.content_hash, node.block.num_tokens)

    # --------------------------------------------------------------- pinning

    def pin_prefix(self, block_hashes: Sequence[int]) -> list[Block]:
        """Pin the cached prefix of a request while it executes.

        Pinned blocks cannot be evicted, which is how the cache guarantees that
        a scheduled request's advertised prefix hit is still there when the
        request actually runs.
        """
        pinned: list[Block] = []
        for content_hash in block_hashes:
            node = self._nodes.get(content_hash)
            if node is None:
                break
            node.block.pin()
            pinned.append(node.block)
        return pinned

    def unpin(self, blocks: Sequence[Block]) -> None:
        """Release blocks pinned by :meth:`pin_prefix`."""
        for block in blocks:
            block.unpin()

    # ----------------------------------------------------------------- misc

    def clear(self) -> None:
        """Drop every cached block (used between experiments)."""
        for node in list(self._nodes.values()):
            if node.block.is_pinned:
                raise AllocationError("cannot clear the prefix cache while blocks are pinned")
        for node in list(self._nodes.values()):
            self._allocator.free(node.block)
        self._nodes.clear()
        self._roots.clear()
        if self._lru_heap is not None:
            self._lru_heap.clear()
        self._version += 1
