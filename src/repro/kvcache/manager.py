"""KV-cache manager: the storage interface engines program against.

The manager owns one GPU's KV-cache budget (computed by the engine's profile
run), a block allocator over that budget, a radix-tree prefix cache, and an
optional CPU offload store.  Engines interact with it through three calls:

* :meth:`lookup` — how many of this request's tokens are already cached (used
  by the scheduler's continuous JCT calibration);
* :meth:`begin_execution` — pin the cached prefix and, for baseline engines
  that must keep the full KV cache resident during the forward pass, reserve
  scratch blocks for the uncached tokens (this is the reservation that lets a
  long request evict other requests' cached prefixes — the "prefix cache
  throttling" visible in Figure 9);
* :meth:`finish_execution` — release the pins, return scratch blocks, and
  commit the request's KV into the prefix cache according to the engine's
  commit policy (full insert for baselines, suffix discarding or offloading for
  PrefillOnly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import AllocationError, CapacityError, TierError
from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.block import Block, count_blocks
from repro.kvcache.offload import CPUOffloadStore
from repro.kvcache.prefix_tree import PrefixMatch, RadixPrefixCache
from repro.kvcache.tiers.store import TieredPrefixStore, TierLookup


class CommitPolicy(enum.Enum):
    """What happens to a request's KV cache when it finishes executing."""

    #: Insert every block into the prefix cache, evicting LRU entries as needed
    #: (the behaviour of vLLM-style baselines with automatic prefix caching).
    FULL = "full"
    #: Insert prefix blocks while space can be found, silently dropping the
    #: suffix that does not fit (PrefillOnly's suffix KV cache discarding).
    SUFFIX_DISCARD = "suffix-discard"
    #: Like SUFFIX_DISCARD, but blocks that do not fit on the GPU are offloaded
    #: to the CPU store instead of being dropped.
    SUFFIX_OFFLOAD = "suffix-offload"
    #: Do not cache anything (prefix caching disabled).
    NONE = "none"


@dataclass
class ExecutionLease:
    """Resources held by one request while it executes."""

    block_hashes: tuple[int, ...]
    num_tokens: int
    cached_blocks: list[Block] = field(default_factory=list)
    scratch_blocks: list[Block] = field(default_factory=list)
    cached_tokens: int = 0

    @property
    def num_scratch_blocks(self) -> int:
        return len(self.scratch_blocks)


@dataclass(frozen=True)
class CacheStats:
    """Aggregate prefix-cache statistics for one engine instance."""

    requests: int
    requests_with_hit: int
    tokens_total: int
    tokens_hit: int
    block_stats: dict
    offload_stats: dict | None
    #: Per-tier counters when the manager runs a tiered hierarchy, else None.
    #: Carries the :class:`~repro.kvcache.tiers.store.TierStats` fields plus
    #: ``tokens_hit_host`` / ``tokens_hit_cluster`` (tokens served from below
    #: L1 instead of being recomputed).
    tier_stats: dict | None = None

    @property
    def request_hit_rate(self) -> float:
        return self.requests_with_hit / self.requests if self.requests else 0.0

    @property
    def token_hit_rate(self) -> float:
        return self.tokens_hit / self.tokens_total if self.tokens_total else 0.0


class KVCacheManager:
    """Per-instance KV-cache manager.

    Args:
        capacity_tokens: KV-cache budget in tokens (from the engine's profile run).
        block_size: Tokens per block.
        offload_store: Optional CPU offload store for the SUFFIX_OFFLOAD policy.
        enable_prefix_caching: When False, lookups always miss and commits are
            no-ops (used to model engines with prefix caching disabled).
    """

    def __init__(self, capacity_tokens: int, *, block_size: int = 256,
                 offload_store: CPUOffloadStore | None = None,
                 tiers: TieredPrefixStore | None = None,
                 enable_prefix_caching: bool = True,
                 use_eviction_heap: bool = True) -> None:
        if capacity_tokens < 0:
            raise CapacityError("capacity_tokens must be non-negative")
        if tiers is not None and offload_store is not None:
            raise TierError(
                "a tiered manager owns its host store through the tier "
                "hierarchy; pass either `tiers` or `offload_store`, not both"
            )
        if tiers is not None and tiers.block_size != block_size:
            raise TierError(
                f"tiered store uses {tiers.block_size}-token blocks but the "
                f"manager uses {block_size}-token blocks"
            )
        self._block_size = block_size
        self._capacity_tokens = capacity_tokens
        num_blocks = capacity_tokens // block_size
        self._allocator = BlockAllocator(num_blocks, block_size)
        self._cache = RadixPrefixCache(self._allocator, use_eviction_heap=use_eviction_heap)
        self._offload = offload_store
        self._tiers = tiers
        if tiers is not None:
            tiers.bind_gpu_cache(self._cache)
        self._enable_prefix_caching = enable_prefix_caching
        self._requests = 0
        self._requests_with_hit = 0
        self._tokens_total = 0
        self._tokens_hit = 0
        self._tokens_hit_host = 0
        self._tokens_hit_cluster = 0
        self._active_leases = 0

    # ---------------------------------------------------------------- state

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def capacity_tokens(self) -> int:
        """KV budget in tokens."""
        return self._allocator.capacity_tokens

    @property
    def num_free_tokens(self) -> int:
        """Tokens worth of blocks currently unallocated."""
        return self._allocator.num_free_blocks * self._block_size

    @property
    def num_cached_tokens(self) -> int:
        """Tokens currently resident in the prefix cache."""
        return self._cache.num_cached_tokens

    def resident_hashes(self) -> list[int]:
        """Content hashes resident in GPU (L1) memory, parents before children.

        The public residency probe the system-wide invariant checks read
        (:mod:`repro.simulation.invariants`): together with
        ``tiers.host.resident_hashes()`` and the cluster store's
        ``owner_of``, it pins single residency per owner across the tiers.
        """
        return self._cache.resident_hashes()

    @property
    def cache_version(self) -> int:
        """Monotonic version of the prefix cache contents.

        The scheduler's continuous JCT calibration re-runs lookups only when
        this changes, which keeps calibration cheap without ever acting on a
        stale cache state.
        """
        return self._cache.version

    @property
    def prefix_caching_enabled(self) -> bool:
        return self._enable_prefix_caching

    @property
    def tiers(self) -> TieredPrefixStore | None:
        """The tiered hierarchy this manager runs, or None."""
        return self._tiers

    @property
    def has_tiers(self) -> bool:
        return self._tiers is not None

    @property
    def calibration_version(self):
        """Version key the scheduler memoises JCT calibrations against.

        Equals :attr:`cache_version` for a plain manager; a tiered manager
        folds in the tier version (including the shared cluster store's), so
        a peer replica's publish invalidates stale calibrations here too.
        """
        if self._tiers is None:
            return self._cache.version
        return (self._cache.version, self._tiers.version)

    @property
    def num_active_leases(self) -> int:
        """Execution leases currently outstanding (begin minus finish)."""
        return self._active_leases

    def stats(self) -> CacheStats:
        """Return aggregate hit-rate statistics."""
        tier_stats = None
        if self._tiers is not None:
            tier_stats = dict(self._tiers.stats.__dict__)
            tier_stats["tokens_hit_host"] = self._tokens_hit_host
            tier_stats["tokens_hit_cluster"] = self._tokens_hit_cluster
        offload = self._offload
        if offload is None and self._tiers is not None:
            offload = self._tiers.host
        return CacheStats(
            requests=self._requests,
            requests_with_hit=self._requests_with_hit,
            tokens_total=self._tokens_total,
            tokens_hit=self._tokens_hit,
            block_stats=dict(self._cache.stats),
            offload_stats=(
                offload.stats.__dict__ if offload is not None else None
            ),
            tier_stats=tier_stats,
        )

    # --------------------------------------------------------------- lookup

    def lookup(self, block_hashes: Sequence[int]) -> int:
        """Number of leading tokens of the request already cached on the GPU.

        Does not touch LRU state — this is the read-only query the scheduler
        issues for every waiting request during continuous JCT calibration.
        """
        if not self._enable_prefix_caching:
            return 0
        return self._cache.match_length(block_hashes) * self._block_size

    def lookup_from(self, block_hashes: Sequence[int], hint_blocks: int) -> int:
        """:meth:`lookup`, resumed from a previous match of ``hint_blocks`` blocks.

        Exploits the radix-tree invariant that only leaves are ever evicted —
        if a chained block hash is resident, its whole ancestor chain is too.
        The walk therefore backtracks from the hint to the deepest
        still-resident block (zero steps when nothing on this chain was
        evicted) and extends forward from there, instead of re-walking from
        the root.  The result is exactly ``lookup(block_hashes)``; only the
        cost differs — O(blocks changed on this chain) instead of O(match
        length) per continuous-calibration pass.
        """
        if not self._enable_prefix_caching:
            return 0
        cache = self._cache
        matched = min(hint_blocks, len(block_hashes))
        while matched > 0 and block_hashes[matched - 1] not in cache:
            matched -= 1
        while matched < len(block_hashes) and block_hashes[matched] in cache:
            matched += 1
        return matched * self._block_size

    def lookup_offloaded(self, block_hashes: Sequence[int]) -> int:
        """Tokens of the request available in the CPU offload store."""
        if self._offload is None or not self._enable_prefix_caching:
            return 0
        return self._offload.match_length(block_hashes) * self._block_size

    def lookup_with_offload(self, block_hashes: Sequence[int]) -> tuple[int, int, float]:
        """GPU-cached prefix plus its CPU-offloaded continuation.

        Returns ``(gpu_tokens, offloaded_tokens, load_seconds)`` where
        ``offloaded_tokens`` is the length of the prefix continuation that can
        be streamed back from host memory and ``load_seconds`` is the modelled
        transfer time for doing so.  The offload store keys blocks by the same
        chained content hashes as the GPU cache, so the continuation lookup is
        simply the suffix of the hash list starting where the GPU prefix ends.
        """
        gpu_tokens = self.lookup(block_hashes)
        if self._offload is None or not self._enable_prefix_caching:
            return gpu_tokens, 0, 0.0
        gpu_blocks = gpu_tokens // self._block_size
        continuation = tuple(block_hashes)[gpu_blocks:]
        offloaded_blocks, load_seconds = self._offload.load(continuation)
        return gpu_tokens, offloaded_blocks * self._block_size, load_seconds

    # ----------------------------------------------------------------- tiers

    def lookup_with_tiers(self, block_hashes: Sequence[int]) -> TierLookup:
        """Resolve a request's prefix against every tier, read-only.

        This is the tier-aware counterpart of :meth:`lookup`: the scheduler's
        continuous JCT calibration uses it to credit waiting requests for
        prefixes resident in the host or cluster tiers (discounted by the
        modelled transfer time), without perturbing LRU state or hit counts.
        """
        if self._tiers is None or not self._enable_prefix_caching:
            gpu_tokens = self.lookup(block_hashes)
            return TierLookup(gpu_tokens=gpu_tokens, host_tokens=0,
                              cluster_tokens=0, load_seconds=0.0,
                              penalty_tokens=0.0)
        gpu_blocks = self._cache.match_length(block_hashes)
        return self._tiers.lookup(block_hashes, gpu_blocks)

    def fetch_tiers(self, block_hashes: Sequence[int], *, now: float = 0.0) -> tuple[int, float]:
        """Stream the tier-resident continuation up for execution.

        Returns ``(tier_tokens, load_seconds)``: tokens that need no
        recompute because they came from the host/cluster tiers, and the
        transfer time to charge the request's first stage.  Applies the
        promotion policy as a side effect (see
        :meth:`~repro.kvcache.tiers.store.TieredPrefixStore.fetch`).
        """
        if self._tiers is None or not self._enable_prefix_caching:
            return 0, 0.0
        gpu_blocks = self._cache.match_length(block_hashes)
        lookup = self._tiers.fetch(block_hashes, gpu_blocks, now=now)
        self._tokens_hit_host += lookup.host_tokens
        self._tokens_hit_cluster += lookup.cluster_tokens
        return lookup.tier_tokens, lookup.load_seconds

    def prefetch_tiers(self, block_hashes: Sequence[int], *, now: float = 0.0) -> int:
        """Warm L1 with the request's tier-resident continuation (router hint).

        Returns the number of tokens promoted.  No cost is charged to any
        request — the transfer overlaps with queueing and is accounted in the
        tier stats.
        """
        if self._tiers is None or not self._enable_prefix_caching:
            return 0
        gpu_blocks = self._cache.match_length(block_hashes)
        return self._tiers.prefetch(block_hashes, gpu_blocks, now=now)

    def set_transfer_cost_multiplier(self, multiplier: float) -> None:
        """Scale every modelled host-link transfer time by ``multiplier``.

        The fault subsystem's interconnect brownout: applied to the flat
        offload store and the tiered hierarchy's host store (the fleet sets
        the shared cluster store's multiplier itself).  1.0 restores normal
        costs bit-exactly.
        """
        if self._offload is not None:
            self._offload.cost_multiplier = multiplier
        if self._tiers is not None and self._tiers.host is not None:
            self._tiers.host.cost_multiplier = multiplier

    def drain(self) -> int:
        """Flush the cached hierarchy downward (replica retirement).

        With tiering, the radix tree's resident prefixes and the host tier's
        contents publish into the fleet-shared cluster store, so a scale-down
        hands this replica's hot prefixes to the surviving fleet instead of
        discarding them.  Without tiering but with a flat offload store (the
        ``SUFFIX_OFFLOAD`` commit policy), the radix tree flushes into that
        store — same commit semantics the policy applies per request, applied
        once more at retirement.  Returns the number of blocks flushed.

        Raises:
            TierError: if any execution lease is still outstanding — draining
                a replica with in-flight work would orphan its leases.
        """
        if self._active_leases > 0:
            raise TierError(
                f"cannot drain: {self._active_leases} execution lease(s) still active"
            )
        if self._tiers is not None:
            return self._tiers.drain(self._cache.resident_hashes())
        if self._offload is not None:
            hashes = self._cache.resident_hashes()
            new_hashes = [h for h in hashes if h not in self._offload]
            self._offload.store(hashes)
            return sum(1 for h in new_hashes if h in self._offload)
        return 0

    # ------------------------------------------------------------ execution

    def begin_execution(self, block_hashes: Sequence[int], num_tokens: int, *,
                        reserve_full_kv: bool, now: float = 0.0) -> ExecutionLease:
        """Acquire the KV resources a request needs to start its forward pass.

        Args:
            block_hashes: The request's chained block hashes.
            num_tokens: The request's total token count.
            reserve_full_kv: True for baseline engines, which must hold the KV
                cache of every uncached token in GPU blocks for the whole pass.
                PrefillOnly passes False because hybrid prefilling keeps only
                one layer's KV live and discards/offloads the rest.
            now: Logical time for LRU bookkeeping.

        Raises:
            CapacityError: if ``reserve_full_kv`` is set and the uncached part
                of the request does not fit even after evicting every evictable
                cached block.
        """
        hashes = tuple(block_hashes)
        match = (
            self._cache.match(hashes, now=now)
            if self._enable_prefix_caching
            else PrefixMatch(0, 0, ())
        )
        cached_blocks = self._cache.pin_prefix(hashes[: match.num_blocks])
        lease = ExecutionLease(
            block_hashes=hashes,
            num_tokens=num_tokens,
            cached_blocks=cached_blocks,
            cached_tokens=match.num_tokens,
        )
        if not reserve_full_kv:
            self._record_request(num_tokens, match.num_tokens)
            self._active_leases += 1
            return lease

        uncached_tokens = max(num_tokens - match.num_tokens, 0)
        needed = count_blocks(uncached_tokens, self._block_size)
        scratch: list[Block] = []
        try:
            for _ in range(needed):
                scratch.append(self._allocate_scratch(now))
        except AllocationError as exc:
            self._allocator.free_many(scratch)
            self._cache.unpin(cached_blocks)
            raise CapacityError(
                f"request of {num_tokens} tokens needs {needed} KV blocks but the "
                f"cache budget of {self.capacity_tokens} tokens cannot supply them",
                required=needed,
                available=self._allocator.num_free_blocks,
            ) from exc
        lease.scratch_blocks = scratch
        self._record_request(num_tokens, match.num_tokens)
        self._active_leases += 1
        return lease

    def _allocate_scratch(self, now: float) -> Block:
        while True:
            try:
                return self._allocator.allocate(now=now)
            except AllocationError:
                if not self._cache.evict_blocks(1):
                    raise

    def _record_request(self, num_tokens: int, cached_tokens: int) -> None:
        self._requests += 1
        self._tokens_total += num_tokens
        self._tokens_hit += cached_tokens
        if cached_tokens > 0:
            self._requests_with_hit += 1

    def finish_execution(self, lease: ExecutionLease, *, policy: CommitPolicy,
                         now: float = 0.0) -> int:
        """Release a lease and commit its KV cache per ``policy``.

        Returns:
            The number of the request's tokens resident in the GPU prefix cache
            after the commit.
        """
        self._cache.unpin(lease.cached_blocks)
        if lease.scratch_blocks:
            self._allocator.free_many(lease.scratch_blocks)
            lease.scratch_blocks = []
        self._active_leases = max(self._active_leases - 1, 0)

        if not self._enable_prefix_caching or policy is CommitPolicy.NONE:
            return 0

        if self._tiers is not None:
            # Tiered commit: promotion policy decides whether tier-resident
            # blocks re-enter L1, and the suffix that does not fit demotes
            # down the hierarchy instead of being discarded.
            resident_blocks = self._tiers.commit(lease.block_hashes, now=now)
            return resident_blocks * self._block_size

        resident_blocks = self._cache.insert(
            lease.block_hashes, block_size=self._block_size, now=now, allow_eviction=True
        )
        if policy is CommitPolicy.SUFFIX_OFFLOAD and self._offload is not None:
            overflow = lease.block_hashes[resident_blocks:]
            if overflow:
                self._offload.store(overflow)
        return resident_blocks * self._block_size

    # ----------------------------------------------------------------- misc

    def clear(self) -> None:
        """Drop all cached state (between experiments)."""
        self._cache.clear()
        if self._offload is not None:
            self._offload.clear()
        if self._tiers is not None:
            self._tiers.clear()
