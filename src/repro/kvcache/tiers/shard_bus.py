"""The L3 store as a cross-shard service: versioned, latency-stamped messages.

In a sharded fleet run (:mod:`repro.simulation.sharded`) the
:class:`~repro.kvcache.tiers.cluster_store.ClusterPrefixStore` is the one
piece of mutable state every shard touches, so it becomes a *service* behind
a message bus rather than a bare object: every state-changing operation a
replica performs — publish, fetch, discard, availability toggle — flows
through :class:`ShardStoreBus`, which stamps it as a :class:`StoreMessage`
carrying

* the store's monotonic **version** after the operation (the store bumps its
  counter on every publish / fetch-move / eviction / availability change, so
  versions totally order the cross-shard mutations);
* the modelled **latency** the message pays on the store's interconnect —
  the link's base latency plus the transfer time of any blocks moved.  This
  is the same physics the store already charges callers via
  ``transfer_time``; the stamp surfaces it per message, and its per-link
  floor is exactly the conservative lookahead window
  :func:`~repro.simulation.sharded.derive_lookahead` derives: no message
  can be delivered sooner than one link-latency after it is sent.

The bus is installed by the fleet's ``cluster_service`` constructor hook —
*before* any replica binds a reference — and is pure delegation: every call
forwards to the wrapped store unchanged, so a sharded tiered run stays
byte-identical to the unsharded path (``tests/test_sharded_identity.py``
pins this for the tiered cookbook scenarios).  Only counters and a bounded
ring of recent messages are kept, so the bus adds O(1) memory per operation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.kvcache.tiers.cluster_store import ClusterPrefixStore

__all__ = ["StoreMessage", "ShardStoreBus"]

#: Recent messages retained for inspection (counters cover the full run).
_RING_SIZE = 256


@dataclass(frozen=True)
class StoreMessage:
    """One cross-shard store operation, stamped for deterministic replay.

    Attributes:
        seq: Bus-local sequence number (the fixed tie-break key: messages
            with equal versions — read-only probes — order by ``seq``).
        kind: Operation name (``publish`` / ``fetch`` / ``discard`` /
            ``availability``).
        replica: Originating replica name (``""`` for fleet-level control
            messages such as availability toggles).
        version: Store version *after* the operation was applied.
        latency_s: Modelled delivery latency of the message on the store's
            link: base link latency plus the transfer time of the blocks
            moved (zero blocks still pays the latency floor).
        blocks: KV blocks moved by the operation (0 for control messages).
    """

    seq: int
    kind: str
    replica: str
    version: int
    latency_s: float
    blocks: int = 0


class ShardStoreBus:
    """Transparent message facade over a :class:`ClusterPrefixStore`.

    Exposes the store's full public surface (replicas and the fleet talk to
    it exactly as before) while journalling every state-changing operation
    as a :class:`StoreMessage`.  Reads (`` in ``, ``match_length``,
    ``owner_of``, ``resident_hashes``) are *not* messages — they are shard-
    local probes against the synchronized state and carry no version bump.
    """

    def __init__(self, store: ClusterPrefixStore) -> None:
        self._store = store
        self._seq = 0
        self.message_counts: dict[str, int] = {}
        self.blocks_moved = 0
        #: Most recent messages, oldest first (bounded ring).
        self.recent_messages: deque[StoreMessage] = deque(maxlen=_RING_SIZE)

    # ------------------------------------------------------------- messages

    def _stamp(self, kind: str, replica: str, blocks: int) -> StoreMessage:
        self._seq += 1
        message = StoreMessage(
            seq=self._seq,
            kind=kind,
            replica=replica,
            version=self._store.version,
            latency_s=self._store.transfer_time(blocks),
            blocks=blocks,
        )
        self.message_counts[kind] = self.message_counts.get(kind, 0) + 1
        self.blocks_moved += blocks
        self.recent_messages.append(message)
        return message

    @property
    def num_messages(self) -> int:
        """Total messages stamped so far."""
        return self._seq

    # ------------------------------------------- delegated state (read-only)

    @property
    def store(self) -> ClusterPrefixStore:
        """The wrapped store."""
        return self._store

    @property
    def capacity_blocks(self) -> int:
        return self._store.capacity_blocks

    @property
    def block_bytes(self) -> int:
        return self._store.block_bytes

    @property
    def num_blocks(self) -> int:
        return self._store.num_blocks

    @property
    def link(self):
        return self._store.link

    @property
    def version(self) -> int:
        return self._store.version

    @property
    def stats(self):
        return self._store.stats

    @property
    def available(self) -> bool:
        return self._store.available

    @property
    def cost_multiplier(self) -> float:
        return self._store.cost_multiplier

    @cost_multiplier.setter
    def cost_multiplier(self, value: float) -> None:
        # The fault subsystem's brownout dial; forwarded, not a message of
        # its own (the brownout fault event is already globally sequenced).
        self._store.cost_multiplier = value

    def __contains__(self, content_hash: int) -> bool:
        return content_hash in self._store

    def owner_of(self, content_hash: int):
        return self._store.owner_of(content_hash)

    def resident_hashes(self) -> list[int]:
        return self._store.resident_hashes()

    def match_length(self, block_hashes) -> int:
        return self._store.match_length(block_hashes)

    def transfer_time(self, num_blocks: int) -> float:
        return self._store.transfer_time(num_blocks)

    # ------------------------------------------------- delegated mutations

    def publish(self, replica: str, block_hashes) -> tuple[int, float]:
        stored, seconds = self._store.publish(replica, block_hashes)
        self._stamp("publish", replica, stored)
        return stored, seconds

    def fetch_block(self, replica: str, content_hash: int) -> bool:
        fetched = self._store.fetch_block(replica, content_hash)
        self._stamp("fetch", replica, 1 if fetched else 0)
        return fetched

    def discard_owned(self, replica: str, content_hash: int) -> bool:
        discarded = self._store.discard_owned(replica, content_hash)
        self._stamp("discard", replica, 1 if discarded else 0)
        return discarded

    def set_available(self, available: bool) -> None:
        self._store.set_available(available)
        self._stamp("availability", "", 0)

    @property
    def publish_paused(self) -> bool:
        return self._store.publish_paused

    def set_publish_paused(self, paused: bool) -> None:
        # The degrade controller's brownout dial; like the outage toggle the
        # transition itself is globally sequenced, so forwarding is enough.
        self._store.set_publish_paused(paused)
        self._stamp("availability", "", 0)

    def clear(self) -> None:
        self._store.clear()
