"""Promotion policies of the tiered prefix cache.

A lower-tier hit always streams the block to the GPU for the forward pass (the
transfer is charged either way); the *promotion* question is whether the block
is also installed in the L1 radix tree afterwards, where it serves future hits
at zero transfer cost but occupies scarce GPU blocks.  The policy sees how
often each block has hit in a lower tier and votes:

* :class:`AlwaysPromote` — every lower-tier hit installs the block in L1
  (aggressive; right when GPU capacity is plentiful);
* :class:`PromoteOnNthHit` — a block earns its GPU residency by hitting N
  times in a lower tier first (filters one-off suffixes out of L1, the
  classic "cache on second touch" rule);
* :class:`NeverPromote` — lower tiers serve hits forever, L1 is fed only by
  the commit path (right when GPU capacity is tiny and churn is expensive).

Policies are stateless beyond the hit counts the stores already keep, so one
policy instance may be shared by every replica of a fleet.
"""

from __future__ import annotations

import abc

from repro.errors import UnknownNameError


class PromotionPolicy(abc.ABC):
    """Decides whether a lower-tier hit should install the block in L1."""

    name: str = "promotion-policy"

    @abc.abstractmethod
    def should_promote(self, content_hash: int, hits: int) -> bool:
        """Vote on promoting one block.

        Args:
            content_hash: Chained content hash of the block.
            hits: How many times the block has hit in lower tiers so far,
                *including* the hit being decided.
        """


class AlwaysPromote(PromotionPolicy):
    """Promote on the first lower-tier hit."""

    name = "always"

    def should_promote(self, content_hash: int, hits: int) -> bool:
        return True


class NeverPromote(PromotionPolicy):
    """Serve hits from lower tiers forever; never install in L1."""

    name = "never"

    def should_promote(self, content_hash: int, hits: int) -> bool:
        return False


class PromoteOnNthHit(PromotionPolicy):
    """Promote once a block has hit ``n`` times in lower tiers.

    Args:
        n: Hits required before promotion (``1`` behaves like
            :class:`AlwaysPromote`).
    """

    name = "on-nth-hit"

    def __init__(self, n: int = 2) -> None:
        if n < 1:
            raise ValueError("promotion threshold must be >= 1")
        self.n = n

    def should_promote(self, content_hash: int, hits: int) -> bool:
        return hits >= self.n


#: Registry of promotion-policy factories by config name.
PROMOTION_POLICIES = {
    "always": AlwaysPromote,
    "never": NeverPromote,
    "on-nth-hit": PromoteOnNthHit,
}


def make_promotion_policy(name: str, *, threshold: int = 2) -> PromotionPolicy:
    """Build a promotion policy by registry name.

    Args:
        name: ``"always"``, ``"never"``, or ``"on-nth-hit"``.
        threshold: The N of ``on-nth-hit`` (ignored by the others).
    """
    try:
        factory = PROMOTION_POLICIES[name]
    except KeyError:
        raise UnknownNameError(
            "promotion policy", name, tuple(PROMOTION_POLICIES)
        ) from None
    if factory is PromoteOnNthHit:
        return PromoteOnNthHit(threshold)
    return factory()
