"""The tiered prefix store: GPU radix tree over host memory over the cluster.

:class:`TieredPrefixStore` is the per-replica object that layers the three
tiers into one hierarchy:

* **L1** — the replica's GPU radix tree (:class:`~repro.kvcache.prefix_tree.
  RadixPrefixCache`), bound at manager-attach time.  Hits are free.
* **L2** — the replica's host :class:`~repro.kvcache.offload.CPUOffloadStore`.
  Hits are charged through the host link (PCIe by default).
* **L3** — the fleet-shared :class:`~repro.kvcache.tiers.cluster_store.
  ClusterPrefixStore`.  Hits are charged through the cluster link (NVLink /
  network), and blocks published by *other* replicas match too — the chained
  content hash is replica-independent.

Block movement follows two pluggable policies:

* **promotion** (:mod:`repro.kvcache.tiers.policy`) — whether a lower-tier
  hit installs the block in L1.  Only the leading contiguous run of
  promotable continuation blocks is installed, preserving the radix tree's
  prefix-closure invariant.
* **demote-instead-of-evict** — L1 evictions cascade into L2 and L2
  evictions into L3 (instead of dropping the bytes), so capacity pressure
  pushes cold prefixes *down* the hierarchy rather than out of it.

The exclusivity invariant the property tests pin: a content hash is resident
in at most one tier per owner — promotion removes the block from its source
tier, demotion only fires on eviction (the block just left the tier above),
and commit overflow reclaims any self-owned L3 duplicate.  Peer-owned L3
entries may coexist with a local copy; they belong to the publisher.

Transfer-cost model: a batch of ``n`` blocks fetched from one tier costs
``n * block_bytes / link.bandwidth + link.latency`` (one latency per batch,
like the offload store).  Fetch costs are charged to the request's first
pipeline stage; demotion and prefetch costs are accounted in
:class:`TierStats` but not charged to any request — they model asynchronous
background transfers that overlap with compute / queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import get_interconnect
from repro.kvcache.offload import CPUOffloadStore
from repro.kvcache.tiers.cluster_store import ClusterPrefixStore
from repro.kvcache.tiers.config import TierConfig
from repro.kvcache.tiers.policy import PromotionPolicy, make_promotion_policy
from repro.obs.recorder import NULL_RECORDER


@dataclass(frozen=True)
class TierLookup:
    """Result of resolving a request's block hashes against every tier.

    Attributes:
        gpu_tokens: Leading tokens resident in the L1 radix tree.
        host_tokens: Continuation tokens resident in the host (L2) store.
        cluster_tokens: Continuation tokens resident in the cluster (L3) store.
        load_seconds: Modelled transfer time to stream the L2/L3 continuation
            to the GPU.
        penalty_tokens: ``load_seconds`` expressed in compute-token
            equivalents, for JCT scoring in token units.
    """

    gpu_tokens: int
    host_tokens: int
    cluster_tokens: int
    load_seconds: float
    penalty_tokens: float

    @property
    def total_tokens(self) -> int:
        """Tokens resident anywhere in the hierarchy."""
        return self.gpu_tokens + self.host_tokens + self.cluster_tokens

    @property
    def tier_tokens(self) -> int:
        """Tokens resident below L1 (what a fetch would stream up)."""
        return self.host_tokens + self.cluster_tokens


@dataclass(frozen=True)
class TierStats:
    """Cumulative per-replica counters of the tiered store."""

    host_hit_blocks: int
    cluster_hit_blocks: int
    promoted_blocks: int
    demoted_blocks: int
    dropped_blocks: int
    prefetched_blocks: int
    bytes_up: int
    bytes_down: int
    load_seconds: float
    prefetch_seconds: float
    demote_seconds: float


class TieredPrefixStore:
    """Per-replica view of the GPU -> host -> cluster prefix-cache hierarchy.

    Args:
        replica: Name of the owning replica (L3 ownership accounting).
        block_size: Tokens per KV block (must match the L1 cache).
        block_bytes: Bytes per KV block (for transfer-cost modelling).
        host: Host (L2) store, or None to run without one.
        cluster: Fleet-shared (L3) store, or None to run without one.
        policy: Promotion policy.
        demote_on_evict: Cascade evictions down the hierarchy instead of
            dropping blocks.
        compute_tokens_per_second: The replica's uncached prefill rate, used
            to express transfer seconds in token units for JCT scoring
            (0 disables the conversion).
    """

    #: Span recorder and replica key, rebound by ``Fleet._build_replica``
    #: when observability is enabled.  Eviction cascades carry no timestamp,
    #: so demotion events they trigger borrow ``_obs_now`` — the simulated
    #: time of the last timestamped entry point (fetch/commit/prefetch/...).
    obs = NULL_RECORDER
    obs_key = 0

    def __init__(self, *, replica: str, block_size: int, block_bytes: int,
                 host: CPUOffloadStore | None = None,
                 cluster: ClusterPrefixStore | None = None,
                 policy: PromotionPolicy | None = None,
                 demote_on_evict: bool = True,
                 compute_tokens_per_second: float = 0.0) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.replica = replica
        self._block_size = block_size
        self._block_bytes = block_bytes
        self._host = host
        self._cluster = cluster
        self._policy = policy if policy is not None else make_promotion_policy("on-nth-hit")
        self._demote_on_evict = demote_on_evict
        self._tokens_per_second = compute_tokens_per_second
        self._gpu_cache = None  # bound by the KVCacheManager
        self._hit_counts: dict[int, int] = {}
        self._version = 0
        self._obs_now = 0.0
        # counters
        self._host_hits = 0
        self._cluster_hits = 0
        self._promoted = 0
        self._demoted = 0
        self._dropped = 0
        self._prefetched = 0
        self._bytes_up = 0
        self._bytes_down = 0
        self._load_seconds = 0.0
        self._prefetch_seconds = 0.0
        self._demote_seconds = 0.0
        if self._host is not None:
            self._host.on_evict = self._on_host_evict

    # ---------------------------------------------------------------- state

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def host(self) -> CPUOffloadStore | None:
        return self._host

    @property
    def cluster(self) -> ClusterPrefixStore | None:
        return self._cluster

    @property
    def version(self) -> int:
        """Monotonic counter over everything that can change a tier lookup.

        Includes the shared cluster store's version, so one replica's publish
        invalidates every other replica's memoised JCT calibrations.
        """
        cluster_version = self._cluster.version if self._cluster is not None else 0
        return self._version + cluster_version

    @property
    def stats(self) -> TierStats:
        return TierStats(
            host_hit_blocks=self._host_hits,
            cluster_hit_blocks=self._cluster_hits,
            promoted_blocks=self._promoted,
            demoted_blocks=self._demoted,
            dropped_blocks=self._dropped,
            prefetched_blocks=self._prefetched,
            bytes_up=self._bytes_up,
            bytes_down=self._bytes_down,
            load_seconds=self._load_seconds,
            prefetch_seconds=self._prefetch_seconds,
            demote_seconds=self._demote_seconds,
        )

    def bind_gpu_cache(self, cache) -> None:
        """Attach the L1 radix tree (called by the owning KVCacheManager)."""
        self._gpu_cache = cache
        cache.on_evict = self._on_l1_evict

    # --------------------------------------------------------------- lookup

    def _walk_continuation(self, block_hashes, start_blocks: int) -> tuple[int, int]:
        """(host blocks, cluster blocks) of the continuation past ``start_blocks``.

        Walks hash by hash so interleaved residency (some blocks in L2, the
        next in L3) still resolves; stops at the first block in neither tier.
        """
        host_blocks = 0
        cluster_blocks = 0
        for content_hash in block_hashes[start_blocks:]:
            if self._host is not None and content_hash in self._host:
                host_blocks += 1
            elif self._cluster is not None and content_hash in self._cluster:
                cluster_blocks += 1
            else:
                break
        return host_blocks, cluster_blocks

    def _batch_seconds(self, host_blocks: int, cluster_blocks: int) -> float:
        seconds = 0.0
        if host_blocks and self._host is not None:
            seconds += self._host.transfer_time(host_blocks)
        if cluster_blocks and self._cluster is not None:
            seconds += self._cluster.transfer_time(cluster_blocks)
        return seconds

    def penalty_tokens(self, load_seconds: float) -> float:
        """Express transfer seconds in compute-token equivalents."""
        return load_seconds * self._tokens_per_second

    def lookup(self, block_hashes, gpu_blocks: int) -> TierLookup:
        """Read-only tier resolution (no LRU, hit-count, or residency change).

        Args:
            block_hashes: The request's chained block hashes.
            gpu_blocks: Length of the L1 match, in blocks (the caller already
                knows it from the radix tree).
        """
        host_blocks, cluster_blocks = self._walk_continuation(block_hashes, gpu_blocks)
        load_seconds = self._batch_seconds(host_blocks, cluster_blocks)
        return TierLookup(
            gpu_tokens=gpu_blocks * self._block_size,
            host_tokens=host_blocks * self._block_size,
            cluster_tokens=cluster_blocks * self._block_size,
            load_seconds=load_seconds,
            penalty_tokens=self.penalty_tokens(load_seconds),
        )

    # ---------------------------------------------------------------- fetch

    def fetch(self, block_hashes, gpu_blocks: int, *, now: float = 0.0) -> TierLookup:
        """Stream the tier-resident continuation to the GPU for execution.

        Counts per-block hits, applies the promotion policy to the leading
        contiguous run of the continuation (promoted blocks are inserted into
        L1 and removed from their source tier), stages unpromoted L3 hits
        into L2 when one exists, and returns the resolved :class:`TierLookup`
        — whose ``tier_tokens`` need no recompute and whose ``load_seconds``
        is the transfer time to charge the request.
        """
        self._obs_now = now
        host_blocks, cluster_blocks = self._walk_continuation(block_hashes, gpu_blocks)
        total = host_blocks + cluster_blocks
        if total == 0:
            return TierLookup(gpu_tokens=gpu_blocks * self._block_size, host_tokens=0,
                              cluster_tokens=0, load_seconds=0.0, penalty_tokens=0.0)
        continuation = list(block_hashes[gpu_blocks:gpu_blocks + total])

        self._host_hits += host_blocks
        self._cluster_hits += cluster_blocks
        self._bytes_up += total * self._block_bytes
        load_seconds = self._batch_seconds(host_blocks, cluster_blocks)
        self._load_seconds += load_seconds
        self._version += 1
        self.obs.emit(
            now, self.obs_key, "tier_hit",
            host_tokens=host_blocks * self._block_size,
            cluster_tokens=cluster_blocks * self._block_size,
            load_s=load_seconds,
        )

        # Count every streamed block's hit, record cluster reads (fleet-wide
        # hit accounting), and find the leading contiguous promotable run.
        promote_run = 0
        run_unbroken = True
        peer_reads = 0
        for content_hash in continuation:
            hits = self._hit_counts.get(content_hash, 0) + 1
            self._hit_counts[content_hash] = hits
            in_host = self._host is not None and content_hash in self._host
            if not in_host and self._cluster is not None and content_hash in self._cluster:
                self._cluster.fetch_block(self.replica, content_hash)
                peer_reads += 1
            if run_unbroken and self._policy.should_promote(content_hash, hits):
                promote_run += 1
            else:
                run_unbroken = False
        if peer_reads:
            self.obs.emit(now, self.obs_key, "peer_fetch", blocks=peer_reads)
        landed = self._promote_into_l1(block_hashes, gpu_blocks, promote_run, now)
        self._promoted += landed
        if landed:
            self.obs.emit(now, self.obs_key, "promote", blocks=landed)

        # The unpromoted tail stays put, with two touch-ups: host hits get an
        # LRU refresh, and cluster hits are staged into the host tier so the
        # next hit pays the host link instead of the cluster link.
        for content_hash in continuation[landed:]:
            if self._host is None:
                break
            if content_hash in self._host:
                self._host.store([content_hash])
            elif self._cluster is not None and content_hash in self._cluster:
                self._host.store([content_hash])
                self._cluster.discard_owned(self.replica, content_hash)
        return TierLookup(
            gpu_tokens=gpu_blocks * self._block_size,
            host_tokens=host_blocks * self._block_size,
            cluster_tokens=cluster_blocks * self._block_size,
            load_seconds=load_seconds,
            penalty_tokens=self.penalty_tokens(load_seconds),
        )

    def _promote_into_l1(self, block_hashes, gpu_blocks: int, promote_run: int,
                         now: float) -> int:
        """Install the leading ``promote_run`` continuation blocks in L1.

        Returns how many actually landed (GPU pressure may stop the insert
        early); landed blocks are removed from their source tier afterwards,
        so a block is never resident twice.
        """
        if promote_run == 0 or self._gpu_cache is None:
            return 0
        prefix = block_hashes[:gpu_blocks + promote_run]
        resident = self._gpu_cache.insert(
            prefix, block_size=self._block_size, now=now, allow_eviction=True
        )
        landed = max(resident - gpu_blocks, 0)
        self.reclaim(prefix[gpu_blocks:gpu_blocks + landed])
        return landed

    def reclaim(self, block_hashes) -> int:
        """Remove lower-tier copies of blocks that just landed in L1.

        Called after any insert into the radix tree (promotion, prefetch,
        commit) with the hashes that actually became resident.  Pure
        residency maintenance — the caller decides whether the movement
        counts as a promotion or a prefetch.  Returns how many copies were
        reclaimed.
        """
        reclaimed = 0
        for content_hash in block_hashes:
            host_had = self._host.discard(content_hash) if self._host is not None else False
            cluster_had = (
                self._cluster.discard_owned(self.replica, content_hash)
                if self._cluster is not None else False
            )
            if host_had or cluster_had:
                reclaimed += 1
                self._hit_counts.pop(content_hash, None)
        if reclaimed:
            self._version += 1
        return reclaimed

    # --------------------------------------------------------------- commit

    def commit(self, block_hashes, *, now: float = 0.0) -> int:
        """Commit a finished request's chain through the hierarchy.

        The tier-aware counterpart of the manager's plain radix-tree insert:

        * blocks already resident in a lower tier re-enter L1 only if the
          promotion policy votes yes at their current hit count — a block
          that is deliberately parked in the host tier stays there instead
          of churning the GPU cache on every pass;
        * the first unpromotable tier-resident block ends the L1 insert (the
          radix tree cannot hold a block without its ancestors);
        * everything past the L1-resident run demotes into the tiers via
          :meth:`accept_overflow`;
        * L1-resident blocks' lower-tier copies are reclaimed, preserving
          single-residency.

        With no host and no cluster tier this degenerates to exactly the
        seed behaviour (insert everything, evicting LRU leaves as needed).

        Returns the number of the request's blocks resident in L1 after the
        commit.
        """
        if self._gpu_cache is None:
            return 0
        self._obs_now = now
        hashes = tuple(block_hashes)
        gpu_match = self._gpu_cache.match_length(hashes)
        stop = gpu_match
        for content_hash in hashes[gpu_match:]:
            in_lower = (
                (self._host is not None and content_hash in self._host)
                or (self._cluster is not None and content_hash in self._cluster)
            )
            if in_lower and not self._policy.should_promote(
                content_hash, self._hit_counts.get(content_hash, 0)
            ):
                break
            stop += 1
        resident = self._gpu_cache.insert(
            hashes[:stop], block_size=self._block_size, now=now, allow_eviction=True
        )
        reclaimed = self.reclaim(hashes[gpu_match:resident])
        self._promoted += reclaimed
        if reclaimed:
            self.obs.emit(now, self.obs_key, "promote", blocks=reclaimed)
        overflow = hashes[resident:]
        if overflow:
            self.accept_overflow(overflow, now=now)
        return resident

    # ------------------------------------------------------------- prefetch

    def prefetch(self, block_hashes, gpu_blocks: int, *, now: float = 0.0) -> int:
        """Warm L1 with the tier-resident continuation ahead of dispatch.

        Promotion is unconditional — the routing decision *is* the hint that
        these blocks are about to be needed.  The transfer is accounted in
        :class:`TierStats` (``prefetch_seconds``) but not charged to any
        request: it overlaps with the request's queueing time.

        Returns the number of tokens moved into L1.
        """
        self._obs_now = now
        host_blocks, cluster_blocks = self._walk_continuation(block_hashes, gpu_blocks)
        total = host_blocks + cluster_blocks
        if total == 0:
            return 0
        self._version += 1
        # Snapshot which tier each continuation block sits in before the
        # insert moves anything, so the transfer accounting can be limited to
        # the blocks that actually land in L1.
        continuation = list(block_hashes[gpu_blocks:gpu_blocks + total])
        in_host = [self._host is not None and h in self._host for h in continuation]
        landed = self._promote_into_l1(block_hashes, gpu_blocks, total, now)
        if landed == 0:
            return 0
        landed_host = sum(1 for flag in in_host[:landed] if flag)
        self._prefetched += landed
        self._bytes_up += landed * self._block_bytes
        self._prefetch_seconds += self._batch_seconds(landed_host, landed - landed_host)
        self.obs.emit(now, self.obs_key, "prefetch", blocks=landed)
        return landed * self._block_size

    def warm_restore(self, block_hashes, *, now: float = 0.0) -> int:
        """Stage cluster-resident blocks into the host tier (replica rebuild).

        The fault subsystem's recovery path: a replica rebuilt after a crash
        starts with an empty L1 and L2, but prefixes that were already
        resident in the fleet-shared cluster store survived the crash — this
        copies up to ``len(block_hashes)`` of them into the fresh host tier
        so the first post-recovery requests pay the host link instead of the
        cluster link (or a full recompute).  The transfer is a background
        copy: accounted as prefetch time, charged to no request, and the L3
        entries stay put (they belong to their publisher — typically the
        dead replica — and other replicas keep matching them).

        Returns the number of blocks staged.
        """
        if self._host is None or self._cluster is None:
            return 0
        self._obs_now = now
        fresh = [
            content_hash for content_hash in block_hashes
            if content_hash in self._cluster and content_hash not in self._host
        ]
        if not fresh:
            return 0
        self._version += 1
        seconds = self._host.store(fresh)
        restored = sum(1 for content_hash in fresh if content_hash in self._host)
        self._prefetched += restored
        self._prefetch_seconds += seconds
        self._bytes_up += restored * self._block_bytes
        return restored

    # ------------------------------------------------------------- demotion

    def accept_overflow(self, block_hashes, *, now: float = 0.0) -> int:
        """Take the commit-time overflow (blocks that did not fit in L1).

        The overflow demotes into L2 (or straight into L3 when no host tier
        exists); any self-owned L3 duplicate is reclaimed so the block stays
        single-resident.  Returns how many blocks the tiers absorbed.
        """
        hashes = list(block_hashes)
        if not hashes:
            return 0
        self._obs_now = now
        self._version += 1
        if self._host is not None:
            # Only blocks that were not already host-resident are transfers;
            # re-offering a parked block refreshes its LRU slot for free.
            new_hashes = [h for h in hashes if h not in self._host]
            seconds = self._host.store(hashes)
            self._demote_seconds += seconds
            absorbed = sum(1 for h in new_hashes if h in self._host)
            for content_hash in hashes:
                if self._cluster is not None and content_hash in self._host:
                    self._cluster.discard_owned(self.replica, content_hash)
            self._demoted += absorbed
            self._bytes_down += absorbed * self._block_bytes
            if absorbed:
                self.obs.emit(now, self.obs_key, "demote", blocks=absorbed)
            return absorbed
        if self._cluster is not None:
            stored, seconds = self._cluster.publish(self.replica, hashes)
            self._demote_seconds += seconds
            self._demoted += stored
            self._bytes_down += stored * self._block_bytes
            if stored:
                self.obs.emit(now, self.obs_key, "demote", blocks=stored)
            return stored
        self._dropped += len(hashes)
        return 0

    def _on_l1_evict(self, content_hash: int, num_tokens: int) -> None:
        """L1 eviction hook: demote the block instead of dropping it."""
        if not self._demote_on_evict:
            self._dropped += 1
            return
        self._version += 1
        if self._host is not None:
            self._demote_seconds += self._host.store([content_hash])
            if content_hash in self._host:
                self._demoted += 1
                self._bytes_down += self._block_bytes
                self.obs.emit(self._obs_now, self.obs_key, "demote", blocks=1)
            else:
                self._dropped += 1
        elif self._cluster is not None:
            stored, seconds = self._cluster.publish(self.replica, [content_hash])
            self._demote_seconds += seconds
            if stored:
                self._demoted += 1
                self._bytes_down += self._block_bytes
                self.obs.emit(self._obs_now, self.obs_key, "demote", blocks=1)
            elif content_hash not in self._cluster:
                self._dropped += 1
        else:
            self._dropped += 1

    def _on_host_evict(self, content_hash: int) -> None:
        """L2 eviction hook: publish the block to the cluster store."""
        if not self._demote_on_evict or self._cluster is None:
            self._dropped += 1
            return
        self._version += 1
        stored, seconds = self._cluster.publish(self.replica, [content_hash])
        self._demote_seconds += seconds
        if stored:
            self._demoted += 1
            self._bytes_down += self._block_bytes
            self.obs.emit(self._obs_now, self.obs_key, "demote", blocks=1)
        elif content_hash not in self._cluster:
            self._dropped += 1
        # else: already resident below (publish refreshed it) — not a drop.

    # ---------------------------------------------------------------- drain

    def drain(self, l1_hashes, *, reason: str = "scale-down") -> int:
        """Flush a retiring replica's cached prefixes into the cluster store.

        Publishes the L1 radix tree's resident hashes (already in
        parent-before-child order) and the host tier's contents to L3, so a
        scale-down hands the replica's hot prefixes to the surviving fleet
        instead of discarding them.  Returns the number of blocks published.
        """
        if self._cluster is None:
            return 0
        self._version += 1
        published = 0
        stored, seconds = self._cluster.publish(self.replica, list(l1_hashes))
        published += stored
        self._demote_seconds += seconds
        if self._host is not None:
            host_hashes = self._host.resident_hashes()
            stored, seconds = self._cluster.publish(self.replica, host_hashes)
            published += stored
            self._demote_seconds += seconds
            self._host.clear()
        self._demoted += published
        self._bytes_down += published * self._block_bytes
        if published:
            self.obs.emit(self._obs_now, self.obs_key, "demote", blocks=published)
        return published

    def clear(self) -> None:
        """Drop per-replica tier state (between experiments)."""
        if self._host is not None:
            self._host.clear()
        self._hit_counts.clear()
        self._version += 1


def build_tiered_store(config: TierConfig, *, replica: str, block_size: int,
                       block_bytes: int,
                       cluster: ClusterPrefixStore | None = None,
                       compute_tokens_per_second: float = 0.0) -> TieredPrefixStore | None:
    """Construct one replica's tiered store from a :class:`TierConfig`.

    Returns None when the config is disabled.  The cluster store is shared
    fleet-wide and therefore injected, not built here; pass None to run a
    two-tier (GPU + host) hierarchy.
    """
    if not config.enabled:
        return None
    host = None
    if config.host_gib > 0:
        host = CPUOffloadStore(
            capacity_bytes=int(config.host_gib * (1 << 30)),
            block_bytes=block_bytes,
            link=get_interconnect(config.host_link),
        )
    return TieredPrefixStore(
        replica=replica,
        block_size=block_size,
        block_bytes=block_bytes,
        host=host,
        cluster=cluster,
        policy=make_promotion_policy(config.promotion, threshold=config.promotion_threshold),
        demote_on_evict=config.demote_on_evict,
        compute_tokens_per_second=compute_tokens_per_second,
    )


def build_cluster_store(config: TierConfig, *, block_bytes: int) -> ClusterPrefixStore | None:
    """Construct the fleet-shared L3 store from a :class:`TierConfig`.

    Returns None when the config is disabled or sizes the cluster tier at 0.
    """
    if not config.enabled or config.cluster_gib <= 0:
        return None
    return ClusterPrefixStore(
        capacity_bytes=int(config.cluster_gib * (1 << 30)),
        block_bytes=block_bytes,
        link=get_interconnect(config.cluster_link),
    )
