"""The fleet-shared L3 prefix store.

One :class:`ClusterPrefixStore` is shared by every replica of a
:class:`~repro.cluster.Fleet`: blocks demoted out of a replica's host tier —
or drained from a retiring replica's radix tree — are *published* here, and
any replica whose request matches them can *fetch* them back instead of
recomputing the prefix.  Because block identity is the chained content hash
(replica-independent by construction), a prefix computed on replica A matches
verbatim on replica B; the store is what turns N per-replica caches into one
pool.

Semantics:

* **publish** is idempotent per hash — re-publishing refreshes LRU recency
  and, when the hash is already present, keeps the original owner.
* **fetch** is a read over the configured interconnect: the entry stays so
  other replicas keep matching it; fetches by non-owners are counted as
  ``peer_fetches`` — the fleet-wide sharing the subsystem exists for.  When
  a fetched block lands in a higher tier of its *owner's* hierarchy, the
  tiered store reclaims the entry via :meth:`ClusterPrefixStore.discard_owned`
  (the per-owner single-residency invariant the property tests pin).
* eviction is LRU over the byte budget; evicted blocks are gone (L3 is the
  bottom of the hierarchy).

Per-replica hit/publish counters make fleet-wide accounting possible without
the store knowing anything about fleets.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro.hardware.interconnect import Interconnect, NVLINK


@dataclass(frozen=True)
class ClusterStoreStats:
    """Cumulative counters of the cluster-shared store."""

    published_blocks: int
    fetched_blocks: int
    peer_fetched_blocks: int
    evicted_blocks: int
    current_blocks: int
    current_bytes: int
    bytes_in: int
    bytes_out: int
    hits_by_replica: dict = field(default_factory=dict)
    publishes_by_replica: dict = field(default_factory=dict)


class ClusterPrefixStore:
    """LRU store of KV blocks shared across a fleet's replicas.

    Args:
        capacity_bytes: Byte budget of the shared pool.
        block_bytes: Size of one KV block in bytes (homogeneous across the
            fleet — asserted by the fleet when tiering is enabled).
        link: Interconnect charged for replica <-> store transfers.
    """

    def __init__(self, capacity_bytes: int, block_bytes: int,
                 link: Interconnect = NVLINK) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self._capacity_bytes = capacity_bytes
        self._block_bytes = block_bytes
        self._link = link
        #: content hash -> owning replica name, in LRU order (MRU last).
        self._blocks: OrderedDict[int, str] = OrderedDict()
        self._published = 0
        self._fetched = 0
        self._peer_fetched = 0
        self._evicted = 0
        self._bytes_in = 0
        self._bytes_out = 0
        self._hits_by_replica: dict[str, int] = {}
        self._publishes_by_replica: dict[str, int] = {}
        self._version = 0
        self._available = True
        self._publish_paused = False
        #: Transfer-cost multiplier applied to every modelled transfer time.
        #: 1.0 (the default) is a bit-exact no-op; the fault subsystem raises
        #: it during interconnect brownouts.
        self.cost_multiplier: float = 1.0

    # ---------------------------------------------------------------- state

    @property
    def capacity_blocks(self) -> int:
        """How many blocks fit in the byte budget."""
        return self._capacity_bytes // self._block_bytes

    @property
    def block_bytes(self) -> int:
        return self._block_bytes

    @property
    def num_blocks(self) -> int:
        """Blocks currently stored."""
        return len(self._blocks)

    @property
    def link(self) -> Interconnect:
        return self._link

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every publish, fetch-move, or eviction."""
        return self._version

    @property
    def stats(self) -> ClusterStoreStats:
        return ClusterStoreStats(
            published_blocks=self._published,
            fetched_blocks=self._fetched,
            peer_fetched_blocks=self._peer_fetched,
            evicted_blocks=self._evicted,
            current_blocks=len(self._blocks),
            current_bytes=len(self._blocks) * self._block_bytes,
            bytes_in=self._bytes_in,
            bytes_out=self._bytes_out,
            hits_by_replica=dict(self._hits_by_replica),
            publishes_by_replica=dict(self._publishes_by_replica),
        )

    @property
    def available(self) -> bool:
        """Whether the store is reachable (the fault subsystem's L3 outage)."""
        return self._available

    def set_available(self, available: bool) -> None:
        """Toggle reachability.  During an outage reads miss and writes are
        refused (and lost); stored blocks survive and become visible again
        when the outage ends.  Toggling bumps :attr:`version`, so memoised
        JCT calibrations that credited L3 residency are invalidated."""
        if self._available != bool(available):
            self._available = bool(available)
            self._version += 1

    @property
    def publish_paused(self) -> bool:
        """Whether writes are being refused by a resilience brownout tier."""
        return self._publish_paused

    def set_publish_paused(self, paused: bool) -> None:
        """Pause / resume publish traffic (degraded-mode serving).

        Unlike an outage, reads stay up — resident blocks remain fetchable —
        and the store's contents and :attr:`version` are untouched; only new
        writes are refused (and lost, like writes during an outage).
        """
        self._publish_paused = bool(paused)

    def __contains__(self, content_hash: int) -> bool:
        return self._available and content_hash in self._blocks

    def owner_of(self, content_hash: int) -> str | None:
        """The replica that published ``content_hash``, or None when absent."""
        if not self._available:
            return None
        return self._blocks.get(content_hash)

    def resident_hashes(self) -> list[int]:
        """Stored content hashes in LRU order (oldest first).

        Empty while the store is unavailable — an outage hides the contents
        from every reader, warm restore included.
        """
        if not self._available:
            return []
        return list(self._blocks)

    # ------------------------------------------------------------------ I/O

    def publish(self, replica: str, block_hashes: Sequence[int]) -> tuple[int, float]:
        """Store blocks on behalf of ``replica``; return (stored, seconds).

        Already-present hashes are refreshed in LRU order (original owner
        kept) at no transfer cost; new hashes evict LRU entries as needed and
        are charged through the configured link.  While the store is
        unavailable the write is refused: nothing is stored and the offered
        blocks are lost (the caller's demotion path counts them as drops).
        """
        if not self._available or self._publish_paused:
            return 0, 0.0
        stored = 0
        for content_hash in block_hashes:
            if content_hash in self._blocks:
                self._blocks.move_to_end(content_hash)
                continue
            if self.capacity_blocks == 0:
                continue
            while len(self._blocks) >= self.capacity_blocks:
                self._blocks.popitem(last=False)
                self._evicted += 1
                self._version += 1
            self._blocks[content_hash] = replica
            stored += 1
            self._version += 1
        self._published += stored
        self._bytes_in += stored * self._block_bytes
        if stored:
            self._publishes_by_replica[replica] = (
                self._publishes_by_replica.get(replica, 0) + stored
            )
        return stored, self._transfer_time(stored)

    def fetch_block(self, replica: str, content_hash: int) -> bool:
        """Record one block read by ``replica``; return whether it was present.

        A fetch is a *read*: the entry stays (refreshed in LRU order) so other
        replicas keep matching it.  When the block subsequently lands in a
        higher tier of the owner's own hierarchy, the tiered store reclaims
        the entry explicitly through :meth:`discard_owned` — that is what
        keeps a block single-resident per owner.  Fetches by non-owners are
        counted separately as ``peer_fetches`` (the cross-replica sharing this
        store exists for).  Transfer time is *not* charged here — callers
        batch blocks and charge one :meth:`transfer_time` per tier visit, so a
        ten-block continuation pays the link latency once, not ten times.
        """
        if not self._available:
            return False
        owner = self._blocks.get(content_hash)
        if owner is None:
            return False
        self._fetched += 1
        self._bytes_out += self._block_bytes
        self._hits_by_replica[replica] = self._hits_by_replica.get(replica, 0) + 1
        if owner != replica:
            self._peer_fetched += 1
        self._blocks.move_to_end(content_hash)
        return True

    def discard_owned(self, replica: str, content_hash: int) -> bool:
        """Drop ``replica``'s own entry for ``content_hash``, if any.

        Used when the owner re-acquires the block through another path (e.g.
        a commit overflow landing in its host tier) so the block is never
        resident in two tiers under the same owner.
        """
        if self._blocks.get(content_hash) == replica:
            del self._blocks[content_hash]
            self._version += 1
            return True
        return False

    def match_length(self, block_hashes: Sequence[int]) -> int:
        """Length (in blocks) of the stored prefix of ``block_hashes``."""
        count = 0
        for content_hash in block_hashes:
            if content_hash not in self:
                break
            count += 1
        return count

    def transfer_time(self, num_blocks: int) -> float:
        """Modelled seconds to move ``num_blocks`` over the store's link."""
        return self._transfer_time(num_blocks)

    def _transfer_time(self, num_blocks: int) -> float:
        if num_blocks == 0:
            return 0.0
        seconds = num_blocks * self._block_bytes / self._link.bandwidth + self._link.latency
        return seconds * self.cost_multiplier

    def clear(self) -> None:
        """Drop everything stored (between experiments)."""
        self._blocks.clear()
        self._version += 1
