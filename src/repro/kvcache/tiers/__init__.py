"""Tiered prefix-cache subsystem: GPU -> host -> cluster-shared KV store.

The paper's default engine *discards* suffix KV caches; §9 names LMCache-style
CPU offload as the alternative.  This package generalises that alternative
into a full hierarchy that the fleet layer can share:

* :mod:`repro.kvcache.tiers.config` — :class:`TierConfig` and the
  ``"kv_tiers"`` JSON-block parser (typed errors with JSON paths);
* :mod:`repro.kvcache.tiers.policy` — pluggable promotion policies
  (``always`` / ``on-nth-hit`` / ``never``);
* :mod:`repro.kvcache.tiers.cluster_store` — the fleet-shared L3
  :class:`ClusterPrefixStore` with per-replica hit accounting;
* :mod:`repro.kvcache.tiers.shard_bus` — :class:`ShardStoreBus`, the
  versioned, latency-stamped message facade sharded fleet runs interpose in
  front of the L3 store (see ``docs/SHARDING.md``);
* :mod:`repro.kvcache.tiers.store` — :class:`TieredPrefixStore`, the
  per-replica object that layers L1 (radix tree) over L2 (host) over L3 and
  implements fetch / promote / demote / prefetch / drain.

``docs/KV_TIERS.md`` is the configuration reference and cookbook.
"""

from repro.kvcache.tiers.cluster_store import ClusterPrefixStore, ClusterStoreStats
from repro.kvcache.tiers.config import TIER_NAMES, TierConfig, tier_config_from_dict
from repro.kvcache.tiers.shard_bus import ShardStoreBus, StoreMessage
from repro.kvcache.tiers.policy import (
    PROMOTION_POLICIES,
    AlwaysPromote,
    NeverPromote,
    PromoteOnNthHit,
    PromotionPolicy,
    make_promotion_policy,
)
from repro.kvcache.tiers.store import (
    TieredPrefixStore,
    TierLookup,
    TierStats,
    build_cluster_store,
    build_tiered_store,
)

__all__ = [
    "TIER_NAMES",
    "TierConfig",
    "tier_config_from_dict",
    "PromotionPolicy",
    "AlwaysPromote",
    "NeverPromote",
    "PromoteOnNthHit",
    "PROMOTION_POLICIES",
    "make_promotion_policy",
    "ClusterPrefixStore",
    "ClusterStoreStats",
    "ShardStoreBus",
    "StoreMessage",
    "TieredPrefixStore",
    "TierLookup",
    "TierStats",
    "build_tiered_store",
    "build_cluster_store",
]
