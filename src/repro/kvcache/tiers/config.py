"""Configuration of the tiered prefix-cache subsystem.

A :class:`TierConfig` describes the whole hierarchy for one replica: whether
tiering is on at all, how big the host (L2) and cluster-shared (L3) tiers are,
which interconnects their transfers are charged through, and the promotion /
demotion / prefetch policies that move blocks between tiers.  The scenario
engine parses it from a ``"kv_tiers"`` JSON block via
:func:`tier_config_from_dict`; the CLI builds it from ``--tier-*`` flags; both
end up with the same frozen dataclass, which the :class:`~repro.cluster.Fleet`
hands to every replica it builds.

Config block shape (JSON)::

    "kv_tiers": {
      "enabled": true,
      "tiers": {
        "host":    {"capacity_gib": 4.0,  "link": "pcie-gen4"},
        "cluster": {"capacity_gib": 16.0, "link": "nvlink"}
      },
      "promotion": "on-nth-hit",          // always | on-nth-hit | never
      "promotion_threshold": 2,           // N of promote-on-Nth-hit
      "demote_on_evict": true,            // evictions cascade down instead of dropping
      "prefetch": true                    // router-hint prefetch before dispatch
    }

Unknown tier names fail with :class:`~repro.errors.UnknownTierError` (the
message lists the valid tier names and the JSON path of the typo); invalid
capacities fail with :class:`~repro.errors.TierCapacityError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TierCapacityError, TierError, UnknownTierError
from repro.kvcache.tiers.policy import PROMOTION_POLICIES

#: The tiers a config block may size.  ``gpu`` (L1) is sized by the engine's
#: profile run, not by config, so it is deliberately absent here.
TIER_NAMES = ("host", "cluster")

_TIER_ENTRY_KEYS = {"capacity_gib", "link"}
_CONFIG_KEYS = {
    "enabled", "tiers", "promotion", "promotion_threshold",
    "demote_on_evict", "prefetch",
}


@dataclass(frozen=True)
class TierConfig:
    """Everything the tiered prefix cache needs to stand itself up.

    Attributes:
        enabled: Master switch.  When False every tier code path is skipped
            and results are byte-identical to a build without tiering.
        host_gib: Host-memory budget (GiB) of the per-replica L2 store.
            ``0`` disables L2.
        cluster_gib: Byte budget (GiB) of the fleet-shared L3 store.
            ``0`` disables L3.
        host_link: Interconnect name charged for GPU <-> host transfers.
        cluster_link: Interconnect name charged for replica <-> cluster-store
            transfers (peer fetch).
        promotion: Promotion policy name (see
            :mod:`repro.kvcache.tiers.policy`).
        promotion_threshold: The N of ``on-nth-hit``.
        demote_on_evict: When True, L1 evictions demote into L2 and L2
            evictions demote into L3 instead of dropping the block.
        prefetch: When True, the fleet warms the routed replica's L1 with the
            request's tier-resident continuation before dispatch.
    """

    enabled: bool = False
    host_gib: float = 4.0
    cluster_gib: float = 16.0
    host_link: str = "pcie-gen4"
    cluster_link: str = "nvlink"
    promotion: str = "on-nth-hit"
    promotion_threshold: int = 2
    demote_on_evict: bool = True
    prefetch: bool = True

    def __post_init__(self) -> None:
        if self.host_gib < 0:
            raise TierCapacityError(
                f"host capacity_gib must be non-negative, got {self.host_gib}",
                tier="host", path="kv_tiers.tiers.host.capacity_gib",
            )
        if self.cluster_gib < 0:
            raise TierCapacityError(
                f"cluster capacity_gib must be non-negative, got {self.cluster_gib}",
                tier="cluster", path="kv_tiers.tiers.cluster.capacity_gib",
            )
        if self.promotion not in PROMOTION_POLICIES:
            known = ", ".join(sorted(PROMOTION_POLICIES))
            raise TierError(
                f"kv_tiers.promotion: unknown promotion policy "
                f"{self.promotion!r}; available: {known}"
            )
        if self.promotion_threshold < 1:
            raise TierError(
                "kv_tiers.promotion_threshold must be >= 1, "
                f"got {self.promotion_threshold}"
            )


def tier_config_from_dict(config: dict, *, path: str = "kv_tiers") -> TierConfig:
    """Parse a ``"kv_tiers"`` JSON block into a :class:`TierConfig`.

    Args:
        config: The decoded JSON object.
        path: Dotted path of the block inside the surrounding document, used
            to point error messages at the offending key.

    Raises:
        UnknownTierError: if ``tiers`` names a tier that does not exist (the
            message lists the valid names).
        TierCapacityError: if a capacity is negative or not a number.
        TierError: on any other malformed key or value.
    """
    if not isinstance(config, dict):
        raise TierError(f"{path}: expected a JSON object, got {type(config).__name__}")
    unknown = set(config) - _CONFIG_KEYS
    if unknown:
        raise TierError(f"{path}: unknown keys {sorted(unknown)}")

    kwargs: dict = {"enabled": bool(config.get("enabled", False))}
    tiers = config.get("tiers", {})
    if not isinstance(tiers, dict):
        raise TierError(f"{path}.tiers: expected a JSON object")
    for tier_name, entry in tiers.items():
        if tier_name not in TIER_NAMES:
            raise UnknownTierError(tier_name, TIER_NAMES, path=f"{path}.tiers")
        if not isinstance(entry, dict):
            raise TierError(f"{path}.tiers.{tier_name}: expected a JSON object")
        unknown = set(entry) - _TIER_ENTRY_KEYS
        if unknown:
            raise TierError(
                f"{path}.tiers.{tier_name}: unknown keys {sorted(unknown)}"
            )
        if "capacity_gib" in entry:
            capacity = entry["capacity_gib"]
            if not isinstance(capacity, (int, float)) or isinstance(capacity, bool):
                raise TierCapacityError(
                    f"capacity_gib must be a number, got {capacity!r}",
                    tier=tier_name, path=f"{path}.tiers.{tier_name}.capacity_gib",
                )
            kwargs[f"{tier_name}_gib"] = float(capacity)
        if "link" in entry:
            kwargs[f"{tier_name}_link"] = str(entry["link"])
    for key in ("promotion", "demote_on_evict", "prefetch"):
        if key in config:
            kwargs[key] = config[key]
    if "promotion_threshold" in config:
        threshold = config["promotion_threshold"]
        if not isinstance(threshold, int) or isinstance(threshold, bool):
            raise TierError(
                f"{path}.promotion_threshold: expected an integer, got {threshold!r}"
            )
        kwargs["promotion_threshold"] = threshold
    return TierConfig(**kwargs)
