"""Configuration of the tiered prefix-cache subsystem.

A :class:`TierConfig` describes the whole hierarchy for one replica: whether
tiering is on at all, how big the host (L2) and cluster-shared (L3) tiers are,
which interconnects their transfers are charged through, and the promotion /
demotion / prefetch policies that move blocks between tiers.  The scenario
engine parses it from a ``"kv_tiers"`` JSON block via
:func:`tier_config_from_dict`; the CLI builds it from ``--tier-*`` flags; both
end up with the same frozen dataclass, which the :class:`~repro.cluster.Fleet`
hands to every replica it builds.

Config block shape (JSON)::

    "kv_tiers": {
      "enabled": true,
      "tiers": {
        "host":    {"capacity_gib": 4.0,  "link": "pcie-gen4"},
        "cluster": {"capacity_gib": 16.0, "link": "nvlink"}
      },
      "promotion": "on-nth-hit",          // always | on-nth-hit | never
      "promotion_threshold": 2,           // N of promote-on-Nth-hit
      "demote_on_evict": true,            // evictions cascade down instead of dropping
      "prefetch": true                    // router-hint prefetch before dispatch
    }

Unknown tier names fail with :class:`~repro.errors.UnknownTierError` (the
message lists the valid tier names and the JSON path of the typo); invalid
capacities fail with :class:`~repro.errors.TierCapacityError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TierCapacityError, TierError
from repro.kvcache.tiers.policy import PROMOTION_POLICIES
from repro.spec.core import from_dict
from repro.spec.models import TIER_NAMES, KVTiersSpec


@dataclass(frozen=True)
class TierConfig:
    """Everything the tiered prefix cache needs to stand itself up.

    Attributes:
        enabled: Master switch.  When False every tier code path is skipped
            and results are byte-identical to a build without tiering.
        host_gib: Host-memory budget (GiB) of the per-replica L2 store.
            ``0`` disables L2.
        cluster_gib: Byte budget (GiB) of the fleet-shared L3 store.
            ``0`` disables L3.
        host_link: Interconnect name charged for GPU <-> host transfers.
        cluster_link: Interconnect name charged for replica <-> cluster-store
            transfers (peer fetch).
        promotion: Promotion policy name (see
            :mod:`repro.kvcache.tiers.policy`).
        promotion_threshold: The N of ``on-nth-hit``.
        demote_on_evict: When True, L1 evictions demote into L2 and L2
            evictions demote into L3 instead of dropping the block.
        prefetch: When True, the fleet warms the routed replica's L1 with the
            request's tier-resident continuation before dispatch.
    """

    enabled: bool = False
    host_gib: float = 4.0
    cluster_gib: float = 16.0
    host_link: str = "pcie-gen4"
    cluster_link: str = "nvlink"
    promotion: str = "on-nth-hit"
    promotion_threshold: int = 2
    demote_on_evict: bool = True
    prefetch: bool = True

    def __post_init__(self) -> None:
        if self.host_gib < 0:
            raise TierCapacityError(
                f"host capacity_gib must be non-negative, got {self.host_gib}",
                tier="host", path="kv_tiers.tiers.host.capacity_gib",
            )
        if self.cluster_gib < 0:
            raise TierCapacityError(
                f"cluster capacity_gib must be non-negative, got {self.cluster_gib}",
                tier="cluster", path="kv_tiers.tiers.cluster.capacity_gib",
            )
        if self.promotion not in PROMOTION_POLICIES:
            known = ", ".join(sorted(PROMOTION_POLICIES))
            raise TierError(
                f"kv_tiers.promotion: unknown promotion policy "
                f"{self.promotion!r}; available: {known}"
            )
        if self.promotion_threshold < 1:
            raise TierError(
                "kv_tiers.promotion_threshold must be >= 1, "
                f"got {self.promotion_threshold}"
            )


def tier_config_from_dict(config: dict, *, path: str = "kv_tiers") -> TierConfig:
    """Parse a ``"kv_tiers"`` JSON block into a :class:`TierConfig`.

    Args:
        config: The decoded JSON object.
        path: Dotted path of the block inside the surrounding document, used
            to point error messages at the offending key.

    Raises:
        UnknownTierError: if ``tiers`` names a tier that does not exist (the
            message lists the valid names).
        TierCapacityError: if a capacity is negative or not a number.
        TierError: on any other malformed key or value.
    """
    return tier_config_from_model(from_dict(KVTiersSpec, config, path=path))


def tier_config_from_model(model: KVTiersSpec) -> TierConfig:
    """Convert a parsed :class:`~repro.spec.models.KVTiersSpec` to a config.

    The service half of the model/service split: the spec layer owns shape
    and value validation; this flattens the per-tier entries into the
    runtime dataclass every replica consumes.
    """
    kwargs: dict = {
        "enabled": model.enabled,
        "promotion": model.promotion,
        "promotion_threshold": model.promotion_threshold,
        "demote_on_evict": model.demote_on_evict,
        "prefetch": model.prefetch,
    }
    for tier_name, entry in model.tiers.items():
        kwargs[f"{tier_name}_gib"] = entry.capacity_gib
        kwargs[f"{tier_name}_link"] = entry.link
    return TierConfig(**kwargs)
