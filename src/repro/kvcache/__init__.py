"""KV-cache substrate: paged block allocation, prefix caching, eviction, offload.

This package reproduces the storage layer that both PrefillOnly and the
baselines schedule against: a block (page) allocator in the spirit of
PagedAttention, a radix-tree prefix cache with LRU eviction in the spirit of
vLLM's automatic prefix caching, an optional CPU offload store, and a manager
that ties them together and exposes the operations engines need (lookup,
reserve-for-execution, commit, discard suffix).
"""

from repro.kvcache.block import Block, BlockId, hash_token_blocks, hash_chain
from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.prefix_tree import RadixPrefixCache, PrefixMatch
from repro.kvcache.offload import CPUOffloadStore
from repro.kvcache.manager import KVCacheManager, CommitPolicy, CacheStats

__all__ = [
    "Block",
    "BlockId",
    "hash_token_blocks",
    "hash_chain",
    "BlockAllocator",
    "RadixPrefixCache",
    "PrefixMatch",
    "CPUOffloadStore",
    "KVCacheManager",
    "CommitPolicy",
    "CacheStats",
]
