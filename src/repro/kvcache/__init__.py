"""KV-cache substrate: paged block allocation, prefix caching, eviction, tiers.

This package reproduces the storage layer that both PrefillOnly and the
baselines schedule against: a block (page) allocator in the spirit of
PagedAttention, a radix-tree prefix cache with LRU eviction in the spirit of
vLLM's automatic prefix caching, an optional CPU offload store, and a manager
that ties them together and exposes the operations engines need (lookup,
reserve-for-execution, commit, discard suffix).

:mod:`repro.kvcache.tiers` grows the offload store into a full hierarchy —
GPU radix tree (L1) over host memory (L2) over a fleet-shared cluster store
(L3) — with pluggable promotion/demotion policies, modelled transfer costs,
and router-hint prefetch; see ``docs/KV_TIERS.md``.
"""

from repro.kvcache.block import Block, BlockId, hash_token_blocks, hash_chain
from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.prefix_tree import RadixPrefixCache, PrefixMatch
from repro.kvcache.offload import CPUOffloadStore
from repro.kvcache.manager import KVCacheManager, CommitPolicy, CacheStats
from repro.kvcache.tiers import (
    ClusterPrefixStore,
    TierConfig,
    TieredPrefixStore,
    TierLookup,
    TierStats,
    tier_config_from_dict,
)

__all__ = [
    "Block",
    "BlockId",
    "hash_token_blocks",
    "hash_chain",
    "BlockAllocator",
    "RadixPrefixCache",
    "PrefixMatch",
    "CPUOffloadStore",
    "KVCacheManager",
    "CommitPolicy",
    "CacheStats",
    "TierConfig",
    "tier_config_from_dict",
    "TieredPrefixStore",
    "TierLookup",
    "TierStats",
    "ClusterPrefixStore",
]
