"""Allocation ledger used to reproduce the paper's GPU-memory-over-time traces.

NumPy gives no hook into its allocator, so the executor registers every tensor
it creates and releases with this tracker explicitly.  The tracker keeps the
running live-byte total, the peak, and a trace of samples that the Figure 3
benchmark plots (at micro-transformer scale) next to the analytical trace from
:mod:`repro.model.memory` (at paper scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class MemorySample:
    """One point of the allocation trace."""

    step: int
    label: str
    live_bytes: int


class MemoryTracker:
    """Explicit allocation ledger.

    Tensors are registered under a tag; registering the same tag twice replaces
    the old allocation (convenient for loop-carried buffers).  The tracker can
    also account for "phantom" bytes that exist conceptually (e.g. the KV cache
    an engine would retain) without a backing array.
    """

    def __init__(self) -> None:
        self._live: dict[str, int] = {}
        self._trace: list[MemorySample] = []
        self._step = 0
        self._peak = 0

    # -------------------------------------------------------------- recording

    def allocate(self, tag: str, num_bytes: int) -> None:
        """Record that ``num_bytes`` are now live under ``tag``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._live[tag] = num_bytes
        self._sample(f"alloc:{tag}")

    def allocate_array(self, tag: str, array: np.ndarray) -> np.ndarray:
        """Register a NumPy array and return it (for fluent call sites)."""
        self.allocate(tag, int(array.nbytes))
        return array

    def free(self, tag: str) -> None:
        """Record that the allocation under ``tag`` has been released."""
        if tag in self._live:
            del self._live[tag]
            self._sample(f"free:{tag}")

    def free_matching(self, prefix: str) -> None:
        """Release every allocation whose tag starts with ``prefix``."""
        for tag in [t for t in self._live if t.startswith(prefix)]:
            del self._live[tag]
        self._sample(f"free:{prefix}*")

    def _sample(self, label: str) -> None:
        live = self.live_bytes
        self._peak = max(self._peak, live)
        self._trace.append(MemorySample(step=self._step, label=label, live_bytes=live))
        self._step += 1

    # ---------------------------------------------------------------- queries

    @property
    def live_bytes(self) -> int:
        """Bytes currently registered as live."""
        return sum(self._live.values())

    @property
    def peak_bytes(self) -> int:
        """Largest live-byte total observed so far."""
        return self._peak

    @property
    def trace(self) -> list[MemorySample]:
        """The full allocation trace in registration order."""
        return list(self._trace)

    def live_tags(self) -> Iterator[str]:
        """Iterate over the tags of currently live allocations."""
        return iter(self._live)

    def reset(self) -> None:
        """Clear all state (between runs)."""
        self._live.clear()
        self._trace.clear()
        self._step = 0
        self._peak = 0
