"""Computation-graph IR and the virtual-layer grouping pass.

The paper implements hybrid prefilling "on top of the computation graph
compiled by torch.compile": consecutive linear (position-wise) operations are
grouped into one large virtual layer that is then evaluated chunk-by-chunk,
while attention nodes are left alone.  This module reproduces that pass on a
small explicit graph IR so that the planner logic — which operations may be
chunked, how they are grouped, what the output shapes of each group are — is
real code with real tests rather than prose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.model.config import ModelConfig


class OpKind(enum.Enum):
    """Operation categories relevant to the hybrid-prefilling planner."""

    EMBEDDING = "embedding"
    LINEAR = "linear"
    NORM = "norm"
    ACTIVATION = "activation"
    ELEMENTWISE = "elementwise"
    ATTENTION = "attention"
    OUTPUT = "output"

    @property
    def is_positionwise(self) -> bool:
        """True if the op maps each token position independently."""
        return self is not OpKind.ATTENTION


@dataclass(frozen=True)
class GraphNode:
    """One operation in the compiled forward graph.

    Attributes:
        name: Unique node name, e.g. ``"block3.mlp.gate_up"``.
        kind: Operation category.
        inputs: Names of producer nodes.
        output_width: Per-token output width in elements (0 for scalar outputs).
        block_index: Transformer block this node belongs to (-1 for pre/post).
    """

    name: str
    kind: OpKind
    inputs: tuple[str, ...]
    output_width: int
    block_index: int = -1


@dataclass
class ComputationGraph:
    """A topologically ordered forward graph."""

    nodes: list[GraphNode] = field(default_factory=list)

    def add(self, node: GraphNode) -> GraphNode:
        if any(existing.name == node.name for existing in self.nodes):
            raise ConfigurationError(f"duplicate graph node name: {node.name!r}")
        known = {existing.name for existing in self.nodes}
        for dep in node.inputs:
            if dep not in known:
                raise ConfigurationError(
                    f"node {node.name!r} depends on unknown node {dep!r} "
                    "(graph must be built in topological order)"
                )
        self.nodes.append(node)
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    @property
    def attention_nodes(self) -> list[GraphNode]:
        return [node for node in self.nodes if node.kind is OpKind.ATTENTION]

    @property
    def positionwise_nodes(self) -> list[GraphNode]:
        return [node for node in self.nodes if node.kind.is_positionwise]


@dataclass(frozen=True)
class VirtualLayer:
    """A maximal run of consecutive position-wise nodes, evaluated chunk-by-chunk.

    Attributes:
        index: Position of the group in the rewritten graph.
        nodes: The grouped nodes, in execution order.
        output_width: Per-token width of the group's final output (used for
            output preallocation).
        peak_intermediate_width: Largest per-token tensor materialised while the
            group executes one chunk.
    """

    index: int
    nodes: tuple[GraphNode, ...]
    output_width: int
    peak_intermediate_width: int

    @property
    def num_ops(self) -> int:
        return len(self.nodes)


def build_transformer_graph(model: ModelConfig, *, include_lm_head: bool = False) -> ComputationGraph:
    """Build the forward graph of a decoder-only transformer from its config.

    The graph mirrors the layer stack of :func:`repro.model.layers.build_layer_stack`
    but at operation granularity (separate q/k/v/o projections, separate MLP
    projections), which is the granularity torch.compile exposes and therefore
    the granularity the grouping pass works at.
    """
    graph = ComputationGraph()
    hidden = model.hidden_size
    graph.add(GraphNode("embedding", OpKind.EMBEDDING, (), hidden))
    previous = "embedding"

    for block in range(model.num_layers):
        prefix = f"block{block}"
        graph.add(GraphNode(f"{prefix}.input_norm", OpKind.NORM, (previous,), hidden, block))
        graph.add(GraphNode(
            f"{prefix}.attn.qkv", OpKind.LINEAR, (f"{prefix}.input_norm",),
            model.q_dim + 2 * model.kv_dim, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.attn.core", OpKind.ATTENTION, (f"{prefix}.attn.qkv",), model.q_dim, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.attn.out_proj", OpKind.LINEAR, (f"{prefix}.attn.core",), hidden, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.attn.residual", OpKind.ELEMENTWISE,
            (previous, f"{prefix}.attn.out_proj"), hidden, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.post_norm", OpKind.NORM, (f"{prefix}.attn.residual",), hidden, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.mlp.gate_up", OpKind.LINEAR, (f"{prefix}.post_norm",),
            2 * model.intermediate_size, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.mlp.act", OpKind.ACTIVATION, (f"{prefix}.mlp.gate_up",),
            model.intermediate_size, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.mlp.down", OpKind.LINEAR, (f"{prefix}.mlp.act",), hidden, block,
        ))
        graph.add(GraphNode(
            f"{prefix}.mlp.residual", OpKind.ELEMENTWISE,
            (f"{prefix}.attn.residual", f"{prefix}.mlp.down"), hidden, block,
        ))
        previous = f"{prefix}.mlp.residual"

    graph.add(GraphNode("final_norm", OpKind.NORM, (previous,), hidden))
    if include_lm_head:
        graph.add(GraphNode("lm_head", OpKind.LINEAR, ("final_norm",), model.vocab_size))
    return graph


def group_chunkable_operations(graph: ComputationGraph) -> list[VirtualLayer | GraphNode]:
    """Rewrite a graph into alternating virtual layers and attention nodes.

    This is the torch.compile pass of the paper: every maximal run of
    consecutive position-wise operations becomes one :class:`VirtualLayer`
    (evaluated chunk-by-chunk by the executor), and every attention node is
    passed through unchanged (evaluated over the whole sequence).
    """
    plan: list[VirtualLayer | GraphNode] = []
    pending: list[GraphNode] = []
    group_index = 0

    def flush() -> None:
        nonlocal group_index, pending
        if not pending:
            return
        plan.append(VirtualLayer(
            index=group_index,
            nodes=tuple(pending),
            output_width=pending[-1].output_width,
            peak_intermediate_width=max(node.output_width for node in pending),
        ))
        group_index += 1
        pending = []

    for node in graph:
        if node.kind is OpKind.ATTENTION:
            flush()
            plan.append(node)
            group_index += 1
        else:
            pending.append(node)
    flush()
    return plan
